//! End-to-end serializability tests: invariants that only hold if regions
//! are atomic, under heavy contention and data races.

use std::sync::Arc;
use drink_rs::RsEnforcer;
use drink_runtime::{Event, ObjId, Runtime, RuntimeConfig};

fn rt(threads: usize, objects: usize) -> Arc<Runtime> {
    Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(threads)
        .heap_objects(objects)
        .monitors(2)
        .build()))
}

/// Each region increments BOTH counters; a checker region must never observe
/// them unequal. Without region atomicity the racy increments interleave and
/// the invariant breaks almost immediately.
fn paired_counters(enforcer: &RsEnforcer, threads: usize, iters: usize) {
    let oa = ObjId(0);
    let ob = ObjId(1);
    std::thread::scope(|s| {
        for i in 0..threads {
            let e = &enforcer;
            s.spawn(move || {
                let t = e.attach();
                for _ in 0..iters {
                    if i % 2 == 0 {
                        // Writer: keep the pair equal.
                        e.region(t, |r| {
                            let a = r.read(oa)?;
                            r.write(oa, a + 1)?;
                            let b = r.read(ob)?;
                            r.write(ob, b + 1)?;
                            Ok(())
                        });
                    } else {
                        // Checker: the pair must look equal atomically.
                        let (a, b) = e.region(t, |r| Ok((r.read(oa)?, r.read(ob)?)));
                        assert_eq!(a, b, "region atomicity violated");
                    }
                    e.safepoint(t);
                }
                e.detach(t);
            });
        }
    });
    // Final values equal and equal to the number of writer increments.
    let a = enforcer.rt().obj(oa).data_read();
    let b = enforcer.rt().obj(ob).data_read();
    assert_eq!(a, b);
    let writers = threads.div_ceil(2);
    assert_eq!(a, (writers * iters) as u64, "no lost updates");
}

#[test]
fn hybrid_enforcer_paired_counters() {
    let e = RsEnforcer::hybrid(rt(4, 8));
    paired_counters(&e, 4, 400);
    let r = e.rt().stats().report();
    assert!(r.get(Event::RegionExec) >= 1_600);
}

#[test]
fn optimistic_enforcer_paired_counters() {
    let e = RsEnforcer::optimistic(rt(4, 8));
    paired_counters(&e, 4, 400);
}

#[test]
fn restarts_occur_under_contention_and_are_counted() {
    // Symmetric two-object regions force 2PL deadlocks that resolve by
    // respond-and-restart; the counters must still be exact.
    let e = RsEnforcer::hybrid(rt(4, 4));
    let oa = ObjId(0);
    let ob = ObjId(1);
    std::thread::scope(|s| {
        for i in 0..4 {
            let e = &e;
            s.spawn(move || {
                let t = e.attach();
                for _ in 0..300 {
                    // Half the threads lock a-then-b, half b-then-a.
                    let (first, second) = if i % 2 == 0 { (oa, ob) } else { (ob, oa) };
                    e.region(t, |r| {
                        let x = r.read(first)?;
                        r.write(first, x + 1)?;
                        let y = r.read(second)?;
                        r.write(second, y + 1)?;
                        Ok(())
                    });
                    e.safepoint(t);
                }
                e.detach(t);
            });
        }
    });
    assert_eq!(e.rt().obj(oa).data_read(), 1_200);
    assert_eq!(e.rt().obj(ob).data_read(), 1_200);
}

#[test]
fn money_transfer_conserves_total() {
    // Classic bank-transfer workload over many accounts with cyclic lock
    // orders: total balance is conserved only under serializability.
    const ACCOUNTS: usize = 16;
    const THREADS: usize = 4;
    const TRANSFERS: usize = 400;
    for make in [RsEnforcer::hybrid as fn(Arc<Runtime>) -> RsEnforcer, RsEnforcer::optimistic] {
        let e = make(rt(THREADS, ACCOUNTS));
        for i in 0..ACCOUNTS {
            e.rt().obj(ObjId(i as u32)).data_write(1_000);
        }
        std::thread::scope(|s| {
            for seed in 0..THREADS {
                let e = &e;
                s.spawn(move || {
                    let t = e.attach();
                    let mut x = (seed as u64 + 1) * 0x9E37_79B9;
                    for _ in 0..TRANSFERS {
                        x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                        let from = ObjId(((x >> 16) % ACCOUNTS as u64) as u32);
                        let to = ObjId(((x >> 32) % ACCOUNTS as u64) as u32);
                        if from == to {
                            continue;
                        }
                        e.region(t, |r| {
                            let f = r.read(from)?;
                            let amount = f.min(10);
                            r.write(from, f - amount)?;
                            let g = r.read(to)?;
                            r.write(to, g + amount)?;
                            Ok(())
                        });
                        e.safepoint(t);
                    }
                    e.detach(t);
                });
            }
        });
        let total: u64 = (0..ACCOUNTS)
            .map(|i| e.rt().obj(ObjId(i as u32)).data_read())
            .sum();
        assert_eq!(total, ACCOUNTS as u64 * 1_000, "{}", e.name());
    }
}

#[test]
fn plain_tracking_breaks_the_invariant_without_regions() {
    // Sanity: the invariant is actually at risk — run the same paired
    // counters racily (no regions) on a plain engine and observe lost
    // updates, proving the enforcer is doing the work.
    use drink_core::prelude::*;
    let rtm = rt(8, 8);
    let e = HybridEngine::new(rtm);
    let oa = ObjId(0);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let e = &e;
            s.spawn(move || {
                let sess = Session::attach(e);
                for _ in 0..2_000 {
                    let a = sess.read(oa);
                    // Widen the race window so the test is meaningful even on
                    // single-core machines where preemption mid-increment is
                    // otherwise rare.
                    std::thread::yield_now();
                    sess.write(oa, a + 1);
                    sess.safepoint();
                }
            });
        }
    });
    let a = e.rt().obj(oa).data_read();
    assert!(
        a < 16_000,
        "racy increments should lose updates (got {a}); if this ever fails \
         the serializability tests above are vacuous"
    );
}
