//! The region-serializability enforcer façade (§5).
//!
//! [`RsEnforcer`] wraps a tracking engine (optimistic or hybrid, both
//! carrying [`RsSupport`]) and executes *statically bounded regions*
//! atomically:
//!
//! * every access inside a region acquires (and keeps) ownership of the
//!   object's state — two-phase locking via the tracking protocol itself;
//! * the thread responds to coordination only while it is itself waiting
//!   for a transition; doing so rolls the region back (undo log) and flags a
//!   restart. Region bodies are written against [`RegionCx`], whose
//!   operations return `Err(Restart)` once the region is doomed, so the body
//!   unwinds promptly via `?`;
//! * the region end is a safe point: pending coordination requests are
//!   answered there, *after* the region's effects are committed.
//!
//! Deferred unlocking (§5.2) is what makes region ends cheap under hybrid
//! tracking: pessimistic locks are flushed at PSROs and responding safe
//! points — both region boundaries — so a region end that has nothing to
//! answer is a single flag check.

use std::sync::Arc;

use drink_core::engine::hybrid::{HybridConfig, HybridEngine};
use drink_core::engine::optimistic::OptimisticEngine;
use drink_core::engine::Tracker;
use drink_runtime::{Event, MonitorId, ObjId, Runtime, ThreadId};

use crate::support::{RegionTable, RsSupport};

/// Marker error: the current region was rolled back and must restart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Restart;

/// The two enforcer configurations of Figure 9(b).
pub enum RsEnforcer {
    /// The optimistic enforcer (§5.1), per prior work.
    Optimistic(OptimisticEngine<RsSupport>, Arc<RegionTable>),
    /// The hybrid enforcer (§5.2), the paper's contribution.
    Hybrid(HybridEngine<RsSupport>, Arc<RegionTable>),
}

impl RsEnforcer {
    /// Build the optimistic enforcer over `rt`.
    pub fn optimistic(rt: Arc<Runtime>) -> Self {
        let table = RegionTable::new(rt.clone());
        let engine = OptimisticEngine::with_support(rt, RsSupport::new(table.clone()));
        RsEnforcer::Optimistic(engine, table)
    }

    /// Build the hybrid enforcer over `rt` (paper-default policy).
    pub fn hybrid(rt: Arc<Runtime>) -> Self {
        RsEnforcer::hybrid_with(rt, HybridConfig::default())
    }

    /// Build the hybrid enforcer with an explicit hybrid configuration.
    pub fn hybrid_with(rt: Arc<Runtime>, cfg: HybridConfig) -> Self {
        let table = RegionTable::new(rt.clone());
        let engine = HybridEngine::with_config(rt, RsSupport::new(table.clone()), cfg);
        RsEnforcer::Hybrid(engine, table)
    }

    fn table(&self) -> &Arc<RegionTable> {
        match self {
            RsEnforcer::Optimistic(_, t) | RsEnforcer::Hybrid(_, t) => t,
        }
    }

    /// Execute `body` as an atomic region on mutator `t`, retrying on
    /// rollback. The body reads and writes shared objects only through the
    /// provided [`RegionCx`] and must propagate `Restart` errors with `?`.
    ///
    /// Region bodies must be *pure* apart from their tracked accesses: they
    /// may run several times.
    pub fn region<R>(
        &self,
        t: ThreadId,
        mut body: impl FnMut(&RegionCx<'_>) -> Result<R, Restart>,
    ) -> R {
        let mut attempts = 0u32;
        loop {
            {
                // SAFETY: region() is called from the attached mutator
                // thread; the borrow is scoped so it never overlaps the
                // body's own slot accesses.
                let slot = unsafe { self.table().slot(t) };
                slot.in_region = true;
                slot.must_restart = false;
                slot.undo.clear();
                slot.accessed.clear();
            }
            self.bump(t, Event::RegionExec);

            let cx = RegionCx { enforcer: self, t };
            let result = body(&cx);

            let doomed = {
                // SAFETY: as above.
                let slot = unsafe { self.table().slot(t) };
                let doomed = slot.must_restart;
                slot.in_region = false;
                if !doomed {
                    slot.undo.clear();
                }
                doomed
            };
            match result {
                Ok(r) if !doomed => {
                    // Region end: a safe point. Answer requests that queued up
                    // while the region held ownership.
                    self.safepoint(t);
                    return r;
                }
                _ => {
                    // Rolled back (or body observed Restart): try again. The
                    // undo log was already applied at the yield.
                    debug_assert!(doomed, "body returned Err without a rollback");
                    self.bump(t, Event::RegionRestart);
                    self.safepoint(t);
                    // Contention management: back off so the threads that
                    // restarted us can commit before we re-acquire.
                    attempts += 1;
                    for _ in 0..attempts.min(16) {
                        self.safepoint(t);
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    fn bump(&self, t: ThreadId, e: Event) {
        // Reuse the engine's per-thread stats.
        match self {
            // SAFETY: acting thread.
            RsEnforcer::Optimistic(eng, _) => unsafe { eng.common().ts(t) }.stats.bump(e),
            RsEnforcer::Hybrid(eng, _) => unsafe { eng.common().ts(t) }.stats.bump(e),
        }
    }
}

/// Accessor handle passed to region bodies.
pub struct RegionCx<'a> {
    enforcer: &'a RsEnforcer,
    t: ThreadId,
}

impl RegionCx<'_> {
    /// Tracked read within the region.
    pub fn read(&self, o: ObjId) -> Result<u64, Restart> {
        // SAFETY: acting thread.
        let slot = unsafe { self.enforcer.table().slot(self.t) };
        if slot.must_restart {
            return Err(Restart);
        }
        let v = match self.enforcer {
            RsEnforcer::Optimistic(e, _) => e.read(self.t, o),
            RsEnforcer::Hybrid(e, _) => e.read(self.t, o),
        };
        // The read may have yielded (and rolled back) while acquiring
        // ownership; its value is then from a doomed schedule.
        let slot = unsafe { self.enforcer.table().slot(self.t) };
        if slot.must_restart {
            return Err(Restart);
        }
        if !slot.accessed.contains(&o.0) {
            slot.accessed.push(o.0);
        }
        Ok(v)
    }

    /// Tracked write within the region (undo-logged).
    pub fn write(&self, o: ObjId, v: u64) -> Result<(), Restart> {
        // SAFETY: acting thread.
        let slot = unsafe { self.enforcer.table().slot(self.t) };
        if slot.must_restart {
            return Err(Restart);
        }
        let prev = match self.enforcer {
            RsEnforcer::Optimistic(e, _) => e.try_write(self.t, o, v),
            RsEnforcer::Hybrid(e, _) => e.try_write(self.t, o, v),
        };
        match prev {
            Some(old) => {
                let slot = unsafe { self.enforcer.table().slot(self.t) };
                slot.undo.push((o, old));
                if !slot.accessed.contains(&o.0) {
                    slot.accessed.push(o.0);
                }
                Ok(())
            }
            None => Err(Restart),
        }
    }
}

// Forward the mutator lifecycle + non-region operations so the enforcer can
// be driven like any engine between regions.
impl RsEnforcer {
    /// The runtime.
    pub fn rt(&self) -> &Arc<Runtime> {
        match self {
            RsEnforcer::Optimistic(e, _) => e.rt(),
            RsEnforcer::Hybrid(e, _) => e.rt(),
        }
    }

    /// Configuration name ("opt-rs" / "hybrid-rs").
    pub fn name(&self) -> &'static str {
        match self {
            RsEnforcer::Optimistic(..) => "opt-rs",
            RsEnforcer::Hybrid(..) => "hybrid-rs",
        }
    }

    /// Attach the calling thread.
    pub fn attach(&self) -> ThreadId {
        let t = match self {
            RsEnforcer::Optimistic(e, _) => e.attach(),
            RsEnforcer::Hybrid(e, _) => e.attach(),
        };
        self.table().reset_owner(t);
        t
    }

    /// Detach (must be outside any region).
    pub fn detach(&self, t: ThreadId) {
        debug_assert!(!unsafe { self.table().slot(t) }.in_region);
        match self {
            RsEnforcer::Optimistic(e, _) => e.detach(t),
            RsEnforcer::Hybrid(e, _) => e.detach(t),
        }
    }

    /// Safe point poll between regions.
    pub fn safepoint(&self, t: ThreadId) {
        match self {
            RsEnforcer::Optimistic(e, _) => e.safepoint(t),
            RsEnforcer::Hybrid(e, _) => e.safepoint(t),
        }
    }

    /// Program lock acquire (between regions; sync ops bound regions).
    pub fn lock(&self, t: ThreadId, m: MonitorId) {
        match self {
            RsEnforcer::Optimistic(e, _) => e.lock(t, m),
            RsEnforcer::Hybrid(e, _) => e.lock(t, m),
        }
    }

    /// Program lock release.
    pub fn unlock(&self, t: ThreadId, m: MonitorId) {
        match self {
            RsEnforcer::Optimistic(e, _) => e.unlock(t, m),
            RsEnforcer::Hybrid(e, _) => e.unlock(t, m),
        }
    }

    /// Initialize `o` as allocated by `owner`.
    pub fn alloc_init(&self, o: ObjId, owner: ThreadId) {
        match self {
            RsEnforcer::Optimistic(e, _) => e.alloc_init(o, owner),
            RsEnforcer::Hybrid(e, _) => e.alloc_init(o, owner),
        }
    }
}
