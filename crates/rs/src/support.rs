//! The enforcer's [`Support`] implementation: speculation state per thread.
//!
//! The optimistic/hybrid RS enforcers (§5) provide serializability by
//! two-phase locking of object states: a region never relinquishes ownership
//! until it ends — *except* when its thread must respond to coordination
//! while itself waiting for a transition (deadlock freedom, §5.1). At that
//! point the region cannot be salvaged: [`RsSupport::before_yield`] rolls
//! back the region's writes (undo log, newest first) **before** ownership
//! becomes visible to the requester, and marks the region for restart.
//!
//! The engines consult [`Support::should_abort`] after any potential yield in
//! a write slow path, so a write belonging to a rolled-back region is never
//! performed.

use std::sync::Arc;

use drink_core::support::{Support, SupportCx, YieldInfo};
use drink_core::tstate::OwnedByThread;
use drink_runtime::{ObjId, Runtime, ThreadId};

/// Per-thread speculation state.
#[derive(Default)]
pub struct RegionState {
    /// Is a region currently executing on this thread?
    pub in_region: bool,
    /// Has the current region been rolled back (must restart)?
    pub must_restart: bool,
    /// Undo log: `(object, payload before each write)`; applied in reverse
    /// on rollback.
    pub undo: Vec<(ObjId, u64)>,
    /// Objects this region has accessed so far. A yield disturbs the region
    /// only if it hands over one of these (two-phase locking cares about the
    /// locks the region actually took, not about ownership left over from
    /// earlier, committed regions). Statically bounded regions are short, so
    /// a linear vector beats a hash set.
    pub accessed: Vec<u32>,
}

/// Shared table of per-thread region states. The enforcer façade and the
/// engine-side support hooks both hold an `Arc` of it.
pub struct RegionTable {
    rt: Arc<Runtime>,
    slots: Box<[OwnedByThread<RegionState>]>,
}

impl RegionTable {
    /// A table sized for `rt`'s thread slots.
    pub fn new(rt: Arc<Runtime>) -> Arc<Self> {
        let n = rt.config().max_threads;
        Arc::new(RegionTable {
            rt,
            slots: (0..n)
                .map(|_| OwnedByThread::new(RegionState::default()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        })
    }

    /// Thread `t`'s region state.
    ///
    /// # Safety
    ///
    /// Caller must be the OS thread attached as mutator `t` (all yield hooks
    /// and region operations run on the owning thread).
    #[allow(clippy::mut_from_ref)]
    #[inline(always)]
    pub unsafe fn slot(&self, t: ThreadId) -> &mut RegionState {
        // SAFETY: forwarded to the caller.
        unsafe { self.slots[t.index()].get() }
    }

    /// Reset the slot owner when a new mutator claims thread id `t`.
    pub fn reset_owner(&self, t: ThreadId) {
        self.slots[t.index()].reset_owner();
    }

    /// Roll back thread `t`'s in-flight region, if any: restore payloads in
    /// reverse write order and mark the region for restart.
    ///
    /// # Safety
    ///
    /// Caller must be thread `t`.
    pub unsafe fn rollback(&self, t: ThreadId) {
        // SAFETY: caller contract.
        let slot = unsafe { self.slot(t) };
        if !slot.in_region {
            return;
        }
        for (o, old) in slot.undo.drain(..).rev() {
            self.rt.obj(o).data_write(old);
        }
        slot.must_restart = true;
    }
}

/// The enforcer's engine-side hooks.
#[derive(Clone)]
pub struct RsSupport {
    table: Arc<RegionTable>,
}

impl RsSupport {
    /// Hooks over a shared region table.
    pub fn new(table: Arc<RegionTable>) -> Self {
        RsSupport { table }
    }

    /// The shared table (for the enforcer façade).
    pub fn table(&self) -> &Arc<RegionTable> {
        &self.table
    }
}

impl Support for RsSupport {
    fn before_yield(&self, cx: SupportCx<'_>, info: YieldInfo<'_>) {
        // Runs on cx.t itself, before any object state is unlocked or
        // transferred — the requester can never observe speculative payloads.
        //
        // Restart only when the yield actually gives away something this
        // region accessed: the requester takes exactly the objects it named,
        // and the flush unlocks exactly the pessimistic lock buffer. States
        // still owned from *earlier, committed* regions may transfer freely —
        // without this distinction, hot workloads restart-livelock (every
        // incoming request for a long-held object would nuke the current
        // region).
        // SAFETY: support hooks run on the mutator thread.
        let slot = unsafe { self.table.slot(cx.t) };
        if !slot.in_region {
            return;
        }
        let disturbed = info
            .requested
            .iter()
            .chain(info.pess_locked.iter())
            .any(|o| slot.accessed.contains(&o.0));
        if disturbed {
            // SAFETY: as above.
            unsafe { self.table.rollback(cx.t) }
        }
    }

    #[inline]
    fn should_abort(&self, t: ThreadId) -> bool {
        // SAFETY: engines call this from the acting thread.
        let slot = unsafe { self.table.slot(t) };
        slot.in_region && slot.must_restart
    }

    fn on_wake_after_implicit(&self, cx: SupportCx<'_>) {
        // Statically bounded regions contain no blocking operations, so a
        // region can never be implicitly coordinated with. Defensive anyway:
        // treat it like a yield.
        // SAFETY: as above.
        unsafe { self.table.rollback(cx.t) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drink_runtime::RuntimeConfig;

    #[test]
    fn rollback_restores_in_reverse_order() {
        let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build()));
        let table = RegionTable::new(rt.clone());
        let t = ThreadId(0);
        rt.obj(ObjId(0)).data_write(100);

        let slot = unsafe { table.slot(t) };
        slot.in_region = true;
        // Two writes to the same object: undo must land on the oldest value.
        slot.undo.push((ObjId(0), 100));
        rt.obj(ObjId(0)).data_write(1);
        slot.undo.push((ObjId(0), 1));
        rt.obj(ObjId(0)).data_write(2);

        unsafe { table.rollback(t) };
        assert_eq!(rt.obj(ObjId(0)).data_read(), 100);
        let slot = unsafe { table.slot(t) };
        assert!(slot.must_restart);
        assert!(slot.undo.is_empty());
    }

    #[test]
    fn rollback_outside_region_is_noop() {
        let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build()));
        let table = RegionTable::new(rt.clone());
        rt.obj(ObjId(1)).data_write(7);
        unsafe { table.rollback(ThreadId(0)) };
        assert_eq!(rt.obj(ObjId(1)).data_read(), 7);
        assert!(!unsafe { table.slot(ThreadId(0)) }.must_restart);
    }

    #[test]
    fn should_abort_only_in_rolled_back_region() {
        let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build()));
        let table = RegionTable::new(rt);
        let sup = RsSupport::new(table.clone());
        let t = ThreadId(0);
        assert!(!sup.should_abort(t));
        unsafe { table.slot(t) }.in_region = true;
        assert!(!sup.should_abort(t));
        unsafe { table.rollback(t) };
        assert!(sup.should_abort(t));
    }
}
