//! # drink-rs: region serializability enforcement on dependence tracking
//!
//! The paper's second runtime-support client (§5): enforcing **statically
//! bounded region serializability (SBRS)** — every region bounded by
//! synchronization operations, method calls, and loop back edges executes
//! atomically, *even for programs with data races*.
//!
//! Two configurations, as in Figure 9(b):
//!
//! * [`RsEnforcer::optimistic`] — the prior-work enforcer on Octet tracking;
//! * [`RsEnforcer::hybrid`] — the paper's enforcer on hybrid tracking, which
//!   relies on **deferred unlocking** so region ends don't need conditional
//!   unlock checks (§5.2): pessimistic states stay locked until a PSRO or
//!   responding safe point, both of which are region boundaries.
//!
//! Serializability comes from two-phase locking of object states with
//! rollback-on-yield: a thread relinquishes ownership mid-region only when
//! it must respond to coordination while itself waiting (deadlock freedom),
//! and `RsSupport::before_yield` undoes the region's writes before the
//! transfer becomes visible.
//!
//! ```
//! use std::sync::Arc;
//! use drink_rs::RsEnforcer;
//! use drink_runtime::{ObjId, Runtime, RuntimeConfig};
//!
//! let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
//!     .max_threads(2)
//!     .heap_objects(8)
//!     .monitors(1)
//!     .build()));
//! let enforcer = RsEnforcer::hybrid(rt);
//! let t = enforcer.attach();
//! // Atomically move a unit from one counter to another.
//! enforcer.region(t, |r| {
//!     let a = r.read(ObjId(0))?;
//!     r.write(ObjId(0), a.wrapping_sub(1))?;
//!     let b = r.read(ObjId(1))?;
//!     r.write(ObjId(1), b + 1)?;
//!     Ok(())
//! });
//! enforcer.detach(t);
//! ```

pub mod enforcer;
pub mod support;

pub use enforcer::{RegionCx, Restart, RsEnforcer};
pub use support::{RegionState, RegionTable, RsSupport};
