//! The profile-guided adaptive policy (§6).
//!
//! The cost–benefit model (§6.1) says an object should be optimistic iff
//!
//! ```text
//! N_nonConfl ≥ K_confl × N_confl          (3)
//! ```
//!
//! The online policy (§6.2) approximates this with per-object profiling kept
//! in the object's **profile word**:
//!
//! * every object starts in optimistic states (phase `OptInitial`);
//! * for optimistic objects, only conflicting transitions that used
//!   **explicit** coordination are counted (implicit coordination costs about
//!   as much as a pessimistic transition — footnote 7). Once
//!   `numConflicts ≥ Cutoff_confl` the object moves to pessimistic states
//!   (phase `Pess`);
//! * for pessimistic objects, *every* transition is categorized as
//!   conflicting or non-conflicting. Once
//!   `N_nonConfl ≥ K_confl × N_confl + Inertia` (5) the object moves back to
//!   optimistic states at its next unlock (phase `OptFinal`);
//! * "checks and balances": after returning to optimistic, the object must
//!   stay optimistic — the phase machine is a one-way valve
//!   `OptInitial → Pess → OptFinal`.
//!
//! As an extension the paper sketches in §7.5 (for the `racyInc` worst case),
//! the policy can optionally force a pessimistic object back to optimistic
//! when its accesses keep triggering *contended* transitions (i.e. the
//! object-level-data-race-freedom assumption of deferred unlocking is being
//! violated). This is off by default to match the paper's configuration.
//!
//! Profile word layout (LSB first):
//!
//! ```text
//! bits  0..=15  numConflicts        (optimistic explicit conflicts, saturating)
//! bits 16..=35  pessNonConfl        (saturating)
//! bits 36..=53  pessConfl           (saturating)
//! bits 54..=61  pessContended       (saturating; §7.5 extension)
//! bits 62..=63  phase               0 OptInitial, 1 Pess, 2 OptFinal
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Tuning parameters of the adaptive policy (§6.2, §7.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyParams {
    /// Conflicts before an optimistic object moves to pessimistic states.
    /// `u32::MAX` means never (the paper's "hybrid tracking w/ infinite
    /// cutoff" configuration).
    pub cutoff_confl: u32,
    /// The cost-ratio constant of inequality (5).
    pub k_confl: u32,
    /// Hysteresis of inequality (5): prevents returning to optimistic before
    /// significant profiling has occurred.
    pub inertia: u32,
    /// §7.5 extension, off (`u32::MAX`) by default: contended pessimistic
    /// transitions before the object is forced back to optimistic states.
    pub contended_cutoff: u32,
}

impl Default for PolicyParams {
    /// The paper's evaluated values: `Cutoff_confl = 4`, `K_confl = 200`,
    /// `Inertia = 100` (§7.3).
    fn default() -> Self {
        PolicyParams {
            cutoff_confl: 4,
            k_confl: 200,
            inertia: 100,
            contended_cutoff: u32::MAX,
        }
    }
}

impl PolicyParams {
    /// The "hybrid tracking w/ infinite cutoff" configuration of Figure 7:
    /// no object ever becomes pessimistic, measuring only the *costs* of
    /// hybrid tracking over optimistic tracking.
    pub fn infinite_cutoff() -> Self {
        PolicyParams {
            cutoff_confl: u32::MAX,
            ..PolicyParams::default()
        }
    }

    /// Enable the §7.5 anti-`racyInc` extension.
    pub fn with_contended_cutoff(mut self, n: u32) -> Self {
        self.contended_cutoff = n;
        self
    }
}

/// Lifecycle phase of one object under the adaptive policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Initial optimistic phase: counting explicit conflicts.
    OptInitial = 0,
    /// Pessimistic phase: categorizing every transition.
    Pess = 1,
    /// Final optimistic phase: profiling disabled, stays optimistic forever.
    OptFinal = 2,
}

const NC_SHIFT: u32 = 0;
const NC_MASK: u64 = 0xFFFF;
const PNON_SHIFT: u32 = 16;
const PNON_MASK: u64 = 0xF_FFFF;
const PCON_SHIFT: u32 = 36;
const PCON_MASK: u64 = 0x3_FFFF;
const PCONT_SHIFT: u32 = 54;
const PCONT_MASK: u64 = 0xFF;
const PHASE_SHIFT: u32 = 62;
const PHASE_MASK: u64 = 0b11;

/// Decoded profile-word fields (snapshot).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Profile {
    /// Explicit optimistic conflicts observed in `OptInitial`.
    pub num_conflicts: u32,
    /// Non-conflicting pessimistic transitions observed in `Pess`.
    pub pess_non_confl: u32,
    /// Conflicting pessimistic transitions observed in `Pess`.
    pub pess_confl: u32,
    /// Contended pessimistic transitions observed in `Pess`.
    pub pess_contended: u32,
    /// Current phase.
    pub phase: Phase,
}

#[inline(always)]
fn decode(w: u64) -> Profile {
    Profile {
        num_conflicts: ((w >> NC_SHIFT) & NC_MASK) as u32,
        pess_non_confl: ((w >> PNON_SHIFT) & PNON_MASK) as u32,
        pess_confl: ((w >> PCON_SHIFT) & PCON_MASK) as u32,
        pess_contended: ((w >> PCONT_SHIFT) & PCONT_MASK) as u32,
        phase: match (w >> PHASE_SHIFT) & PHASE_MASK {
            0 => Phase::OptInitial,
            1 => Phase::Pess,
            _ => Phase::OptFinal,
        },
    }
}

#[inline(always)]
fn encode(p: Profile) -> u64 {
    ((p.num_conflicts as u64).min(NC_MASK) << NC_SHIFT)
        | ((p.pess_non_confl as u64).min(PNON_MASK) << PNON_SHIFT)
        | ((p.pess_confl as u64).min(PCON_MASK) << PCON_SHIFT)
        | ((p.pess_contended as u64).min(PCONT_MASK) << PCONT_SHIFT)
        | ((p.phase as u64) << PHASE_SHIFT)
}

/// The one-way valve (`check-invariants` builds): the only phase changes the
/// policy may ever publish are `OptInitial → Pess` and `Pess → OptFinal`.
#[cfg(feature = "check-invariants")]
#[inline]
fn assert_legal_phase_step(from: Phase, to: Phase) {
    let legal = from == to
        || matches!(
            (from, to),
            (Phase::OptInitial, Phase::Pess) | (Phase::Pess, Phase::OptFinal)
        );
    assert!(legal, "adaptive valve violated: {from:?} → {to:?}");
}

#[inline(always)]
fn sat_inc(v: u32, mask: u64) -> u32 {
    if (v as u64) < mask {
        v + 1
    } else {
        v
    }
}

/// The adaptive policy: a stateless decision procedure over per-object
/// profile words.
///
/// ```
/// use std::sync::atomic::AtomicU64;
/// use drink_core::policy::{AdaptivePolicy, PolicyParams, Phase};
///
/// let policy = AdaptivePolicy::new(PolicyParams::default()); // Cutoff = 4
/// let profile = AtomicU64::new(0); // a fresh object's profile word
///
/// // Three explicit conflicts: stay optimistic. The fourth crosses the
/// // cutoff and elects this caller to move the object to pessimistic states.
/// assert!(!policy.on_explicit_conflict(&profile));
/// assert!(!policy.on_explicit_conflict(&profile));
/// assert!(!policy.on_explicit_conflict(&profile));
/// assert!(policy.on_explicit_conflict(&profile));
/// assert_eq!(AdaptivePolicy::profile(&profile).phase, Phase::Pess);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct AdaptivePolicy {
    /// Parameters (the paper's defaults unless overridden).
    pub params: PolicyParams,
}

impl AdaptivePolicy {
    /// Policy with explicit parameters.
    pub fn new(params: PolicyParams) -> Self {
        AdaptivePolicy { params }
    }

    /// Decode an object's profile word (diagnostics, Figure 6 harness).
    pub fn profile(word: &AtomicU64) -> Profile {
        decode(word.load(Ordering::Relaxed))
    }

    /// Record an explicit optimistic conflicting transition on `word`.
    /// Returns true iff the policy decides the object should move to
    /// pessimistic states now (the caller performs the state change). At most
    /// one caller ever receives `true` for a given object (phase CAS).
    ///
    /// This is the paper's inequality (4): `numConflicts ≥ Cutoff_confl`.
    pub fn on_explicit_conflict(&self, word: &AtomicU64) -> bool {
        let mut cur = word.load(Ordering::Relaxed);
        loop {
            let mut p = decode(cur);
            if p.phase != Phase::OptInitial {
                // Pess (already moved) or OptFinal (one-way valve): stop
                // counting; never move to pessimistic again.
                return false;
            }
            p.num_conflicts = sat_inc(p.num_conflicts, NC_MASK);
            let go_pess =
                self.params.cutoff_confl != u32::MAX && p.num_conflicts >= self.params.cutoff_confl;
            if go_pess {
                p.phase = Phase::Pess;
            }
            #[cfg(feature = "check-invariants")]
            assert_legal_phase_step(decode(cur).phase, p.phase);
            match word.compare_exchange_weak(cur, encode(p), Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return go_pess,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Record a pessimistic transition on `word`. `conflicting` categorizes
    /// the transition per the cost–benefit model; `contended` marks
    /// transitions that fell back to coordination (§7.5 extension).
    ///
    /// Returns true iff the policy decides the object should return to
    /// optimistic states at its next unlock — the paper's inequality (5):
    /// `N_nonConfl ≥ K_confl × N_confl + Inertia`.
    pub fn on_pess_transition(&self, word: &AtomicU64, conflicting: bool, contended: bool) -> bool {
        let mut cur = word.load(Ordering::Relaxed);
        loop {
            let mut p = decode(cur);
            if p.phase != Phase::Pess {
                return p.phase == Phase::OptFinal;
            }
            if conflicting {
                p.pess_confl = sat_inc(p.pess_confl, PCON_MASK);
            } else {
                p.pess_non_confl = sat_inc(p.pess_non_confl, PNON_MASK);
            }
            if contended {
                p.pess_contended = sat_inc(p.pess_contended, PCONT_MASK);
            }
            let to_opt = p.pess_non_confl as u64
                >= (self.params.k_confl as u64) * (p.pess_confl as u64)
                    + self.params.inertia as u64
                || (self.params.contended_cutoff != u32::MAX
                    && p.pess_contended >= self.params.contended_cutoff);
            if to_opt {
                p.phase = Phase::OptFinal;
            }
            #[cfg(feature = "check-invariants")]
            assert_legal_phase_step(decode(cur).phase, p.phase);
            match word.compare_exchange_weak(cur, encode(p), Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return to_opt,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Should an unlock (lock-buffer flush) move this object to optimistic
    /// states? (Figure 10(c): `AdaptivePolicy.toOpt(o)`.)
    #[inline]
    pub fn unlock_to_optimistic(&self, word: &AtomicU64) -> bool {
        decode(word.load(Ordering::Relaxed)).phase == Phase::OptFinal
    }

    /// Is this object *read-mostly* enough for the coordination-free seqlock
    /// read path (DESIGN.md §12)? Reuses the same per-object profile the
    /// valve maintains: an object that has crossed (or is near) the conflict
    /// cutoff is conflict-heavy, and one the valve has moved to pessimistic
    /// states must take the locking path for its dependence edges. Only a
    /// heuristic — the version validation, not this gate, is what keeps the
    /// seqlock path sound — so a stale read of the profile word is fine.
    #[inline]
    pub fn read_mostly(&self, word: &AtomicU64) -> bool {
        let p = decode(word.load(Ordering::Relaxed));
        match p.phase {
            // The valve holds the object in pessimistic states: reads must
            // take read locks there, not bypass them.
            Phase::Pess => false,
            // The valve concluded the conflict burst is over and returned the
            // object to optimistic states for good (it never re-enters Pess),
            // so the historical conflict count no longer disqualifies it.
            Phase::OptFinal => true,
            Phase::OptInitial => {
                self.params.cutoff_confl == u32::MAX
                    || p.num_conflicts < self.params.cutoff_confl
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word() -> AtomicU64 {
        AtomicU64::new(0)
    }

    #[test]
    fn fresh_profile_is_opt_initial() {
        let w = word();
        let p = AdaptivePolicy::profile(&w);
        assert_eq!(p.phase, Phase::OptInitial);
        assert_eq!(p.num_conflicts, 0);
    }

    #[test]
    fn cutoff_moves_object_to_pess_exactly_once() {
        let policy = AdaptivePolicy::default(); // cutoff 4
        let w = word();
        assert!(!policy.on_explicit_conflict(&w)); // 1
        assert!(!policy.on_explicit_conflict(&w)); // 2
        assert!(!policy.on_explicit_conflict(&w)); // 3
        assert!(policy.on_explicit_conflict(&w)); // 4 → Pess
        assert_eq!(AdaptivePolicy::profile(&w).phase, Phase::Pess);
        // Further conflicts (e.g. raced) never re-trigger.
        assert!(!policy.on_explicit_conflict(&w));
    }

    #[test]
    fn infinite_cutoff_never_goes_pess() {
        let policy = AdaptivePolicy::new(PolicyParams::infinite_cutoff());
        let w = word();
        for _ in 0..100_000 {
            assert!(!policy.on_explicit_conflict(&w));
        }
        assert_eq!(AdaptivePolicy::profile(&w).phase, Phase::OptInitial);
        // Saturation: the counter stops at its mask rather than wrapping.
        assert_eq!(AdaptivePolicy::profile(&w).num_conflicts, 0xFFFF);
    }

    fn drive_to_pess(policy: &AdaptivePolicy, w: &AtomicU64) {
        while AdaptivePolicy::profile(w).phase != Phase::Pess {
            policy.on_explicit_conflict(w);
        }
    }

    #[test]
    fn inequality_5_returns_object_to_optimistic() {
        let policy = AdaptivePolicy::new(PolicyParams {
            cutoff_confl: 1,
            k_confl: 10,
            inertia: 5,
            contended_cutoff: u32::MAX,
        });
        let w = word();
        drive_to_pess(&policy, &w);
        // One conflicting transition: threshold = 10*1 + 5 = 15 non-conflicting.
        assert!(!policy.on_pess_transition(&w, true, false));
        for i in 1..15 {
            assert!(
                !policy.on_pess_transition(&w, false, false),
                "flipped early at non-confl #{i}"
            );
        }
        assert!(policy.on_pess_transition(&w, false, false)); // #15 → OptFinal
        assert_eq!(AdaptivePolicy::profile(&w).phase, Phase::OptFinal);
        assert!(policy.unlock_to_optimistic(&w));
    }

    #[test]
    fn one_way_valve_blocks_second_trip_to_pess() {
        let policy = AdaptivePolicy::new(PolicyParams {
            cutoff_confl: 1,
            k_confl: 1,
            inertia: 1,
            contended_cutoff: u32::MAX,
        });
        let w = word();
        drive_to_pess(&policy, &w);
        // inertia 1, no conflicts: first non-conflicting transition flips back.
        assert!(policy.on_pess_transition(&w, false, false));
        assert_eq!(AdaptivePolicy::profile(&w).phase, Phase::OptFinal);
        // Conflicts after OptFinal never send it back to Pess.
        for _ in 0..1_000 {
            assert!(!policy.on_explicit_conflict(&w));
        }
        assert_eq!(AdaptivePolicy::profile(&w).phase, Phase::OptFinal);
        // Pessimistic profiling in OptFinal keeps reporting "unlock to opt".
        assert!(policy.on_pess_transition(&w, false, false));
    }

    #[test]
    fn contended_cutoff_extension_flips_racy_objects_back() {
        let policy = AdaptivePolicy::new(PolicyParams::default().with_contended_cutoff(3));
        let w = word();
        drive_to_pess(&policy, &w);
        assert!(!policy.on_pess_transition(&w, true, true)); // contended 1
        assert!(!policy.on_pess_transition(&w, true, true)); // contended 2
        assert!(policy.on_pess_transition(&w, true, true)); // contended 3 → OptFinal
        assert_eq!(AdaptivePolicy::profile(&w).phase, Phase::OptFinal);
    }

    #[test]
    fn paper_defaults_flip_to_pess_on_fourth_conflict() {
        // Pins §7.3's `Cutoff_confl = 4` end-to-end at the default params.
        let policy = AdaptivePolicy::default();
        let w = word();
        for i in 1..=3 {
            assert!(!policy.on_explicit_conflict(&w), "flipped early at conflict #{i}");
            assert_eq!(AdaptivePolicy::profile(&w).phase, Phase::OptInitial);
        }
        assert!(policy.on_explicit_conflict(&w), "4th conflict must flip");
        assert_eq!(AdaptivePolicy::profile(&w).phase, Phase::Pess);
    }

    #[test]
    fn paper_defaults_flip_back_exactly_at_inequality_5() {
        // With defaults (K_confl = 200, Inertia = 100) and zero conflicting
        // pessimistic transitions, the threshold is exactly Inertia = 100.
        let policy = AdaptivePolicy::default();
        let w = word();
        drive_to_pess(&policy, &w);
        for i in 1..100 {
            assert!(
                !policy.on_pess_transition(&w, false, false),
                "flipped early at non-confl #{i} (threshold is 100)"
            );
        }
        assert!(policy.on_pess_transition(&w, false, false), "#100 must flip");
        assert_eq!(AdaptivePolicy::profile(&w).phase, Phase::OptFinal);

        // With one conflicting transition first, the threshold moves to
        // 200 × 1 + 100 = 300.
        let w = word();
        drive_to_pess(&policy, &w);
        assert!(!policy.on_pess_transition(&w, true, false));
        for i in 1..300 {
            assert!(
                !policy.on_pess_transition(&w, false, false),
                "flipped early at non-confl #{i} (threshold is 300)"
            );
        }
        assert!(policy.on_pess_transition(&w, false, false), "#300 must flip");
        assert_eq!(AdaptivePolicy::profile(&w).phase, Phase::OptFinal);
    }

    #[test]
    fn paper_defaults_valve_never_reenters_pess() {
        let policy = AdaptivePolicy::default();
        let w = word();
        drive_to_pess(&policy, &w);
        for _ in 0..100 {
            policy.on_pess_transition(&w, false, false);
        }
        assert_eq!(AdaptivePolicy::profile(&w).phase, Phase::OptFinal);
        for _ in 0..1_000 {
            assert!(!policy.on_explicit_conflict(&w));
            assert!(policy.on_pess_transition(&w, true, true), "OptFinal keeps reporting to-opt");
        }
        assert_eq!(AdaptivePolicy::profile(&w).phase, Phase::OptFinal);
        assert!(policy.unlock_to_optimistic(&w));
    }

    #[test]
    fn read_mostly_tracks_the_valve_phases() {
        let policy = AdaptivePolicy::default(); // cutoff 4
        let w = word();
        assert!(policy.read_mostly(&w), "fresh objects are read-mostly");
        // Conflicts approaching the cutoff disqualify the object...
        for _ in 0..3 {
            policy.on_explicit_conflict(&w);
        }
        assert!(policy.read_mostly(&w), "below cutoff still qualifies");
        policy.on_explicit_conflict(&w); // 4th → Pess
        assert!(!policy.read_mostly(&w), "Pess phase must lock, not seqlock");
        // ...until the valve returns it to optimistic states.
        for _ in 0..100 {
            policy.on_pess_transition(&w, false, false);
        }
        assert_eq!(AdaptivePolicy::profile(&w).phase, Phase::OptFinal);
        assert!(policy.read_mostly(&w), "OptFinal is read-mostly again");
        // Infinite cutoff: conflicts never disqualify.
        let policy = AdaptivePolicy::new(PolicyParams::infinite_cutoff());
        let w = word();
        for _ in 0..10 {
            policy.on_explicit_conflict(&w);
        }
        assert!(policy.read_mostly(&w));
    }

    #[test]
    fn default_params_match_section_7_3() {
        let p = PolicyParams::default();
        assert_eq!(p.cutoff_confl, 4);
        assert_eq!(p.k_confl, 200);
        assert_eq!(p.inertia, 100);
        assert_eq!(p.contended_cutoff, u32::MAX);
    }

    #[test]
    fn concurrent_conflicts_elect_exactly_one_pess_mover() {
        use std::sync::atomic::AtomicUsize;
        let policy = AdaptivePolicy::default();
        let w = std::sync::Arc::new(word());
        let winners = std::sync::Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let w = w.clone();
                let winners = winners.clone();
                s.spawn(move || {
                    for _ in 0..1_000 {
                        if policy.on_explicit_conflict(&w) {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(winners.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn saturating_counters_never_wrap_into_other_fields() {
        let policy = AdaptivePolicy::new(PolicyParams {
            cutoff_confl: u32::MAX,
            k_confl: u32::MAX,
            inertia: u32::MAX,
            contended_cutoff: u32::MAX,
        });
        let w = word();
        // Drive to Pess manually to exercise pessimistic counters.
        w.store(encode(Profile {
            num_conflicts: 0,
            pess_non_confl: 0,
            pess_confl: 0,
            pess_contended: 0,
            phase: Phase::Pess,
        }), Ordering::Relaxed);
        for _ in 0..2_000_000 {
            policy.on_pess_transition(&w, false, false);
        }
        let p = AdaptivePolicy::profile(&w);
        assert_eq!(p.pess_non_confl as u64, PNON_MASK);
        assert_eq!(p.pess_confl, 0);
        assert_eq!(p.phase, Phase::Pess);
    }
}
