//! Per-thread tracking state: lock buffer, read set, rdShCount, statistics.
//!
//! Hybrid tracking keeps three pieces of thread-private state (§3.2,
//! Appendix B):
//!
//! * the **lock buffer**: every pessimistic object whose state this thread
//!   has locked, flushed (unlocked) at PSROs and responding safe points;
//! * the **read set** `T.rdSet`: objects this thread has read-locked, used to
//!   make repeated reads of `RdShRLock` objects reentrant (atomic-op-free);
//!   cleared whenever the lock buffer is flushed;
//! * `T.rdShCount`: Octet's per-thread high-water mark over the global RdSh
//!   counter, deciding whether a RdSh read needs a fence transition.
//!
//! All of this state is accessed **only by the owning thread** — flushing is
//! always performed by the owner (remote threads *request* a flush via
//! coordination; they never reach into another thread's buffers). The
//! [`OwnedByThread`] wrapper encodes that invariant: it is `Sync` so engines
//! can hold a slot per thread in a shared table, but access is checked (in
//! debug builds) to come from the thread that first claimed the slot.

use std::cell::UnsafeCell;
use std::collections::HashSet;

use drink_runtime::{LocalStats, ObjId, ThreadId};

/// A cell that is shared between threads structurally but owned by exactly
/// one thread dynamically.
///
/// # Safety contract
///
/// Slot `t` in an engine's per-thread table may only be accessed from the OS
/// thread that attached as mutator `t`. Engines uphold this because every
/// access path (`Session` methods, `RtHooks` callbacks, coordination respond
/// loops) executes on the mutator thread itself; remote threads communicate
/// exclusively through `ThreadControl` and object state words.
///
/// Debug builds verify the contract by recording the first accessor's
/// `std::thread::ThreadId` and asserting on every subsequent access.
pub struct OwnedByThread<T> {
    inner: UnsafeCell<T>,
    #[cfg(debug_assertions)]
    owner: parking_lot::Mutex<Option<std::thread::ThreadId>>,
}

// SAFETY: access is confined to one thread per the contract above; `T: Send`
// makes moving the value's ownership to that thread sound.
unsafe impl<T: Send> Sync for OwnedByThread<T> {}

impl<T> OwnedByThread<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        OwnedByThread {
            inner: UnsafeCell::new(value),
            #[cfg(debug_assertions)]
            owner: parking_lot::Mutex::new(None),
        }
    }

    /// Access the value.
    ///
    /// # Safety
    ///
    /// The caller must be the owning mutator thread (see the type-level
    /// contract). The returned reference must not outlive the current
    /// mutator operation (callers never store it).
    #[allow(clippy::mut_from_ref)]
    #[inline(always)]
    pub unsafe fn get(&self) -> &mut T {
        #[cfg(debug_assertions)]
        {
            let me = std::thread::current().id();
            let mut owner = self.owner.lock();
            match *owner {
                None => *owner = Some(me),
                Some(o) => assert_eq!(
                    o, me,
                    "OwnedByThread accessed from a foreign thread — engine bug"
                ),
            }
        }
        // SAFETY: forwarded to the caller's obligation.
        unsafe { &mut *self.inner.get() }
    }

    /// Reset the debug-mode owner (used when a slot is re-used by a new
    /// mutator in a subsequent run on the same engine).
    pub fn reset_owner(&self) {
        #[cfg(debug_assertions)]
        {
            *self.owner.lock() = None;
        }
    }
}

/// The thread-private state of one mutator under any tracking engine.
pub struct ThreadState {
    /// This mutator's id.
    pub tid: ThreadId,
    /// Octet's `T.rdShCount`: the largest RdSh counter value this thread has
    /// fenced against.
    pub rd_sh_count: u64,
    /// Pessimistic objects whose states this thread currently holds locked.
    pub lock_buffer: Vec<ObjId>,
    /// Objects this thread has read-locked (`T.rdSet`), for reentrancy.
    pub rd_set: HashSet<u32>,
    /// Deterministic position counter: incremented once per program
    /// operation (access or synchronization op). Recorders pin happens-before
    /// sources and sinks to these positions.
    pub op_index: u64,
    /// Scratch buffer for happens-before sources, reused across transitions
    /// to keep the hot path allocation-free.
    pub src_scratch: Vec<(ThreadId, u64)>,
    /// This thread's event counters, merged into the runtime's global stats
    /// when the mutator detaches.
    pub stats: LocalStats,
}

impl ThreadState {
    /// Fresh state for mutator `tid`.
    pub fn new(tid: ThreadId) -> Self {
        ThreadState {
            tid,
            rd_sh_count: 0,
            lock_buffer: Vec::with_capacity(64),
            rd_set: HashSet::with_capacity(64),
            op_index: 0,
            src_scratch: Vec::with_capacity(8),
            stats: LocalStats::new(),
        }
    }

    /// True if this thread holds no pessimistic locks (invariant at blocking
    /// safe points: the buffer is always flushed before blocking).
    pub fn holds_no_locks(&self) -> bool {
        self.lock_buffer.is_empty() && self.rd_set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_by_thread_allows_owner_access() {
        let slot = OwnedByThread::new(5u32);
        unsafe {
            *slot.get() += 1;
            assert_eq!(*slot.get(), 6);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    fn owned_by_thread_detects_foreign_access() {
        let slot = std::sync::Arc::new(OwnedByThread::new(0u32));
        unsafe {
            slot.get();
        }
        let slot2 = slot.clone();
        let result = std::thread::spawn(move || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                slot2.get();
            }))
        })
        .join()
        .unwrap();
        assert!(result.is_err(), "foreign access must panic in debug builds");
    }

    #[test]
    fn reset_owner_allows_reattachment() {
        let slot = std::sync::Arc::new(OwnedByThread::new(0u32));
        unsafe {
            slot.get();
        }
        slot.reset_owner();
        let slot2 = slot.clone();
        std::thread::spawn(move || unsafe {
            *slot2.get() = 9;
        })
        .join()
        .unwrap();
        slot.reset_owner();
        unsafe {
            assert_eq!(*slot.get(), 9);
        }
    }

    #[test]
    fn fresh_thread_state_holds_no_locks() {
        let ts = ThreadState::new(ThreadId(3));
        assert!(ts.holds_no_locks());
        assert_eq!(ts.rd_sh_count, 0);
        assert_eq!(ts.op_index, 0);
    }
}
