//! Per-thread tracking state: lock buffer, read set, rdShCount, statistics.
//!
//! Hybrid tracking keeps three pieces of thread-private state (§3.2,
//! Appendix B):
//!
//! * the **lock buffer**: every pessimistic object whose state this thread
//!   has locked, flushed (unlocked) at PSROs and responding safe points;
//! * the **read set** `T.rdSet`: objects this thread has read-locked, used to
//!   make repeated reads of `RdShRLock` objects reentrant (atomic-op-free);
//!   cleared whenever the lock buffer is flushed;
//! * `T.rdShCount`: Octet's per-thread high-water mark over the global RdSh
//!   counter, deciding whether a RdSh read needs a fence transition.
//!
//! All of this state is accessed **only by the owning thread** — flushing is
//! always performed by the owner (remote threads *request* a flush via
//! coordination; they never reach into another thread's buffers). The
//! [`OwnedByThread`] wrapper encodes that invariant: it is `Sync` so engines
//! can hold a slot per thread in a shared table, but access is checked (in
//! debug builds) to come from the thread that first claimed the slot.

use std::cell::UnsafeCell;

use drink_runtime::{LocalStats, ObjId, ThreadId};

/// A dense bitmap over `ObjId`s with an O(1) element count.
///
/// `ObjId`s are dense indices into a fixed-size heap, so per-thread object
/// sets (the read set, lock-buffer membership) don't need hashing: membership
/// is one shift+mask into a bitmap sized to the heap. Compared to the
/// `HashSet<u32>` it replaces, `contains` on the reentrancy fast path is a
/// single indexed load with no SipHash.
///
/// The set count is tracked so `is_empty`/`len` are O(1); clearing is done
/// by the owner removing exactly the ids it inserted (O(inserted), not
/// O(heap)).
#[derive(Debug, Default)]
pub struct DenseObjSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseObjSet {
    /// An empty set sized for ids `0..capacity_objects`. Inserting beyond
    /// the capacity grows the bitmap (ids are heap indices, so this only
    /// happens if a workload outgrows its declared heap).
    pub fn with_capacity(capacity_objects: usize) -> Self {
        DenseObjSet {
            words: vec![0; capacity_objects.div_ceil(64)],
            len: 0,
        }
    }

    #[inline(always)]
    fn split(id: u32) -> (usize, u64) {
        ((id as usize) >> 6, 1u64 << (id & 63))
    }

    /// O(1) membership test; ids beyond capacity are simply absent.
    #[inline(always)]
    pub fn contains(&self, id: u32) -> bool {
        let (w, bit) = Self::split(id);
        match self.words.get(w) {
            Some(word) => word & bit != 0,
            None => false,
        }
    }

    /// Insert `id`; returns true if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        let (w, bit) = Self::split(id);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let word = &mut self.words[w];
        let fresh = *word & bit == 0;
        *word |= bit;
        self.len += usize::from(fresh);
        fresh
    }

    /// Remove `id`; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, id: u32) -> bool {
        let (w, bit) = Self::split(id);
        match self.words.get_mut(w) {
            Some(word) if *word & bit != 0 => {
                *word &= !bit;
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Number of ids in the set (O(1)).
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no ids are set (O(1)).
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every id (O(capacity); prefer per-id `remove` on hot paths).
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Bitmask of the shards (per `map`, the same [`drink_runtime::ShardMap`]
    /// the registry / epoch table / adapt controller share) that contain at
    /// least one id in this set. Shards beyond 64 fold into bit 63, matching
    /// `Heap::stamp_snapshot`'s convention. Lets check-invariants oracles ask
    /// "does this thread's touched-object footprint agree with the demotion
    /// and skip decisions?" against one mapping function.
    pub fn shards_touched(&self, map: drink_runtime::ShardMap) -> u64 {
        let mut mask = 0u64;
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                mask |= 1u64 << map.shard_of(w * 64 + b).min(63);
            }
        }
        mask
    }

    /// Is every id in `self` also in `other`? Word-wise `a & !b == 0`, so
    /// O(capacity/64) — cheap enough for `check-invariants` hot paths.
    pub fn is_subset_of(&self, other: &DenseObjSet) -> bool {
        if self.len > other.len {
            return false;
        }
        self.words.iter().enumerate().all(|(i, &a)| {
            a & !other.words.get(i).copied().unwrap_or(0) == 0
        })
    }
}

/// A cell that is shared between threads structurally but owned by exactly
/// one thread dynamically.
///
/// # Safety contract
///
/// Slot `t` in an engine's per-thread table may only be accessed from the OS
/// thread that attached as mutator `t`. Engines uphold this because every
/// access path (`Session` methods, `RtHooks` callbacks, coordination respond
/// loops) executes on the mutator thread itself; remote threads communicate
/// exclusively through `ThreadControl` and object state words.
///
/// Debug builds verify the contract by recording the first accessor's
/// `std::thread::ThreadId` and asserting on every subsequent access.
pub struct OwnedByThread<T> {
    inner: UnsafeCell<T>,
    #[cfg(debug_assertions)]
    owner: parking_lot::Mutex<Option<std::thread::ThreadId>>,
}

// SAFETY: access is confined to one thread per the contract above; `T: Send`
// makes moving the value's ownership to that thread sound.
unsafe impl<T: Send> Sync for OwnedByThread<T> {}

impl<T> OwnedByThread<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        OwnedByThread {
            inner: UnsafeCell::new(value),
            #[cfg(debug_assertions)]
            owner: parking_lot::Mutex::new(None),
        }
    }

    /// Access the value.
    ///
    /// # Safety
    ///
    /// The caller must be the owning mutator thread (see the type-level
    /// contract). The returned reference must not outlive the current
    /// mutator operation (callers never store it).
    #[allow(clippy::mut_from_ref)]
    #[inline(always)]
    pub unsafe fn get(&self) -> &mut T {
        #[cfg(debug_assertions)]
        {
            let me = std::thread::current().id();
            let mut owner = self.owner.lock();
            match *owner {
                None => *owner = Some(me),
                Some(o) => assert_eq!(
                    o, me,
                    "OwnedByThread accessed from a foreign thread — engine bug"
                ),
            }
        }
        // SAFETY: forwarded to the caller's obligation.
        unsafe { &mut *self.inner.get() }
    }

    /// Reset the debug-mode owner (used when a slot is re-used by a new
    /// mutator in a subsequent run on the same engine).
    pub fn reset_owner(&self) {
        #[cfg(debug_assertions)]
        {
            *self.owner.lock() = None;
        }
    }
}

/// The thread-private state of one mutator under any tracking engine.
pub struct ThreadState {
    /// This mutator's id.
    pub tid: ThreadId,
    /// Octet's `T.rdShCount`: the largest RdSh counter value this thread has
    /// fenced against.
    pub rd_sh_count: u64,
    /// Pessimistic objects whose states this thread currently holds locked,
    /// in acquisition order (flush order matters to runtime support).
    pub lock_buffer: Vec<ObjId>,
    /// Membership bitmap mirroring `lock_buffer`, so "do I hold this
    /// object?" never scans the Vec. Maintained by
    /// [`ThreadState::push_lock`]/[`ThreadState::remove_lock`] and cleared
    /// entry-by-entry at flush.
    pub locked: DenseObjSet,
    /// Objects this thread has read-locked (`T.rdSet`), for reentrancy.
    /// A subset of `locked`.
    pub rd_set: DenseObjSet,
    /// Deterministic position counter: incremented once per program
    /// operation (access or synchronization op). Recorders pin happens-before
    /// sources and sinks to these positions.
    pub op_index: u64,
    /// Scratch buffer for happens-before sources, reused across transitions
    /// to keep the hot path allocation-free.
    pub src_scratch: Vec<(ThreadId, u64)>,
    /// Scratch for [`crate::coord::coordinate_many`]'s outstanding-peer set,
    /// reused across RdSh conflicts (like the lock buffer, it lives for the
    /// session) so a fan-out never allocates per conflict.
    pub fanout_scratch: Vec<crate::coord::PendingPeer>,
    /// Scratch for the responder side: requests drained at a responding safe
    /// point land here (via `ThreadControl::drain_requests_into`) instead of
    /// a fresh `Vec` per response.
    pub req_scratch: Vec<drink_runtime::CoordRequest>,
    /// Scratch for the objects named by a drained request batch.
    pub obj_scratch: Vec<ObjId>,
    /// This thread's event counters, merged into the runtime's global stats
    /// when the mutator detaches.
    pub stats: LocalStats,
}

impl ThreadState {
    /// Fresh state for mutator `tid`, with object sets sized to the heap.
    pub fn new(tid: ThreadId, heap_objects: usize) -> Self {
        ThreadState {
            tid,
            rd_sh_count: 0,
            lock_buffer: Vec::with_capacity(64),
            locked: DenseObjSet::with_capacity(heap_objects),
            rd_set: DenseObjSet::with_capacity(heap_objects),
            op_index: 0,
            src_scratch: Vec::with_capacity(8),
            fanout_scratch: Vec::with_capacity(8),
            req_scratch: Vec::with_capacity(8),
            obj_scratch: Vec::with_capacity(8),
            stats: LocalStats::new(),
        }
    }

    /// Record that this thread locked `o`'s state: one buffer push plus one
    /// bitmap bit.
    #[inline(always)]
    pub fn push_lock(&mut self, o: ObjId) {
        self.lock_buffer.push(o);
        self.locked.insert(o.0);
    }

    /// [`ThreadState::push_lock`] for a read lock: also enters `o` into the
    /// read set that makes repeated reads reentrant.
    #[inline(always)]
    pub fn push_read_lock(&mut self, o: ObjId) {
        self.lock_buffer.push(o);
        self.locked.insert(o.0);
        self.rd_set.insert(o.0);
    }

    /// Drop `o` from the lock buffer if present (eager-unlock ablation
    /// path). The bitmap check makes the common "nothing to pop" case O(1);
    /// the Vec scan only runs when the entry exists, and the buffer holds at
    /// most a handful of entries under eager unlocking.
    pub fn remove_lock(&mut self, o: ObjId) -> bool {
        if !self.locked.remove(o.0) {
            return false;
        }
        let pos = self
            .lock_buffer
            .iter()
            .rposition(|&x| x == o)
            .expect("locked bitmap said present but lock_buffer has no entry");
        self.lock_buffer.swap_remove(pos);
        true
    }

    /// True if this thread holds no pessimistic locks (invariant at blocking
    /// safe points: the buffer is always flushed before blocking).
    pub fn holds_no_locks(&self) -> bool {
        self.lock_buffer.is_empty() && self.rd_set.is_empty() && self.locked.is_empty()
    }

    /// The containment chain the lock bookkeeping must maintain at all
    /// times: `rd_set ⊆ locked ⊆ lock_buffer` (the bitmap mirrors the Vec,
    /// which may hold duplicates for reentrant RdSh read locks, hence `≤` on
    /// the counts). Compiled into the mutation paths by `check-invariants`.
    pub fn check_set_invariants(&self) {
        assert!(
            self.rd_set.is_subset_of(&self.locked),
            "T{} rd_set ⊄ locked",
            self.tid.raw()
        );
        assert!(
            self.locked.len() <= self.lock_buffer.len(),
            "T{} locked bitmap ({}) larger than lock_buffer ({})",
            self.tid.raw(),
            self.locked.len(),
            self.lock_buffer.len()
        );
        assert!(
            self.lock_buffer.iter().all(|o| self.locked.contains(o.0)),
            "T{} lock_buffer entry missing from locked bitmap",
            self.tid.raw()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_by_thread_allows_owner_access() {
        let slot = OwnedByThread::new(5u32);
        unsafe {
            *slot.get() += 1;
            assert_eq!(*slot.get(), 6);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    fn owned_by_thread_detects_foreign_access() {
        let slot = std::sync::Arc::new(OwnedByThread::new(0u32));
        unsafe {
            slot.get();
        }
        let slot2 = slot.clone();
        let result = std::thread::spawn(move || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                slot2.get();
            }))
        })
        .join()
        .unwrap();
        assert!(result.is_err(), "foreign access must panic in debug builds");
    }

    #[test]
    fn reset_owner_allows_reattachment() {
        let slot = std::sync::Arc::new(OwnedByThread::new(0u32));
        unsafe {
            slot.get();
        }
        slot.reset_owner();
        let slot2 = slot.clone();
        std::thread::spawn(move || unsafe {
            *slot2.get() = 9;
        })
        .join()
        .unwrap();
        slot.reset_owner();
        unsafe {
            assert_eq!(*slot.get(), 9);
        }
    }

    #[test]
    fn fresh_thread_state_holds_no_locks() {
        let ts = ThreadState::new(ThreadId(3), 64);
        assert!(ts.holds_no_locks());
        assert_eq!(ts.rd_sh_count, 0);
        assert_eq!(ts.op_index, 0);
    }

    #[test]
    fn dense_obj_set_basics() {
        let mut s = DenseObjSet::with_capacity(100);
        assert!(s.is_empty());
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(99));
        assert!(!s.insert(63), "double insert is not fresh");
        assert_eq!(s.len(), 4);
        assert!(s.contains(64) && s.contains(99));
        assert!(!s.contains(65));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.len(), 3);
        s.clear();
        assert!(s.is_empty() && !s.contains(0));
    }

    #[test]
    fn dense_obj_set_grows_beyond_capacity() {
        let mut s = DenseObjSet::with_capacity(4);
        assert!(!s.contains(1000));
        assert!(s.insert(1000));
        assert!(s.contains(1000));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn shards_touched_agrees_with_shard_map() {
        use drink_runtime::ShardMap;
        let map = ShardMap::new(4);
        let mut s = DenseObjSet::with_capacity(256);
        assert_eq!(s.shards_touched(map), 0);
        for id in [0u32, 4, 64, 200] {
            s.insert(id);
        }
        // All those ids are ≡ 0 (mod 4) → shard 0 only.
        assert_eq!(s.shards_touched(map), 0b0001);
        s.insert(7); // shard 3
        s.insert(65); // shard 1
        assert_eq!(s.shards_touched(map), 0b1011);
        // Agreement with the mapping function, bit by bit.
        for id in [0u32, 4, 7, 64, 65, 200] {
            assert_ne!(s.shards_touched(map) & (1 << map.shard_of(id as usize)), 0);
        }
        // One shard (shards==1) folds everything into bit 0.
        assert_eq!(s.shards_touched(ShardMap::new(1)), 1);
    }

    #[test]
    fn subset_test_handles_unequal_capacities() {
        let mut small = DenseObjSet::with_capacity(4);
        let mut big = DenseObjSet::with_capacity(256);
        assert!(small.is_subset_of(&big), "empty ⊆ empty");
        small.insert(2);
        assert!(!small.is_subset_of(&big));
        big.insert(2);
        big.insert(200);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small), "id beyond small's capacity");
        small.insert(200);
        assert!(big.is_subset_of(&small), "grown past declared capacity");
    }

    #[test]
    fn set_invariants_hold_through_lock_lifecycle() {
        let mut ts = ThreadState::new(ThreadId(1), 32);
        ts.check_set_invariants();
        ts.push_lock(ObjId(3));
        ts.push_read_lock(ObjId(7));
        ts.push_read_lock(ObjId(7)); // reentrant: Vec dup, bitmap unchanged
        ts.check_set_invariants();
        ts.remove_lock(ObjId(3));
        ts.check_set_invariants();
    }

    #[test]
    #[should_panic(expected = "rd_set ⊄ locked")]
    fn set_invariants_catch_rd_set_escape() {
        let mut ts = ThreadState::new(ThreadId(1), 32);
        ts.rd_set.insert(5);
        ts.check_set_invariants();
    }

    #[test]
    fn push_and_remove_lock_keep_bitmap_in_sync() {
        let mut ts = ThreadState::new(ThreadId(0), 32);
        ts.push_lock(ObjId(3));
        ts.push_read_lock(ObjId(7));
        assert!(ts.locked.contains(3) && ts.locked.contains(7));
        assert!(!ts.rd_set.contains(3) && ts.rd_set.contains(7));
        assert!(!ts.holds_no_locks());
        assert!(ts.remove_lock(ObjId(3)));
        assert!(!ts.remove_lock(ObjId(3)), "second removal is a no-op");
        assert!(!ts.locked.contains(3));
        assert_eq!(ts.lock_buffer, vec![ObjId(7)]);
    }
}
