//! Online opt→pess demotion controller (DESIGN.md §13).
//!
//! The §6 adaptive policy is a *one-way valve*: once an object's conflict
//! count crosses `Cutoff_confl` it goes pessimistic, and once inequality (5)
//! sends it back it stays optimistic forever. That is the right shape for the
//! paper's steady-state benchmarks, but it degrades badly when contention is
//! *phased*: a burst of cross-thread conflicts early in a run permanently
//! wires the policy one way, and an object that only becomes hot late never
//! demotes at all under the ∞-cutoff configurations (plain Octet, "hybrid w/
//! infinite cutoff").
//!
//! [`AdaptController`] is the reversible companion: it tracks an EWMA of the
//! observed *coordination cost* per object shard and demotes an object from
//! optimistic to pessimistic states when roundtrips get expensive, re-promoting
//! after a cooldown once the cost signal decays. It never touches the §6
//! phase machine (the one-way valve stays intact — see
//! [`crate::policy::Phase`]); instead it is a separate overlay consulted by
//! the engines at the two decision points the valve owns:
//!
//! * **conflict time**: a demoted object's conflicting transition installs a
//!   pessimistic (locked) state instead of an optimistic one;
//! * **unlock time** (lock-buffer flush): a demoted object stays in
//!   pessimistic states; a promoted one transfers back to optimistic states.
//!
//! ## Cost signal
//!
//! Three kinds of samples feed each shard's EWMA:
//!
//! * a measured coordination roundtrip/fan-out, in nanoseconds
//!   ([`AdaptController::record_coord`]) — the real price of optimism under
//!   conflicts;
//! * a *conflicting* pessimistic transition
//!   ([`AdaptController::record_pess`] with `conflicting = true`), sampled at
//!   [`AdaptConfig::conflict_proxy_ns`]: the ownership is still bouncing
//!   between threads, so promoting would bring the roundtrips right back;
//! * a *non-conflicting* pessimistic transition, sampled at
//!   [`AdaptConfig::pess_sample_ns`]: cheap, decays the EWMA toward
//!   promotion.
//!
//! Demotion fires when the EWMA crosses [`AdaptConfig::demote_ns`] from
//! below; promotion when it falls under [`AdaptConfig::promote_ns`]. The two
//! thresholds form a hysteresis band, and every transition (in either
//! direction) resets the shard's sample counter: no further transition can
//! fire until [`AdaptConfig::cooldown`] more samples arrive. One exception
//! cuts through the cooldown: a *single* roundtrip at or above
//! [`AdaptConfig::demote_now_ns`] (a scheduler-quantum stall, ~20× the
//! demotion threshold) demotes immediately — waiting for `cooldown` more
//! samples of evidence would mean eating `cooldown` more quanta. Promotions
//! are never exempt, so a full demote→promote cycle still spans at least one
//! cooldown window — see the proptests at the bottom, which assert both
//! bounds for *any* input sequence.
//!
//! A coordination-deadline expiry bypasses the EWMA entirely
//! ([`AdaptController::force_demote`]): a responder so slow that the deadline
//! fired is exactly the situation pessimistic states exist for, and waiting
//! for `cooldown` samples of evidence would mean `cooldown` more expired
//! deadlines.
//!
//! ## Memory ordering
//!
//! The demotion flag only *steers* which of two independently-correct
//! protocols an access takes; it never guards data. A reader that sees a
//! stale flag value takes the other protocol, which is equally sound — the
//! flag is a performance hint with correctness-irrelevant staleness. Relaxed
//! loads would therefore suffice; the flag still uses Acquire/Release so that
//! a demotion's *cause* (the EWMA value and sample count that triggered it)
//! is visible to whoever observes the demotion, keeping diagnostics coherent.
//! EWMA updates are Relaxed read-modify-write races by design: a lost update
//! under contention skews the estimate by one sample, nothing more.

use std::sync::atomic::{AtomicU64, Ordering};

use drink_runtime::{CachePadded, ShardMap};

/// Tuning parameters of the demotion controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AdaptConfig {
    /// Number of object shards (rounded up to a power of two; `0` = auto:
    /// one shard per heap object, capped at 4096). Objects hash to shards by
    /// id, so unrelated objects may share a demotion decision when the heap
    /// outgrows the shard table — acceptable: the decision is a hint.
    pub shards: usize,
    /// Demote when the coordination-cost EWMA reaches this many nanoseconds.
    pub demote_ns: u64,
    /// Promote when the EWMA falls to this many nanoseconds. Must be below
    /// `demote_ns` (the hysteresis band).
    pub promote_ns: u64,
    /// Samples that must accumulate on a shard after a transition (and after
    /// startup) before the next transition may fire. This gates the *first*
    /// demotion too: an object needs `cooldown` samples of evidence before
    /// the controller overrides the default.
    pub cooldown: u64,
    /// EWMA weight as a right-shift: `alpha = 1 / 2^alpha_shift`.
    pub alpha_shift: u32,
    /// Cost charged for a conflicting pessimistic transition (the ownership
    /// bounce that *would* have been a roundtrip under optimism). Keeping it
    /// at or above `demote_ns` makes demotion sticky while cross-thread
    /// traffic continues.
    pub conflict_proxy_ns: u64,
    /// Cost charged for a non-conflicting pessimistic transition. Keeping it
    /// below `promote_ns` lets a quiet object's EWMA decay to promotion.
    pub pess_sample_ns: u64,
    /// Catastrophic single-sample demotion threshold: one measured
    /// coordination roundtrip at or above this cost demotes the shard
    /// immediately, bypassing the cooldown. A roundtrip this expensive is a
    /// scheduler-quantum stall (the responder was not running), and waiting
    /// for `cooldown` more samples of evidence means eating `cooldown` more
    /// quanta — the same reasoning as the deadline's
    /// [`AdaptController::force_demote`], triggered by measurement instead of
    /// expiry. `u64::MAX` disables the path (pure-EWMA mode).
    pub demote_now_ns: u64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            shards: 0,
            demote_ns: 5_000,
            promote_ns: 1_000,
            cooldown: 64,
            alpha_shift: 2,
            conflict_proxy_ns: 8_000,
            pess_sample_ns: 200,
            demote_now_ns: 100_000,
        }
    }
}

/// A state transition the controller decided on while absorbing a sample.
/// The caller bumps the matching [`drink_runtime::Event`] and trace record —
/// the controller itself has no runtime handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdaptEvent {
    /// The shard crossed the demotion threshold: conflicting transitions on
    /// its objects now install pessimistic states, and flushes keep them
    /// there.
    Demoted,
    /// The shard's cost signal decayed below the promotion threshold:
    /// flushes return its objects to optimistic states.
    Promoted,
}

/// One shard's controller state. `demoted` is the steering flag (bit 0);
/// `ewma_ns` and `samples` are the evidence behind it.
#[derive(Debug, Default)]
struct Shard {
    ewma_ns: AtomicU64,
    /// Samples absorbed since the last transition (reset on demote/promote).
    samples: AtomicU64,
    demoted: AtomicU64,
}

/// The online demotion controller. One instance per engine; all methods are
/// callable from any mutator thread.
#[derive(Debug)]
pub struct AdaptController {
    cfg: AdaptConfig,
    shards: Box<[CachePadded<Shard>]>,
    /// The object-id → shard mapping. The same [`ShardMap`] type (and
    /// therefore the same mapping function) the registry and the heap's
    /// access-epoch table use, so skip decisions (thread-sharded) and
    /// demotion decisions (object-sharded) are computed from one mapping,
    /// not two that can drift.
    map: ShardMap,
    demotions: AtomicU64,
    promotions: AtomicU64,
}

impl AdaptController {
    /// Build a controller for a heap of `heap_objects` objects.
    pub fn new(cfg: AdaptConfig, heap_objects: usize) -> Self {
        assert!(
            cfg.promote_ns < cfg.demote_ns,
            "hysteresis band inverted: promote_ns {} >= demote_ns {}",
            cfg.promote_ns,
            cfg.demote_ns
        );
        assert!(cfg.cooldown >= 1, "cooldown must be at least one sample");
        let n = if cfg.shards == 0 {
            heap_objects.clamp(1, 4096)
        } else {
            cfg.shards
        };
        let map = ShardMap::new(n);
        let shards = (0..map.shards())
            .map(|_| CachePadded::new(Shard::default()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        AdaptController {
            cfg,
            shards,
            map,
            demotions: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
        }
    }

    /// This controller's configuration.
    pub fn config(&self) -> &AdaptConfig {
        &self.cfg
    }

    /// The object-id → shard mapping this controller steers by.
    pub fn shard_map(&self) -> ShardMap {
        self.map
    }

    #[inline(always)]
    fn shard(&self, obj: u32) -> &Shard {
        &self.shards[self.map.shard_of(obj as usize)]
    }

    /// Is `obj`'s shard currently demoted? The engines' steering load — one
    /// Acquire read on the slow paths only (conflicts and flushes).
    #[inline]
    pub fn is_demoted(&self, obj: u32) -> bool {
        self.shard(obj).demoted.load(Ordering::Acquire) & 1 == 1
    }

    /// Absorb a measured coordination cost (a roundtrip or fan-out that took
    /// `ns` nanoseconds) for `obj`.
    #[inline]
    pub fn record_coord(&self, obj: u32, ns: u64) -> Option<AdaptEvent> {
        self.record(obj, ns)
    }

    /// Absorb a pessimistic transition on `obj`: conflicting transitions are
    /// charged [`AdaptConfig::conflict_proxy_ns`] (the roundtrip they stand
    /// in for), non-conflicting ones [`AdaptConfig::pess_sample_ns`]. No
    /// clock read — this runs on the pessimistic CAS path.
    #[inline]
    pub fn record_pess(&self, obj: u32, conflicting: bool) -> Option<AdaptEvent> {
        let ns = if conflicting {
            self.cfg.conflict_proxy_ns
        } else {
            self.cfg.pess_sample_ns
        };
        self.record(obj, ns)
    }

    fn record(&self, obj: u32, ns: u64) -> Option<AdaptEvent> {
        let s = self.shard(obj);
        // Racy EWMA: a concurrent writer may clobber one sample's worth of
        // signal, which is fine for a hint (see module docs).
        let prev = s.ewma_ns.load(Ordering::Relaxed);
        let next = if prev == 0 {
            ns
        } else {
            prev - (prev >> self.cfg.alpha_shift) + (ns >> self.cfg.alpha_shift)
        };
        s.ewma_ns.store(next.max(1), Ordering::Relaxed);
        let n = s.samples.fetch_add(1, Ordering::Relaxed) + 1;
        let demoted = s.demoted.load(Ordering::Relaxed) & 1 == 1;
        // Catastrophic sample: demote on this single measurement, cooldown
        // notwithstanding (see `AdaptConfig::demote_now_ns`). The EWMA is
        // stamped to at least the demotion threshold so re-promotion needs a
        // full cooldown of genuinely cheap traffic, exactly like a
        // deadline-forced demotion.
        if !demoted && ns >= self.cfg.demote_now_ns {
            s.ewma_ns
                .store(next.max(self.cfg.demote_ns), Ordering::Relaxed);
            return self.transition(s, 0, 1).then(|| {
                self.demotions.fetch_add(1, Ordering::Relaxed);
                AdaptEvent::Demoted
            });
        }
        if n < self.cfg.cooldown {
            return None;
        }
        if !demoted && next >= self.cfg.demote_ns {
            self.transition(s, 0, 1).then(|| {
                self.demotions.fetch_add(1, Ordering::Relaxed);
                AdaptEvent::Demoted
            })
        } else if demoted && next <= self.cfg.promote_ns {
            self.transition(s, 1, 0).then(|| {
                self.promotions.fetch_add(1, Ordering::Relaxed);
                AdaptEvent::Promoted
            })
        } else {
            None
        }
    }

    /// CAS the steering flag `from → to`; exactly one racing caller wins and
    /// resets the cooldown window. Release so the EWMA/sample evidence
    /// written above is visible to any Acquire reader of the new flag value.
    fn transition(&self, s: &Shard, from: u64, to: u64) -> bool {
        if s.demoted
            .compare_exchange(from, to, Ordering::Release, Ordering::Relaxed)
            .is_ok()
        {
            s.samples.store(0, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Demote `obj`'s shard immediately, bypassing the EWMA and the cooldown:
    /// a coordination deadline expired, which is direct evidence that
    /// optimistic roundtrips on this object are not being answered. The EWMA
    /// is stamped to at least the demotion threshold so the subsequent
    /// promotion needs `cooldown` samples of genuinely cheap traffic.
    /// Returns true iff this call performed the demotion (it was not already
    /// demoted).
    pub fn force_demote(&self, obj: u32) -> bool {
        let s = self.shard(obj);
        let prev = s.ewma_ns.load(Ordering::Relaxed);
        s.ewma_ns.store(prev.max(self.cfg.demote_ns), Ordering::Relaxed);
        if s.demoted.swap(1, Ordering::AcqRel) & 1 == 0 {
            s.samples.store(0, Ordering::Relaxed);
            self.demotions.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Total demotions performed (EWMA-driven and forced).
    pub fn demotions(&self) -> u64 {
        self.demotions.load(Ordering::Relaxed)
    }

    /// Total promotions performed.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }

    /// Current EWMA of `obj`'s shard, for diagnostics and the sweep harness.
    pub fn ewma_ns(&self, obj: u32) -> u64 {
        self.shard(obj).ewma_ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdaptConfig {
        AdaptConfig {
            shards: 4,
            demote_ns: 10_000,
            promote_ns: 1_000,
            cooldown: 8,
            alpha_shift: 1, // fast EWMA so tests converge in a few samples
            conflict_proxy_ns: 20_000,
            pess_sample_ns: 100,
            // Pure-EWMA mode: the cooldown/hysteresis tests below feed
            // million-ns samples and must not trip the catastrophic path.
            demote_now_ns: u64::MAX,
        }
    }

    fn ctl() -> AdaptController {
        AdaptController::new(cfg(), 16)
    }

    #[test]
    fn fresh_controller_is_promoted_everywhere() {
        let c = ctl();
        for o in 0..16 {
            assert!(!c.is_demoted(o));
        }
        assert_eq!(c.demotions(), 0);
        assert_eq!(c.promotions(), 0);
    }

    #[test]
    fn cooldown_gates_the_first_demotion() {
        let c = ctl();
        // 7 expensive samples: EWMA far above demote_ns, but under cooldown.
        for i in 0..7 {
            assert_eq!(c.record_coord(0, 1_000_000), None, "sample #{i}");
            assert!(!c.is_demoted(0));
        }
        // The 8th sample completes the cooldown window and demotes.
        assert_eq!(c.record_coord(0, 1_000_000), Some(AdaptEvent::Demoted));
        assert!(c.is_demoted(0));
        assert_eq!(c.demotions(), 1);
    }

    #[test]
    fn cheap_traffic_promotes_after_cooldown() {
        let c = ctl();
        for _ in 0..8 {
            c.record_coord(3, 1_000_000);
        }
        assert!(c.is_demoted(3));
        // Non-conflicting pessimistic samples decay the EWMA; promotion may
        // not fire before the cooldown re-elapses.
        let mut promoted_at = None;
        for i in 1..=64 {
            if c.record_pess(3, false) == Some(AdaptEvent::Promoted) {
                promoted_at = Some(i);
                break;
            }
        }
        let at = promoted_at.expect("cheap traffic must eventually promote");
        assert!(at >= 8, "promotion inside the cooldown window (at sample {at})");
        assert!(!c.is_demoted(3));
        assert_eq!(c.promotions(), 1);
    }

    #[test]
    fn conflicting_pess_traffic_keeps_demotion_sticky() {
        let c = ctl();
        for _ in 0..8 {
            c.record_coord(1, 1_000_000);
        }
        assert!(c.is_demoted(1));
        // Ownership keeps bouncing: the conflict proxy holds the EWMA above
        // the promotion threshold indefinitely.
        for _ in 0..1_000 {
            assert_eq!(c.record_pess(1, true), None);
        }
        assert!(c.is_demoted(1));
    }

    #[test]
    fn catastrophic_sample_demotes_without_cooldown() {
        let c = AdaptController::new(
            AdaptConfig {
                demote_now_ns: 100_000,
                ..cfg()
            },
            16,
        );
        // A mildly-expensive sample does not bypass the cooldown...
        assert_eq!(c.record_coord(0, 50_000), None);
        assert!(!c.is_demoted(0));
        // ...but a single quantum-scale stall does, and stamps the EWMA so
        // promotion needs a full cooldown of genuinely cheap samples.
        assert_eq!(c.record_coord(0, 100_000), Some(AdaptEvent::Demoted));
        assert!(c.is_demoted(0));
        assert!(c.ewma_ns(0) >= cfg().demote_ns);
        assert_eq!(c.demotions(), 1);
        for i in 0..7 {
            assert_eq!(c.record_pess(0, false), None, "sample #{i}");
        }
    }

    #[test]
    fn force_demote_bypasses_cooldown_and_stamps_ewma() {
        let c = ctl();
        assert!(c.force_demote(2));
        assert!(c.is_demoted(2));
        assert!(c.ewma_ns(2) >= cfg().demote_ns);
        // Idempotent: a second force reports false and counts nothing new.
        assert!(!c.force_demote(2));
        assert_eq!(c.demotions(), 1);
        // Promotion afterwards still needs a full cooldown of cheap samples.
        for i in 0..7 {
            assert_eq!(c.record_pess(2, false), None, "sample #{i}");
        }
    }

    #[test]
    fn shards_are_independent() {
        let c = ctl();
        for _ in 0..8 {
            c.record_coord(0, 1_000_000);
        }
        assert!(c.is_demoted(0));
        assert!(!c.is_demoted(1), "other shards unaffected");
        // Object 4 aliases shard 0 (4 shards): the hint is shared.
        assert!(c.is_demoted(4));
    }

    #[test]
    fn controller_and_registry_share_one_mapping() {
        // The tentpole's "one mapping" guarantee: the controller's shard
        // function IS ShardMap::shard_of, so for every object id the shard
        // the skip logic would consult and the shard the demotion flag lives
        // in are computed identically.
        let c = AdaptController::new(AdaptConfig { shards: 4, ..cfg() }, 64);
        let m = c.shard_map();
        assert_eq!(m, ShardMap::new(4));
        c.force_demote(6); // shard_of(6) == 2
        for p in 0u32..64 {
            assert_eq!(
                c.is_demoted(p),
                m.shard_of(p as usize) == m.shard_of(6),
                "object {p}: demotion flag must follow the shared ShardMap"
            );
        }
    }

    #[test]
    fn hysteresis_band_is_validated() {
        let bad = AdaptConfig {
            promote_ns: 10_000,
            demote_ns: 10_000,
            ..AdaptConfig::default()
        };
        assert!(std::panic::catch_unwind(|| AdaptController::new(bad, 16)).is_err());
    }

    #[test]
    fn concurrent_demotion_elects_one_winner() {
        let c = std::sync::Arc::new(AdaptController::new(cfg(), 16));
        let winners = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let winners = &winners;
                s.spawn(move || {
                    for _ in 0..1_000 {
                        if c.record_coord(0, 1_000_000) == Some(AdaptEvent::Demoted) {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(winners.load(Ordering::Relaxed), 1);
        assert_eq!(c.demotions(), 1);
    }

    // --- Oscillation bound (ISSUE 7 satellite) ---
    //
    // Property: for ANY sequence of samples, consecutive controller
    // transitions are separated by at least `cooldown` samples — so a
    // demote→promote→demote cycle needs at least 2×cooldown samples, and the
    // oscillation frequency is bounded by the sample rate over the cooldown.

    /// Replay a sample sequence, returning `(index, event, effective_ns)`
    /// (1-based indices) for every transition that fired.
    fn transitions(
        c: &AdaptController,
        samples: &[(u8, u32)],
    ) -> Vec<(usize, AdaptEvent, u64)> {
        let mut out = Vec::new();
        for (i, &(kind, ns)) in samples.iter().enumerate() {
            let (ev, eff) = match kind % 3 {
                0 => (c.record_coord(0, ns as u64 * 100), ns as u64 * 100),
                1 => (c.record_pess(0, true), c.config().conflict_proxy_ns),
                _ => (c.record_pess(0, false), c.config().pess_sample_ns),
            };
            if let Some(ev) = ev {
                out.push((i + 1, ev, eff));
            }
        }
        out
    }

    mod oscillation {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn oscillation_cannot_beat_the_cooldown(
                samples in proptest::collection::vec((0u8..3, 0u32..10_000), 0..512),
                cooldown in 1u64..64,
            ) {
                // Pure-EWMA mode (cfg() disables demote_now_ns): every
                // transition without exception respects the cooldown.
                let c = AdaptController::new(
                    AdaptConfig { cooldown, shards: 1, ..cfg() },
                    1,
                );
                let idx = transitions(&c, &samples);
                // First transition needs a full cooldown of samples...
                if let Some(&(first, _, _)) = idx.first() {
                    prop_assert!(
                        first as u64 >= cooldown,
                        "first transition at sample {} < cooldown {}", first, cooldown
                    );
                }
                // ...and every subsequent one a full cooldown after the
                // previous: demote→promote→demote needs ≥ 2×cooldown samples.
                for pair in idx.windows(2) {
                    prop_assert!(
                        (pair[1].0 - pair[0].0) as u64 >= cooldown,
                        "transitions at {} and {} violate cooldown {}",
                        pair[0].0, pair[1].0, cooldown
                    );
                }
            }

            #[test]
            fn catastrophic_path_cannot_speed_up_promotion(
                samples in proptest::collection::vec((0u8..3, 0u32..10_000), 0..512),
                cooldown in 1u64..64,
            ) {
                // With the catastrophic path armed, only demotions justified
                // by a quantum-scale sample may beat the cooldown; every
                // promotion still needs a full window, so a complete
                // demote→promote cycle spans at least one cooldown.
                let demote_now = 500_000u64;
                let c = AdaptController::new(
                    AdaptConfig {
                        cooldown,
                        shards: 1,
                        demote_now_ns: demote_now,
                        ..cfg()
                    },
                    1,
                );
                let idx = transitions(&c, &samples);
                let mut last = 0usize;
                for &(at, ev, eff) in &idx {
                    let gap = (at - last) as u64;
                    match ev {
                        AdaptEvent::Promoted => prop_assert!(
                            gap >= cooldown,
                            "promotion at {} only {} sample(s) after previous transition",
                            at, gap
                        ),
                        AdaptEvent::Demoted => prop_assert!(
                            gap >= cooldown || eff >= demote_now,
                            "early demotion at {} without a catastrophic sample ({} ns)",
                            at, eff
                        ),
                    }
                    last = at;
                }
                // Alternation is structural (a demote requires !demoted), so
                // any two catastrophic demotions still have a full-cooldown
                // promotion between them.
                for pair in idx.windows(2) {
                    prop_assert!(pair[0].1 != pair[1].1, "non-alternating transitions");
                }
            }
        }
    }
}
