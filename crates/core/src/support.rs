//! The interface between tracking engines and runtime support.
//!
//! The paper layers two kinds of runtime support on top of tracking: a
//! dependence recorder (§4) and a region-serializability enforcer (§5). Both
//! need to observe what the engines do — state transitions with their
//! happens-before sources, responding safe points, PSRO flushes — without the
//! engines knowing anything about them. [`Support`] is that observer
//! interface; every method has an empty inline default so the
//! tracking-alone configurations ([`NullSupport`]) compile to exactly the
//! uninstrumented engine.
//!
//! ## How transition events carry happens-before information
//!
//! The engines hand the recorder *protocol-derived* sources:
//!
//! * **coordination** (explicit or implicit) yields `(thread, clock)` pairs
//!   read from responses or from blocked threads' release clocks — these
//!   dominate the remote thread's last access (Figure 4(b));
//! * **pessimistic uncontended transitions involving conflicting states**
//!   yield remote release clocks read without communication — sound because
//!   deferred unlocking means an *unlocked* pessimistic state was flushed at
//!   a PSRO no later than the clock value read (§4.2);
//! * **upgrades and fences** carry no protocol source. The recorder closes
//!   the gap with a per-object *last-transition* side table: every recorded
//!   transition deposits `(thread, clock)` for the next accessor. This is
//!   sound for exactly these rows of Table 3 because after an upgrade/fence
//!   the previous holder can only have performed *reads* of the object since
//!   its own (recorded) transition — see `drink-replay` for the full
//!   argument.

use drink_runtime::{MonitorId, ObjId, Runtime, ThreadId};

/// How a conflicting transition's coordination was resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoordMode {
    /// Roundtrip request/response through the remote thread's safe point.
    Explicit,
    /// Epoch CAS against a blocked remote thread.
    Implicit,
    /// Mixed (RdSh conflicts coordinate with every thread; some responded
    /// explicitly, some were blocked).
    Mixed,
}

/// A non-same-state transition, as reported to [`Support::on_transition`].
///
/// `sources` slices borrow the engine's per-thread scratch buffer; consumers
/// must copy what they keep.
#[derive(Clone, Copy, Debug)]
pub enum TransitionEv<'a> {
    /// Upgrading transition by the owner itself (RdEx(T) → WrEx(T) on T's
    /// write): no cross-thread ordering is created.
    UpgradeOwn,
    /// A RdSh state was created with counter `c` by this thread reading an
    /// object last held by `prev_owner` (covers both `RdExOpt(T1) → RdShOpt`
    /// and the pessimistic `RdEx*/WrExRLock(T1) → RdShRLock` rows).
    RdShCreate {
        /// The previous exclusive holder.
        prev_owner: ThreadId,
        /// The freshly claimed `gRdShCount` value.
        c: u64,
        /// True if the new state is pessimistic (RdShRLock).
        pess: bool,
    },
    /// Fence transition: this thread's first read of RdSh epoch `c`
    /// (its `rdShCount` was stale). Covers the optimistic fence row and the
    /// equivalent pessimistic `RdShPess(c)` first-read.
    Fence {
        /// The epoch being fenced against.
        c: u64,
    },
    /// Conflicting transition resolved by coordination.
    Conflict {
        /// Explicit, implicit, or mixed.
        mode: CoordMode,
        /// `(thread, release clock)` pairs dominating each remote thread's
        /// last access.
        sources: &'a [(ThreadId, u64)],
        /// Is the triggering access a write? (Race detectors need the access
        /// kind: read→read transfers are not conflicts.)
        write: bool,
    },
    /// Pessimistic uncontended transition involving conflicting states
    /// (e.g. `WrExPess(T1)` read by T2): sources are remote release clocks
    /// read without communication.
    PessConflictingAcquire {
        /// `(thread, release clock)` pairs.
        sources: &'a [(ThreadId, u64)],
        /// Is the triggering access a write?
        write: bool,
    },
    /// This thread read-locked its *own* unlocked exclusive state
    /// (`WrExPess(T) → WrEx*Lock(T)` or `RdExPess(T) → RdExRLock(T)`). No
    /// cross-thread edge, but recorders must refresh the object's
    /// last-transition entry: a second reader may later upgrade this state
    /// to `RdShRLock(2)` and needs an edge dominating this thread's earlier
    /// writes — which this (post-write, program-ordered) read-lock provides.
    PessLocalAcquire,
}

/// What a responding thread is about to give up (passed to
/// [`Support::before_yield`]). Speculation-based support uses it to decide
/// whether its in-flight region is actually disturbed.
#[derive(Clone, Copy, Debug)]
pub struct YieldInfo<'a> {
    /// Objects named by the pending explicit requests (the requesters will
    /// take exactly these via their Int claims).
    pub requested: &'a [ObjId],
    /// Pessimistic objects this thread currently holds locked — the flush
    /// that follows will unlock *all* of them.
    pub pess_locked: &'a [ObjId],
}

/// Context handed to every support callback.
#[derive(Clone, Copy)]
pub struct SupportCx<'a> {
    /// The runtime (for reading clocks, completing side tables, etc.).
    pub rt: &'a Runtime,
    /// The thread the event occurred on.
    pub t: ThreadId,
    /// The thread's deterministic operation index: the id of the program
    /// operation currently executing (or, between operations, the id the
    /// next operation will have). Recorders pin log entries to this.
    pub op: u64,
}

/// Observer interface for runtime support built on a tracking engine.
///
/// All methods default to no-ops; [`NullSupport`] is the canonical "tracking
/// alone" instantiation. Implementations must be cheap and reentrancy-free:
/// they are called from instrumentation paths, sometimes while the calling
/// thread holds pessimistic object locks.
#[allow(unused_variables)]
pub trait Support: Send + Sync + 'static {
    /// If true, engines *pre-publish* transitions: the state word is parked
    /// at `Int(T)` while [`Support::on_transition`] runs and only then set to
    /// the final state. Recorders need this — their per-object side-table
    /// and RdSh-epoch entries must be visible before any thread can observe
    /// (and record edges against) the new state. Costs one extra store per
    /// slow-path transition, so it is off for supports that don't read
    /// per-object recorder state.
    const PREPUBLISH: bool = false;

    /// If true, engines may serve read-mostly RdSh reads through the
    /// coordination-free seqlock protocol (DESIGN.md §12), which performs
    /// **no state transition and therefore fires no support hook**. Off by
    /// default because it is only sound for supports that don't consume
    /// per-read events: the recorder needs the `Fence` transition to order
    /// replayed RdSh reads, and the RS enforcer needs reads to take read
    /// locks for its two-phase-locking argument. Tracking-only
    /// ([`NullSupport`]) turns it on.
    const SEQLOCK_READS: bool = false;

    /// A non-same-state transition of `obj` completed on thread `cx.t`.
    /// Called with the final state already decided; if
    /// [`Support::PREPUBLISH`] is set, the state word still reads `Int(T)`
    /// while this runs. Always called *before* the program access is
    /// performed.
    #[inline(always)]
    fn on_transition(&self, cx: SupportCx<'_>, obj: ObjId, ev: TransitionEv<'_>) {}

    /// Thread `cx.t` flushed its lock buffer at a PSRO; its release clock is
    /// now `clock`.
    #[inline(always)]
    fn on_release(&self, cx: SupportCx<'_>, clock: u64) {}

    /// Thread `cx.t` responded to explicit coordination request(s) at a safe
    /// point; its release clock is now `clock`. Runs after the flush and
    /// clock bump, before the response tokens complete.
    #[inline(always)]
    fn on_responded(&self, cx: SupportCx<'_>, clock: u64) {}

    /// Thread `cx.t` is about to relinquish ownership of object states (it
    /// will flush and respond, or it is entering a blocking safe point). The
    /// RS enforcer rolls back its in-flight region here — *before* any other
    /// thread can observe the yielded states — but only when `info` actually
    /// intersects the region's accesses.
    #[inline(always)]
    fn before_yield(&self, cx: SupportCx<'_>, info: YieldInfo<'_>) {}

    /// Thread `cx.t` acquired monitor `m`; `prev` identifies the previous
    /// release (thread and its release clock at release time), if any.
    #[inline(always)]
    fn on_monitor_acquire(&self, cx: SupportCx<'_>, m: MonitorId, prev: Option<(ThreadId, u64)>) {}

    /// Thread `cx.t` is about to release monitor `m` (before the release
    /// becomes visible). Race detectors publish their sync vector clocks
    /// here.
    #[inline(always)]
    fn on_monitor_release(&self, cx: SupportCx<'_>, m: MonitorId) {}

    /// Thread `cx.t` woke from a blocking safe point and learned it had been
    /// coordinated with implicitly.
    #[inline(always)]
    fn on_wake_after_implicit(&self, cx: SupportCx<'_>) {}

    /// Should thread `t` abort its in-flight *write* instead of completing
    /// it? Engines consult this in write slow paths after any point where the
    /// thread may have yielded ownership (responded to coordination). The RS
    /// enforcer answers true once the thread's current region has been rolled
    /// back — completing the write would publish a value from an aborted
    /// region. Reads never abort (a stale read acquisition is harmless; the
    /// region discards the value and restarts).
    #[inline(always)]
    fn should_abort(&self, t: ThreadId) -> bool {
        let _ = t;
        false
    }
}

/// Tracking alone: every hook is a no-op.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSupport;

impl Support for NullSupport {
    const SEQLOCK_READS: bool = true;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Support that records which hooks fired, proving defaults are
    /// overridable and the dispatch is static.
    #[derive(Default)]
    struct Probe {
        transitions: std::sync::atomic::AtomicUsize,
    }

    impl Support for Probe {
        fn on_transition(&self, _cx: SupportCx<'_>, _obj: ObjId, _ev: TransitionEv<'_>) {
            self.transitions
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    #[test]
    fn null_support_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NullSupport>(), 0);
    }

    #[test]
    fn probe_receives_events() {
        let rt = Runtime::new(Default::default());
        let p = Probe::default();
        let cx = SupportCx {
            rt: &rt,
            t: ThreadId(0),
            op: 7,
        };
        p.on_transition(cx, ObjId(1), TransitionEv::UpgradeOwn);
        p.on_release(cx, 3); // default no-op
        assert_eq!(p.transitions.load(std::sync::atomic::Ordering::Relaxed), 1);
    }
}
