//! Pessimistic tracking (§2.1): a CAS-locked critical section around every
//! access and its instrumentation.
//!
//! Per the paper's pseudocode, each access:
//!
//! 1. spins CASing the object's state word to the `LOCKED` sentinel;
//! 2. inspects the old state (any state other than `WrEx(T)` on a write
//!    indicates a potential cross-thread dependence);
//! 3. performs the program access inside the critical section;
//! 4. stores the new, unlocked state (with release semantics, the paper's
//!    `memfence`).
//!
//! There is no coordination and no deferred unlocking: access privileges
//! transfer simply by the unlock store, which is why pessimistic tracking
//! pays an atomic operation on *every* access and why its cost is largely
//! independent of the conflict rate (§2.2's 150-cycle row).
//!
//! The paper does not build runtime support on pessimistic tracking
//! ("pessimistic tracking alone is slower than both optimistic and hybrid
//! runtime support", §7.6), so this engine reports no transition events.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use drink_runtime::{Event, MonitorId, ObjId, Runtime, ThreadId, TraceKind};

use crate::common::EngineCommon;
use crate::engine::Tracker;
use crate::policy::AdaptivePolicy;
use crate::support::{NullSupport, Support};
use crate::word::{Kind, StateWord};

/// The flat pessimistic engine of §2.1.
pub struct PessimisticEngine<S: Support = NullSupport> {
    common: EngineCommon<S>,
}

impl PessimisticEngine<NullSupport> {
    /// Pessimistic tracking over `rt`, no runtime support.
    pub fn new(rt: Arc<Runtime>) -> Self {
        PessimisticEngine {
            common: EngineCommon::new(rt, NullSupport, AdaptivePolicy::default()),
        }
    }
}

impl<S: Support> PessimisticEngine<S> {
    /// One instrumented access. Returns the value read (reads) after
    /// performing the access inside the critical section.
    fn access(&self, t: ThreadId, o: ObjId, write: Option<u64>) -> u64 {
        // SAFETY: Tracker methods are called from the attached thread.
        let ts = unsafe { self.common.ts(t) };
        ts.stats.bump(if write.is_some() {
            Event::Write
        } else {
            Event::Read
        });
        // Stamp the accessing shard before examining the state word, so the
        // epoch table's "never touched" proof stays sound (DESIGN.md §14).
        self.common.rt.stamp_access(t, o);

        let obj = self.common.rt.obj(o);
        let state = obj.state();

        // Read-mostly RdSh: a read of a standing RdSh state keeps the state
        // (Table 1's RdSh→old row), so the coordination-free seqlock read
        // (DESIGN.md §12) can skip the CAS-lock critical section entirely —
        // validation proves no install overlapped the read window, which is
        // exactly what the critical section would have guaranteed.
        if S::SEQLOCK_READS && write.is_none() {
            let w = StateWord(state.load(Ordering::Acquire));
            if w.kind() == Kind::RdSh
                && !w.is_locked_sentinel()
                && self.common.policy.read_mostly(obj.profile())
            {
                if let Some(v) = self.common.seqlock_read(ts, o) {
                    self.common.rt.trace(t, TraceKind::Read, o.0 as u64);
                    ts.op_index += 1;
                    return v;
                }
            }
        }

        let mut spin = self.common.rt.spinner("pessimistic state lock");
        // Lock the state word.
        let old = loop {
            let cur = state.load(Ordering::Relaxed);
            if cur != StateWord::LOCKED.0
                && state
                    .compare_exchange_weak(
                        cur,
                        StateWord::LOCKED.0,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
            {
                obj.bump_version();
                break StateWord(cur);
            }
            spin.spin();
        };

        // Compute the post-access state per Table 1 (flat model, optimistic
        // encodings — the pessimistic flag is unused here).
        let new = if write.is_some() {
            StateWord::wr_ex_opt(t)
        } else {
            match old.kind() {
                Kind::WrEx if old.owner() == t => old,
                Kind::WrEx => StateWord::rd_ex_opt(t),
                Kind::RdEx if old.owner() == t => old,
                Kind::RdEx => StateWord::rd_sh_opt(self.common.rt.next_rdsh_count()),
                Kind::RdSh => old,
                Kind::Int => unreachable!("flat pessimistic model has no Int states"),
            }
        };

        // Program access inside the critical section.
        let value = match write {
            Some(v) => {
                obj.data_write(v);
                v
            }
            None => obj.data_read(),
        };

        // Unlock + update metadata (release = the paper's memfence).
        state.store(new.0, Ordering::Release);
        obj.bump_version();
        ts.stats.bump(Event::PessUncontended);
        self.common.rt.trace(
            t,
            match write {
                Some(_) => TraceKind::Write,
                None => TraceKind::Read,
            },
            o.0 as u64,
        );
        // §7.5's remote-cache-miss proxy: did this access take the state
        // from a different thread than the previous access?
        if old.kind() != Kind::RdSh && old.owner() != t {
            ts.stats.bump(Event::PessOwnerChange);
        }
        ts.op_index += 1;
        value
    }
}

impl<S: Support> Tracker for PessimisticEngine<S> {
    fn rt(&self) -> &Arc<Runtime> {
        &self.common.rt
    }

    fn name(&self) -> &'static str {
        "pessimistic"
    }

    fn attach(&self) -> ThreadId {
        self.common.attach()
    }

    fn detach(&self, t: ThreadId) {
        // SAFETY: called from the attached thread (Tracker contract).
        unsafe { self.common.detach(t) }
    }

    #[inline]
    fn read(&self, t: ThreadId, o: ObjId) -> u64 {
        self.access(t, o, None)
    }

    #[inline]
    fn write(&self, t: ThreadId, o: ObjId, v: u64) {
        self.access(t, o, Some(v));
    }

    fn alloc_init(&self, o: ObjId, owner: ThreadId) {
        // The state word names the owner from here on: stamp its shard.
        self.common.rt.stamp_access(owner, o);
        let obj = self.common.rt.obj(o);
        obj.state().store(StateWord::wr_ex_opt(owner).0, Ordering::SeqCst);
        obj.bump_version();
    }

    #[inline]
    fn safepoint(&self, t: ThreadId) {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        self.common.poll(ts);
    }

    fn lock(&self, t: ThreadId, m: MonitorId) {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        self.common.monitor_acquire(ts, m);
    }

    fn unlock(&self, t: ThreadId, m: MonitorId) {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        self.common.monitor_release(ts, m);
    }

    fn wait(&self, t: ThreadId, m: MonitorId) {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        self.common.monitor_wait(ts, m);
    }

    fn notify_all(&self, t: ThreadId, m: MonitorId) {
        self.common.rt.monitor_notify_all_from(m, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drink_runtime::RuntimeConfig;

    fn engine() -> PessimisticEngine {
        PessimisticEngine::new(Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(8)
        .heap_objects(16)
        .monitors(2)
        .build())))
    }

    #[test]
    fn single_thread_states_follow_table_1() {
        let e = engine();
        let t = e.attach();
        let o = ObjId(0);
        e.alloc_init(o, t);

        e.write(t, o, 5);
        assert_eq!(
            StateWord(e.rt().obj(o).state().load(Ordering::SeqCst)),
            StateWord::wr_ex_opt(t)
        );
        assert_eq!(e.read(t, o), 5);
        assert_eq!(
            StateWord(e.rt().obj(o).state().load(Ordering::SeqCst)),
            StateWord::wr_ex_opt(t),
            "read by the writer keeps WrEx"
        );
        e.detach(t);
        assert_eq!(e.rt().stats().get(Event::PessUncontended), 2);
    }

    #[test]
    fn cross_thread_reads_reach_rdsh() {
        let e = engine();
        let t0 = e.attach();
        let o = ObjId(1);
        e.alloc_init(o, t0);
        e.write(t0, o, 9);

        std::thread::scope(|s| {
            let er = &e;
            s.spawn(move || {
                let t1 = er.attach();
                assert_eq!(er.read(t1, o), 9); // WrEx(t0) → RdEx(t1)
                let w = StateWord(er.rt().obj(o).state().load(Ordering::SeqCst));
                assert_eq!(w, StateWord::rd_ex_opt(t1));
                er.detach(t1);
            });
        });

        assert_eq!(e.read(t0, o), 9); // RdEx(t1) → RdSh(c)
        let w = StateWord(e.rt().obj(o).state().load(Ordering::SeqCst));
        assert_eq!(w.kind(), Kind::RdSh);
        assert!(w.rdsh_count() >= 1);
        e.detach(t0);
    }

    #[test]
    fn racy_increments_are_tracked_without_hanging() {
        // Pessimistic tracking must serialize instrumentation+access even
        // under heavy races on one object.
        const THREADS: usize = 4;
        const ITERS: usize = 5_000;
        let e = engine();
        let o = ObjId(2);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let er = &e;
                s.spawn(move || {
                    let t = er.attach();
                    for _ in 0..ITERS {
                        let v = er.read(t, o);
                        er.write(t, o, v + 1);
                    }
                    er.detach(t);
                });
            }
        });
        // Racy read-modify-write loses updates (that's the program's bug, not
        // the tracker's), but instrumentation–access atomicity means every
        // access completed and the final state word is unlocked.
        let w = StateWord(e.rt().obj(o).state().load(Ordering::SeqCst));
        assert!(!w.is_locked_sentinel());
        let r = e.rt().stats().report();
        assert_eq!(r.accesses(), (THREADS * ITERS * 2) as u64);
        // Reads that momentarily observe RdSh may complete on the seqlock
        // path (no critical section); every other access pays the lock.
        // Writes always lock, so at least half the accesses are pessimistic.
        let locked = r.get(Event::PessUncontended);
        let validated = r.get(Event::SeqlockValidated);
        assert_eq!(locked + validated, (THREADS * ITERS * 2) as u64);
        assert!(locked >= (THREADS * ITERS) as u64, "writes always lock");
    }
}
