//! The untracked baseline: stands in for the paper's "unmodified Jikes RVM".
//!
//! Accesses go straight to the data word; monitors run with no hooks. Every
//! overhead in Figure 7/8/9 is measured relative to this engine running the
//! identical workload.

use std::sync::Arc;

use drink_runtime::{MonitorId, NoHooks, ObjId, Runtime, ThreadId};

use crate::engine::Tracker;

/// No instrumentation at all.
pub struct NoTracking {
    rt: Arc<Runtime>,
}

impl NoTracking {
    /// Baseline engine over `rt`.
    pub fn new(rt: Arc<Runtime>) -> Self {
        NoTracking { rt }
    }
}

impl Tracker for NoTracking {
    fn rt(&self) -> &Arc<Runtime> {
        &self.rt
    }

    fn name(&self) -> &'static str {
        "baseline"
    }

    fn attach(&self) -> ThreadId {
        self.rt.register_thread()
    }

    fn detach(&self, _t: ThreadId) {}

    #[inline(always)]
    fn read(&self, _t: ThreadId, o: ObjId) -> u64 {
        self.rt.obj(o).data_read()
    }

    #[inline(always)]
    fn write(&self, _t: ThreadId, o: ObjId, v: u64) {
        self.rt.obj(o).data_write(v);
    }

    fn alloc_init(&self, _o: ObjId, _owner: ThreadId) {}

    #[inline(always)]
    fn safepoint(&self, _t: ThreadId) {}

    fn lock(&self, t: ThreadId, m: MonitorId) {
        self.rt.monitor_acquire(m, t, &NoHooks);
    }

    fn unlock(&self, t: ThreadId, m: MonitorId) {
        self.rt.monitor_release(m, t, &NoHooks);
    }

    fn wait(&self, t: ThreadId, m: MonitorId) {
        self.rt.monitor_wait(m, t, &NoHooks);
    }

    fn notify_all(&self, t: ThreadId, m: MonitorId) {
        self.rt.monitor_notify_all_from(m, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drink_runtime::RuntimeConfig;

    #[test]
    fn baseline_reads_writes_data_directly() {
        let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build()));
        let e = NoTracking::new(rt);
        let t = e.attach();
        e.write(t, ObjId(1), 7);
        assert_eq!(e.read(t, ObjId(1)), 7);
        assert_eq!(e.read(t, ObjId(0)), 0);
        e.detach(t);
    }

    #[test]
    fn baseline_monitors_exclude() {
        let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build()));
        let e = NoTracking::new(rt);
        let t = e.attach();
        e.lock(t, MonitorId(0));
        assert_eq!(e.rt().monitor(MonitorId(0)).holder(), Some(t));
        e.unlock(t, MonitorId(0));
        assert_eq!(e.rt().monitor(MonitorId(0)).holder(), None);
    }
}
