//! The tracking engines.
//!
//! Five engines implement the [`Tracker`] interface:
//!
//! | engine | paper configuration |
//! |---|---|
//! | [`NoTracking`](none::NoTracking) | unmodified JVM (the overhead baseline) |
//! | [`PessimisticEngine`](pessimistic::PessimisticEngine) | "Pessimistic tracking" (§2.1) |
//! | [`OptimisticEngine`](optimistic::OptimisticEngine) | "Optimistic tracking" (§2.2, Octet) |
//! | [`HybridEngine`](hybrid::HybridEngine) | "Hybrid tracking" (§3); with `PolicyParams::infinite_cutoff()` it is the "w/ infinite cutoff" configuration |
//! | [`IdealEngine`](ideal::IdealEngine) | the unsound "Ideal" estimate of Figure 7 |
//!
//! All methods that take a `ThreadId` must be called from the OS thread that
//! attached as that mutator (checked in debug builds); the `Session` façade
//! makes this hard to get wrong.

pub mod hybrid;
pub mod ideal;
pub mod kind;
pub mod none;
pub mod optimistic;
pub mod pessimistic;

pub use kind::{AnyEngine, DynTracker, EngineKind};

use std::sync::Arc;

use drink_runtime::{MonitorId, ObjId, Runtime, ThreadId};

/// Uniform interface over the tracking engines, used by workload drivers and
/// the `Session` façade. Statically dispatched where a concrete engine type
/// is in scope (the fast paths inline); deliberately **object-safe**, so
/// binaries that select the engine at runtime erase it behind
/// [`kind::AnyEngine`] / `Box<dyn Tracker>` instead of duplicating
/// monomorphized dispatch arms.
pub trait Tracker: Send + Sync {
    /// The runtime this engine instruments.
    fn rt(&self) -> &Arc<Runtime>;

    /// Short configuration name, as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Register the calling OS thread as a mutator.
    fn attach(&self) -> ThreadId;

    /// Final flush + permanent blocked status + statistics merge. Must be
    /// called from the attached thread.
    fn detach(&self, t: ThreadId);

    /// Tracked read of `o`'s payload.
    fn read(&self, t: ThreadId, o: ObjId) -> u64;

    /// Tracked write of `o`'s payload.
    fn write(&self, t: ThreadId, o: ObjId, v: u64);

    /// Abortable tracked write, for speculation-based runtime support (the
    /// RS enforcer): returns `Some(previous payload)` if the write completed
    /// (the payload read under ownership, for undo logging), or `None` if
    /// the engine's support asked for an abort mid-transition — in which
    /// case nothing was written and no state was claimed.
    ///
    /// The default implementation never aborts and reads the previous value
    /// racily; engines that can yield ownership mid-write override it.
    fn try_write(&self, t: ThreadId, o: ObjId, v: u64) -> Option<u64> {
        let prev = self.rt().obj(o).data_read();
        self.write(t, o, v);
        Some(prev)
    }

    /// Initialize `o` as freshly allocated by `owner` (each new object starts
    /// write-exclusive for its allocating thread, §6.2).
    fn alloc_init(&self, o: ObjId, owner: ThreadId);

    /// Initialize `o` as long-lived, already-shared read-mostly data: the
    /// state starts read-shared with the pre-run epoch 1 (claimed by no
    /// thread; the global counter starts past it). Workloads use this for
    /// data that real programs would have shared long before the measured
    /// window, so that one-time initialization conflicts don't swamp the
    /// steady-state conflict rate the paper's multi-minute runs measure.
    fn alloc_init_read_shared(&self, o: ObjId) {
        let obj = self.rt().obj(o);
        obj.state()
            .store(crate::word::StateWord::rd_sh_opt(1).0, std::sync::atomic::Ordering::SeqCst);
        obj.bump_version();
    }

    /// Non-blocking safe point poll (loop back edges).
    fn safepoint(&self, t: ThreadId);

    /// Program lock acquire (blocking safe point when contended).
    fn lock(&self, t: ThreadId, m: MonitorId);

    /// Program lock release (a PSRO).
    fn unlock(&self, t: ThreadId, m: MonitorId);

    /// Monitor wait (PSRO + blocking safe point).
    fn wait(&self, t: ThreadId, m: MonitorId);

    /// Monitor notify-all, performed by thread `t`.
    fn notify_all(&self, t: ThreadId, m: MonitorId);
}
