//! The "Ideal" configuration of Figure 7: optimistic tracking **without**
//! coordination for conflicting transitions.
//!
//! > "This unsound configuration estimates the cost of all conflicting
//! > transitions becoming pessimistic and all same-state transitions
//! > remaining optimistic. ... representing an estimated upper bound on the
//! > performance that hybrid tracking might be able to provide." (§7.5)
//!
//! Conflicting transitions are resolved with a bare CAS (roughly the cost of
//! a pessimistic transition — the statistics count them as
//! [`Event::PessUncontended`] so the cost model prices them at the
//! pessimistic rate); no thread ever waits for another. **This engine is
//! unsound**: it can miss dependences and break instrumentation–access
//! atomicity. It exists purely to bound the benefit of hybridization.

use std::sync::atomic::{fence, Ordering};
use std::sync::Arc;

use drink_runtime::{Event, MonitorId, ObjId, Runtime, ThreadId};

use crate::common::EngineCommon;
use crate::engine::Tracker;
use crate::policy::AdaptivePolicy;
use crate::support::NullSupport;
use crate::word::{Kind, StateWord};

/// The unsound upper-bound estimate engine.
pub struct IdealEngine {
    common: EngineCommon<NullSupport>,
}

impl IdealEngine {
    /// Ideal-estimate tracking over `rt`. Never combined with runtime
    /// support (it is unsound by construction).
    pub fn new(rt: Arc<Runtime>) -> Self {
        IdealEngine {
            common: EngineCommon::new(rt, NullSupport, AdaptivePolicy::default()),
        }
    }

    #[cold]
    fn write_slow(&self, ts: &mut crate::tstate::ThreadState, o: ObjId) {
        let t = ts.tid;
        let state = self.common.rt.obj(o).state();
        let mut spin = self.common.rt.spinner("ideal write slow path");
        loop {
            let cur = state.load(Ordering::Acquire);
            let w = StateWord(cur);
            if w == StateWord::wr_ex_opt(t) {
                ts.stats.bump(Event::OptSameState);
                return;
            }
            let upgrading = w == StateWord::rd_ex_opt(t);
            if state
                .compare_exchange(cur, StateWord::wr_ex_opt(t).0, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Upgrades keep their optimistic cost; conflicts are priced as
                // pessimistic transitions (the whole point of this estimate).
                ts.stats.bump(if upgrading {
                    Event::OptUpgrading
                } else {
                    Event::PessUncontended
                });
                return;
            }
            spin.spin();
        }
    }

    #[cold]
    fn read_slow(&self, ts: &mut crate::tstate::ThreadState, o: ObjId) {
        let t = ts.tid;
        let rt = &self.common.rt;
        let state = rt.obj(o).state();
        let mut spin = rt.spinner("ideal read slow path");
        loop {
            let cur = state.load(Ordering::Acquire);
            let w = StateWord(cur);
            if w == StateWord::wr_ex_opt(t) || w == StateWord::rd_ex_opt(t) {
                ts.stats.bump(Event::OptSameState);
                return;
            }
            match w.kind() {
                Kind::RdSh => {
                    let c = w.rdsh_count();
                    if ts.rd_sh_count >= c {
                        ts.stats.bump(Event::OptSameState);
                    } else {
                        fence(Ordering::Acquire);
                        ts.rd_sh_count = c;
                        ts.stats.bump(Event::OptFence);
                    }
                    return;
                }
                Kind::RdEx => {
                    let c = rt.next_rdsh_count();
                    if state
                        .compare_exchange(
                            cur,
                            StateWord::rd_sh_opt(c).0,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        ts.rd_sh_count = ts.rd_sh_count.max(c);
                        ts.stats.bump(Event::OptUpgrading);
                        return;
                    }
                }
                Kind::WrEx => {
                    // Conflicting read: bare CAS to RdEx(t), no coordination.
                    if state
                        .compare_exchange(
                            cur,
                            StateWord::rd_ex_opt(t).0,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        ts.stats.bump(Event::PessUncontended);
                        return;
                    }
                }
                Kind::Int => {}
            }
            spin.spin();
        }
    }
}

impl Tracker for IdealEngine {
    fn rt(&self) -> &Arc<Runtime> {
        &self.common.rt
    }

    fn name(&self) -> &'static str {
        "ideal"
    }

    fn attach(&self) -> ThreadId {
        self.common.attach()
    }

    fn detach(&self, t: ThreadId) {
        // SAFETY: called from the attached thread (Tracker contract).
        unsafe { self.common.detach(t) }
    }

    #[inline(always)]
    fn read(&self, t: ThreadId, o: ObjId) -> u64 {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        ts.stats.bump(Event::Read);
        let obj = self.common.rt.obj(o);
        let cur = obj.state().load(Ordering::Acquire);
        let w = StateWord(cur);
        // Fast path: exclusive owner, or read-shared with a fresh rdShCount
        // (Table 1's Same∗ row) — loads and compares, no synchronization.
        if cur == StateWord::wr_ex_opt(t).0
            || cur == StateWord::rd_ex_opt(t).0
            || (w.kind() == Kind::RdSh && !w.is_pess() && ts.rd_sh_count >= w.rdsh_count())
        {
            ts.stats.bump(Event::OptSameState);
        } else {
            self.read_slow(ts, o);
        }
        let v = obj.data_read();
        ts.op_index += 1;
        v
    }

    #[inline(always)]
    fn write(&self, t: ThreadId, o: ObjId, v: u64) {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        ts.stats.bump(Event::Write);
        let obj = self.common.rt.obj(o);
        if obj.state().load(Ordering::Acquire) == StateWord::wr_ex_opt(t).0 {
            ts.stats.bump(Event::OptSameState);
        } else {
            self.write_slow(ts, o);
        }
        obj.data_write(v);
        ts.op_index += 1;
    }

    fn alloc_init(&self, o: ObjId, owner: ThreadId) {
        self.common
            .rt
            .obj(o)
            .state()
            .store(StateWord::wr_ex_opt(owner).0, Ordering::SeqCst);
    }

    #[inline]
    fn safepoint(&self, t: ThreadId) {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        self.common.poll(ts);
    }

    fn lock(&self, t: ThreadId, m: MonitorId) {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        self.common.monitor_acquire(ts, m);
    }

    fn unlock(&self, t: ThreadId, m: MonitorId) {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        self.common.monitor_release(ts, m);
    }

    fn wait(&self, t: ThreadId, m: MonitorId) {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        self.common.monitor_wait(ts, m);
    }

    fn notify_all(&self, t: ThreadId, m: MonitorId) {
        self.common.rt.monitor_notify_all_from(m, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drink_runtime::RuntimeConfig;

    #[test]
    fn ideal_never_waits_for_other_threads() {
        // Conflict with a thread that never reaches a safe point: sound
        // optimistic tracking would hang; the ideal estimate proceeds.
        let e = IdealEngine::new(Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(4)
        .heap_objects(8)
        .monitors(1)
        .build())));
        let t0 = e.attach();
        let o = ObjId(0);
        e.alloc_init(o, t0);
        e.write(t0, o, 3);

        std::thread::scope(|s| {
            let er = &e;
            s.spawn(move || {
                let t1 = er.attach();
                // t0 is running and never polls — ideal still completes.
                assert_eq!(er.read(t1, o), 3);
                er.write(t1, o, 4);
                er.detach(t1);
            })
            .join()
            .unwrap();
        });
        e.detach(t0);
        let r = e.rt().stats().report();
        // The conflicting read was priced as pessimistic; the write that
        // followed it was an owner upgrade (RdEx(t1) → WrEx(t1)).
        assert_eq!(r.get(Event::PessUncontended), 1);
        assert_eq!(r.get(Event::OptUpgrading), 1);
        assert_eq!(r.opt_conflicting(), 0);
    }

    #[test]
    fn ideal_same_state_accesses_stay_optimistic() {
        let e = IdealEngine::new(Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build())));
        let t = e.attach();
        let o = ObjId(1);
        e.alloc_init(o, t);
        for i in 0..10 {
            e.write(t, o, i);
        }
        e.detach(t);
        assert_eq!(e.rt().stats().get(Event::OptSameState), 10);
    }
}
