//! Hybrid tracking (§3): the paper's contribution.
//!
//! Objects move between **optimistic** states (handled exactly like the
//! Octet engine) and **pessimistic** states with *deferred unlocking*
//! (§3.1):
//!
//! * an access to an unlocked pessimistic state CAS-locks it (reader–writer
//!   locking) and records the object in the thread's lock buffer;
//! * locks are released only at PSROs and responding safe points, which flush
//!   the whole buffer (see [`EngineCommon::flush_lock_buffer`]);
//! * repeated accesses to states this thread already holds are **reentrant**
//!   — no atomic operation;
//! * an access that conflicts with a *locked* state is **contended**: the
//!   thread falls back to coordination, which makes the holder flush at its
//!   next responding safe point, then retries. Contention implies an
//!   object-level data race (§3.1, Figure 2(b));
//! * the adaptive policy (§6) decides, at optimistic conflicts, whether an
//!   object moves to pessimistic states, and at unlocks, whether it moves
//!   back (Figure 3's two diamonds).
//!
//! The state-transition logic below follows Table 3 row by row; comments
//! cite the rows. See `DESIGN.md` for the happens-before soundness argument
//! behind each `Support` event.

use std::sync::atomic::{fence, Ordering};
use std::sync::Arc;

use drink_runtime::{Event, MonitorId, ObjId, Runtime, ThreadId, TraceKind};

use crate::adapt::{AdaptConfig, AdaptController, AdaptEvent};
use crate::common::EngineCommon;
use crate::coord::{coordinate_many_deadline, coordinate_one_deadline};
use crate::engine::Tracker;
use crate::policy::{AdaptivePolicy, PolicyParams};
use crate::support::{CoordMode, NullSupport, Support, SupportCx, TransitionEv};
use crate::tstate::ThreadState;
use crate::word::{Kind, LockMode, StateWord};

/// Count the peers a completed fan-out *skipped* via the epoch table
/// (DESIGN.md §14): every registered peer that contributed no source was
/// resolved vacuously by the shard-skip. Computed post-hoc so the fan-out's
/// hot loop carries no extra state; only meaningful on sharded runtimes
/// (unsharded fan-outs visit every peer and the difference is zero).
pub(crate) fn note_fanout_skips(rt: &Runtime, ts: &mut ThreadState, sources: usize) {
    if rt.heap().thread_shards() > 1 {
        let peers = rt.registered_threads().saturating_sub(1);
        ts.stats.add(Event::CoordFanoutSkipped, peers.saturating_sub(sources) as u64);
    }
}

/// What state a read by the owner of a `WrExPess` object produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SelfReadMode {
    /// The full model: `WrExRLock(T)` — sound, and a second reader upgrades
    /// to `RdShRLock(2)` without contention (§3.2).
    #[default]
    WrExRLock,
    /// The paper's prototype (§7.1 "Extraneous contention"): limited metadata
    /// bits force `WrExWLock(T)`, so a second reader contends spuriously.
    WrExWLock,
    /// The paper's *unsound* alternate configuration (§7.1): `RdExRLock(T)`,
    /// which avoids spurious contention but loses the owner's write — unfit
    /// for sound dependence detection. For the E9 ablation only.
    RdExRLockUnsound,
}

/// Configuration of the hybrid engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct HybridConfig {
    /// Adaptive-policy parameters.
    pub policy: PolicyParams,
    /// Self-read behaviour on `WrExPess` (see [`SelfReadMode`]).
    pub self_read: SelfReadMode,
    /// §3.1 ablation: the paper's *initial, pre-insight design* — unlock
    /// pessimistic states eagerly after every access instead of deferring to
    /// PSROs. Every pessimistic access then pays a conditional unlock, no
    /// transition is ever reentrant, and the recorder's release-clock edges
    /// are unavailable (tracking-only configurations may use this; runtime
    /// support may not). The paper reports this design "added significant
    /// overhead"; the `e10_deferred_unlock_ablation` harness quantifies it.
    pub eager_unlock: bool,
    /// Run the online opt→pess demotion controller (DESIGN.md §13) with
    /// these parameters. Meant for infinite-cutoff configurations: when set,
    /// the controller *replaces* the §6 phase valve at unlock time (see
    /// [`EngineCommon`]`::adapt`), demoting objects whose observed
    /// coordination cost crosses the hysteresis band and re-promoting them
    /// when pessimistic traffic proves cheap again.
    pub adapt: Option<AdaptConfig>,
}

impl HybridConfig {
    /// The "w/ infinite cutoff" configuration of Figure 7.
    pub fn infinite_cutoff() -> Self {
        HybridConfig {
            policy: PolicyParams::infinite_cutoff(),
            ..HybridConfig::default()
        }
    }

    /// Infinite cutoff with the online demotion controller attached: the
    /// "graceful degradation" configuration — optimistic until measured
    /// coordination cost says otherwise, per object, reversibly.
    pub fn adaptive() -> Self {
        HybridConfig {
            policy: PolicyParams::infinite_cutoff(),
            adapt: Some(AdaptConfig::default()),
            ..HybridConfig::default()
        }
    }
}

/// The hybrid tracking engine.
pub struct HybridEngine<S: Support = NullSupport> {
    common: EngineCommon<S>,
    cfg: HybridConfig,
}

impl HybridEngine<NullSupport> {
    /// Hybrid tracking with the paper's default policy, no runtime support.
    pub fn new(rt: Arc<Runtime>) -> Self {
        HybridEngine::with_config(rt, NullSupport, HybridConfig::default())
    }
}

impl<S: Support> HybridEngine<S> {
    /// Hybrid tracking with explicit support and configuration.
    pub fn with_config(rt: Arc<Runtime>, support: S, cfg: HybridConfig) -> Self {
        assert!(
            !(cfg.eager_unlock && S::PREPUBLISH),
            "the §3.1 eager-unlock ablation is tracking-only: recorders rely              on deferred unlocking's release-clock edges"
        );
        let adapt = cfg
            .adapt
            .map(|a| AdaptController::new(a, rt.config().heap_objects));
        HybridEngine {
            common: EngineCommon::new(rt, support, AdaptivePolicy::new(cfg.policy))
                .with_adapt(adapt),
            cfg,
        }
    }

    /// Shared engine state (used by runtime-support crates).
    pub fn common(&self) -> &EngineCommon<S> {
        &self.common
    }

    /// This engine's configuration.
    pub fn config(&self) -> &HybridConfig {
        &self.cfg
    }

    // --- Shared conflict helpers (same as the optimistic engine) ---

    /// Coordinate an optimistic conflict on `o`. Returns `None` iff the
    /// runtime's coordination deadline expired first (DESIGN.md §13): the
    /// deadline event is recorded, the object force-demoted, and the caller
    /// restores the pre-claim state and retries — subsequent traffic on the
    /// object runs the pessimistic protocol, whose conflicting acquires need
    /// no roundtrip at all.
    fn conflict_coordinate(
        &self,
        ts: &mut ThreadState,
        o: ObjId,
        w: StateWord,
    ) -> Option<CoordMode> {
        let rt = self.common.rt.clone();
        let t = ts.tid;
        let deadline = rt.coord_deadline();
        let t0 = std::time::Instant::now();
        let mut scratch = std::mem::take(&mut ts.src_scratch);
        let mut pending = std::mem::take(&mut ts.fanout_scratch);
        scratch.clear();
        let fanout = w.kind() == Kind::RdSh;
        let mode = {
            let mut respond = self.common.respond_closure(ts);
            if fanout {
                coordinate_many_deadline(
                    &rt,
                    t,
                    Some(o),
                    &mut respond,
                    &mut scratch,
                    &mut pending,
                    deadline,
                )
            } else {
                coordinate_one_deadline(&rt, t, w.owner(), Some(o), &mut respond, deadline).map(
                    |out| {
                        scratch.push((w.owner(), out.source_clock));
                        out.mode
                    },
                )
            }
        };
        if fanout && mode.is_some() {
            ts.stats.bump(Event::CoordFanout);
            ts.stats.add(Event::CoordFanoutPeers, scratch.len() as u64);
            note_fanout_skips(&rt, ts, scratch.len());
        }
        ts.src_scratch = scratch;
        ts.fanout_scratch = pending;
        match mode {
            Some(m) => {
                ts.stats.bump(Event::CoordinationRoundtrip);
                if let Some(a) = &self.common.adapt {
                    let ev = a.record_coord(o.0, t0.elapsed().as_nanos() as u64);
                    self.note_adapt_event(ts, o, ev);
                }
                Some(m)
            }
            None => {
                self.note_coord_deadline(ts, o);
                None
            }
        }
    }

    /// Bookkeeping for a tripped coordination deadline: stats, trace, and a
    /// cooldown-bypassing demotion so the object's future traffic avoids the
    /// coordination it just proved expensive.
    #[cold]
    fn note_coord_deadline(&self, ts: &mut ThreadState, o: ObjId) {
        ts.stats.bump(Event::CoordDeadlineExceeded);
        self.common.rt.trace(ts.tid, TraceKind::CoordDeadline, o.0 as u64);
        if let Some(a) = &self.common.adapt {
            if a.force_demote(o.0) {
                ts.stats.bump(Event::AdaptDemotion);
                self.common.rt.trace(ts.tid, TraceKind::AdaptDemote, o.0 as u64);
            }
        }
    }

    /// Stats/trace for a controller transition, if one happened.
    fn note_adapt_event(&self, ts: &mut ThreadState, o: ObjId, ev: Option<AdaptEvent>) {
        match ev {
            None => {}
            Some(AdaptEvent::Demoted) => {
                ts.stats.bump(Event::AdaptDemotion);
                self.common.rt.trace(ts.tid, TraceKind::AdaptDemote, o.0 as u64);
            }
            Some(AdaptEvent::Promoted) => {
                ts.stats.bump(Event::AdaptPromotion);
                self.common.rt.trace(ts.tid, TraceKind::AdaptPromote, o.0 as u64);
            }
        }
    }

    fn finish_opt_conflict(&self, ts: &mut ThreadState, o: ObjId, mode: CoordMode, write: bool) {
        let (ev, tk) = match mode {
            CoordMode::Explicit | CoordMode::Mixed => {
                (Event::OptConflictExplicit, TraceKind::ConflictExplicit)
            }
            CoordMode::Implicit => (Event::OptConflictImplicit, TraceKind::ConflictImplicit),
        };
        ts.stats.bump(ev);
        self.common.rt.trace(ts.tid, tk, o.0 as u64);
        let cx = SupportCx {
            rt: &self.common.rt,
            t: ts.tid,
            op: ts.op_index,
        };
        self.common.support.on_transition(
            cx,
            o,
            TransitionEv::Conflict {
                mode,
                sources: &ts.src_scratch,
                write,
            },
        );
    }

    /// Fill `ts.src_scratch` with one remote thread's release clock.
    fn read_source_one(&self, ts: &mut ThreadState, remote: ThreadId) {
        ts.src_scratch.clear();
        ts.src_scratch
            .push((remote, self.common.rt.control(remote).release_clock()));
    }

    /// Fill `ts.src_scratch` with every other registered thread's clock
    /// (conservative RdSh sources).
    fn read_sources_all(&self, ts: &mut ThreadState) {
        ts.src_scratch.clear();
        let n = self.common.rt.registered_threads();
        for i in 0..n {
            let r = ThreadId(i as u16);
            if r != ts.tid {
                ts.src_scratch
                    .push((r, self.common.rt.control(r).release_clock()));
            }
        }
    }

    fn emit_pess_acquire(&self, ts: &mut ThreadState, o: ObjId, write: bool) {
        let cx = SupportCx {
            rt: &self.common.rt,
            t: ts.tid,
            op: ts.op_index,
        };
        self.common.support.on_transition(
            cx,
            o,
            TransitionEv::PessConflictingAcquire {
                sources: &ts.src_scratch,
                write,
            },
        );
    }

    /// Contended transition (Figure 2(b)): coordinate with the holder(s) so
    /// they flush their lock buffers, then the caller retries. A tripped
    /// coordination deadline is recorded and simply returns — the caller's
    /// retry loop re-examines the state either way, and the holder may well
    /// have flushed in the meantime.
    fn contended_coordinate(&self, ts: &mut ThreadState, o: ObjId, w: StateWord) {
        let rt = self.common.rt.clone();
        let t = ts.tid;
        let deadline = rt.coord_deadline();
        let fanout = w.kind() == Kind::RdSh;
        // The sources are not recorded here (the caller just retries), but
        // the scratch buffers are still reused so a contended RdSh
        // transition allocates nothing.
        let mut sink = std::mem::take(&mut ts.src_scratch);
        let mut pending = std::mem::take(&mut ts.fanout_scratch);
        sink.clear();
        let done = {
            let mut respond = self.common.respond_closure(ts);
            if fanout {
                // Read-locked by unknown threads: conservatively coordinate
                // with everyone (the state word does not name RdSh holders).
                coordinate_many_deadline(
                    &rt,
                    t,
                    Some(o),
                    &mut respond,
                    &mut sink,
                    &mut pending,
                    deadline,
                )
                .is_some()
            } else {
                coordinate_one_deadline(&rt, t, w.owner(), Some(o), &mut respond, deadline)
                    .is_some()
            }
        };
        if fanout && done {
            ts.stats.bump(Event::CoordFanout);
            ts.stats.add(Event::CoordFanoutPeers, sink.len() as u64);
            note_fanout_skips(&rt, ts, sink.len());
        }
        ts.src_scratch = sink;
        ts.fanout_scratch = pending;
        if done {
            ts.stats.bump(Event::CoordinationRoundtrip);
        } else {
            self.note_coord_deadline(ts, o);
        }
    }

    fn bump_pess(&self, ts: &mut ThreadState, o: ObjId, conflicting: bool, contended: bool) {
        ts.stats.bump(Event::PessUncontended);
        self.common.rt.trace(ts.tid, TraceKind::PessClaim, o.0 as u64);
        if conflicting {
            ts.stats.bump(Event::PessOwnerChange);
        }
        self.common
            .policy
            .on_pess_transition(self.common.rt.obj(o).profile(), conflicting, contended);
        if let Some(a) = &self.common.adapt {
            // Constant-cost samples, no clock reads: the pessimistic fast
            // path must stay tens of nanoseconds (see adapt.rs).
            let ev = a.record_pess(o.0, conflicting);
            self.note_adapt_event(ts, o, ev);
        }
        if self.cfg.eager_unlock {
            self.eager_unlock_now(ts, o);
        }
    }

    /// §3.1 ablation only: conditionally unlock the state this access just
    /// locked (the pre-deferred-unlocking design's per-access instrumentation
    /// tail). The object was pushed to the lock buffer by the caller; pop it
    /// and release the hold immediately.
    #[cold]
    fn eager_unlock_now(&self, ts: &mut ThreadState, o: ObjId) {
        // O(1) bitmap membership decides whether there is an entry to pop;
        // if absent (an in-place RLock→WLock upgrade re-locking an object
        // whose entry was already consumed) there is nothing to pop, but the
        // state still needs releasing below.
        ts.remove_lock(o);
        ts.rd_set.remove(o.0);
        let state = self.common.rt.obj(o).state();
        let mut cur = state.load(Ordering::Acquire);
        loop {
            let w = StateWord(cur);
            if !w.is_pess_locked() {
                return; // raced with a concurrent share-count change
            }
            let new = w.unlock_one();
            match state.compare_exchange_weak(cur, new.0, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    self.common.rt.obj(o).bump_version();
                    ts.stats.bump(Event::StateUnlocked);
                    return;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    fn bump_reentrant(&self, ts: &mut ThreadState, o: ObjId) {
        ts.stats.bump(Event::PessReentrant);
        self.common
            .policy
            .on_pess_transition(self.common.rt.obj(o).profile(), false, false);
    }

    // --- Write slow path (Figure 10(b), extended to the full Table 3) ---

    /// Returns false iff the write was aborted (`abortable` and the support
    /// requested it after a mid-transition yield); nothing is claimed then.
    #[cold]
    fn write_slow(&self, ts: &mut ThreadState, o: ObjId, abortable: bool) -> bool {
        let t = ts.tid;
        let rt = &self.common.rt;
        let obj = rt.obj(o);
        let state = obj.state();
        let mut contended = false;
        let mut spin = rt.spinner("hybrid write slow path");
        loop {
            let cur = state.load(Ordering::Acquire);
            let w = StateWord(cur);
            if w == StateWord::wr_ex_opt(t) {
                ts.stats.bump(Event::OptSameState);
                return true;
            }
            if w.is_int() {
                self.common.respond_pending(ts);
                if abortable && self.common.support.should_abort(t) {
                    return false;
                }
                spin.spin();
                continue;
            }

            if !w.is_pess() {
                // --- Optimistic states ---
                if w == StateWord::rd_ex_opt(t) {
                    // Upgrading: RdExOpt(T) → WrExOpt(T).
                    if state
                        .compare_exchange(
                            cur,
                            StateWord::wr_ex_opt(t).0,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        obj.bump_version();
                        ts.stats.bump(Event::OptUpgrading);
                        self.common.rt.trace(ts.tid, TraceKind::OptUpgrade, o.0 as u64);
                        let cx = self.common.cx(ts);
                        self.common.support.on_transition(cx, o, TransitionEv::UpgradeOwn);
                        return true;
                    }
                    continue;
                }
                // Conflicting optimistic transition (Figure 10(b) line 43).
                if state
                    .compare_exchange(cur, StateWord::int(t).0, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    continue;
                }
                obj.bump_version();
                let Some(mode) = self.conflict_coordinate(ts, o, w) else {
                    // Coordination deadline: restore the pre-claim state and
                    // retry. The object was force-demoted, so once the stall
                    // clears (one successful coordination, or the holder
                    // blocks) it runs the pessimistic protocol.
                    state.store(cur, Ordering::Release);
                    obj.bump_version();
                    continue;
                };
                if abortable && self.common.support.should_abort(t) {
                    // Yielded mid-coordination: restore and abort.
                    state.store(cur, Ordering::Release);
                    obj.bump_version();
                    return false;
                }
                // Adaptive-policy decision (line 46). Only explicit
                // coordination counts (§6.2 footnote 7) — evaluated
                // unconditionally so the conflict histogram stays honest
                // even when the demotion controller forces the move.
                let phase_to_pess = matches!(mode, CoordMode::Explicit | CoordMode::Mixed)
                    && self.common.policy.on_explicit_conflict(obj.profile());
                let to_pess = phase_to_pess
                    || self.common.adapt.as_ref().is_some_and(|a| a.is_demoted(o.0));
                // Support first, then publish (recorder entries must be
                // visible before the new state is).
                self.finish_opt_conflict(ts, o, mode, true);
                if to_pess {
                    state.store(StateWord::wr_ex_pess(t, LockMode::Write).0, Ordering::Release);
                    obj.bump_version();
                    ts.push_lock(o);
                    ts.stats.bump(Event::OptToPess);
                    self.common.rt.trace(ts.tid, TraceKind::OptToPess, o.0 as u64);
                    if self.cfg.eager_unlock {
                        self.eager_unlock_now(ts, o);
                    }
                } else {
                    state.store(StateWord::wr_ex_opt(t).0, Ordering::Release);
                    obj.bump_version();
                }
                return true;
            }

            // --- Pessimistic states ---
            if w.lock_mode() == LockMode::Unlocked {
                // Uncontended acquisition from an unlocked state:
                //   WrExPess(T)/RdExPess(T)   W by T  → WrExWLock(T)   (non-confl)
                //   WrExPess(T1)/RdExPess(T1) W by T2 → WrExWLock(T2)  (confl, clock edge)
                //   RdShPess(c)               W by T  → WrExWLock(T)   (confl, clock edges)
                let own = w.kind() != Kind::RdSh && w.owner() == t;
                let prev_owner = w.owner();
                let was_rdsh = w.kind() == Kind::RdSh;
                let final_w = StateWord::wr_ex_pess(t, LockMode::Write);
                if self.common.claim(obj, cur, t, final_w) {
                    let conflicting = !own;
                    if conflicting {
                        if was_rdsh {
                            self.read_sources_all(ts);
                        } else {
                            self.read_source_one(ts, prev_owner);
                        }
                        self.emit_pess_acquire(ts, o, true);
                    }
                    self.common.publish(obj, final_w);
                    ts.push_lock(o);
                    self.bump_pess(ts, o, conflicting, contended);
                    return true;
                }
                continue;
            }

            // Locked pessimistic states.
            if w == StateWord::wr_ex_pess(t, LockMode::Write) {
                // Reentrant: WrExWLock(T) W by T → same, no atomic op.
                self.bump_reentrant(ts, o);
                return true;
            }
            if w == StateWord::wr_ex_pess(t, LockMode::Read)
                || w == StateWord::rd_ex_pess(t, LockMode::Read)
            {
                // My own read lock upgrades in place:
                //   WrExRLock(T)/RdExRLock(T) W by T → WrExWLock(T).
                if state
                    .compare_exchange(
                        cur,
                        StateWord::wr_ex_pess(t, LockMode::Write).0,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    obj.bump_version();
                    // Already in the lock buffer from the read-lock.
                    ts.rd_set.remove(o.0);
                    ts.stats.bump(Event::PessUncontended);
                    self.common
                        .policy
                        .on_pess_transition(obj.profile(), false, contended);
                    if self.cfg.eager_unlock {
                        self.eager_unlock_now(ts, o);
                    }
                    return true;
                }
                continue;
            }
            if w.kind() == Kind::RdSh && w.read_locks() == 1 && ts.rd_set.contains(o.0) {
                // I am the sole read-locker: upgrade in place (keeps
                // two-phase locking intact for the RS enforcer; no other
                // thread can be mid-access since pessimistic readers must
                // lock).
                let final_w = StateWord::wr_ex_pess(t, LockMode::Write);
                if self.common.claim(obj, cur, t, final_w) {
                    ts.rd_set.remove(o.0);
                    // Write after other threads' past reads: conservative
                    // clock edges to everyone.
                    self.read_sources_all(ts);
                    self.emit_pess_acquire(ts, o, true);
                    self.common.publish(obj, final_w);
                    self.bump_pess(ts, o, true, contended);
                    return true;
                }
                continue;
            }

            // Contended transition: conflicting with someone else's lock.
            if !contended {
                contended = true;
                ts.stats.bump(Event::PessContended);
                self.common.rt.trace(ts.tid, TraceKind::PessContended, o.0 as u64);
            }
            self.contended_coordinate(ts, o, w);
            if abortable && self.common.support.should_abort(t) {
                return false;
            }
            // Retry: the holder(s) flush at their responding safe points.
            // Back off through the watchdog spinner so a contended livelock
            // is bounded and diagnosable.
            spin.spin();
        }
    }

    fn write_impl(&self, t: ThreadId, o: ObjId, v: u64, abortable: bool) -> Option<u64> {
        // SAFETY: attached thread (Tracker contract).
        let ts = unsafe { self.common.ts(t) };
        // Stamp before the state word is even examined: the epoch table must
        // prove "this shard never touched o" only when it is true (§14).
        self.common.rt.stamp_access(t, o);
        let obj = self.common.rt.obj(o);
        // Fast path (Figure 10(a)): only WrExOpt(T).
        if obj.state().load(Ordering::Acquire) == StateWord::wr_ex_opt(t).0 {
            ts.stats.bump(Event::OptSameState);
        } else if !self.write_slow(ts, o, abortable) {
            return None;
        }
        ts.stats.bump(Event::Write);
        self.common.rt.trace(t, TraceKind::Write, o.0 as u64);
        let prev = obj.data_read();
        obj.data_write(v);
        ts.op_index += 1;
        Some(prev)
    }

    // --- Read slow path ---

    #[cold]
    fn read_slow(&self, ts: &mut ThreadState, o: ObjId) {
        let t = ts.tid;
        let rt = &self.common.rt;
        let obj = rt.obj(o);
        let state = obj.state();
        let mut contended = false;
        let mut spin = rt.spinner("hybrid read slow path");
        loop {
            let cur = state.load(Ordering::Acquire);
            let w = StateWord(cur);
            if w == StateWord::wr_ex_opt(t) || w == StateWord::rd_ex_opt(t) {
                ts.stats.bump(Event::OptSameState);
                return;
            }
            if w.is_int() {
                self.common.respond_pending(ts);
                spin.spin();
                continue;
            }

            if !w.is_pess() {
                // --- Optimistic states ---
                match w.kind() {
                    Kind::RdSh => {
                        let c = w.rdsh_count();
                        if ts.rd_sh_count >= c {
                            ts.stats.bump(Event::OptSameState);
                        } else {
                            fence(Ordering::Acquire);
                            ts.rd_sh_count = c;
                            ts.stats.bump(Event::OptFence);
                            self.common.rt.trace(ts.tid, TraceKind::OptFence, o.0 as u64);
                            let cx = self.common.cx(ts);
                            self.common
                                .support
                                .on_transition(cx, o, TransitionEv::Fence { c });
                        }
                        return;
                    }
                    Kind::RdEx => {
                        // Upgrading: RdExOpt(T1) → RdShOpt(c).
                        let prev_owner = w.owner();
                        let pre = self.common.pre_epoch();
                        if self.common.claim(obj, cur, t, StateWord::rd_sh_opt(pre)) {
                            let c = self.common.post_epoch(pre);
                            ts.rd_sh_count = ts.rd_sh_count.max(c);
                            ts.stats.bump(Event::OptUpgrading);
                        self.common.rt.trace(ts.tid, TraceKind::OptUpgrade, o.0 as u64);
                            let cx = self.common.cx(ts);
                            self.common.support.on_transition(
                                cx,
                                o,
                                TransitionEv::RdShCreate {
                                    prev_owner,
                                    c,
                                    pess: false,
                                },
                            );
                            self.common.publish(obj, StateWord::rd_sh_opt(c));
                            return;
                        }
                        continue;
                    }
                    Kind::WrEx => {
                        // Conflicting optimistic read: WrExOpt(T1) → RdEx*(T2).
                        if state
                            .compare_exchange(
                                cur,
                                StateWord::int(t).0,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_err()
                        {
                            continue;
                        }
                        obj.bump_version();
                        let Some(mode) = self.conflict_coordinate(ts, o, w) else {
                            // Deadline: restore and retry (see write_slow).
                            state.store(cur, Ordering::Release);
                            obj.bump_version();
                            continue;
                        };
                        let phase_to_pess = matches!(mode, CoordMode::Explicit | CoordMode::Mixed)
                            && self.common.policy.on_explicit_conflict(obj.profile());
                        let to_pess = phase_to_pess
                            || self.common.adapt.as_ref().is_some_and(|a| a.is_demoted(o.0));
                        self.finish_opt_conflict(ts, o, mode, false);
                        if to_pess {
                            state.store(
                                StateWord::rd_ex_pess(t, LockMode::Read).0,
                                Ordering::Release,
                            );
                            obj.bump_version();
                            ts.push_read_lock(o);
                            ts.stats.bump(Event::OptToPess);
                    self.common.rt.trace(ts.tid, TraceKind::OptToPess, o.0 as u64);
                            if self.cfg.eager_unlock {
                                self.eager_unlock_now(ts, o);
                            }
                        } else {
                            state.store(StateWord::rd_ex_opt(t).0, Ordering::Release);
                            obj.bump_version();
                        }
                        return;
                    }
                    Kind::Int => unreachable!("handled above"),
                }
            }

            // --- Pessimistic states ---
            if w.lock_mode() == LockMode::Unlocked {
                if self.read_acquire_unlocked(ts, o, cur, w, contended) {
                    return;
                }
                continue;
            }

            // Locked pessimistic states: reentrant cases first.
            if w == StateWord::wr_ex_pess(t, LockMode::Write)
                || w == StateWord::wr_ex_pess(t, LockMode::Read)
                || w == StateWord::rd_ex_pess(t, LockMode::Read)
            {
                self.bump_reentrant(ts, o);
                return;
            }
            if w.kind() == Kind::RdSh && ts.rd_set.contains(o.0) {
                // RdShRLock(n) R by T with o ∈ T.rdSet → same (reentrant).
                self.bump_reentrant(ts, o);
                return;
            }

            match w.kind() {
                Kind::RdSh => {
                    // Join the read-shared lock: RdShRLock(n) → RdShRLock(n+1).
                    let c = w.rdsh_count();
                    let n = w.read_locks();
                    assert!(
                        (n as usize) < crate::word::MAX_READ_LOCKS as usize,
                        "read-lock count overflow"
                    );
                    if state
                        .compare_exchange(
                            cur,
                            StateWord::rd_sh_pess(c, n + 1).0,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        obj.bump_version();
                        ts.push_read_lock(o);
                        self.note_rdsh_read(ts, o, c);
                        self.bump_pess(ts, o, false, contended);
                        return;
                    }
                    continue;
                }
                Kind::RdEx | Kind::WrEx if w.lock_mode() == LockMode::Read => {
                    // RdExRLock(T1)/WrExRLock(T1) R by T2 → RdShRLock(2)(c_new):
                    // the second concurrent reader avoids contention (§3.2).
                    let prev_owner = w.owner();
                    debug_assert_ne!(prev_owner, t, "own RLock handled above");
                    let pre = self.common.pre_epoch();
                    if self.common.claim(obj, cur, t, StateWord::rd_sh_pess(pre, 2)) {
                        let c = self.common.post_epoch(pre);
                        let final_w = StateWord::rd_sh_pess(c, 2);
                        ts.rd_sh_count = ts.rd_sh_count.max(c);
                        let cx = self.common.cx(ts);
                        self.common.support.on_transition(
                            cx,
                            o,
                            TransitionEv::RdShCreate {
                                prev_owner,
                                c,
                                pess: true,
                            },
                        );
                        self.common.publish(obj, final_w);
                        ts.push_read_lock(o);
                        // A read of WrExRLock conflicts with T1's write under
                        // the cost model; of RdExRLock it does not.
                        let conflicting = w.kind() == Kind::WrEx;
                        self.bump_pess(ts, o, conflicting, contended);
                        return;
                    }
                    continue;
                }
                _ => {
                    // WrExWLock(T1) R by T2: contended.
                    if !contended {
                        contended = true;
                        ts.stats.bump(Event::PessContended);
                        self.common.rt.trace(ts.tid, TraceKind::PessContended, o.0 as u64);
                    }
                    self.contended_coordinate(ts, o, w);
                    spin.spin();
                }
            }
        }
    }

    /// Read acquisition from an unlocked pessimistic state. Returns true on
    /// success (caller returns), false to retry.
    fn read_acquire_unlocked(
        &self,
        ts: &mut ThreadState,
        o: ObjId,
        cur: u64,
        w: StateWord,
        contended: bool,
    ) -> bool {
        let t = ts.tid;
        let rt = &self.common.rt;
        let obj = rt.obj(o);
        let state = obj.state();
        match (w.kind(), w.owner() == t) {
            (Kind::WrEx, true) => {
                // WrExPess(T) R by T: full model → WrExRLock(T); prototype →
                // WrExWLock(T) (§7.1); ablation → RdExRLock(T) (unsound).
                let target = match self.cfg.self_read {
                    SelfReadMode::WrExRLock => StateWord::wr_ex_pess(t, LockMode::Read),
                    SelfReadMode::WrExWLock => StateWord::wr_ex_pess(t, LockMode::Write),
                    SelfReadMode::RdExRLockUnsound => StateWord::rd_ex_pess(t, LockMode::Read),
                };
                if self.common.claim(obj, cur, t, target) {
                    let cx = self.common.cx(ts);
                    self.common
                        .support
                        .on_transition(cx, o, TransitionEv::PessLocalAcquire);
                    self.common.publish(obj, target);
                    if target.lock_mode() == LockMode::Read {
                        ts.push_read_lock(o);
                    } else {
                        ts.push_lock(o);
                    }
                    self.bump_pess(ts, o, false, contended);
                    return true;
                }
                false
            }
            (Kind::WrEx, false) => {
                // WrExPess(T1) R by T2 → RdExRLock(T2): conflicting (w→r),
                // happens-before edge from T1's release clock (§4.2).
                let prev_owner = w.owner();
                let final_w = StateWord::rd_ex_pess(t, LockMode::Read);
                if self.common.claim(obj, cur, t, final_w) {
                    self.read_source_one(ts, prev_owner);
                    self.emit_pess_acquire(ts, o, false);
                    self.common.publish(obj, final_w);
                    ts.push_read_lock(o);
                    self.bump_pess(ts, o, true, contended);
                    return true;
                }
                false
            }
            (Kind::RdEx, true) => {
                // RdExPess(T) R by T → RdExRLock(T).
                let final_w = StateWord::rd_ex_pess(t, LockMode::Read);
                if self.common.claim(obj, cur, t, final_w) {
                    let cx = self.common.cx(ts);
                    self.common
                        .support
                        .on_transition(cx, o, TransitionEv::PessLocalAcquire);
                    self.common.publish(obj, final_w);
                    ts.push_read_lock(o);
                    self.bump_pess(ts, o, false, contended);
                    return true;
                }
                false
            }
            (Kind::RdEx, false) => {
                // RdExPess(T1) R by T2 → RdShRLock(1)(c_new).
                let prev_owner = w.owner();
                let pre = self.common.pre_epoch();
                if self.common.claim(obj, cur, t, StateWord::rd_sh_pess(pre, 1)) {
                    let c = self.common.post_epoch(pre);
                    let final_w = StateWord::rd_sh_pess(c, 1);
                    ts.rd_sh_count = ts.rd_sh_count.max(c);
                    let cx = self.common.cx(ts);
                    self.common.support.on_transition(
                        cx,
                        o,
                        TransitionEv::RdShCreate {
                            prev_owner,
                            c,
                            pess: true,
                        },
                    );
                    self.common.publish(obj, final_w);
                    ts.push_read_lock(o);
                    self.bump_pess(ts, o, false, contended);
                    return true;
                }
                false
            }
            (Kind::RdSh, _) => {
                // RdShPess(c) R by T → RdShRLock(1)(c), same epoch.
                let c = w.rdsh_count();
                if state
                    .compare_exchange(
                        cur,
                        StateWord::rd_sh_pess(c, 1).0,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    obj.bump_version();
                    ts.push_read_lock(o);
                    self.note_rdsh_read(ts, o, c);
                    self.bump_pess(ts, o, false, contended);
                    return true;
                }
                false
            }
            (Kind::Int, _) => unreachable!("Int is never pessimistic"),
        }
    }

    /// A pessimistic read joined RdSh epoch `c`: update `rdShCount` and emit
    /// the fence-equivalent event if this thread had not yet synchronized
    /// with the epoch (Table 3 footnote *).
    fn note_rdsh_read(&self, ts: &mut ThreadState, o: ObjId, c: u64) {
        if ts.rd_sh_count < c {
            fence(Ordering::Acquire);
            ts.rd_sh_count = c;
            let cx = self.common.cx(ts);
            self.common
                .support
                .on_transition(cx, o, TransitionEv::Fence { c });
        }
    }
}

impl<S: Support> Tracker for HybridEngine<S> {
    fn rt(&self) -> &Arc<Runtime> {
        &self.common.rt
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn attach(&self) -> ThreadId {
        self.common.attach()
    }

    fn detach(&self, t: ThreadId) {
        // SAFETY: called from the attached thread (Tracker contract).
        unsafe { self.common.detach(t) }
    }

    #[inline(always)]
    fn read(&self, t: ThreadId, o: ObjId) -> u64 {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        ts.stats.bump(Event::Read);
        // Stamp-before-examine, as in the write path (DESIGN.md §14).
        self.common.rt.stamp_access(t, o);
        let obj = self.common.rt.obj(o);
        let cur = obj.state().load(Ordering::Acquire);
        let w = StateWord(cur);
        // Fast path: exclusive owner, or read-shared with a fresh rdShCount
        // (Table 1's Same∗ row) — loads and compares, no synchronization.
        if cur == StateWord::wr_ex_opt(t).0
            || cur == StateWord::rd_ex_opt(t).0
            || (w.kind() == Kind::RdSh && !w.is_pess() && ts.rd_sh_count >= w.rdsh_count())
        {
            ts.stats.bump(Event::OptSameState);
        } else {
            // Read-mostly RdSh (§7.3 profile gate): attempt the
            // coordination-free seqlock read (DESIGN.md §12) before taking
            // any transition. Applies to pessimistic RdSh too — a validated
            // window proves no conflicting install overlapped, which is what
            // the read lock would have enforced — but the policy gate
            // excludes objects the valve currently holds pessimistic.
            if S::SEQLOCK_READS && w.kind() == Kind::RdSh && self.common.policy.read_mostly(obj.profile()) {
                if let Some(v) = self.common.seqlock_read(ts, o) {
                    self.common.rt.trace(t, TraceKind::Read, o.0 as u64);
                    ts.op_index += 1;
                    return v;
                }
            }
            self.read_slow(ts, o);
        }
        self.common.rt.trace(t, TraceKind::Read, o.0 as u64);
        let v = obj.data_read();
        ts.op_index += 1;
        v
    }

    #[inline(always)]
    fn write(&self, t: ThreadId, o: ObjId, v: u64) {
        self.write_impl(t, o, v, false);
    }

    fn try_write(&self, t: ThreadId, o: ObjId, v: u64) -> Option<u64> {
        self.write_impl(t, o, v, true)
    }

    fn alloc_init(&self, o: ObjId, owner: ThreadId) {
        // "Each object newly allocated by thread T starts in the WrExOpt(T)
        // state" (§6.2). The allocation stamps the owner's shard: the state
        // word names the owner, so targeted coordination may reach it before
        // its first instrumented access.
        self.common.rt.stamp_access(owner, o);
        let obj = self.common.rt.obj(o);
        obj.state().store(StateWord::wr_ex_opt(owner).0, Ordering::SeqCst);
        obj.bump_version();
    }

    #[inline]
    fn safepoint(&self, t: ThreadId) {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        self.common.poll(ts);
    }

    fn lock(&self, t: ThreadId, m: MonitorId) {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        self.common.monitor_acquire(ts, m);
    }

    fn unlock(&self, t: ThreadId, m: MonitorId) {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        self.common.monitor_release(ts, m);
    }

    fn wait(&self, t: ThreadId, m: MonitorId) {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        self.common.monitor_wait(ts, m);
    }

    fn notify_all(&self, t: ThreadId, m: MonitorId) {
        self.common.rt.monitor_notify_all_from(m, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drink_runtime::RuntimeConfig;

    fn engine_with(policy: PolicyParams) -> HybridEngine {
        HybridEngine::with_config(
            Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(8)
        .heap_objects(32)
        .monitors(4)
        .build())),
            NullSupport,
            HybridConfig {
                policy,
                ..HybridConfig::default()
            },
        )
    }

    fn engine() -> HybridEngine {
        engine_with(PolicyParams::default())
    }

    /// Policy that moves an object to pessimistic on its first explicit
    /// conflict and essentially never moves it back.
    fn eager_pess() -> PolicyParams {
        PolicyParams {
            cutoff_confl: 1,
            k_confl: 1_000_000,
            inertia: 1_000_000,
            contended_cutoff: u32::MAX,
        }
    }

    fn state_of(e: &HybridEngine, o: ObjId) -> StateWord {
        StateWord(e.rt().obj(o).state().load(Ordering::SeqCst))
    }

    /// Run `victim_ops` on a second thread while the caller's thread `t`
    /// keeps polling safe points (responding to coordination) until it
    /// finishes.
    fn with_responsive_main<R: Send>(
        e: &HybridEngine,
        t: ThreadId,
        victim_ops: impl FnOnce(ThreadId) -> R + Send,
    ) -> R {
        std::thread::scope(|s| {
            let h = s.spawn(move || {
                let t1 = e.attach();
                let r = victim_ops(t1);
                e.detach(t1);
                r
            });
            let mut spin = e.rt().spinner("scenario thread to finish");
            while !h.is_finished() {
                e.safepoint(t);
                spin.spin();
            }
            h.join().unwrap()
        })
    }

    #[test]
    fn objects_start_optimistic_and_stay_for_low_conflict() {
        let e = engine();
        let t = e.attach();
        let o = ObjId(0);
        e.alloc_init(o, t);
        for i in 0..1_000 {
            e.write(t, o, i);
            let _ = e.read(t, o);
        }
        assert_eq!(state_of(&e, o), StateWord::wr_ex_opt(t));
        e.detach(t);
        let r = e.rt().stats().report();
        assert_eq!(r.get(Event::OptSameState), 2_000);
        assert_eq!(r.opt_to_pess(), 0);
        assert_eq!(r.pess_uncontended(), 0);
    }

    #[test]
    fn explicit_conflicts_move_object_to_pessimistic() {
        let e = engine_with(eager_pess());
        let t0 = e.attach();
        let o = ObjId(1);
        e.alloc_init(o, t0);
        e.write(t0, o, 1);

        with_responsive_main(&e, t0, |t1| {
            e.write(t1, o, 2); // explicit conflict → policy → pessimistic
            // t1 now holds WrExWLock(t1); its detach flushes to unlocked.
            assert_eq!(
                StateWord(e.rt().obj(o).state().load(Ordering::SeqCst)),
                StateWord::wr_ex_pess(t1, LockMode::Write)
            );
            t1
        });
        let w = state_of(&e, o);
        assert!(w.is_pess_unlocked(), "detach flush unlocked it: {w:?}");
        e.detach(t0);
        let r = e.rt().stats().report();
        assert_eq!(r.opt_to_pess(), 1);
        assert_eq!(r.get(Event::OptConflictExplicit), 1);
    }

    #[test]
    fn implicit_conflicts_do_not_trigger_policy() {
        // Footnote 7: only explicit coordination counts toward Cutoff_confl.
        let e = engine_with(eager_pess());
        let o = ObjId(2);
        std::thread::scope(|s| {
            let er = &e;
            s.spawn(move || {
                let t0 = er.attach();
                er.alloc_init(o, t0);
                er.write(t0, o, 1);
                er.detach(t0); // blocked forever → implicit coordination
            })
            .join()
            .unwrap();
            s.spawn(move || {
                let t1 = er.attach();
                er.write(t1, o, 2);
                er.detach(t1);
            });
        });
        let r = e.rt().stats().report();
        assert_eq!(r.get(Event::OptConflictImplicit), 1);
        assert_eq!(r.opt_to_pess(), 0, "implicit conflicts keep objects optimistic");
    }

    #[test]
    fn deferred_unlocking_until_psro() {
        // Figure 2(a): well-synchronized accesses encounter no contention
        // because the PSRO flush releases the pessimistic lock.
        let e = engine_with(eager_pess());
        let t0 = e.attach();
        let o = ObjId(3);
        let m = MonitorId(0);
        e.alloc_init(o, t0);
        e.write(t0, o, 1);

        with_responsive_main(&e, t0, |t1| {
            e.lock(t1, m);
            e.write(t1, o, 2); // goes pessimistic here (explicit conflict)
            let w = StateWord(e.rt().obj(o).state().load(Ordering::SeqCst));
            assert_eq!(w, StateWord::wr_ex_pess(t1, LockMode::Write));
            e.write(t1, o, 3); // reentrant: still write-locked
            e.unlock(t1, m); // PSRO → flush
            let w = StateWord(e.rt().obj(o).state().load(Ordering::SeqCst));
            assert!(w.is_pess_unlocked(), "PSRO flush unlocks: {w:?}");
        });

        // t0 now locks it without contention (Figure 2(a)'s T2).
        e.lock(t0, m);
        let _ = e.read(t0, o);
        e.unlock(t0, m);
        e.detach(t0);
        let r = e.rt().stats().report();
        assert_eq!(r.pess_contended(), 0, "well-synchronized ⇒ no contention");
        assert_eq!(r.get(Event::PessReentrant), 1);
        assert!(r.pess_uncontended() >= 2);
    }

    #[test]
    fn object_level_race_triggers_contended_transition() {
        // Figure 2(b): an access racing with a locked state falls back to
        // coordination.
        let e = engine_with(eager_pess());
        let t0 = e.attach();
        let o = ObjId(4);
        e.alloc_init(o, t0);
        e.write(t0, o, 1);

        with_responsive_main(&e, t0, |t1| {
            e.write(t1, o, 2); // → WrExWLock(t1), held until t1's next PSRO
        });
        // t1 detached (flushed), so this does NOT contend. Get the lock held
        // again, by t0 this time, then race from another thread.
        e.write(t0, o, 3); // pess unlocked → WrExWLock(t0)
        assert_eq!(state_of(&e, o), StateWord::wr_ex_pess(t0, LockMode::Write));

        with_responsive_main(&e, t0, |t2| {
            // t0 holds the write lock and is polling safe points: t2's read
            // contends, coordinates, t0's responding safe point flushes, and
            // t2 retries uncontended.
            assert_eq!(e.read(t2, o), 3);
        });
        e.detach(t0);
        let r = e.rt().stats().report();
        assert_eq!(r.pess_contended(), 1);
        assert!(r.get(Event::RespondedExplicit) >= 1);
    }

    #[test]
    fn second_reader_joins_via_wrex_rlock_without_contention() {
        // §3.2: "The read-locked write-exclusive state enables a second
        // concurrent reader to upgrade to RdShRLock(2), instead of
        // encountering contention."
        let e = engine_with(eager_pess());
        let t0 = e.attach();
        let o = ObjId(5);
        e.alloc_init(o, t0);
        e.write(t0, o, 9);

        with_responsive_main(&e, t0, |t1| {
            e.write(t1, o, 10); // → pessimistic
        });
        // t0 reads its... t1's object: WrExPess(t1) unlocked → RdExRLock(t0).
        assert_eq!(e.read(t0, o), 10);
        assert_eq!(state_of(&e, o), StateWord::rd_ex_pess(t0, LockMode::Read));
        // Re-read is reentrant.
        assert_eq!(e.read(t0, o), 10);

        // A second reader joins: RdExRLock(t0) → RdShRLock(2)(c).
        with_responsive_main(&e, t0, |t2| {
            assert_eq!(e.read(t2, o), 10);
            let w = StateWord(e.rt().obj(o).state().load(Ordering::SeqCst));
            assert_eq!(w.kind(), Kind::RdSh);
            assert_eq!(w.read_locks(), 2);
        });
        // t2 detached → flushed one share.
        let w = state_of(&e, o);
        assert_eq!(w.read_locks(), 1);
        e.detach(t0);
        let w = state_of(&e, o);
        assert!(w.is_pess_unlocked());
        assert_eq!(e.rt().stats().get(Event::PessContended), 0);
        assert_eq!(e.rt().stats().get(Event::PessReentrant), 1);
    }

    #[test]
    fn prototype_wrexwlock_mode_contends_spuriously() {
        // §7.1 "Extraneous contention": with the prototype's self-read mode,
        // a read of WrExPess(T1) by T1 write-locks, so a second reader
        // contends even without an object-level data race.
        let e = HybridEngine::with_config(
            Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(8)
        .heap_objects(32)
        .monitors(4)
        .build())),
            NullSupport,
            HybridConfig {
                policy: eager_pess(),
                self_read: SelfReadMode::WrExWLock,
                ..HybridConfig::default()
            },
        );
        let t0 = e.attach();
        let o = ObjId(6);
        e.alloc_init(o, t0);
        e.write(t0, o, 1);
        with_responsive_main(&e, t0, |t1| {
            e.write(t1, o, 2); // pessimistic now
        });
        // Take write ownership, flush at a PSRO, then self-read: under the
        // prototype encoding the self-read write-locks.
        e.write(t0, o, 3);
        e.lock(t0, MonitorId(3));
        e.unlock(t0, MonitorId(3)); // PSRO flush → WrExPess(t0) unlocked
        assert_eq!(state_of(&e, o), StateWord::wr_ex_pess(t0, LockMode::Unlocked));
        let _ = e.read(t0, o);
        assert_eq!(state_of(&e, o), StateWord::wr_ex_pess(t0, LockMode::Write));

        with_responsive_main(&e, t0, |t2| {
            let _ = e.read(t2, o); // contends with t0's WLock
        });
        e.detach(t0);
        assert!(e.rt().stats().get(Event::PessContended) >= 1);
    }

    #[test]
    fn policy_returns_object_to_optimistic() {
        // K_confl=1, Inertia=2: two non-conflicting pessimistic transitions
        // flip the object back at its next unlock.
        let e = engine_with(PolicyParams {
            cutoff_confl: 1,
            k_confl: 1,
            inertia: 2,
            contended_cutoff: u32::MAX,
        });
        let t0 = e.attach();
        let o = ObjId(7);
        e.alloc_init(o, t0);
        e.write(t0, o, 1);
        with_responsive_main(&e, t0, |t1| {
            e.write(t1, o, 2); // → pessimistic (conflict #1)
        });
        // Pessimistic non-conflicting transitions by t0... first acquire is
        // conflicting (prev owner t1), later ones are its own.
        for i in 0..8 {
            e.write(t0, o, i); // first: confl acquire; rest: reentrant
        }
        // Flush at a PSRO; policy should have flipped the object by now.
        e.lock(t0, MonitorId(1));
        e.unlock(t0, MonitorId(1));
        assert_eq!(state_of(&e, o), StateWord::wr_ex_opt(t0));
        e.detach(t0);
        let r = e.rt().stats().report();
        assert_eq!(r.pess_to_opt(), 1);
        // One-way valve: subsequent accesses stay optimistic.
        assert_eq!(r.opt_to_pess(), 1);
    }

    #[test]
    fn self_rdsh_upgrade_in_place_when_sole_locker() {
        let e = engine_with(eager_pess());
        let t0 = e.attach();
        let o = ObjId(8);
        // Construct RdShPess directly (unlocked, epoch 1).
        e.rt()
            .obj(o)
            .state()
            .store(StateWord::rd_sh_pess(1, 0).0, Ordering::SeqCst);
        // Drive the valve profile to Pess so `read_mostly` rejects the
        // seqlock path and the read exercises the join-as-sole-locker
        // protocol this test pins (eager_pess: one conflict flips).
        AdaptivePolicy::new(eager_pess()).on_explicit_conflict(e.rt().obj(o).profile());
        // Read: joins as sole locker.
        let _ = e.read(t0, o);
        assert_eq!(state_of(&e, o).read_locks(), 1);
        // Write: in-place upgrade, no coordination (no other lockers).
        e.write(t0, o, 5);
        assert_eq!(state_of(&e, o), StateWord::wr_ex_pess(t0, LockMode::Write));
        e.detach(t0);
        assert_eq!(e.rt().stats().get(Event::PessContended), 0);
    }

    #[test]
    fn sync_inc_pattern_avoids_repeated_coordination() {
        // The syncInc microbenchmark shape (Figure 8(a)): well-synchronized
        // counter increments. Under hybrid tracking the counter object goes
        // pessimistic after Cutoff_confl conflicts and thereafter transfers
        // by CAS, not by roundtrip coordination.
        const ITERS: u64 = 2_000;
        let e = engine(); // paper defaults: cutoff 4
        let counter = ObjId(9);
        let m = MonitorId(2);
        let barrier = std::sync::Barrier::new(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let er = &e;
                let barrier = &barrier;
                s.spawn(move || {
                    let t = er.attach();
                    barrier.wait();
                    for _ in 0..ITERS {
                        er.lock(t, m);
                        let v = er.read(t, counter);
                        er.write(t, counter, v + 1);
                        er.unlock(t, m);
                        er.safepoint(t);
                    }
                    er.detach(t);
                });
            }
        });
        // The lock makes increments atomic: the count is exact.
        assert_eq!(e.rt().obj(counter).data_read(), 4 * ITERS);
        let r = e.rt().stats().report();
        // Whether the counter crosses Cutoff_confl depends on how many of
        // its conflicts resolved explicitly (parked waiters are coordinated
        // with implicitly, which the policy ignores — footnote 7), so the
        // move is scheduling-dependent; what must hold is that it moves at
        // most once and that the run stays contention-free.
        assert!(r.opt_to_pess() <= 1);
        if r.opt_to_pess() == 1 {
            // Once pessimistic, ownership transfers by CAS: pessimistic
            // transitions materialize and coordination stays bounded.
            assert!(r.pess_uncontended() > 0);
        }
        assert_eq!(r.pess_contended(), 0, "object-level DRF ⇒ no contention");
    }

    #[test]
    fn racy_inc_pattern_completes_and_counts_contention() {
        // The racyInc microbenchmark shape (Figure 8(b)): unsynchronized
        // increments. Hybrid tracking's worst case — contended transitions
        // trigger coordination repeatedly — but it must remain live and
        // preserve instrumentation–access atomicity.
        const ITERS: u64 = 2_000;
        let e = engine();
        let counter = ObjId(10);
        let barrier = std::sync::Barrier::new(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let er = &e;
                let barrier = &barrier;
                s.spawn(move || {
                    let t = er.attach();
                    barrier.wait();
                    for _ in 0..ITERS {
                        let v = er.read(t, counter);
                        er.write(t, counter, v + 1);
                        er.safepoint(t);
                    }
                    er.detach(t);
                });
            }
        });
        let r = e.rt().stats().report();
        assert_eq!(r.accesses(), 4 * ITERS * 2);
        // Racy increments lose updates; the final value is between ITERS and
        // the total. (Atomicity of each instrumented access still held.)
        let v = e.rt().obj(counter).data_read();
        assert!((ITERS..=4 * ITERS).contains(&v), "final counter {v}");
        let w = state_of(&e, counter);
        assert!(!w.is_int() && !w.is_pess_locked(), "quiescent state: {w:?}");
    }

    #[test]
    fn eager_unlock_ablation_tracks_correctly_without_buffering() {
        // §3.1's strawman: states unlock after every access. Reentrancy
        // disappears, the lock buffer stays empty, and tracking stays sound.
        let e = HybridEngine::with_config(
            Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(8)
        .heap_objects(32)
        .monitors(4)
        .build())),
            NullSupport,
            HybridConfig {
                policy: eager_pess(),
                eager_unlock: true,
                ..HybridConfig::default()
            },
        );
        let t0 = e.attach();
        let o = ObjId(12);
        e.alloc_init(o, t0);
        e.write(t0, o, 1);
        with_responsive_main(&e, t0, |t1| {
            e.write(t1, o, 2); // → pessimistic via the policy
            // Eager unlock: the state is already unlocked, mid-"region".
            let w = StateWord(e.rt().obj(o).state().load(Ordering::SeqCst));
            assert!(w.is_pess_unlocked(), "eagerly unlocked: {w:?}");
        });
        // Repeated owner writes never become reentrant (no lock is held).
        e.write(t0, o, 3);
        e.write(t0, o, 4);
        assert_eq!(e.rt().obj(o).data_read(), 4);
        e.detach(t0);
        let r = e.rt().stats().report();
        assert_eq!(r.get(Event::PessReentrant), 0, "no reentrancy without holds");
        assert!(r.pess_uncontended() >= 2);
        assert_eq!(r.pess_contended(), 0);
    }

    #[test]
    fn contended_cutoff_extension_rescues_racy_objects() {
        // §7.5: "Hybrid tracking could alleviate this deficiency by modifying
        // the adaptive policy to switch a pessimistic object back to
        // optimistic states if accesses to it trigger coordination
        // frequently."
        const ITERS: u64 = 400;
        let run = |params: PolicyParams| {
            let e = engine_with(params);
            let counter = ObjId(11);
            let barrier = std::sync::Barrier::new(4);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let er = &e;
                    let barrier = &barrier;
                    s.spawn(move || {
                        let t = er.attach();
                        barrier.wait();
                        for _ in 0..ITERS {
                            let v = er.read(t, counter);
                            er.write(t, counter, v + 1);
                            er.safepoint(t);
                        }
                        er.detach(t);
                    });
                }
            });
            e.rt().stats().report()
        };
        let base = run(PolicyParams::default());
        let ext = run(PolicyParams::default().with_contended_cutoff(8));
        // With the extension the object flips back to optimistic, so it can
        // flip at most... once (one-way valve) — and contended transitions
        // stop accumulating after the flip.
        assert!(ext.pess_to_opt() <= 1);
        if base.pess_contended() > 0 {
            assert!(
                ext.pess_contended() <= base.pess_contended(),
                "extension should not increase contention (base {}, ext {})",
                base.pess_contended(),
                ext.pess_contended()
            );
        }
    }
}
