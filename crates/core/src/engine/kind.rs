//! Runtime engine selection: one [`EngineKind`] enum, one CLI parser, one
//! constructor — and the object-safe erasure ([`AnyEngine`]) that lets a
//! binary hold "some tracking engine" without monomorphizing per kind.
//!
//! Before this module every binary carried its own copy of the
//! string-to-engine match (`contention`, `custom_workload`, `trace`) and the
//! workload driver duplicated a seven-arm constructor match. A server-shaped
//! consumer (`drink-serve`) cannot afford either: its store holds *one*
//! engine chosen at startup and must route every tracked access through it
//! with zero per-engine code. [`Tracker`] was already object-safe, so the
//! erasure is a thin box: [`EngineKind::build`] returns an [`AnyEngine`]
//! (a `Box<dyn Tracker>` plus the kind that built it), which itself
//! implements [`Tracker`] — so `Session<'_, AnyEngine>` works unchanged and
//! generic drivers accept erased engines without a separate code path.

use std::str::FromStr;
use std::sync::Arc;

use drink_runtime::{MonitorId, ObjId, Runtime, RuntimeConfig, ThreadId};

use crate::engine::hybrid::{HybridConfig, HybridEngine};
use crate::engine::ideal::IdealEngine;
use crate::engine::none::NoTracking;
use crate::engine::optimistic::OptimisticEngine;
use crate::engine::pessimistic::PessimisticEngine;
use crate::engine::Tracker;
use crate::support::NullSupport;

/// The type-erased tracker: [`Tracker`] is object-safe by design, so the
/// erased form is just the trait object.
pub type DynTracker = dyn Tracker;

/// The engine configurations of Figure 7 (plus the online-adaptive overlay).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Unmodified runtime (overhead baseline).
    Baseline,
    /// Pessimistic tracking (§2.1).
    Pessimistic,
    /// Optimistic tracking (§2.2).
    Optimistic,
    /// Hybrid tracking with the paper's default policy (§3/§6).
    Hybrid,
    /// Hybrid tracking with `Cutoff_confl = ∞` (costs-only configuration).
    HybridInfiniteCutoff,
    /// Optimistic tracking steered by the online EWMA demotion controller
    /// (`crate::adapt`): starts everywhere-optimistic like
    /// [`EngineKind::Optimistic`], but per-object coordination-cost feedback
    /// demotes hot objects to the pessimistic protocol (and promotes them
    /// back when the mix turns read-mostly).
    Adaptive,
    /// The unsound "Ideal" upper-bound estimate (§7.5).
    Ideal,
}

impl EngineKind {
    /// All configurations, in Figure 7's legend order (baseline excluded).
    pub const FIGURE7: [EngineKind; 5] = [
        EngineKind::Pessimistic,
        EngineKind::Optimistic,
        EngineKind::HybridInfiniteCutoff,
        EngineKind::Hybrid,
        EngineKind::Ideal,
    ];

    /// Every kind, for parsers and exhaustive sweeps.
    pub const ALL: [EngineKind; 7] = [
        EngineKind::Baseline,
        EngineKind::Pessimistic,
        EngineKind::Optimistic,
        EngineKind::Hybrid,
        EngineKind::HybridInfiniteCutoff,
        EngineKind::Adaptive,
        EngineKind::Ideal,
    ];

    /// The CLI spellings [`EngineKind::parse`] accepts, for usage strings.
    pub const CLI_NAMES: &'static str =
        "baseline|pess[imistic]|opt[imistic]|hybrid|hybrid-inf|adapt[ive]|ideal";

    /// Display name matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Baseline => "Baseline",
            EngineKind::Pessimistic => "Pessimistic tracking",
            EngineKind::Optimistic => "Optimistic tracking",
            EngineKind::Hybrid => "Hybrid tracking",
            EngineKind::HybridInfiniteCutoff => "Hybrid tracking w/infinite cutoff",
            EngineKind::Adaptive => "Adaptive (online demotion)",
            EngineKind::Ideal => "Ideal",
        }
    }

    /// Canonical short name: stable row/table tags and the preferred CLI
    /// spelling. Round-trips through [`EngineKind::parse`].
    pub fn short_name(self) -> &'static str {
        match self {
            EngineKind::Baseline => "baseline",
            EngineKind::Pessimistic => "pess",
            EngineKind::Optimistic => "opt",
            EngineKind::Hybrid => "hybrid",
            EngineKind::HybridInfiniteCutoff => "hybrid-inf",
            EngineKind::Adaptive => "adapt",
            EngineKind::Ideal => "ideal",
        }
    }

    /// Parse a CLI engine name. This is the *only* string-to-engine mapping
    /// in the workspace; binaries must not grow private copies. Accepts the
    /// canonical short names plus the long spellings the older per-bin
    /// parsers took (`pessimistic`, `optimistic`, `adaptive`).
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s {
            "baseline" | "none" => Some(EngineKind::Baseline),
            "pess" | "pessimistic" => Some(EngineKind::Pessimistic),
            "opt" | "optimistic" => Some(EngineKind::Optimistic),
            "hybrid" => Some(EngineKind::Hybrid),
            "hybrid-inf" | "hybrid-infinite" => Some(EngineKind::HybridInfiniteCutoff),
            "adapt" | "adaptive" => Some(EngineKind::Adaptive),
            "ideal" => Some(EngineKind::Ideal),
            _ => None,
        }
    }

    /// Construct the engine behind an object-safe box. The one constructor
    /// match in the workspace; everything downstream goes through the erased
    /// interface.
    pub fn build_boxed(self, rt: Arc<Runtime>) -> Box<DynTracker> {
        match self {
            EngineKind::Baseline => Box::new(NoTracking::new(rt)),
            EngineKind::Pessimistic => Box::new(PessimisticEngine::new(rt)),
            EngineKind::Optimistic => Box::new(OptimisticEngine::new(rt)),
            EngineKind::Hybrid => Box::new(HybridEngine::new(rt)),
            EngineKind::HybridInfiniteCutoff => Box::new(HybridEngine::with_config(
                rt,
                NullSupport,
                HybridConfig::infinite_cutoff(),
            )),
            EngineKind::Adaptive => Box::new(HybridEngine::with_config(
                rt,
                NullSupport,
                HybridConfig::adaptive(),
            )),
            EngineKind::Ideal => Box::new(IdealEngine::new(rt)),
        }
    }

    /// Build this kind on a caller-provided runtime, erased. The runtime may
    /// carry pre-registered hooks (the chaos harness) or a caller-tuned
    /// config; it must be sized for the workload that will run.
    pub fn build(self, rt: Arc<Runtime>) -> AnyEngine {
        AnyEngine { kind: self, inner: self.build_boxed(rt) }
    }

    /// Build this kind on a fresh runtime constructed from `config`.
    pub fn build_config(self, config: RuntimeConfig) -> AnyEngine {
        self.build(Arc::new(Runtime::new(config)))
    }
}

impl FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EngineKind::parse(s)
            .ok_or_else(|| format!("unknown engine `{s}` (expected {})", EngineKind::CLI_NAMES))
    }
}

/// A tracking engine selected at runtime: `Box<dyn Tracker>` plus the
/// [`EngineKind`] that built it. Implements [`Tracker`] by delegation, so
/// every generic consumer (`Session`, the workload driver, the serve store)
/// accepts it unchanged — the virtual call per operation is the entire cost
/// of erasure.
pub struct AnyEngine {
    kind: EngineKind,
    inner: Box<DynTracker>,
}

impl AnyEngine {
    /// Wrap an already-built engine under its kind tag.
    pub fn from_boxed(kind: EngineKind, inner: Box<DynTracker>) -> Self {
        AnyEngine { kind, inner }
    }

    /// Which configuration built this engine.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }
}

impl std::fmt::Debug for AnyEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnyEngine").field("kind", &self.kind).finish_non_exhaustive()
    }
}

impl Tracker for AnyEngine {
    #[inline]
    fn rt(&self) -> &Arc<Runtime> {
        self.inner.rt()
    }

    /// The configuration name under which results report. The adaptive kind
    /// shares the hybrid engine's machinery but must report under its own
    /// label so bench tables and chaos matrices can gate the controller
    /// separately (previously patched up by the workload driver post-run).
    fn name(&self) -> &'static str {
        match self.kind {
            EngineKind::Adaptive => "adaptive",
            _ => self.inner.name(),
        }
    }

    #[inline]
    fn attach(&self) -> ThreadId {
        self.inner.attach()
    }

    #[inline]
    fn detach(&self, t: ThreadId) {
        self.inner.detach(t)
    }

    #[inline]
    fn read(&self, t: ThreadId, o: ObjId) -> u64 {
        self.inner.read(t, o)
    }

    #[inline]
    fn write(&self, t: ThreadId, o: ObjId, v: u64) {
        self.inner.write(t, o, v)
    }

    #[inline]
    fn try_write(&self, t: ThreadId, o: ObjId, v: u64) -> Option<u64> {
        self.inner.try_write(t, o, v)
    }

    #[inline]
    fn alloc_init(&self, o: ObjId, owner: ThreadId) {
        self.inner.alloc_init(o, owner)
    }

    #[inline]
    fn alloc_init_read_shared(&self, o: ObjId) {
        self.inner.alloc_init_read_shared(o)
    }

    #[inline]
    fn safepoint(&self, t: ThreadId) {
        self.inner.safepoint(t)
    }

    #[inline]
    fn lock(&self, t: ThreadId, m: MonitorId) {
        self.inner.lock(t, m)
    }

    #[inline]
    fn unlock(&self, t: ThreadId, m: MonitorId) {
        self.inner.unlock(t, m)
    }

    #[inline]
    fn wait(&self, t: ThreadId, m: MonitorId) {
        self.inner.wait(t, m)
    }

    #[inline]
    fn notify_all(&self, t: ThreadId, m: MonitorId) {
        self.inner.notify_all(t, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;

    fn tiny_rt() -> Arc<Runtime> {
        Arc::new(Runtime::new(
            RuntimeConfig::builder().max_threads(2).heap_objects(8).monitors(2).build(),
        ))
    }

    #[test]
    fn every_kind_builds_and_serves_a_session() {
        for kind in EngineKind::ALL {
            let engine = kind.build(tiny_rt());
            assert_eq!(engine.kind(), kind);
            let s = Session::attach(&engine);
            s.alloc(ObjId(0));
            s.write(ObjId(0), 41);
            assert_eq!(s.read(ObjId(0)), 41);
            s.synchronized(MonitorId(0), |s| s.write(ObjId(0), 42));
            s.safepoint();
            drop(s);
            if kind != EngineKind::Baseline {
                assert!(engine.rt().stats().report().accesses() >= 3, "{kind:?}");
            }
        }
    }

    #[test]
    fn sessions_work_against_the_bare_trait_object() {
        // `Session<dyn Tracker>`: the erasure needs no wrapper at all when
        // the caller already holds a box.
        let boxed: Box<DynTracker> = EngineKind::Hybrid.build_boxed(tiny_rt());
        let s: Session<'_, DynTracker> = Session::attach(&*boxed);
        s.alloc(ObjId(1));
        s.write(ObjId(1), 7);
        assert_eq!(s.read(ObjId(1)), 7);
    }

    #[test]
    fn adaptive_reports_its_own_name() {
        assert_eq!(EngineKind::Adaptive.build(tiny_rt()).name(), "adaptive");
        assert_eq!(EngineKind::Hybrid.build(tiny_rt()).name(), "hybrid");
        assert_eq!(EngineKind::HybridInfiniteCutoff.build(tiny_rt()).name(), "hybrid");
    }

    #[test]
    fn parse_roundtrips_short_names_and_accepts_long_forms() {
        for kind in EngineKind::ALL {
            assert_eq!(EngineKind::parse(kind.short_name()), Some(kind));
        }
        assert_eq!(EngineKind::parse("pessimistic"), Some(EngineKind::Pessimistic));
        assert_eq!(EngineKind::parse("optimistic"), Some(EngineKind::Optimistic));
        assert_eq!(EngineKind::parse("adaptive"), Some(EngineKind::Adaptive));
        assert_eq!(EngineKind::parse("nonsense"), None);
        assert!("nope".parse::<EngineKind>().unwrap_err().contains("unknown engine"));
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = EngineKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), EngineKind::ALL.len());
    }
}
