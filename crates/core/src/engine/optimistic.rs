//! Optimistic tracking (§2.2): Octet.
//!
//! The fast path is a single load and compare — no atomic operation, no
//! fence. The slow path (Figure 1) distinguishes:
//!
//! * **upgrading** transitions (`RdEx(T) → WrEx(T)` by the owner,
//!   `RdEx(T1) → RdSh(c)` by a second reader): one CAS;
//! * **fence** transitions (first read of a RdSh epoch newer than the
//!   thread's `rdShCount`): a memory fence;
//! * **conflicting** transitions: the accessor claims the state with the
//!   intermediate `Int(T)` state, then *coordinates* with the previous
//!   owner(s) — a roundtrip through their next safe point (explicit), or an
//!   epoch CAS if they are blocked (implicit) — before installing the new
//!   state. While waiting, the accessor itself responds to requests
//!   (Figure 1 line 18), which keeps the protocol deadlock-free.
//!
//! RdSh conflicts coordinate with every other registered thread
//! (footnote 4).

use std::sync::atomic::{fence, Ordering};
use std::sync::Arc;

use drink_runtime::{Event, MonitorId, ObjId, Runtime, ThreadId, TraceKind};

use crate::common::EngineCommon;
use crate::coord::{coordinate_many, coordinate_one};
use crate::engine::Tracker;
use crate::policy::AdaptivePolicy;
use crate::support::{CoordMode, NullSupport, Support, SupportCx, TransitionEv};
use crate::word::{Kind, StateWord};

/// The Octet engine.
pub struct OptimisticEngine<S: Support = NullSupport> {
    common: EngineCommon<S>,
}

impl OptimisticEngine<NullSupport> {
    /// Optimistic tracking over `rt`, no runtime support.
    pub fn new(rt: Arc<Runtime>) -> Self {
        OptimisticEngine::with_support(rt, NullSupport)
    }
}

impl<S: Support> OptimisticEngine<S> {
    /// Optimistic tracking with runtime support `support`.
    pub fn with_support(rt: Arc<Runtime>, support: S) -> Self {
        OptimisticEngine {
            // Octet has no adaptive policy, but we still count each object's
            // explicit conflicts in its profile word (with an infinite cutoff
            // so nothing ever changes state). This powers the Figure 6 CDF
            // and the §7.3 limit study, at a cost paid only on conflicting
            // transitions — which already cost a coordination roundtrip.
            common: EngineCommon::new(
                rt,
                support,
                AdaptivePolicy::new(crate::policy::PolicyParams::infinite_cutoff()),
            ),
        }
    }

    /// Shared engine state (used by runtime-support crates).
    pub fn common(&self) -> &EngineCommon<S> {
        &self.common
    }

    /// Returns false iff the write was aborted (`abortable` and the support
    /// requested it after a mid-transition yield); nothing is claimed then.
    #[cold]
    fn write_slow(&self, ts: &mut crate::tstate::ThreadState, o: ObjId, abortable: bool) -> bool {
        let t = ts.tid;
        let rt = &self.common.rt;
        let obj = rt.obj(o);
        let state = obj.state();
        let mut spin = rt.spinner("optimistic write slow path");
        loop {
            let cur = state.load(Ordering::Acquire);
            let w = StateWord(cur);
            if w == StateWord::wr_ex_opt(t) {
                // Raced with our own earlier installment (retry after a failed
                // CAS that another iteration completed) — same state now.
                ts.stats.bump(Event::OptSameState);
                return true;
            }
            if w.is_int() {
                // Another thread is mid-coordination on this object; act as a
                // safe point and retry (Figure 1 line 9).
                self.common.respond_pending(ts);
                if abortable && self.common.support.should_abort(t) {
                    return false;
                }
                spin.spin();
                continue;
            }
            if w == StateWord::rd_ex_opt(t) {
                // Upgrading transition: RdEx(T) → WrEx(T), one CAS.
                if state
                    .compare_exchange(
                        cur,
                        StateWord::wr_ex_opt(t).0,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    obj.bump_version();
                    ts.stats.bump(Event::OptUpgrading);
                        self.common.rt.trace(ts.tid, TraceKind::OptUpgrade, o.0 as u64);
                    let cx = self.common.cx(ts);
                    self.common.support.on_transition(cx, o, TransitionEv::UpgradeOwn);
                    return true;
                }
                continue;
            }
            // Conflicting transition: WrEx(T1), RdEx(T1), or RdSh(c).
            if state
                .compare_exchange(cur, StateWord::int(t).0, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            obj.bump_version();
            let mode = self.conflict_coordinate(ts, o, w);
            if abortable && self.common.support.should_abort(t) {
                // Yielded mid-coordination: restore the old state and abort
                // (the stale coordination only made the previous owner yield,
                // which is always safe).
                state.store(cur, Ordering::Release);
                obj.bump_version();
                return false;
            }
            // Support first, then publish: recorder side-table entries must
            // be visible before any thread can observe the new state.
            self.finish_conflict(ts, o, mode, true);
            state.store(StateWord::wr_ex_opt(t).0, Ordering::Release);
            obj.bump_version();
            return true;
        }
    }

    fn write_impl(&self, t: ThreadId, o: ObjId, v: u64, abortable: bool) -> Option<u64> {
        // SAFETY: attached thread (Tracker contract).
        let ts = unsafe { self.common.ts(t) };
        let obj = self.common.rt.obj(o);
        // Fast path (Figure 10(a)): only WrEx(T) — the expected common case.
        if obj.state().load(Ordering::Acquire) == StateWord::wr_ex_opt(t).0 {
            ts.stats.bump(Event::OptSameState);
        } else if !self.write_slow(ts, o, abortable) {
            return None;
        }
        ts.stats.bump(Event::Write);
        self.common.rt.trace(t, TraceKind::Write, o.0 as u64);
        let prev = obj.data_read();
        obj.data_write(v);
        ts.op_index += 1;
        Some(prev)
    }

    #[cold]
    fn read_slow(&self, ts: &mut crate::tstate::ThreadState, o: ObjId) {
        let t = ts.tid;
        let rt = &self.common.rt;
        let obj = rt.obj(o);
        let state = obj.state();
        let mut spin = rt.spinner("optimistic read slow path");
        loop {
            let cur = state.load(Ordering::Acquire);
            let w = StateWord(cur);
            if w == StateWord::wr_ex_opt(t) || w == StateWord::rd_ex_opt(t) {
                ts.stats.bump(Event::OptSameState);
                return;
            }
            if w.is_int() {
                self.common.respond_pending(ts);
                spin.spin();
                continue;
            }
            match w.kind() {
                Kind::RdSh => {
                    let c = w.rdsh_count();
                    if ts.rd_sh_count >= c {
                        ts.stats.bump(Event::OptSameState);
                    } else {
                        // Fence transition: ensure visibility of the writes
                        // that preceded this RdSh epoch's creation.
                        fence(Ordering::Acquire);
                        ts.rd_sh_count = c;
                        ts.stats.bump(Event::OptFence);
                        self.common.rt.trace(ts.tid, TraceKind::OptFence, o.0 as u64);
                        let cx = self.common.cx(ts);
                        self.common
                            .support
                            .on_transition(cx, o, TransitionEv::Fence { c });
                    }
                    return;
                }
                Kind::RdEx => {
                    // Upgrading transition: RdEx(T1) → RdSh(c), c from the
                    // global counter (Table 1 footnote).
                    let prev_owner = w.owner();
                    let pre = self.common.pre_epoch();
                    if self.common.claim(obj, cur, t, StateWord::rd_sh_opt(pre)) {
                        let c = self.common.post_epoch(pre);
                        let final_w = StateWord::rd_sh_opt(c);
                        ts.rd_sh_count = ts.rd_sh_count.max(c);
                        ts.stats.bump(Event::OptUpgrading);
                        self.common.rt.trace(ts.tid, TraceKind::OptUpgrade, o.0 as u64);
                        let cx = self.common.cx(ts);
                        self.common.support.on_transition(
                            cx,
                            o,
                            TransitionEv::RdShCreate {
                                prev_owner,
                                c,
                                pess: false,
                            },
                        );
                        self.common.publish(obj, final_w);
                        return;
                    }
                    continue;
                }
                Kind::WrEx => {
                    // Conflicting transition: WrEx(T1) → RdEx(T2).
                    if state
                        .compare_exchange(
                            cur,
                            StateWord::int(t).0,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_err()
                    {
                        continue;
                    }
                    obj.bump_version();
                    let mode = self.conflict_coordinate(ts, o, w);
                    self.finish_conflict(ts, o, mode, false);
                    state.store(StateWord::rd_ex_opt(t).0, Ordering::Release);
                    obj.bump_version();
                    return;
                }
                Kind::Int => unreachable!("handled above"),
            }
        }
    }

    /// Coordinate for a conflicting transition whose old state was `w`.
    /// Fills `ts.src_scratch` with the happens-before sources.
    fn conflict_coordinate(
        &self,
        ts: &mut crate::tstate::ThreadState,
        o: ObjId,
        w: StateWord,
    ) -> CoordMode {
        let rt = self.common.rt.clone();
        let t = ts.tid;
        let mut scratch = std::mem::take(&mut ts.src_scratch);
        let mut pending = std::mem::take(&mut ts.fanout_scratch);
        scratch.clear();
        let fanout = w.kind() == Kind::RdSh;
        let mode = {
            let mut respond = self.common.respond_closure(ts);
            if fanout {
                coordinate_many(&rt, t, Some(o), &mut respond, &mut scratch, &mut pending)
            } else {
                let out = coordinate_one(&rt, t, w.owner(), Some(o), &mut respond);
                scratch.push((w.owner(), out.source_clock));
                out.mode
            }
        };
        if fanout {
            ts.stats.bump(Event::CoordFanout);
            ts.stats.add(Event::CoordFanoutPeers, scratch.len() as u64);
        }
        ts.src_scratch = scratch;
        ts.fanout_scratch = pending;
        ts.stats.bump(Event::CoordinationRoundtrip);
        mode
    }

    /// Count and report a completed conflicting transition.
    fn finish_conflict(
        &self,
        ts: &mut crate::tstate::ThreadState,
        o: ObjId,
        mode: CoordMode,
        write: bool,
    ) {
        ts.stats.bump(match mode {
            CoordMode::Explicit | CoordMode::Mixed => Event::OptConflictExplicit,
            CoordMode::Implicit => Event::OptConflictImplicit,
        });
        if matches!(mode, CoordMode::Explicit | CoordMode::Mixed) {
            // Per-object conflict histogram (never changes states: ∞ cutoff).
            self.common
                .policy
                .on_explicit_conflict(self.common.rt.obj(o).profile());
        }
        let cx = SupportCx {
            rt: &self.common.rt,
            t: ts.tid,
            op: ts.op_index,
        };
        self.common.support.on_transition(
            cx,
            o,
            TransitionEv::Conflict {
                mode,
                sources: &ts.src_scratch,
                write,
            },
        );
    }
}

impl<S: Support> Tracker for OptimisticEngine<S> {
    fn rt(&self) -> &Arc<Runtime> {
        &self.common.rt
    }

    fn name(&self) -> &'static str {
        "optimistic"
    }

    fn attach(&self) -> ThreadId {
        self.common.attach()
    }

    fn detach(&self, t: ThreadId) {
        // SAFETY: called from the attached thread (Tracker contract).
        unsafe { self.common.detach(t) }
    }

    #[inline(always)]
    fn read(&self, t: ThreadId, o: ObjId) -> u64 {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        ts.stats.bump(Event::Read);
        let obj = self.common.rt.obj(o);
        let cur = obj.state().load(Ordering::Acquire);
        let w = StateWord(cur);
        // Fast path: exclusive owner, or read-shared with a fresh rdShCount
        // (Table 1's Same∗ row) — loads and compares, no synchronization.
        if cur == StateWord::wr_ex_opt(t).0
            || cur == StateWord::rd_ex_opt(t).0
            || (w.kind() == Kind::RdSh && !w.is_pess() && ts.rd_sh_count >= w.rdsh_count())
        {
            ts.stats.bump(Event::OptSameState);
        } else {
            // Read-mostly RdSh: try the coordination-free seqlock read
            // (DESIGN.md §12) before the slow path. Octet's ∞-cutoff policy
            // makes `read_mostly` a pure phase check (always true), so the
            // gate reduces to the RdSh decode.
            if S::SEQLOCK_READS
                && w.kind() == Kind::RdSh
                && !w.is_pess()
                && self.common.policy.read_mostly(obj.profile())
            {
                if let Some(v) = self.common.seqlock_read(ts, o) {
                    self.common.rt.trace(t, TraceKind::Read, o.0 as u64);
                    ts.op_index += 1;
                    return v;
                }
            }
            self.read_slow(ts, o);
        }
        self.common.rt.trace(t, TraceKind::Read, o.0 as u64);
        let v = obj.data_read();
        ts.op_index += 1;
        v
    }

    #[inline(always)]
    fn write(&self, t: ThreadId, o: ObjId, v: u64) {
        self.write_impl(t, o, v, false);
    }

    fn try_write(&self, t: ThreadId, o: ObjId, v: u64) -> Option<u64> {
        self.write_impl(t, o, v, true)
    }

    fn alloc_init(&self, o: ObjId, owner: ThreadId) {
        let obj = self.common.rt.obj(o);
        obj.state().store(StateWord::wr_ex_opt(owner).0, Ordering::SeqCst);
        obj.bump_version();
    }

    #[inline]
    fn safepoint(&self, t: ThreadId) {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        self.common.poll(ts);
    }

    fn lock(&self, t: ThreadId, m: MonitorId) {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        self.common.monitor_acquire(ts, m);
    }

    fn unlock(&self, t: ThreadId, m: MonitorId) {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        self.common.monitor_release(ts, m);
    }

    fn wait(&self, t: ThreadId, m: MonitorId) {
        // SAFETY: attached thread.
        let ts = unsafe { self.common.ts(t) };
        self.common.monitor_wait(ts, m);
    }

    fn notify_all(&self, t: ThreadId, m: MonitorId) {
        self.common.rt.monitor_notify_all_from(m, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drink_runtime::RuntimeConfig;

    fn engine() -> OptimisticEngine {
        OptimisticEngine::new(Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(8)
        .heap_objects(16)
        .monitors(2)
        .build())))
    }

    fn state_of(e: &OptimisticEngine, o: ObjId) -> StateWord {
        StateWord(e.rt().obj(o).state().load(Ordering::SeqCst))
    }

    #[test]
    fn owner_accesses_take_fast_path() {
        let e = engine();
        let t = e.attach();
        let o = ObjId(0);
        e.alloc_init(o, t);
        e.write(t, o, 1);
        e.write(t, o, 2);
        assert_eq!(e.read(t, o), 2);
        e.detach(t);
        let r = e.rt().stats().report();
        assert_eq!(r.get(Event::OptSameState), 3);
        assert_eq!(r.opt_conflicting(), 0);
    }

    #[test]
    fn own_read_then_write_is_upgrading() {
        let e = engine();
        let t = e.attach();
        let o = ObjId(1);
        // Make the object RdEx(t): start owned elsewhere conceptually by
        // initializing directly.
        e.rt()
            .obj(o)
            .state()
            .store(StateWord::rd_ex_opt(t).0, Ordering::SeqCst);
        e.write(t, o, 5);
        assert_eq!(state_of(&e, o), StateWord::wr_ex_opt(t));
        e.detach(t);
        assert_eq!(e.rt().stats().get(Event::OptUpgrading), 1);
    }

    #[test]
    fn second_reader_upgrades_to_rdsh_and_fences() {
        let e = engine();
        let t0 = e.attach();
        let o = ObjId(2);
        e.rt()
            .obj(o)
            .state()
            .store(StateWord::rd_ex_opt(t0).0, Ordering::SeqCst);
        e.rt().obj(o).data_write(42);

        std::thread::scope(|s| {
            let er = &e;
            s.spawn(move || {
                let t1 = er.attach();
                assert_eq!(er.read(t1, o), 42); // RdEx(t0) → RdSh(c)
                er.detach(t1);
            });
        });
        let w = state_of(&e, o);
        assert_eq!(w.kind(), Kind::RdSh);
        // t0's first read of the RdSh epoch now takes the coordination-free
        // seqlock path (DESIGN.md §12): validated, no fence transition.
        assert_eq!(e.read(t0, o), 42);
        e.detach(t0);
        let r = e.rt().stats().report();
        assert_eq!(r.get(Event::OptUpgrading), 1);
        assert_eq!(r.get(Event::SeqlockValidated), 1);
        assert_eq!(r.get(Event::OptFence), 0);
    }

    #[test]
    fn conflicting_write_coordinates_and_transfers_ownership() {
        let e = engine();
        let t0 = e.attach();
        let o = ObjId(3);
        e.alloc_init(o, t0);
        e.write(t0, o, 7);

        std::thread::scope(|s| {
            let er = &e;
            let writer = s.spawn(move || {
                let t1 = er.attach();
                er.write(t1, o, 8); // conflicts with WrEx(t0)
                er.detach(t1);
                t1
            });
            // t0 keeps polling safe points until the writer finishes,
            // responding to the coordination request.
            let mut spin = e.rt().spinner("writer to finish");
            while !writer.is_finished() {
                e.safepoint(t0);
                spin.spin();
            }
            let t1 = writer.join().unwrap();
            assert_eq!(state_of(&e, o), StateWord::wr_ex_opt(t1));
        });
        assert_eq!(e.read(t0, o), 8); // conflicting read back: WrEx(t1) → RdEx(t0)
        assert_eq!(state_of(&e, o), StateWord::rd_ex_opt(t0));
        e.detach(t0);
        let r = e.rt().stats().report();
        assert!(r.opt_conflicting() >= 2, "write + read-back both conflict");
        assert!(r.get(Event::RespondedExplicit) >= 1);
    }

    #[test]
    fn conflict_with_detached_thread_resolves_implicitly() {
        let e = engine();
        let o = ObjId(4);
        std::thread::scope(|s| {
            let er = &e;
            s.spawn(move || {
                let t0 = er.attach();
                er.alloc_init(o, t0);
                er.write(t0, o, 11);
                er.detach(t0); // permanently blocked from now on
            })
            .join()
            .unwrap();

            s.spawn(move || {
                let t1 = er.attach();
                assert_eq!(er.read(t1, o), 11);
                er.detach(t1);
            });
        });
        let r = e.rt().stats().report();
        assert_eq!(r.get(Event::OptConflictImplicit), 1);
        assert_eq!(r.get(Event::OptConflictExplicit), 0);
    }

    #[test]
    fn rdsh_write_coordinates_with_all_threads() {
        let e = engine();
        let t0 = e.attach();
        let o = ObjId(5);
        e.rt()
            .obj(o)
            .state()
            .store(StateWord::rd_sh_opt(1).0, Ordering::SeqCst);

        std::thread::scope(|s| {
            let er = &e;
            let h = s.spawn(move || {
                let t1 = er.attach();
                er.write(t1, o, 9); // RdSh conflict: coordinate with t0
                er.detach(t1);
                t1
            });
            let mut spin = e.rt().spinner("rdsh writer to finish");
            while !h.is_finished() {
                e.safepoint(t0);
                spin.spin();
            }
            let t1 = h.join().unwrap();
            assert_eq!(state_of(&e, o), StateWord::wr_ex_opt(t1));
        });
        e.detach(t0);
        assert_eq!(e.rt().stats().report().opt_conflicting(), 1);
    }

    #[test]
    fn symmetric_conflicts_do_not_deadlock() {
        // Two threads repeatedly write each other's object: every access is a
        // conflicting transition, and both threads constantly coordinate with
        // each other. Deadlock freedom comes from responding-while-waiting.
        let e = engine();
        let oa = ObjId(6);
        let ob = ObjId(7);
        std::thread::scope(|s| {
            let er = &e;
            s.spawn(move || {
                let t = er.attach();
                er.alloc_init(oa, t);
                for i in 0..2_000 {
                    er.write(t, oa, i);
                    er.write(t, ob, i);
                }
                er.detach(t);
            });
            s.spawn(move || {
                let t = er.attach();
                er.alloc_init(ob, t);
                for i in 0..2_000 {
                    er.write(t, ob, i);
                    er.write(t, oa, i);
                }
                er.detach(t);
            });
        });
        let r = e.rt().stats().report();
        assert_eq!(r.accesses(), 8_000);
        assert!(r.opt_conflicting() > 0);
    }
}
