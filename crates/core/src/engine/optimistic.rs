//! Optimistic tracking (§2.2): Octet, with graceful degradation.
//!
//! The fast path is a single load and compare — no atomic operation, no
//! fence. The slow path (Figure 1) distinguishes:
//!
//! * **upgrading** transitions (`RdEx(T) → WrEx(T)` by the owner,
//!   `RdEx(T1) → RdSh(c)` by a second reader): one CAS;
//! * **fence** transitions (first read of a RdSh epoch newer than the
//!   thread's `rdShCount`): a memory fence;
//! * **conflicting** transitions: the accessor claims the state with the
//!   intermediate `Int(T)` state, then *coordinates* with the previous
//!   owner(s) — a roundtrip through their next safe point (explicit), or an
//!   epoch CAS if they are blocked (implicit) — before installing the new
//!   state. While waiting, the accessor itself responds to requests
//!   (Figure 1 line 18), which keeps the protocol deadlock-free.
//!
//! RdSh conflicts coordinate with every other registered thread
//! (footnote 4).
//!
//! ## Implementation: the infinite-cutoff hybrid, plus the §13 controller
//!
//! Since the hybrid engine at infinite cutoff *is* Octet (no object ever
//! crosses the conflict cutoff, so every state stays optimistic — Figure 7's
//! "w/ infinite cutoff" row), this engine is a thin wrapper over
//! [`HybridEngine`] with [`HybridConfig::adaptive`]: pure Octet behaviour on
//! every object, **until** the online demotion controller (`adapt.rs`,
//! DESIGN.md §13) measures an object's coordination cost crossing the
//! hysteresis band. Such an object is demoted to the pessimistic protocol —
//! whose conflicting acquires need no roundtrips — and re-promoted once
//! pessimistic traffic proves cheap again. This is what bounds the
//! coordination-storm pathology (all threads fighting over one object, each
//! conflict a cross-thread roundtrip) that made pure Octet two orders of
//! magnitude slower than pessimistic tracking under the `contention`
//! bench's `opt_access_t8` row.
//!
//! The per-object conflict histogram (Figure 6's CDF, §7.3 limit study)
//! still works: the infinite-cutoff policy counts every explicit conflict
//! in the profile word without ever advancing the §6 phase machine.

use std::sync::Arc;

use drink_runtime::{MonitorId, ObjId, Runtime, ThreadId};

use crate::common::EngineCommon;
use crate::engine::hybrid::{HybridConfig, HybridEngine};
use crate::engine::Tracker;
use crate::support::{NullSupport, Support};

/// The Octet engine (degrading to pessimistic states under measured
/// contention; see the module docs).
pub struct OptimisticEngine<S: Support = NullSupport> {
    inner: HybridEngine<S>,
}

impl OptimisticEngine<NullSupport> {
    /// Optimistic tracking over `rt`, no runtime support.
    pub fn new(rt: Arc<Runtime>) -> Self {
        OptimisticEngine::with_support(rt, NullSupport)
    }
}

impl<S: Support> OptimisticEngine<S> {
    /// Optimistic tracking with runtime support `support`.
    pub fn with_support(rt: Arc<Runtime>, support: S) -> Self {
        OptimisticEngine {
            inner: HybridEngine::with_config(rt, support, HybridConfig::adaptive()),
        }
    }

    /// Optimistic tracking with an explicit demotion-controller
    /// configuration — `None` is pure Octet (no controller, no degradation;
    /// every state stays optimistic forever). The protocol-shape tests use
    /// `None` so their post-conflict state assertions cannot flake when a
    /// loaded host pushes one roundtrip past
    /// [`crate::adapt::AdaptConfig::demote_now_ns`].
    pub fn with_adapt(
        rt: Arc<Runtime>,
        support: S,
        adapt: Option<crate::adapt::AdaptConfig>,
    ) -> Self {
        OptimisticEngine {
            inner: HybridEngine::with_config(
                rt,
                support,
                HybridConfig {
                    adapt,
                    ..HybridConfig::infinite_cutoff()
                },
            ),
        }
    }

    /// Shared engine state (used by runtime-support crates).
    pub fn common(&self) -> &EngineCommon<S> {
        self.inner.common()
    }
}

impl<S: Support> Tracker for OptimisticEngine<S> {
    fn rt(&self) -> &Arc<Runtime> {
        self.inner.rt()
    }

    fn name(&self) -> &'static str {
        "optimistic"
    }

    fn attach(&self) -> ThreadId {
        self.inner.attach()
    }

    fn detach(&self, t: ThreadId) {
        self.inner.detach(t)
    }

    #[inline(always)]
    fn read(&self, t: ThreadId, o: ObjId) -> u64 {
        self.inner.read(t, o)
    }

    #[inline(always)]
    fn write(&self, t: ThreadId, o: ObjId, v: u64) {
        self.inner.write(t, o, v)
    }

    fn try_write(&self, t: ThreadId, o: ObjId, v: u64) -> Option<u64> {
        self.inner.try_write(t, o, v)
    }

    fn alloc_init(&self, o: ObjId, owner: ThreadId) {
        self.inner.alloc_init(o, owner)
    }

    fn alloc_init_read_shared(&self, o: ObjId) {
        self.inner.alloc_init_read_shared(o)
    }

    #[inline]
    fn safepoint(&self, t: ThreadId) {
        self.inner.safepoint(t)
    }

    fn lock(&self, t: ThreadId, m: MonitorId) {
        self.inner.lock(t, m)
    }

    fn unlock(&self, t: ThreadId, m: MonitorId) {
        self.inner.unlock(t, m)
    }

    fn wait(&self, t: ThreadId, m: MonitorId) {
        self.inner.wait(t, m)
    }

    fn notify_all(&self, t: ThreadId, m: MonitorId) {
        self.inner.notify_all(t, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::{Kind, StateWord};
    use drink_runtime::{Event, RuntimeConfig};
    use std::sync::atomic::Ordering;

    /// Pure-Octet engine (controller disabled) for the protocol-shape
    /// tests: their post-conflict assertions (`wr_ex_opt`, conflict
    /// counters) describe the *optimistic* protocol, and must not flake
    /// when a loaded host stretches one roundtrip past the controller's
    /// catastrophic demote-now threshold. The controller itself is
    /// exercised by `hot_object_demotes_under_deadline` and the adapt
    /// module's own tests.
    fn engine() -> OptimisticEngine {
        OptimisticEngine::with_adapt(
            Arc::new(Runtime::new(RuntimeConfig::builder()
                .max_threads(8)
                .heap_objects(16)
                .monitors(2)
                .build())),
            NullSupport,
            None,
        )
    }

    fn state_of(e: &OptimisticEngine, o: ObjId) -> StateWord {
        StateWord(e.rt().obj(o).state().load(Ordering::SeqCst))
    }

    #[test]
    fn owner_accesses_take_fast_path() {
        let e = engine();
        let t = e.attach();
        let o = ObjId(0);
        e.alloc_init(o, t);
        e.write(t, o, 1);
        e.write(t, o, 2);
        assert_eq!(e.read(t, o), 2);
        e.detach(t);
        let r = e.rt().stats().report();
        assert_eq!(r.get(Event::OptSameState), 3);
        assert_eq!(r.opt_conflicting(), 0);
    }

    #[test]
    fn own_read_then_write_is_upgrading() {
        let e = engine();
        let t = e.attach();
        let o = ObjId(1);
        // Make the object RdEx(t): start owned elsewhere conceptually by
        // initializing directly.
        e.rt()
            .obj(o)
            .state()
            .store(StateWord::rd_ex_opt(t).0, Ordering::SeqCst);
        e.write(t, o, 5);
        assert_eq!(state_of(&e, o), StateWord::wr_ex_opt(t));
        e.detach(t);
        assert_eq!(e.rt().stats().get(Event::OptUpgrading), 1);
    }

    #[test]
    fn second_reader_upgrades_to_rdsh_and_fences() {
        let e = engine();
        let t0 = e.attach();
        let o = ObjId(2);
        e.rt()
            .obj(o)
            .state()
            .store(StateWord::rd_ex_opt(t0).0, Ordering::SeqCst);
        e.rt().obj(o).data_write(42);

        std::thread::scope(|s| {
            let er = &e;
            s.spawn(move || {
                let t1 = er.attach();
                assert_eq!(er.read(t1, o), 42); // RdEx(t0) → RdSh(c)
                er.detach(t1);
            });
        });
        let w = state_of(&e, o);
        assert_eq!(w.kind(), Kind::RdSh);
        // t0's first read of the RdSh epoch now takes the coordination-free
        // seqlock path (DESIGN.md §12): validated, no fence transition.
        assert_eq!(e.read(t0, o), 42);
        e.detach(t0);
        let r = e.rt().stats().report();
        assert_eq!(r.get(Event::OptUpgrading), 1);
        assert_eq!(r.get(Event::SeqlockValidated), 1);
        assert_eq!(r.get(Event::OptFence), 0);
    }

    #[test]
    fn conflicting_write_coordinates_and_transfers_ownership() {
        let e = engine();
        let t0 = e.attach();
        let o = ObjId(3);
        e.alloc_init(o, t0);
        e.write(t0, o, 7);

        std::thread::scope(|s| {
            let er = &e;
            let writer = s.spawn(move || {
                let t1 = er.attach();
                er.write(t1, o, 8); // conflicts with WrEx(t0)
                er.detach(t1);
                t1
            });
            // t0 keeps polling safe points until the writer finishes,
            // responding to the coordination request.
            let mut spin = e.rt().spinner("writer to finish");
            while !writer.is_finished() {
                e.safepoint(t0);
                spin.spin();
            }
            let t1 = writer.join().unwrap();
            assert_eq!(state_of(&e, o), StateWord::wr_ex_opt(t1));
        });
        assert_eq!(e.read(t0, o), 8); // conflicting read back: WrEx(t1) → RdEx(t0)
        assert_eq!(state_of(&e, o), StateWord::rd_ex_opt(t0));
        e.detach(t0);
        let r = e.rt().stats().report();
        assert!(r.opt_conflicting() >= 2, "write + read-back both conflict");
        assert!(r.get(Event::RespondedExplicit) >= 1);
    }

    #[test]
    fn conflict_with_detached_thread_resolves_implicitly() {
        let e = engine();
        let o = ObjId(4);
        std::thread::scope(|s| {
            let er = &e;
            s.spawn(move || {
                let t0 = er.attach();
                er.alloc_init(o, t0);
                er.write(t0, o, 11);
                er.detach(t0); // permanently blocked from now on
            })
            .join()
            .unwrap();

            s.spawn(move || {
                let t1 = er.attach();
                assert_eq!(er.read(t1, o), 11);
                er.detach(t1);
            });
        });
        let r = e.rt().stats().report();
        assert_eq!(r.get(Event::OptConflictImplicit), 1);
        assert_eq!(r.get(Event::OptConflictExplicit), 0);
    }

    #[test]
    fn rdsh_write_coordinates_with_all_threads() {
        let e = engine();
        let t0 = e.attach();
        let o = ObjId(5);
        e.rt()
            .obj(o)
            .state()
            .store(StateWord::rd_sh_opt(1).0, Ordering::SeqCst);

        std::thread::scope(|s| {
            let er = &e;
            let h = s.spawn(move || {
                let t1 = er.attach();
                er.write(t1, o, 9); // RdSh conflict: coordinate with t0
                er.detach(t1);
                t1
            });
            let mut spin = e.rt().spinner("rdsh writer to finish");
            while !h.is_finished() {
                e.safepoint(t0);
                spin.spin();
            }
            let t1 = h.join().unwrap();
            assert_eq!(state_of(&e, o), StateWord::wr_ex_opt(t1));
        });
        e.detach(t0);
        assert_eq!(e.rt().stats().report().opt_conflicting(), 1);
    }

    #[test]
    fn symmetric_conflicts_do_not_deadlock() {
        // Two threads repeatedly write each other's object: every access is a
        // conflicting transition, and both threads constantly coordinate with
        // each other. Deadlock freedom comes from responding-while-waiting.
        // (Under heavy measured contention the demotion controller may move
        // the objects to pessimistic states mid-run; the access counts and
        // conflict counters below hold either way.)
        let e = engine();
        let oa = ObjId(6);
        let ob = ObjId(7);
        std::thread::scope(|s| {
            let er = &e;
            s.spawn(move || {
                let t = er.attach();
                er.alloc_init(oa, t);
                for i in 0..2_000 {
                    er.write(t, oa, i);
                    er.write(t, ob, i);
                }
                er.detach(t);
            });
            s.spawn(move || {
                let t = er.attach();
                er.alloc_init(ob, t);
                for i in 0..2_000 {
                    er.write(t, ob, i);
                    er.write(t, oa, i);
                }
                er.detach(t);
            });
        });
        let r = e.rt().stats().report();
        assert_eq!(r.accesses(), 8_000);
        assert!(r.opt_conflicting() > 0);
    }

    /// The degradation path end to end: a hot object under a coordination
    /// deadline demotes, runs pessimistic, and the engines still agree on
    /// the data (writes are never lost).
    #[test]
    fn hot_object_demotes_under_deadline() {
        let rt = Arc::new(Runtime::new(
            RuntimeConfig::builder()
                .max_threads(4)
                .heap_objects(16)
                .monitors(2)
                .coord_deadline(std::time::Duration::from_millis(50))
                .build(),
        ));
        let e = OptimisticEngine::new(rt);
        let o = ObjId(8);
        std::thread::scope(|s| {
            let er = &e;
            for _ in 0..2 {
                s.spawn(move || {
                    let t = er.attach();
                    for i in 0..20_000 {
                        er.write(t, o, i);
                        if i % 64 == 0 {
                            er.safepoint(t);
                        }
                    }
                    er.detach(t);
                });
            }
        });
        // Completion itself is the property: no watchdog panic, no hang,
        // every write performed whichever protocol served it.
        let r = e.rt().stats().report();
        assert_eq!(r.accesses(), 40_000);
    }
}
