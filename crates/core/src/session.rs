//! Mutator session façade: the per-thread handle workloads use.
//!
//! A [`Session`] binds one OS thread to one mutator id on one engine, and
//! exposes the tracked operations. It detaches automatically on drop (the
//! final flush — thread exit is a PSRO), so workloads cannot forget to
//! merge statistics or leave pessimistic locks dangling.

use drink_runtime::{MonitorId, ObjId, ThreadId};

use crate::engine::Tracker;

/// A per-thread handle onto a tracking engine.
///
/// Not `Send`: the engine's per-thread state is owned by the attaching OS
/// thread.
///
/// `T` may be unsized (`T: ?Sized`), so a session attaches equally to a
/// concrete engine (statically dispatched, fast paths inlined) or to an
/// erased one — `dyn Tracker` behind an
/// [`AnyEngine`](crate::engine::AnyEngine) or a plain `Box<dyn Tracker>` —
/// which is how runtime-selected engines (the serve store, the bench bins)
/// drive the same façade.
pub struct Session<'e, T: Tracker + ?Sized> {
    engine: &'e T,
    t: ThreadId,
    detached: bool,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl<'e, T: Tracker + ?Sized> Session<'e, T> {
    /// Attach the calling thread to `engine`.
    pub fn attach(engine: &'e T) -> Self {
        let t = engine.attach();
        Session {
            engine,
            t,
            detached: false,
            _not_send: std::marker::PhantomData,
        }
    }

    /// This session's mutator id.
    #[inline]
    pub fn tid(&self) -> ThreadId {
        self.t
    }

    /// The engine behind this session.
    #[inline]
    pub fn engine(&self) -> &'e T {
        self.engine
    }

    /// Tracked read.
    #[inline(always)]
    pub fn read(&self, o: ObjId) -> u64 {
        self.engine.read(self.t, o)
    }

    /// Tracked write.
    #[inline(always)]
    pub fn write(&self, o: ObjId, v: u64) {
        self.engine.write(self.t, o, v)
    }

    /// Initialize `o` as allocated by this thread.
    pub fn alloc(&self, o: ObjId) {
        self.engine.alloc_init(o, self.t)
    }

    /// Safe point poll (place at loop back edges, as the JIT would).
    #[inline(always)]
    pub fn safepoint(&self) {
        self.engine.safepoint(self.t)
    }

    /// Program lock acquire.
    pub fn lock(&self, m: MonitorId) {
        self.engine.lock(self.t, m)
    }

    /// Program lock release.
    pub fn unlock(&self, m: MonitorId) {
        self.engine.unlock(self.t, m)
    }

    /// Run `f` while holding monitor `m` (a `synchronized` block).
    pub fn synchronized<R>(&self, m: MonitorId, f: impl FnOnce(&Self) -> R) -> R {
        self.lock(m);
        let r = f(self);
        self.unlock(m);
        r
    }

    /// Monitor wait.
    pub fn wait(&self, m: MonitorId) {
        self.engine.wait(self.t, m)
    }

    /// Monitor notify-all.
    pub fn notify_all(&self, m: MonitorId) {
        self.engine.notify_all(self.t, m)
    }

    /// Detach eagerly (otherwise happens on drop).
    pub fn finish(mut self) {
        self.detach_once();
    }

    fn detach_once(&mut self) {
        if !self.detached {
            self.detached = true;
            self.engine.detach(self.t);
        }
    }
}

impl<T: Tracker + ?Sized> Drop for Session<'_, T> {
    fn drop(&mut self) {
        // A thread unwinding out of a tracked operation died mid-protocol:
        // its lock buffer, status word and read set are in an arbitrary
        // state, and detach's own invariant checks would panic again —
        // turning a reportable failure into a process abort. Leave the
        // wreckage in place; the checking harness inspects it post-mortem.
        if std::thread::panicking() {
            return;
        }
        self.detach_once();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::hybrid::HybridEngine;
    use drink_runtime::{Event, Runtime, RuntimeConfig};
    use std::sync::Arc;

    #[test]
    fn session_lifecycle_and_basic_ops() {
        let e = HybridEngine::new(Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(4)
        .heap_objects(8)
        .monitors(2)
        .build())));
        {
            let s = Session::attach(&e);
            assert_eq!(s.tid(), ThreadId(0));
            s.alloc(ObjId(0));
            s.write(ObjId(0), 7);
            assert_eq!(s.read(ObjId(0)), 7);
            s.synchronized(MonitorId(0), |s| s.write(ObjId(0), 8));
            s.safepoint();
        } // drop detaches
        let r = e.rt().stats().report();
        assert_eq!(r.accesses(), 3);
        assert_eq!(r.get(Event::MonitorRelease), 1);
    }

    #[test]
    fn finish_is_idempotent_with_drop() {
        let e = HybridEngine::new(Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(4)
        .heap_objects(8)
        .monitors(2)
        .build())));
        let s = Session::attach(&e);
        s.write(ObjId(1), 1);
        s.finish(); // no double-detach on the implicit drop
        assert_eq!(e.rt().stats().report().accesses(), 1);
    }
}
