//! The coordination client (§2.2, Figure 1's `coordinate`).
//!
//! A thread that needs another thread to relinquish access privileges — an
//! optimistic conflicting transition, or a contended pessimistic transition —
//! coordinates with it:
//!
//! * if the remote thread is **blocked** (parked at a blocking safe point),
//!   coordination is **implicit**: one CAS advancing the remote status word's
//!   epoch. The remote thread cannot be mid-access, so the requester may
//!   proceed immediately; the remote observes the epoch bump when it wakes.
//! * if the remote thread is **running**, coordination is **explicit**: the
//!   requester enqueues a request and spins on a response token until the
//!   remote reaches a safe point. Crucially, *while spinning the requester
//!   acts as a safe point itself* (Figure 1 line 18) — it keeps responding to
//!   other threads' requests, which is what makes the protocol deadlock-free
//!   when two threads coordinate with each other simultaneously.
//!
//! A lost-wakeup race exists between "requester reads RUNNING" and "remote
//! publishes BLOCKED": the request may be enqueued after the remote's final
//! drain. The requester therefore re-checks the remote status on every spin
//! iteration and falls back to implicit coordination if the remote has
//! blocked; the stale queued request is answered harmlessly when the remote
//! eventually wakes.

use std::time::Instant;

use drink_runtime::{
    CoordRequest, LatencyKind, ResponseToken, Runtime, SchedPoint, ThreadId, ThreadStatus,
    TraceKind,
};

use crate::support::CoordMode;

/// Outcome of coordinating with one remote thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoordOutcome {
    /// Explicit (roundtrip) or implicit (epoch CAS)?
    pub mode: CoordMode,
    /// The remote thread's release clock dominating its last access: the
    /// responder's post-bump clock for explicit coordination, or the clock
    /// read after the epoch CAS for implicit coordination (the remote bumped
    /// it when it flushed before blocking).
    pub source_clock: u64,
}

/// Coordinate with `remote` on behalf of `me`. `respond_self` is invoked on
/// every spin iteration so the requester acts as a safe point while waiting.
///
/// Panics (via the runtime's spin watchdog) if the remote thread never
/// responds — always a protocol bug.
pub fn coordinate_one(
    rt: &Runtime,
    me: ThreadId,
    remote: ThreadId,
    obj: Option<drink_runtime::ObjId>,
    respond_self: &mut impl FnMut(),
) -> CoordOutcome {
    debug_assert_ne!(me, remote, "a thread never coordinates with itself");
    let ctl = rt.control(remote);
    let t0 = Instant::now();
    let mut pending: Option<std::sync::Arc<ResponseToken>> = None;
    let mut spin = rt.spinner_for(me, "coordination response");
    loop {
        if let Some(tok) = &pending {
            if tok.is_done() {
                rt.stats()
                    .record_latency(LatencyKind::CoordRoundtrip, t0.elapsed().as_nanos() as u64);
                return CoordOutcome {
                    mode: CoordMode::Explicit,
                    source_clock: tok.responder_clock(),
                };
            }
        }
        match ctl.status() {
            ThreadStatus::Blocked { epoch } => {
                if ctl.try_implicit(epoch) {
                    // The remote flushed and bumped its clock before it
                    // published BLOCKED, so this read dominates its last
                    // access. (If we also enqueued an explicit request, the
                    // remote answers the stale token on wake; nobody reads it.)
                    rt.trace(me, TraceKind::CoordImplicit, remote.raw() as u64);
                    return CoordOutcome {
                        mode: CoordMode::Implicit,
                        source_clock: ctl.release_clock(),
                    };
                }
                // Status changed under us; retry the whole protocol.
            }
            ThreadStatus::Running { .. } => {
                if pending.is_none() {
                    let token = ResponseToken::new();
                    ctl.enqueue_request(CoordRequest {
                        from: me,
                        obj,
                        token: token.clone(),
                    });
                    rt.trace(me, TraceKind::CoordRequest, remote.raw() as u64);
                    rt.sched_point(me, SchedPoint::CoordRequest);
                    pending = Some(token);
                }
            }
        }
        // Act as a safe point while waiting (deadlock freedom).
        respond_self();
        spin.spin();
    }
}

/// Sequential reference implementation of the conservative RdSh protocol:
/// one full [`coordinate_one`] roundtrip per registered peer, in thread-id
/// order. Worst-case latency is the *sum* of per-peer roundtrips, and every
/// registered thread is visited — even detached ones (resolved by an epoch
/// CAS against their permanently-blocked status word).
///
/// Kept benchable as the baseline the `contention` bench's `fanout_seq` rows
/// measure; engine hot paths use [`coordinate_many`].
pub fn coordinate_all_seq(
    rt: &Runtime,
    me: ThreadId,
    obj: Option<drink_runtime::ObjId>,
    respond_self: &mut impl FnMut(),
    sources: &mut Vec<(ThreadId, u64)>,
) -> CoordMode {
    let n = rt.registered_threads();
    let t0 = Instant::now();
    let mut any_explicit = false;
    let mut any_implicit = false;
    let before = sources.len();
    for i in 0..n {
        let remote = ThreadId(i as u16);
        if remote == me {
            continue;
        }
        let out = coordinate_one(rt, me, remote, obj, respond_self);
        sources.push((remote, out.source_clock));
        match out.mode {
            CoordMode::Explicit => any_explicit = true,
            CoordMode::Implicit => any_implicit = true,
            CoordMode::Mixed => unreachable!("coordinate_one never returns Mixed"),
        }
    }
    // Coordination-induced state change: the requester will install the new
    // state next, but bump here too so a seqlock reader that raced the whole
    // fan-out cannot validate across it (DESIGN.md §12).
    if let Some(o) = obj {
        rt.obj(o).bump_version();
    }
    rt.stats().record_latency(LatencyKind::FanoutComplete, t0.elapsed().as_nanos() as u64);
    rt.trace(me, TraceKind::FanoutComplete, (sources.len() - before) as u64);
    combine_modes(any_explicit, any_implicit)
}

/// Mode aggregation shared by the sequential and fan-out all-peer protocols:
/// `Explicit` iff every resolved peer was explicit, `Implicit` if every peer
/// was implicit *or there were no peers* (vacuous), `Mixed` otherwise.
fn combine_modes(any_explicit: bool, any_implicit: bool) -> CoordMode {
    match (any_explicit, any_implicit) {
        (true, false) => CoordMode::Explicit,
        (false, _) => CoordMode::Implicit,
        (true, true) => CoordMode::Mixed,
    }
}

/// One peer of an in-flight [`coordinate_many`] fan-out: scratch state the
/// caller provides (and reuses across conflicts) so a fan-out allocates
/// nothing beyond the explicit-request inbox nodes themselves.
#[derive(Debug)]
pub struct PendingPeer {
    remote: ThreadId,
    token: Option<std::sync::Arc<ResponseToken>>,
}

/// Coordinate with every live registered thread except `me` — the
/// conservative protocol for RdSh conflicts ("T conservatively coordinates
/// with every other thread", §2.2 footnote 4) — with the per-peer roundtrips
/// overlapped instead of serialized:
///
/// 1. **snapshot + implicit sweep**: detached peers are resolved from their
///    (final) release clocks without touching their status words; blocked
///    peers are resolved by the implicit epoch CAS;
/// 2. **fan-out enqueue**: an explicit request is enqueued to every
///    still-running peer *at once*;
/// 3. **single poll loop**: all outstanding tokens are polled together, with
///    the per-peer implicit fallback when a peer blocks mid-wait, and
///    `respond_self` invoked every iteration so the requester still acts as
///    a safe point (deadlock freedom, Figure 1 line 18).
///
/// Latency is therefore the *max* of the per-peer response times, not their
/// sum. A peer that blocks (or detaches) after its request was enqueued is
/// resolved implicitly and its stale token answered harmlessly on the peer's
/// wake/detach path — the same lost-wakeup closure [`coordinate_one`]
/// documents, re-checked for every peer on every loop iteration.
///
/// Appends `(thread, clock)` pairs to `sources`; `pending` is caller-owned
/// scratch (cleared here). Returns the combined mode under the same
/// aggregation as [`coordinate_all_seq`] (detached peers count as implicit).
pub fn coordinate_many(
    rt: &Runtime,
    me: ThreadId,
    obj: Option<drink_runtime::ObjId>,
    respond_self: &mut impl FnMut(),
    sources: &mut Vec<(ThreadId, u64)>,
    pending: &mut Vec<PendingPeer>,
) -> CoordMode {
    let n = rt.registered_threads();
    let t0 = Instant::now();
    let mut any_explicit = false;
    let mut any_implicit = false;
    let before = sources.len();
    pending.clear();

    // Phase 1: snapshot the live peers, resolving what needs no roundtrip.
    for i in 0..n {
        let remote = ThreadId(i as u16);
        if remote == me {
            continue;
        }
        let ctl = rt.control(remote);
        if ctl.is_detached() {
            // Permanently blocked: detach flushed, bumped the clock, then
            // set the flag (SeqCst), so this read dominates the peer's last
            // access. No epoch CAS — nobody is left to observe it.
            sources.push((remote, ctl.release_clock()));
            any_implicit = true;
            continue;
        }
        match ctl.status() {
            ThreadStatus::Blocked { epoch } if ctl.try_implicit(epoch) => {
                sources.push((remote, ctl.release_clock()));
                any_implicit = true;
            }
            // Running, or a blocked/running race: handled by the poll loop.
            _ => pending.push(PendingPeer {
                remote,
                token: None,
            }),
        }
    }

    if !pending.is_empty() {
        // Phase 2 happens inside the first `advance` pass over `pending`:
        // every still-running peer gets its request enqueued before any
        // backoff, so all responders work concurrently.
        rt.trace(me, TraceKind::FanoutEnqueue, pending.len() as u64);
        rt.sched_point(me, SchedPoint::CoordFanoutEnqueue);
        let mut spin = rt.spinner_for(me, "fan-out coordination responses");
        loop {
            // Phase 3: one combined poll pass over all outstanding peers.
            pending.retain_mut(|p| {
                match advance_peer(rt, me, obj, p) {
                    Some((clock, CoordMode::Explicit)) => {
                        rt.trace(me, TraceKind::FanoutPeerDone, p.remote.raw() as u64);
                        sources.push((p.remote, clock));
                        any_explicit = true;
                        false
                    }
                    Some((clock, _)) => {
                        rt.trace(me, TraceKind::FanoutPeerDone, p.remote.raw() as u64);
                        sources.push((p.remote, clock));
                        any_implicit = true;
                        false
                    }
                    None => true,
                }
            });
            if pending.is_empty() {
                break;
            }
            rt.sched_point(me, SchedPoint::CoordFanoutPoll);
            // Act as a safe point while waiting (deadlock freedom).
            respond_self();
            spin.spin();
        }
    }
    // Same completion bump as the sequential protocol: no seqlock read may
    // validate across a coordination window (DESIGN.md §12).
    if let Some(o) = obj {
        rt.obj(o).bump_version();
    }
    rt.stats().record_latency(LatencyKind::FanoutComplete, t0.elapsed().as_nanos() as u64);
    rt.trace(me, TraceKind::FanoutComplete, (sources.len() - before) as u64);
    combine_modes(any_explicit, any_implicit)
}

/// One peer's step of the fan-out state machine — the body of
/// [`coordinate_one`]'s loop, minus the spin. Returns the resolution, or
/// `None` if the peer is still outstanding.
fn advance_peer(
    rt: &Runtime,
    me: ThreadId,
    obj: Option<drink_runtime::ObjId>,
    p: &mut PendingPeer,
) -> Option<(u64, CoordMode)> {
    if let Some(tok) = &p.token {
        if tok.is_done() {
            return Some((tok.responder_clock(), CoordMode::Explicit));
        }
    }
    let ctl = rt.control(p.remote);
    match ctl.status() {
        ThreadStatus::Blocked { epoch } => {
            if ctl.try_implicit(epoch) {
                // Peer blocked mid-wait: fall back to implicit. Any enqueued
                // token goes stale and is answered on the peer's wake.
                return Some((ctl.release_clock(), CoordMode::Implicit));
            }
            None // epoch raced; re-examine next iteration
        }
        ThreadStatus::Running { .. } => {
            if p.token.is_none() {
                let token = ResponseToken::new();
                ctl.enqueue_request(CoordRequest {
                    from: me,
                    obj,
                    token: token.clone(),
                });
                rt.trace(me, TraceKind::CoordRequest, p.remote.raw() as u64);
                rt.sched_point(me, SchedPoint::CoordRequest);
                p.token = Some(token);
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drink_runtime::RuntimeConfig;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn implicit_against_blocked_thread() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let remote = rt.register_thread();
        // Simulate the remote thread's pre-block sequence: bump clock, block.
        rt.control(remote).bump_release_clock();
        rt.control(remote).publish_blocked();

        let mut responded = 0u32;
        let out = coordinate_one(&rt, me, remote, None, &mut || responded += 1);
        assert_eq!(out.mode, CoordMode::Implicit);
        assert_eq!(out.source_clock, 1);
        assert_eq!(responded, 0, "implicit coordination completes immediately");
    }

    #[test]
    fn explicit_roundtrip_through_safe_point() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let remote = rt.register_thread();
        let stop = AtomicBool::new(false);

        std::thread::scope(|s| {
            // The "remote" mutator: polls its request queue like a safe point.
            let rtr = &rt;
            let stop_r = &stop;
            s.spawn(move || {
                let ctl = rtr.control(remote);
                let mut spin = rtr.spinner("requests in test");
                while !stop_r.load(Ordering::Relaxed) {
                    for req in ctl.take_requests() {
                        let clock = ctl.bump_release_clock();
                        req.token.complete(clock);
                        assert_eq!(req.from, me);
                    }
                    spin.spin();
                }
            });

            let out = coordinate_one(&rt, me, remote, None, &mut || {});
            assert_eq!(out.mode, CoordMode::Explicit);
            assert_eq!(out.source_clock, 1);
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn requester_falls_back_to_implicit_when_remote_blocks() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let remote = rt.register_thread();

        std::thread::scope(|s| {
            // Remote: never polls; blocks shortly after the requester starts.
            let rtr = &rt;
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                rtr.control(remote).bump_release_clock();
                rtr.control(remote).publish_blocked();
                // Answer stale requests like Monitor::acquire's publish path.
                for req in rtr.control(remote).take_requests() {
                    req.token.complete(rtr.control(remote).release_clock());
                }
            });

            let out = coordinate_one(&rt, me, remote, None, &mut || {});
            // Either path is legal depending on the race; both carry clock 1.
            assert_eq!(out.source_clock, 1);
        });
    }

    #[test]
    fn mutual_coordination_does_not_deadlock() {
        let rt = Runtime::new(RuntimeConfig::default());
        let a = rt.register_thread();
        let b = rt.register_thread();
        let done = std::sync::atomic::AtomicUsize::new(0);

        // Each thread coordinates with the other while itself acting as a
        // safe point, then — like a detaching mutator — publishes BLOCKED and
        // answers raced requests so the peer can always finish.
        let run = |me: ThreadId, other: ThreadId| {
            let ctl = rt.control(me);
            let out = coordinate_one(&rt, me, other, None, &mut || {
                for req in ctl.take_requests() {
                    req.token.complete(ctl.bump_release_clock());
                }
            });
            ctl.publish_blocked();
            for req in ctl.take_requests() {
                req.token.complete(ctl.bump_release_clock());
            }
            done.fetch_add(1, Ordering::Relaxed);
            out
        };

        std::thread::scope(|s| {
            let h1 = s.spawn(|| run(a, b));
            let h2 = s.spawn(|| run(b, a));
            let o1 = h1.join().unwrap();
            let o2 = h2.join().unwrap();
            // Depending on the interleaving either roundtrip may have been
            // answered explicitly or resolved implicitly post-block; the
            // property under test is completion, not the mode.
            assert!(matches!(o1.mode, CoordMode::Explicit | CoordMode::Implicit));
            assert!(matches!(o2.mode, CoordMode::Explicit | CoordMode::Implicit));
        });
        assert_eq!(done.load(Ordering::Relaxed), 2);
    }

    /// Run an all-peer coordination with one blocked and one responding
    /// peer, through either implementation, and assert the Mixed outcome.
    fn all_peers_mixed(fanout: bool) {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let r1 = rt.register_thread();
        let r2 = rt.register_thread();
        // r1 blocked, r2 answered by a polling helper → Mixed.
        rt.control(r1).publish_blocked();

        let stop_flag = AtomicBool::new(false);
        std::thread::scope(|s| {
            let rtr = &rt;
            let stop = &stop_flag;
            s.spawn(move || {
                let ctl = rtr.control(r2);
                let mut spin = rtr.spinner("requests in test");
                while !stop.load(Ordering::Relaxed) {
                    for req in ctl.take_requests() {
                        req.token.complete(ctl.bump_release_clock());
                    }
                    spin.spin();
                }
            });
            let mut sources = Vec::new();
            let mode = if fanout {
                let mut pending = Vec::new();
                coordinate_many(&rt, me, None, &mut || {}, &mut sources, &mut pending)
            } else {
                coordinate_all_seq(&rt, me, None, &mut || {}, &mut sources)
            };
            stop.store(true, Ordering::Relaxed);
            assert_eq!(mode, CoordMode::Mixed);
            assert_eq!(sources.len(), 2);
            assert!(sources.iter().any(|&(t, _)| t == r1));
            assert!(sources.iter().any(|&(t, _)| t == r2));
        });
    }

    #[test]
    fn coordinate_all_seq_aggregates_modes() {
        all_peers_mixed(false);
    }

    #[test]
    fn coordinate_many_aggregates_modes() {
        all_peers_mixed(true);
    }

    #[test]
    fn all_peer_protocols_with_no_peers_are_vacuous() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let mut sources = Vec::new();
        let mode = coordinate_all_seq(&rt, me, None, &mut || {}, &mut sources);
        assert_eq!(mode, CoordMode::Implicit);
        assert!(sources.is_empty());
        let mut pending = Vec::new();
        let mode = coordinate_many(&rt, me, None, &mut || {}, &mut sources, &mut pending);
        assert_eq!(mode, CoordMode::Implicit);
        assert!(sources.is_empty());
    }

    #[test]
    fn coordinate_many_skips_detached_peer_without_epoch_cas() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let gone = rt.register_thread();
        // Simulate a full detach: final flush (clock bump), block, flag.
        rt.control(gone).bump_release_clock();
        let epoch = rt.control(gone).publish_blocked();
        rt.control(gone).mark_detached();

        let mut sources = Vec::new();
        let mut pending = Vec::new();
        let mode = coordinate_many(&rt, me, None, &mut || {}, &mut sources, &mut pending);
        assert_eq!(mode, CoordMode::Implicit);
        assert_eq!(sources, vec![(gone, 1)], "final clock cited as the source");
        // The snapshot dropped the peer without an epoch CAS: a detached
        // thread never wakes to observe one, so bumping it is pure traffic.
        assert_eq!(
            rt.control(gone).status(),
            ThreadStatus::Blocked { epoch },
            "detached peer's epoch must not be bumped"
        );
    }

    /// The stale-token case: a fan-out enqueues an explicit request to a
    /// running peer, the peer blocks without answering, the requester falls
    /// back to implicit — and the abandoned token must still be answered by
    /// the peer's wake-side drain, leaving no stranded request behind.
    #[test]
    fn coordinate_many_stale_token_is_answered_on_wake() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let remote = rt.register_thread();
        let enqueued = AtomicBool::new(false);

        std::thread::scope(|s| {
            let rtr = &rt;
            let flag = &enqueued;
            s.spawn(move || {
                let ctl = rtr.control(remote);
                // Wait until the fan-out has enqueued its request, then block
                // without answering it (the losing side of the race).
                let mut spin = rtr.spinner("request to go stale");
                while !ctl.has_pending_requests() {
                    spin.spin();
                }
                flag.store(true, Ordering::Relaxed);
                ctl.bump_release_clock();
                ctl.publish_blocked();
            });

            let mut sources = Vec::new();
            let mut pending = Vec::new();
            let mode = coordinate_many(&rt, me, None, &mut || {}, &mut sources, &mut pending);
            assert!(enqueued.load(Ordering::Relaxed), "request did go stale");
            assert_eq!(mode, CoordMode::Implicit, "resolved by the fallback");
            assert_eq!(sources, vec![(remote, 1)]);
        });

        // The peer wakes: its drain must answer the stale token.
        let ctl = rt.control(remote);
        let stale = ctl.take_requests();
        assert_eq!(stale.len(), 1, "stale token still queued for the wake-up");
        let clock = ctl.bump_release_clock();
        for req in stale {
            req.token.complete(clock);
        }
        assert!(!ctl.has_stranded_requests(), "inbox clean after the wake");
    }

    #[test]
    fn mutual_fanout_does_not_deadlock() {
        let rt = Runtime::new(RuntimeConfig::default());
        let ids: Vec<ThreadId> = (0..3).map(|_| rt.register_thread()).collect();
        let done = std::sync::atomic::AtomicUsize::new(0);

        // Three threads all fan out to each other simultaneously, each
        // acting as a safe point while it waits, then detach-style block and
        // answer raced requests.
        let run = |me: ThreadId| {
            let ctl = rt.control(me);
            let mut sources = Vec::new();
            let mut pending = Vec::new();
            let mode = coordinate_many(
                &rt,
                me,
                None,
                &mut || {
                    for req in ctl.take_requests() {
                        req.token.complete(ctl.bump_release_clock());
                    }
                },
                &mut sources,
                &mut pending,
            );
            ctl.publish_blocked();
            for req in ctl.take_requests() {
                req.token.complete(ctl.bump_release_clock());
            }
            done.fetch_add(1, Ordering::Relaxed);
            (mode, sources)
        };

        std::thread::scope(|s| {
            let run = &run;
            let handles: Vec<_> = ids.iter().map(|&t| s.spawn(move || run(t))).collect();
            for h in handles {
                let (_, sources) = h.join().unwrap();
                assert_eq!(sources.len(), 2, "every peer resolved exactly once");
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 3);
    }
}
