//! The coordination client (§2.2, Figure 1's `coordinate`).
//!
//! A thread that needs another thread to relinquish access privileges — an
//! optimistic conflicting transition, or a contended pessimistic transition —
//! coordinates with it:
//!
//! * if the remote thread is **blocked** (parked at a blocking safe point),
//!   coordination is **implicit**: one CAS advancing the remote status word's
//!   epoch. The remote thread cannot be mid-access, so the requester may
//!   proceed immediately; the remote observes the epoch bump when it wakes.
//! * if the remote thread is **running**, coordination is **explicit**: the
//!   requester enqueues a request and spins on a response token until the
//!   remote reaches a safe point. Crucially, *while spinning the requester
//!   acts as a safe point itself* (Figure 1 line 18) — it keeps responding to
//!   other threads' requests, which is what makes the protocol deadlock-free
//!   when two threads coordinate with each other simultaneously.
//!
//! A lost-wakeup race exists between "requester reads RUNNING" and "remote
//! publishes BLOCKED": the request may be enqueued after the remote's final
//! drain. The requester therefore re-checks the remote status on every spin
//! iteration and falls back to implicit coordination if the remote has
//! blocked; the stale queued request is answered harmlessly when the remote
//! eventually wakes.

use drink_runtime::{CoordRequest, ResponseToken, Runtime, SchedPoint, ThreadId, ThreadStatus};

use crate::support::CoordMode;

/// Outcome of coordinating with one remote thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoordOutcome {
    /// Explicit (roundtrip) or implicit (epoch CAS)?
    pub mode: CoordMode,
    /// The remote thread's release clock dominating its last access: the
    /// responder's post-bump clock for explicit coordination, or the clock
    /// read after the epoch CAS for implicit coordination (the remote bumped
    /// it when it flushed before blocking).
    pub source_clock: u64,
}

/// Coordinate with `remote` on behalf of `me`. `respond_self` is invoked on
/// every spin iteration so the requester acts as a safe point while waiting.
///
/// Panics (via the runtime's spin watchdog) if the remote thread never
/// responds — always a protocol bug.
pub fn coordinate_one(
    rt: &Runtime,
    me: ThreadId,
    remote: ThreadId,
    obj: Option<drink_runtime::ObjId>,
    respond_self: &mut impl FnMut(),
) -> CoordOutcome {
    debug_assert_ne!(me, remote, "a thread never coordinates with itself");
    let ctl = rt.control(remote);
    let mut pending: Option<std::sync::Arc<ResponseToken>> = None;
    let mut spin = rt.spinner_for(me, "coordination response");
    loop {
        if let Some(tok) = &pending {
            if tok.is_done() {
                return CoordOutcome {
                    mode: CoordMode::Explicit,
                    source_clock: tok.responder_clock(),
                };
            }
        }
        match ctl.status() {
            ThreadStatus::Blocked { epoch } => {
                if ctl.try_implicit(epoch) {
                    // The remote flushed and bumped its clock before it
                    // published BLOCKED, so this read dominates its last
                    // access. (If we also enqueued an explicit request, the
                    // remote answers the stale token on wake; nobody reads it.)
                    return CoordOutcome {
                        mode: CoordMode::Implicit,
                        source_clock: ctl.release_clock(),
                    };
                }
                // Status changed under us; retry the whole protocol.
            }
            ThreadStatus::Running { .. } => {
                if pending.is_none() {
                    let token = ResponseToken::new();
                    ctl.enqueue_request(CoordRequest {
                        from: me,
                        obj,
                        token: token.clone(),
                    });
                    rt.sched_point(me, SchedPoint::CoordRequest);
                    pending = Some(token);
                }
            }
        }
        // Act as a safe point while waiting (deadlock freedom).
        respond_self();
        spin.spin();
    }
}

/// Coordinate with every registered thread except `me` (the conservative
/// protocol for RdSh conflicts: "T conservatively coordinates with every
/// other thread", §2.2 footnote 4).
///
/// Appends `(thread, clock)` pairs to `sources` and returns the combined
/// mode: `Explicit` if all roundtrips were explicit, `Implicit` if all were
/// implicit, `Mixed` otherwise. With no other threads registered, returns
/// `Implicit` vacuously.
pub fn coordinate_all(
    rt: &Runtime,
    me: ThreadId,
    obj: Option<drink_runtime::ObjId>,
    respond_self: &mut impl FnMut(),
    sources: &mut Vec<(ThreadId, u64)>,
) -> CoordMode {
    let n = rt.registered_threads();
    let mut any_explicit = false;
    let mut any_implicit = false;
    for i in 0..n {
        let remote = ThreadId(i as u16);
        if remote == me {
            continue;
        }
        let out = coordinate_one(rt, me, remote, obj, respond_self);
        sources.push((remote, out.source_clock));
        match out.mode {
            CoordMode::Explicit => any_explicit = true,
            CoordMode::Implicit => any_implicit = true,
            CoordMode::Mixed => unreachable!("coordinate_one never returns Mixed"),
        }
    }
    match (any_explicit, any_implicit) {
        (true, false) => CoordMode::Explicit,
        (false, _) => CoordMode::Implicit,
        (true, true) => CoordMode::Mixed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drink_runtime::RuntimeConfig;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn implicit_against_blocked_thread() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let remote = rt.register_thread();
        // Simulate the remote thread's pre-block sequence: bump clock, block.
        rt.control(remote).bump_release_clock();
        rt.control(remote).publish_blocked();

        let mut responded = 0u32;
        let out = coordinate_one(&rt, me, remote, None, &mut || responded += 1);
        assert_eq!(out.mode, CoordMode::Implicit);
        assert_eq!(out.source_clock, 1);
        assert_eq!(responded, 0, "implicit coordination completes immediately");
    }

    #[test]
    fn explicit_roundtrip_through_safe_point() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let remote = rt.register_thread();
        let stop = AtomicBool::new(false);

        std::thread::scope(|s| {
            // The "remote" mutator: polls its request queue like a safe point.
            let rtr = &rt;
            let stop_r = &stop;
            s.spawn(move || {
                let ctl = rtr.control(remote);
                let mut spin = rtr.spinner("requests in test");
                while !stop_r.load(Ordering::Relaxed) {
                    for req in ctl.take_requests() {
                        let clock = ctl.bump_release_clock();
                        req.token.complete(clock);
                        assert_eq!(req.from, me);
                    }
                    spin.spin();
                }
            });

            let out = coordinate_one(&rt, me, remote, None, &mut || {});
            assert_eq!(out.mode, CoordMode::Explicit);
            assert_eq!(out.source_clock, 1);
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn requester_falls_back_to_implicit_when_remote_blocks() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let remote = rt.register_thread();

        std::thread::scope(|s| {
            // Remote: never polls; blocks shortly after the requester starts.
            let rtr = &rt;
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                rtr.control(remote).bump_release_clock();
                rtr.control(remote).publish_blocked();
                // Answer stale requests like Monitor::acquire's publish path.
                for req in rtr.control(remote).take_requests() {
                    req.token.complete(rtr.control(remote).release_clock());
                }
            });

            let out = coordinate_one(&rt, me, remote, None, &mut || {});
            // Either path is legal depending on the race; both carry clock 1.
            assert_eq!(out.source_clock, 1);
        });
    }

    #[test]
    fn mutual_coordination_does_not_deadlock() {
        let rt = Runtime::new(RuntimeConfig::default());
        let a = rt.register_thread();
        let b = rt.register_thread();
        let done = std::sync::atomic::AtomicUsize::new(0);

        // Each thread coordinates with the other while itself acting as a
        // safe point, then — like a detaching mutator — publishes BLOCKED and
        // answers raced requests so the peer can always finish.
        let run = |me: ThreadId, other: ThreadId| {
            let ctl = rt.control(me);
            let out = coordinate_one(&rt, me, other, None, &mut || {
                for req in ctl.take_requests() {
                    req.token.complete(ctl.bump_release_clock());
                }
            });
            ctl.publish_blocked();
            for req in ctl.take_requests() {
                req.token.complete(ctl.bump_release_clock());
            }
            done.fetch_add(1, Ordering::Relaxed);
            out
        };

        std::thread::scope(|s| {
            let h1 = s.spawn(|| run(a, b));
            let h2 = s.spawn(|| run(b, a));
            let o1 = h1.join().unwrap();
            let o2 = h2.join().unwrap();
            // Depending on the interleaving either roundtrip may have been
            // answered explicitly or resolved implicitly post-block; the
            // property under test is completion, not the mode.
            assert!(matches!(o1.mode, CoordMode::Explicit | CoordMode::Implicit));
            assert!(matches!(o2.mode, CoordMode::Explicit | CoordMode::Implicit));
        });
        assert_eq!(done.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn coordinate_all_aggregates_modes() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let r1 = rt.register_thread();
        let r2 = rt.register_thread();
        // r1 blocked, r2 answered by a polling helper → Mixed.
        rt.control(r1).publish_blocked();

        let stop_flag = AtomicBool::new(false);
        std::thread::scope(|s| {
            let rtr = &rt;
            let stop = &stop_flag;
            s.spawn(move || {
                let ctl = rtr.control(r2);
                let mut spin = rtr.spinner("requests in test");
                while !stop.load(Ordering::Relaxed) {
                    for req in ctl.take_requests() {
                        req.token.complete(ctl.bump_release_clock());
                    }
                    spin.spin();
                }
            });
            let mut sources = Vec::new();
            let mode = coordinate_all(&rt, me, None, &mut || {}, &mut sources);
            stop.store(true, Ordering::Relaxed);
            assert_eq!(mode, CoordMode::Mixed);
            assert_eq!(sources.len(), 2);
            assert!(sources.iter().any(|&(t, _)| t == r1));
            assert!(sources.iter().any(|&(t, _)| t == r2));
        });
    }

    #[test]
    fn coordinate_all_with_no_peers_is_vacuous() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let mut sources = Vec::new();
        let mode = coordinate_all(&rt, me, None, &mut || {}, &mut sources);
        assert_eq!(mode, CoordMode::Implicit);
        assert!(sources.is_empty());
    }
}
