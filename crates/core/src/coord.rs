//! The coordination client (§2.2, Figure 1's `coordinate`).
//!
//! A thread that needs another thread to relinquish access privileges — an
//! optimistic conflicting transition, or a contended pessimistic transition —
//! coordinates with it:
//!
//! * if the remote thread is **blocked** (parked at a blocking safe point),
//!   coordination is **implicit**: one CAS advancing the remote status word's
//!   epoch. The remote thread cannot be mid-access, so the requester may
//!   proceed immediately; the remote observes the epoch bump when it wakes.
//! * if the remote thread is **running**, coordination is **explicit**: the
//!   requester enqueues a request and spins on a response token until the
//!   remote reaches a safe point. Crucially, *while spinning the requester
//!   acts as a safe point itself* (Figure 1 line 18) — it keeps responding to
//!   other threads' requests, which is what makes the protocol deadlock-free
//!   when two threads coordinate with each other simultaneously.
//!
//! A lost-wakeup race exists between "requester reads RUNNING" and "remote
//! publishes BLOCKED": the request may be enqueued after the remote's final
//! drain. The requester therefore re-checks the remote status on every spin
//! iteration and falls back to implicit coordination if the remote has
//! blocked; the stale queued request is answered harmlessly when the remote
//! eventually wakes.
//!
//! ## Waiting, bounded two ways (DESIGN.md §13)
//!
//! Requesters wait through [`CoordWait`], a shared backoff ladder: spin
//! hints → yields (the [`Spin`] phases) → bounded condvar parks on the
//! requester's [`Waker`] once contention is evidently not transient. Both
//! the response-token completion and a peer enqueueing a request *to us*
//! notify that waker, so a parked requester keeps acting as a safe point
//! with at most one park-interval of latency.
//!
//! The wait is bounded two ways:
//!
//! * the `*_deadline` variants take a **recoverable deadline** (the
//!   runtime's `coord_deadline` knob): on expiry they return `None` and the
//!   engine falls back to the pessimistic protocol for that object — a
//!   *policy* decision, not a failure;
//! * the plain variants keep the **hard-panic spin watchdog**: a
//!   coordination that never completes with no deadline configured is a
//!   protocol bug, and hiding it would be worse than crashing.

use std::sync::Arc;
use std::time::{Duration, Instant};

use drink_runtime::{
    CoordRequest, LatencyKind, ResponseToken, Runtime, SchedPoint, Spin, SpinOutcome, ThreadId,
    ThreadStatus, TraceKind, Waker,
};

use crate::support::CoordMode;

/// Consecutive no-progress wait steps before a requester escalates from
/// spinning/yielding to parking on its [`Waker`]. Matches the tail of the
/// [`Spin`] yield phase: by this point the responder has demonstrably not
/// been one quantum away.
const PARK_AFTER_STEPS: u32 = 192;
/// First park interval; doubles per park up to [`PARK_MAX`]. Short enough
/// that a lost wakeup (tolerated by [`Waker::park`]'s bounded wait) costs
/// microseconds, long enough to actually free the core.
const PARK_INITIAL: Duration = Duration::from_micros(50);
/// Park interval ceiling: bounds both lost-wakeup latency and deadline
/// overshoot.
const PARK_MAX: Duration = Duration::from_millis(1);

/// The coordination wait ladder: spin → yield → park, with an optional
/// recoverable deadline. One instance per coordination episode; fan-outs
/// reset it via [`CoordWait::progressed`] whenever a poll pass resolves at
/// least one peer, so the ladder measures *time since last progress*, not
/// total episode length.
struct CoordWait<'rt> {
    spin: Spin<'rt>,
    waker: &'rt Arc<Waker>,
    /// Absolute expiry, if this wait is deadline-bounded (recoverable).
    expires_at: Option<Instant>,
    /// Wait steps since the last observed progress.
    idle: u32,
    interval: Duration,
}

impl<'rt> CoordWait<'rt> {
    fn new(
        rt: &'rt Runtime,
        me: ThreadId,
        what: &'static str,
        deadline: Option<Duration>,
    ) -> Self {
        let (spin, expires_at) = match deadline {
            // Exact budget: a DRINK_SPIN_BUDGET_MS override bounds hangs,
            // not clean deadline expiries.
            Some(d) => (rt.deadline_spinner_for(me, what, d), Some(Instant::now() + d)),
            None => (rt.spinner_for(me, what), None),
        };
        CoordWait {
            spin,
            waker: rt.control(me).waker(),
            expires_at,
            idle: 0,
            interval: PARK_INITIAL,
        }
    }

    /// Something completed since the last step; de-escalate fully.
    fn progressed(&mut self) {
        self.idle = 0;
        self.interval = PARK_INITIAL;
    }

    /// One no-progress wait step. Returns [`SpinOutcome::Expired`] only for
    /// deadline-bounded waits; without a deadline a wait that exhausts the
    /// watchdog budget panics (protocol bug), exactly as before.
    fn step(&mut self) -> SpinOutcome {
        self.idle += 1;
        if self.idle > PARK_AFTER_STEPS {
            // Escalate to parking. Token completions and incoming requests
            // notify the waker; the bounded interval is the lost-wakeup
            // backstop and keeps the caller's respond-as-safepoint duty at
            // one-interval latency worst case.
            self.spin.note_park();
            match self.expires_at {
                Some(at) => {
                    let left = at.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return SpinOutcome::Expired;
                    }
                    self.waker.park(self.interval.min(left));
                }
                None => self.waker.park(self.interval),
            }
            self.interval = (self.interval * 2).min(PARK_MAX);
        }
        // Still step the spinner every iteration: it keeps the hang
        // backstop armed (and, under a deadline, checks expiry).
        if self.expires_at.is_some() {
            self.spin.checked_spin()
        } else {
            self.spin.spin();
            SpinOutcome::Progress
        }
    }
}

/// Outcome of coordinating with one remote thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoordOutcome {
    /// Explicit (roundtrip) or implicit (epoch CAS)?
    pub mode: CoordMode,
    /// The remote thread's release clock dominating its last access: the
    /// responder's post-bump clock for explicit coordination, or the clock
    /// read after the epoch CAS for implicit coordination (the remote bumped
    /// it when it flushed before blocking).
    pub source_clock: u64,
}

/// Coordinate with `remote` on behalf of `me`. `respond_self` is invoked on
/// every wait step so the requester acts as a safe point while waiting.
///
/// Panics (via the runtime's spin watchdog) if the remote thread never
/// responds — always a protocol bug.
pub fn coordinate_one(
    rt: &Runtime,
    me: ThreadId,
    remote: ThreadId,
    obj: Option<drink_runtime::ObjId>,
    respond_self: &mut impl FnMut(),
) -> CoordOutcome {
    match coordinate_one_deadline(rt, me, remote, obj, respond_self, None) {
        Some(out) => out,
        // Without a deadline the wait either completes or the watchdog
        // panics inside the loop; it cannot expire.
        None => unreachable!("undeadlined coordination cannot expire"),
    }
}

/// [`coordinate_one`] with an optional recoverable deadline. Returns `None`
/// if `deadline` elapsed without a resolution: the requester stops waiting
/// and the caller falls back to the pessimistic protocol for this object
/// (DESIGN.md §13). Any enqueued token simply goes stale — the remote
/// answers it at its next safe point or wake, and nobody reads it, the same
/// closure as the blocked-fallback race above.
pub fn coordinate_one_deadline(
    rt: &Runtime,
    me: ThreadId,
    remote: ThreadId,
    obj: Option<drink_runtime::ObjId>,
    respond_self: &mut impl FnMut(),
    deadline: Option<Duration>,
) -> Option<CoordOutcome> {
    debug_assert_ne!(me, remote, "a thread never coordinates with itself");
    let ctl = rt.control(remote);
    let t0 = Instant::now();
    let mut pending: Option<Arc<ResponseToken>> = None;
    let mut wait = CoordWait::new(rt, me, "coordination response", deadline);
    loop {
        if let Some(tok) = &pending {
            if tok.is_done() {
                rt.stats()
                    .record_latency(LatencyKind::CoordRoundtrip, t0.elapsed().as_nanos() as u64);
                return Some(CoordOutcome {
                    mode: CoordMode::Explicit,
                    source_clock: tok.responder_clock(),
                });
            }
        }
        match ctl.status() {
            ThreadStatus::Blocked { epoch } => {
                if ctl.try_implicit(epoch) {
                    // The remote flushed and bumped its clock before it
                    // published BLOCKED, so this read dominates its last
                    // access. (If we also enqueued an explicit request, the
                    // remote answers the stale token on wake; nobody reads it.)
                    rt.trace(me, TraceKind::CoordImplicit, remote.raw() as u64);
                    return Some(CoordOutcome {
                        mode: CoordMode::Implicit,
                        source_clock: ctl.release_clock(),
                    });
                }
                // Status changed under us; retry the whole protocol.
            }
            ThreadStatus::Running { .. } => {
                if pending.is_none() {
                    // The token carries our waker so the responder's
                    // `complete` can unpark us if we escalated to parking.
                    let token = ResponseToken::with_waker(rt.control(me).waker().clone());
                    ctl.enqueue_request(CoordRequest {
                        from: me,
                        obj,
                        token: token.clone(),
                    });
                    rt.trace(me, TraceKind::CoordRequest, remote.raw() as u64);
                    rt.sched_point(me, SchedPoint::CoordRequest);
                    pending = Some(token);
                }
            }
        }
        // Act as a safe point while waiting (deadlock freedom).
        respond_self();
        if wait.step() == SpinOutcome::Expired {
            rt.trace(me, TraceKind::CoordDeadline, remote.raw() as u64);
            return None;
        }
    }
}

/// Sequential reference implementation of the conservative RdSh protocol:
/// one full [`coordinate_one`] roundtrip per registered peer, in thread-id
/// order. Worst-case latency is the *sum* of per-peer roundtrips, and every
/// registered thread is visited — even detached ones (resolved by an epoch
/// CAS against their permanently-blocked status word).
///
/// Kept benchable as the baseline the `contention` bench's `fanout_seq` rows
/// measure; engine hot paths use [`coordinate_many`].
pub fn coordinate_all_seq(
    rt: &Runtime,
    me: ThreadId,
    obj: Option<drink_runtime::ObjId>,
    respond_self: &mut impl FnMut(),
    sources: &mut Vec<(ThreadId, u64)>,
) -> CoordMode {
    let n = rt.registered_threads();
    let t0 = Instant::now();
    let mut any_explicit = false;
    let mut any_implicit = false;
    let before = sources.len();
    for i in 0..n {
        let remote = ThreadId(i as u16);
        if remote == me {
            continue;
        }
        let out = coordinate_one(rt, me, remote, obj, respond_self);
        sources.push((remote, out.source_clock));
        match out.mode {
            CoordMode::Explicit => any_explicit = true,
            CoordMode::Implicit => any_implicit = true,
            CoordMode::Mixed => unreachable!("coordinate_one never returns Mixed"),
        }
    }
    // Coordination-induced state change: the requester will install the new
    // state next, but bump here too so a seqlock reader that raced the whole
    // fan-out cannot validate across it (DESIGN.md §12).
    if let Some(o) = obj {
        rt.obj(o).bump_version();
    }
    rt.stats().record_latency(LatencyKind::FanoutComplete, t0.elapsed().as_nanos() as u64);
    rt.trace(me, TraceKind::FanoutComplete, (sources.len() - before) as u64);
    combine_modes(any_explicit, any_implicit)
}

/// Mode aggregation shared by the sequential and fan-out all-peer protocols:
/// `Explicit` iff every resolved peer was explicit, `Implicit` if every peer
/// was implicit *or there were no peers* (vacuous), `Mixed` otherwise.
fn combine_modes(any_explicit: bool, any_implicit: bool) -> CoordMode {
    match (any_explicit, any_implicit) {
        (true, false) => CoordMode::Explicit,
        (false, _) => CoordMode::Implicit,
        (true, true) => CoordMode::Mixed,
    }
}

/// One peer of an in-flight [`coordinate_many`] fan-out: scratch state the
/// caller provides (and reuses across conflicts) so a fan-out allocates
/// nothing beyond the explicit-request inbox nodes themselves.
#[derive(Debug)]
pub struct PendingPeer {
    remote: ThreadId,
    token: Option<std::sync::Arc<ResponseToken>>,
}

/// Coordinate with every live registered thread except `me` — the
/// conservative protocol for RdSh conflicts ("T conservatively coordinates
/// with every other thread", §2.2 footnote 4) — with the per-peer roundtrips
/// overlapped instead of serialized:
///
/// 1. **snapshot + implicit sweep**: detached peers are resolved from their
///    (final) release clocks without touching their status words; blocked
///    peers are resolved by the implicit epoch CAS;
/// 2. **fan-out enqueue**: an explicit request is enqueued to every
///    still-running peer *at once*;
/// 3. **single poll loop**: all outstanding tokens are polled together, with
///    the per-peer implicit fallback when a peer blocks mid-wait, and
///    `respond_self` invoked every iteration so the requester still acts as
///    a safe point (deadlock freedom, Figure 1 line 18).
///
/// Latency is therefore the *max* of the per-peer response times, not their
/// sum. A peer that blocks (or detaches) after its request was enqueued is
/// resolved implicitly and its stale token answered harmlessly on the peer's
/// wake/detach path — the same lost-wakeup closure [`coordinate_one`]
/// documents, re-checked for every peer on every loop iteration.
///
/// Appends `(thread, clock)` pairs to `sources`; `pending` is caller-owned
/// scratch (cleared here). Returns the combined mode under the same
/// aggregation as [`coordinate_all_seq`] (detached peers count as implicit).
///
/// ## Epoch skip (DESIGN.md §14)
///
/// When the runtime is sharded (`thread_shards() > 1`) and the fan-out names
/// an object, the snapshot pass consults the heap's per-shard access-epoch
/// table and **skips entire shards** whose epoch proves no thread of the
/// shard ever accessed the object: zero roundtrip, zero enqueue. Skipped
/// peers are *vacuous* — they contribute neither a source nor a mode flag,
/// exactly like the no-peers case, so the `Mode` aggregation semantics are
/// unchanged (all peers skipped ⇒ `Implicit`). A peer whose first access
/// races the snapshot either stamps before our epoch load (we visit it) or
/// stamps after (its access is ordered after this coordination — the same
/// already-tolerated window as a thread registering mid-fan-out). Unsharded
/// runtimes and `obj == None` fan-outs visit every peer, byte-for-byte as
/// before.
pub fn coordinate_many(
    rt: &Runtime,
    me: ThreadId,
    obj: Option<drink_runtime::ObjId>,
    respond_self: &mut impl FnMut(),
    sources: &mut Vec<(ThreadId, u64)>,
    pending: &mut Vec<PendingPeer>,
) -> CoordMode {
    match coordinate_many_deadline(rt, me, obj, respond_self, sources, pending, None) {
        Some(mode) => mode,
        None => unreachable!("undeadlined fan-out cannot expire"),
    }
}

/// [`coordinate_many`] with an optional recoverable deadline covering the
/// *whole* fan-out. Returns `None` if the deadline elapsed with peers still
/// outstanding; `sources` may then hold partial resolutions, and the caller
/// must discard them (engines use cleared scratch, so abandoning the vec is
/// enough). No completion version bump happens on expiry — the caller's
/// abort path restores the state word and bumps, which is what seqlock
/// readers key on. Outstanding stale tokens are answered by their peers'
/// next safe point, as ever.
pub fn coordinate_many_deadline(
    rt: &Runtime,
    me: ThreadId,
    obj: Option<drink_runtime::ObjId>,
    respond_self: &mut impl FnMut(),
    sources: &mut Vec<(ThreadId, u64)>,
    pending: &mut Vec<PendingPeer>,
    deadline: Option<Duration>,
) -> Option<CoordMode> {
    let n = rt.registered_threads();
    let t0 = Instant::now();
    let mut any_explicit = false;
    let mut any_implicit = false;
    let before = sources.len();
    pending.clear();

    // Epoch skip setup: only a sharded runtime with a named object can skip
    // (obj == None callers are the conservative visit-everyone paths).
    let heap = rt.heap();
    let map = heap.thread_shard_map();
    let skip_obj = if heap.thread_shards() > 1 { obj } else { None };

    // Phase 1: snapshot the live peers, resolving what needs no roundtrip.
    for i in 0..n {
        let remote = ThreadId(i as u16);
        if remote == me {
            continue;
        }
        if let Some(o) = skip_obj {
            if !heap.shard_stamped(o, map.shard_of(i)) {
                // No thread of this shard ever accessed `o` (the stamp is
                // SeqCst-ordered before any such access's effect), so the
                // peer can hold no privilege on it: resolved vacuously, no
                // roundtrip, no enqueue, no source.
                continue;
            }
        }
        let ctl = rt.control(remote);
        if ctl.is_detached() {
            // Permanently blocked: detach flushed, bumped the clock, then
            // set the flag (SeqCst), so this read dominates the peer's last
            // access. No epoch CAS — nobody is left to observe it.
            sources.push((remote, ctl.release_clock()));
            any_implicit = true;
            continue;
        }
        match ctl.status() {
            ThreadStatus::Blocked { epoch } if ctl.try_implicit(epoch) => {
                sources.push((remote, ctl.release_clock()));
                any_implicit = true;
            }
            // Running, or a blocked/running race: handled by the poll loop.
            _ => pending.push(PendingPeer {
                remote,
                token: None,
            }),
        }
    }

    if !pending.is_empty() {
        // Phase 2 happens inside the first `advance` pass over `pending`:
        // every still-running peer gets its request enqueued before any
        // backoff, so all responders work concurrently.
        rt.trace(me, TraceKind::FanoutEnqueue, pending.len() as u64);
        rt.sched_point(me, SchedPoint::CoordFanoutEnqueue);
        let mut wait = CoordWait::new(rt, me, "fan-out coordination responses", deadline);
        loop {
            // Phase 3: one combined poll pass over all outstanding peers.
            let outstanding = pending.len();
            pending.retain_mut(|p| {
                match advance_peer(rt, me, obj, p) {
                    Some((clock, CoordMode::Explicit)) => {
                        rt.trace(me, TraceKind::FanoutPeerDone, p.remote.raw() as u64);
                        sources.push((p.remote, clock));
                        any_explicit = true;
                        false
                    }
                    Some((clock, _)) => {
                        rt.trace(me, TraceKind::FanoutPeerDone, p.remote.raw() as u64);
                        sources.push((p.remote, clock));
                        any_implicit = true;
                        false
                    }
                    None => true,
                }
            });
            if pending.is_empty() {
                break;
            }
            if pending.len() < outstanding {
                // A peer resolved this pass: the fan-out is moving, so
                // de-escalate the ladder back to spinning.
                wait.progressed();
            }
            rt.sched_point(me, SchedPoint::CoordFanoutPoll);
            // Act as a safe point while waiting (deadlock freedom).
            respond_self();
            if wait.step() == SpinOutcome::Expired {
                rt.trace(me, TraceKind::CoordDeadline, pending.len() as u64);
                return None;
            }
        }
    }
    // Same completion bump as the sequential protocol: no seqlock read may
    // validate across a coordination window (DESIGN.md §12).
    if let Some(o) = obj {
        rt.obj(o).bump_version();
    }
    rt.stats().record_latency(LatencyKind::FanoutComplete, t0.elapsed().as_nanos() as u64);
    rt.trace(me, TraceKind::FanoutComplete, (sources.len() - before) as u64);
    Some(combine_modes(any_explicit, any_implicit))
}

/// One peer's step of the fan-out state machine — the body of
/// [`coordinate_one`]'s loop, minus the spin. Returns the resolution, or
/// `None` if the peer is still outstanding.
fn advance_peer(
    rt: &Runtime,
    me: ThreadId,
    obj: Option<drink_runtime::ObjId>,
    p: &mut PendingPeer,
) -> Option<(u64, CoordMode)> {
    if let Some(tok) = &p.token {
        if tok.is_done() {
            return Some((tok.responder_clock(), CoordMode::Explicit));
        }
    }
    let ctl = rt.control(p.remote);
    match ctl.status() {
        ThreadStatus::Blocked { epoch } => {
            if ctl.try_implicit(epoch) {
                // Peer blocked mid-wait: fall back to implicit. Any enqueued
                // token goes stale and is answered on the peer's wake.
                return Some((ctl.release_clock(), CoordMode::Implicit));
            }
            None // epoch raced; re-examine next iteration
        }
        ThreadStatus::Running { .. } => {
            if p.token.is_none() {
                // Waker-carrying, like coordinate_one's: completions unpark
                // a requester that escalated to parking.
                let token = ResponseToken::with_waker(rt.control(me).waker().clone());
                ctl.enqueue_request(CoordRequest {
                    from: me,
                    obj,
                    token: token.clone(),
                });
                rt.trace(me, TraceKind::CoordRequest, p.remote.raw() as u64);
                rt.sched_point(me, SchedPoint::CoordRequest);
                p.token = Some(token);
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drink_runtime::RuntimeConfig;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn implicit_against_blocked_thread() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let remote = rt.register_thread();
        // Simulate the remote thread's pre-block sequence: bump clock, block.
        rt.control(remote).bump_release_clock();
        rt.control(remote).publish_blocked();

        let mut responded = 0u32;
        let out = coordinate_one(&rt, me, remote, None, &mut || responded += 1);
        assert_eq!(out.mode, CoordMode::Implicit);
        assert_eq!(out.source_clock, 1);
        assert_eq!(responded, 0, "implicit coordination completes immediately");
    }

    #[test]
    fn explicit_roundtrip_through_safe_point() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let remote = rt.register_thread();
        let stop = AtomicBool::new(false);

        std::thread::scope(|s| {
            // The "remote" mutator: polls its request queue like a safe point.
            let rtr = &rt;
            let stop_r = &stop;
            s.spawn(move || {
                let ctl = rtr.control(remote);
                let mut spin = rtr.spinner("requests in test");
                while !stop_r.load(Ordering::Relaxed) {
                    for req in ctl.take_requests() {
                        let clock = ctl.bump_release_clock();
                        req.token.complete(clock);
                        assert_eq!(req.from, me);
                    }
                    spin.spin();
                }
            });

            let out = coordinate_one(&rt, me, remote, None, &mut || {});
            assert_eq!(out.mode, CoordMode::Explicit);
            assert_eq!(out.source_clock, 1);
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn requester_falls_back_to_implicit_when_remote_blocks() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let remote = rt.register_thread();

        std::thread::scope(|s| {
            // Remote: never polls; blocks shortly after the requester starts.
            let rtr = &rt;
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                rtr.control(remote).bump_release_clock();
                rtr.control(remote).publish_blocked();
                // Answer stale requests like Monitor::acquire's publish path.
                for req in rtr.control(remote).take_requests() {
                    req.token.complete(rtr.control(remote).release_clock());
                }
            });

            let out = coordinate_one(&rt, me, remote, None, &mut || {});
            // Either path is legal depending on the race; both carry clock 1.
            assert_eq!(out.source_clock, 1);
        });
    }

    #[test]
    fn mutual_coordination_does_not_deadlock() {
        let rt = Runtime::new(RuntimeConfig::default());
        let a = rt.register_thread();
        let b = rt.register_thread();
        let done = std::sync::atomic::AtomicUsize::new(0);

        // Each thread coordinates with the other while itself acting as a
        // safe point, then — like a detaching mutator — publishes BLOCKED and
        // answers raced requests so the peer can always finish.
        let run = |me: ThreadId, other: ThreadId| {
            let ctl = rt.control(me);
            let out = coordinate_one(&rt, me, other, None, &mut || {
                for req in ctl.take_requests() {
                    req.token.complete(ctl.bump_release_clock());
                }
            });
            ctl.publish_blocked();
            for req in ctl.take_requests() {
                req.token.complete(ctl.bump_release_clock());
            }
            done.fetch_add(1, Ordering::Relaxed);
            out
        };

        std::thread::scope(|s| {
            let h1 = s.spawn(|| run(a, b));
            let h2 = s.spawn(|| run(b, a));
            let o1 = h1.join().unwrap();
            let o2 = h2.join().unwrap();
            // Depending on the interleaving either roundtrip may have been
            // answered explicitly or resolved implicitly post-block; the
            // property under test is completion, not the mode.
            assert!(matches!(o1.mode, CoordMode::Explicit | CoordMode::Implicit));
            assert!(matches!(o2.mode, CoordMode::Explicit | CoordMode::Implicit));
        });
        assert_eq!(done.load(Ordering::Relaxed), 2);
    }

    /// Run an all-peer coordination with one blocked and one responding
    /// peer, through either implementation, and assert the Mixed outcome.
    fn all_peers_mixed(fanout: bool) {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let r1 = rt.register_thread();
        let r2 = rt.register_thread();
        // r1 blocked, r2 answered by a polling helper → Mixed.
        rt.control(r1).publish_blocked();

        let stop_flag = AtomicBool::new(false);
        std::thread::scope(|s| {
            let rtr = &rt;
            let stop = &stop_flag;
            s.spawn(move || {
                let ctl = rtr.control(r2);
                let mut spin = rtr.spinner("requests in test");
                while !stop.load(Ordering::Relaxed) {
                    for req in ctl.take_requests() {
                        req.token.complete(ctl.bump_release_clock());
                    }
                    spin.spin();
                }
            });
            let mut sources = Vec::new();
            let mode = if fanout {
                let mut pending = Vec::new();
                coordinate_many(&rt, me, None, &mut || {}, &mut sources, &mut pending)
            } else {
                coordinate_all_seq(&rt, me, None, &mut || {}, &mut sources)
            };
            stop.store(true, Ordering::Relaxed);
            assert_eq!(mode, CoordMode::Mixed);
            assert_eq!(sources.len(), 2);
            assert!(sources.iter().any(|&(t, _)| t == r1));
            assert!(sources.iter().any(|&(t, _)| t == r2));
        });
    }

    #[test]
    fn coordinate_all_seq_aggregates_modes() {
        all_peers_mixed(false);
    }

    #[test]
    fn coordinate_many_aggregates_modes() {
        all_peers_mixed(true);
    }

    #[test]
    fn all_peer_protocols_with_no_peers_are_vacuous() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let mut sources = Vec::new();
        let mode = coordinate_all_seq(&rt, me, None, &mut || {}, &mut sources);
        assert_eq!(mode, CoordMode::Implicit);
        assert!(sources.is_empty());
        let mut pending = Vec::new();
        let mode = coordinate_many(&rt, me, None, &mut || {}, &mut sources, &mut pending);
        assert_eq!(mode, CoordMode::Implicit);
        assert!(sources.is_empty());
    }

    #[test]
    fn coordinate_many_skips_detached_peer_without_epoch_cas() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let gone = rt.register_thread();
        // Simulate a full detach: final flush (clock bump), block, flag.
        rt.control(gone).bump_release_clock();
        let epoch = rt.control(gone).publish_blocked();
        rt.control(gone).mark_detached();

        let mut sources = Vec::new();
        let mut pending = Vec::new();
        let mode = coordinate_many(&rt, me, None, &mut || {}, &mut sources, &mut pending);
        assert_eq!(mode, CoordMode::Implicit);
        assert_eq!(sources, vec![(gone, 1)], "final clock cited as the source");
        // The snapshot dropped the peer without an epoch CAS: a detached
        // thread never wakes to observe one, so bumping it is pure traffic.
        assert_eq!(
            rt.control(gone).status(),
            ThreadStatus::Blocked { epoch },
            "detached peer's epoch must not be bumped"
        );
    }

    /// The stale-token case: a fan-out enqueues an explicit request to a
    /// running peer, the peer blocks without answering, the requester falls
    /// back to implicit — and the abandoned token must still be answered by
    /// the peer's wake-side drain, leaving no stranded request behind.
    #[test]
    fn coordinate_many_stale_token_is_answered_on_wake() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let remote = rt.register_thread();
        let enqueued = AtomicBool::new(false);

        std::thread::scope(|s| {
            let rtr = &rt;
            let flag = &enqueued;
            s.spawn(move || {
                let ctl = rtr.control(remote);
                // Wait until the fan-out has enqueued its request, then block
                // without answering it (the losing side of the race).
                let mut spin = rtr.spinner("request to go stale");
                while !ctl.has_pending_requests() {
                    spin.spin();
                }
                flag.store(true, Ordering::Relaxed);
                ctl.bump_release_clock();
                ctl.publish_blocked();
            });

            let mut sources = Vec::new();
            let mut pending = Vec::new();
            let mode = coordinate_many(&rt, me, None, &mut || {}, &mut sources, &mut pending);
            assert!(enqueued.load(Ordering::Relaxed), "request did go stale");
            assert_eq!(mode, CoordMode::Implicit, "resolved by the fallback");
            assert_eq!(sources, vec![(remote, 1)]);
        });

        // The peer wakes: its drain must answer the stale token.
        let ctl = rt.control(remote);
        let stale = ctl.take_requests();
        assert_eq!(stale.len(), 1, "stale token still queued for the wake-up");
        let clock = ctl.bump_release_clock();
        for req in stale {
            req.token.complete(clock);
        }
        assert!(!ctl.has_stranded_requests(), "inbox clean after the wake");
    }

    /// A peer that stays RUNNING but never polls its request queue: the
    /// deadline must fire, the call must return `None` (no panic, no hang),
    /// and the stale token must be answerable afterwards.
    #[test]
    fn deadline_expires_against_stalled_peer() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let stalled = rt.register_thread();

        let t0 = Instant::now();
        let out = coordinate_one_deadline(
            &rt,
            me,
            stalled,
            None,
            &mut || {},
            Some(Duration::from_millis(30)),
        );
        assert_eq!(out, None, "stalled peer must trip the deadline");
        let waited = t0.elapsed();
        assert!(waited >= Duration::from_millis(30), "deadline honored: {waited:?}");
        assert!(waited < Duration::from_secs(5), "expiry is prompt, not a watchdog: {waited:?}");

        // The abandoned request is still answerable at the peer's next safe
        // point — nothing is stranded by the bail-out.
        let ctl = rt.control(stalled);
        let stale = ctl.take_requests();
        assert_eq!(stale.len(), 1);
        for req in stale {
            req.token.complete(ctl.bump_release_clock());
        }
        assert!(!ctl.has_stranded_requests());
    }

    /// Fan-out variant: one responsive peer, one stalled. The deadline fires
    /// with partial progress; the caller treats `sources` as garbage.
    #[test]
    fn fanout_deadline_expires_with_partial_progress() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let good = rt.register_thread();
        let _stalled = rt.register_thread();

        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let rtr = &rt;
            let stop_r = &stop;
            s.spawn(move || {
                let ctl = rtr.control(good);
                let mut spin = rtr.spinner("requests in test");
                while !stop_r.load(Ordering::Relaxed) {
                    for req in ctl.take_requests() {
                        req.token.complete(ctl.bump_release_clock());
                    }
                    spin.spin();
                }
            });

            let mut sources = Vec::new();
            let mut pending = Vec::new();
            let mode = coordinate_many_deadline(
                &rt,
                me,
                None,
                &mut || {},
                &mut sources,
                &mut pending,
                Some(Duration::from_millis(30)),
            );
            stop.store(true, Ordering::Relaxed);
            assert_eq!(mode, None, "one stalled peer must trip the fan-out deadline");
            assert!(sources.len() <= 1, "at most the responsive peer resolved");
        });
    }

    /// Liveness through the park phase: the responder answers only after the
    /// requester has long since escalated from spinning to parking, and the
    /// roundtrip must still complete (token notify → unpark).
    #[test]
    fn parked_requester_completes_roundtrip() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let remote = rt.register_thread();

        std::thread::scope(|s| {
            let rtr = &rt;
            s.spawn(move || {
                let ctl = rtr.control(remote);
                // Let the requester climb the whole ladder before answering.
                std::thread::sleep(Duration::from_millis(40));
                let mut spin = rtr.spinner("request in test");
                loop {
                    let reqs = ctl.take_requests();
                    if !reqs.is_empty() {
                        let clock = ctl.bump_release_clock();
                        for req in reqs {
                            req.token.complete(clock);
                        }
                        break;
                    }
                    spin.spin();
                }
            });

            let out = coordinate_one(&rt, me, remote, None, &mut || {});
            assert_eq!(out.mode, CoordMode::Explicit);
            assert_eq!(out.source_clock, 1);
        });
    }

    /// Safe-point duty survives parking: a requester stuck waiting on a
    /// stalled peer (deadline-bounded, deep in the park phase) must still
    /// answer coordination requests sent *to it*, because its waker is
    /// notified by `enqueue_request`.
    #[test]
    fn parked_requester_still_answers_requests() {
        let rt = Runtime::new(RuntimeConfig::default());
        let me = rt.register_thread();
        let _stalled = rt.register_thread();
        let third = rt.register_thread();

        std::thread::scope(|s| {
            let rtr = &rt;
            let answered = s.spawn(move || {
                // Give the requester time to reach the park phase, then ask
                // it for a roundtrip; it must answer well before its own
                // 300ms deadline expires.
                std::thread::sleep(Duration::from_millis(60));
                let t0 = Instant::now();
                let out = coordinate_one(rtr, third, me, None, &mut || {});
                (out.mode, t0.elapsed())
            });

            let ctl = rt.control(me);
            let out = coordinate_one_deadline(
                &rt,
                me,
                ThreadId(1),
                None,
                &mut || {
                    for req in ctl.take_requests() {
                        req.token.complete(ctl.bump_release_clock());
                    }
                },
                Some(Duration::from_millis(300)),
            );
            assert_eq!(out, None, "the stalled peer still trips our deadline");

            let (mode, latency) = answered.join().unwrap();
            assert_eq!(mode, CoordMode::Explicit);
            assert!(
                latency < Duration::from_millis(200),
                "parked requester answered within a few park intervals: {latency:?}"
            );
        });
    }

    /// Epoch skip: in a per-thread-sharded runtime, a fan-out naming an
    /// object visits only the peers whose shards are stamped for it; the
    /// skipped peers are vacuous (no source, no mode contribution), and an
    /// all-skipped fan-out aggregates to Implicit exactly like no-peers.
    #[test]
    fn fanout_skips_unstamped_shards() {
        let rt = Runtime::new(RuntimeConfig::builder().max_threads(16).shards(16).build());
        let me = rt.register_thread();
        let stamped = rt.register_thread();
        let cold = rt.register_thread();
        assert_eq!(rt.heap().thread_shards(), 16, "per-thread shard granularity");
        let o = drink_runtime::ObjId(3);
        // Only `stamped`'s shard has ever touched `o`. `cold` never did; it
        // also never polls, so visiting it would hang or trip a deadline.
        rt.stamp_access(stamped, o);
        // `stamped` is blocked, so the one visited peer resolves implicitly.
        rt.control(stamped).bump_release_clock();
        rt.control(stamped).publish_blocked();
        let _ = cold;

        let mut sources = Vec::new();
        let mut pending = Vec::new();
        let mode = coordinate_many(&rt, me, Some(o), &mut || {}, &mut sources, &mut pending);
        assert_eq!(mode, CoordMode::Implicit);
        assert_eq!(sources, vec![(stamped, 1)], "only the stamped shard visited");
        assert!(
            !rt.control(cold).has_pending_requests(),
            "skipped peer must see zero explicit requests"
        );

        // A fan-out on a *different*, wholly-unstamped object skips everyone:
        // vacuous, Implicit, and it completes instantly despite `cold`.
        let o2 = drink_runtime::ObjId(7);
        sources.clear();
        let mode = coordinate_many(&rt, me, Some(o2), &mut || {}, &mut sources, &mut pending);
        assert_eq!(mode, CoordMode::Implicit, "all-skipped aggregates like no-peers");
        assert!(sources.is_empty());

        // obj = None keeps the conservative visit-everyone behavior: `cold`
        // would now be visited, so its inbox must receive a request.
        sources.clear();
        let _ = coordinate_many_deadline(
            &rt,
            me,
            None,
            &mut || {},
            &mut sources,
            &mut pending,
            Some(Duration::from_millis(20)),
        );
        assert!(
            rt.control(cold).has_pending_requests(),
            "obj=None fan-out still visits unstamped shards"
        );
        for req in rt.control(cold).take_requests() {
            req.token.complete(rt.control(cold).bump_release_clock());
        }
    }

    /// Satellite: thread registration racing a fan-out snapshot. The
    /// `Release` registration bump paired with the snapshot's `Acquire`
    /// `registered_threads()` load means a fan-out sees either the pre- or
    /// post-registration count, and any thread it does see has a fully
    /// initialized control block. Late registrants simply aren't coordinated
    /// with this round — their first access is ordered after the snapshot.
    #[test]
    fn fanout_snapshot_races_registration() {
        for _ in 0..50 {
            let rt = Runtime::new(RuntimeConfig::builder().max_threads(8).build());
            let me = rt.register_thread();
            let done = AtomicBool::new(false);

            std::thread::scope(|s| {
                let rtr = &rt;
                let done_r = &done;
                // Registrants: each registers mid-fan-out, acts as a safe
                // point until the requester finishes, then blocks.
                let mut joiners = Vec::new();
                for _ in 0..4 {
                    joiners.push(s.spawn(move || {
                        let t = rtr.register_thread();
                        let ctl = rtr.control(t);
                        let mut spin = rtr.spinner("registration race test");
                        while !done_r.load(Ordering::Relaxed) {
                            for req in ctl.take_requests() {
                                req.token.complete(ctl.bump_release_clock());
                            }
                            spin.spin();
                        }
                    }));
                }

                // Requester: repeated fan-outs while peers register.
                let ctl = rt.control(me);
                let mut sources = Vec::new();
                let mut pending = Vec::new();
                for _ in 0..20 {
                    sources.clear();
                    let seen = rt.registered_threads();
                    let mode = coordinate_many(
                        &rt,
                        me,
                        None,
                        &mut || {
                            for req in ctl.take_requests() {
                                req.token.complete(ctl.bump_release_clock());
                            }
                        },
                        &mut sources,
                        &mut pending,
                    );
                    // Every source is a distinct, registered, non-self peer.
                    assert!(matches!(
                        mode,
                        CoordMode::Explicit | CoordMode::Implicit | CoordMode::Mixed
                    ));
                    assert!(sources.len() >= seen - 1, "at least the pre-snapshot peers");
                    assert!(sources.len() <= rt.registered_threads() - 1);
                    let mut tids: Vec<_> = sources.iter().map(|&(t, _)| t).collect();
                    tids.sort();
                    tids.dedup();
                    assert_eq!(tids.len(), sources.len(), "no peer resolved twice");
                    assert!(!tids.contains(&me));
                }
                done.store(true, Ordering::Relaxed);
                for j in joiners {
                    j.join().unwrap();
                }
            });
        }
    }

    #[test]
    fn mutual_fanout_does_not_deadlock() {
        let rt = Runtime::new(RuntimeConfig::default());
        let ids: Vec<ThreadId> = (0..3).map(|_| rt.register_thread()).collect();
        let done = std::sync::atomic::AtomicUsize::new(0);

        // Three threads all fan out to each other simultaneously, each
        // acting as a safe point while it waits, then detach-style block and
        // answer raced requests.
        let run = |me: ThreadId| {
            let ctl = rt.control(me);
            let mut sources = Vec::new();
            let mut pending = Vec::new();
            let mode = coordinate_many(
                &rt,
                me,
                None,
                &mut || {
                    for req in ctl.take_requests() {
                        req.token.complete(ctl.bump_release_clock());
                    }
                },
                &mut sources,
                &mut pending,
            );
            ctl.publish_blocked();
            for req in ctl.take_requests() {
                req.token.complete(ctl.bump_release_clock());
            }
            done.fetch_add(1, Ordering::Relaxed);
            (mode, sources)
        };

        std::thread::scope(|s| {
            let run = &run;
            let handles: Vec<_> = ids.iter().map(|&t| s.spawn(move || run(t))).collect();
            for h in handles {
                let (_, sources) = h.join().unwrap();
                assert_eq!(sources.len(), 2, "every peer resolved exactly once");
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 3);
    }
}
