//! # drink-core: hybrid pessimistic/optimistic dependence tracking
//!
//! A from-scratch Rust implementation of the tracking schemes of
//!
//! > Cao, Zhang, Sengupta, Bond. *Drinking from Both Glasses: Combining
//! > Pessimistic and Optimistic Tracking of Cross-Thread Dependences.*
//! > PPoPP 2016.
//!
//! The crate provides:
//!
//! * the per-object [`word::StateWord`] encoding every state of the hybrid
//!   model (§3.2, Appendix B);
//! * five [`engine`]s: untracked baseline, pessimistic (§2.1), optimistic
//!   (Octet, §2.2), hybrid (§3), and the unsound "Ideal" estimate (§7.5);
//! * the profile-guided [`policy::AdaptivePolicy`] (§6) and its reversible
//!   overlay, the online [`adapt::AdaptController`] demotion controller
//!   (DESIGN.md §13);
//! * the [`support::Support`] observer interface that the dependence
//!   recorder (`drink-replay`) and the region-serializability enforcer
//!   (`drink-rs`) build on;
//! * the [`session::Session`] façade workloads drive everything through.
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use drink_core::prelude::*;
//! use drink_runtime::{ObjId, Runtime, RuntimeConfig};
//!
//! let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
//!     .max_threads(4)
//!     .heap_objects(16)
//!     .monitors(2)
//!     .build()));
//! let engine = HybridEngine::new(rt);
//! std::thread::scope(|s| {
//!     for _ in 0..2 {
//!         let engine = &engine;
//!         s.spawn(move || {
//!             let sess = Session::attach(engine);
//!             for i in 0..100 {
//!                 let v = sess.read(ObjId(0));
//!                 sess.write(ObjId(1), v + i);
//!                 sess.safepoint();
//!             }
//!         });
//!     }
//! });
//! let report = engine.rt().stats().report();
//! assert_eq!(report.accesses(), 400);
//! ```

pub mod adapt;
pub mod common;
pub mod coord;
pub mod engine;
pub mod policy;
pub mod session;
pub mod support;
pub mod tstate;
pub mod word;

/// The names most users need.
pub mod prelude {
    pub use crate::adapt::{AdaptConfig, AdaptController, AdaptEvent};
    pub use crate::engine::hybrid::{HybridConfig, HybridEngine, SelfReadMode};
    pub use crate::engine::ideal::IdealEngine;
    pub use crate::engine::none::NoTracking;
    pub use crate::engine::optimistic::OptimisticEngine;
    pub use crate::engine::pessimistic::PessimisticEngine;
    pub use crate::engine::{AnyEngine, DynTracker, EngineKind, Tracker};
    pub use crate::policy::{AdaptivePolicy, PolicyParams};
    pub use crate::session::Session;
    pub use crate::support::{NullSupport, Support};
}

pub use engine::{AnyEngine, DynTracker, EngineKind, Tracker};
pub use session::Session;
