//! Shared engine plumbing: the pieces every tracking engine needs regardless
//! of protocol — per-thread state slots, safe point responses, lock-buffer
//! flushes, PSRO handling, monitor operations, attach/detach lifecycle.
//!
//! [`EngineCommon`] implements [`RtHooks`], so the substrate's monitors call
//! straight into the protocol-independent parts of the instrumentation:
//!
//! * `on_psro` — flush the lock buffer (deferred unlocking, §3.1), bump the
//!   release clock, notify support;
//! * `before_block`/`on_blocked_publish` — the blocking-safe-point sequence
//!   that makes implicit coordination sound: flush, bump, publish, answer
//!   raced requests;
//! * `after_unblock` — observe implicit coordination;
//! * `poll` — the responding-safe-point fast path (one relaxed load when no
//!   request is pending).
//!
//! Engines that have no pessimistic states (optimistic, pessimistic-alone)
//! still share this code: their lock buffers are simply always empty.

use std::sync::atomic::{fence, Ordering};
use std::sync::Arc;

use drink_runtime::{
    Event, LatencyKind, MonitorId, ObjHeader, ObjId, RtHooks, Runtime, SchedPoint, ThreadId,
    TraceKind,
};

use crate::policy::AdaptivePolicy;
use crate::support::{Support, SupportCx};
use crate::tstate::{OwnedByThread, ThreadState};
use crate::word::{Kind, StateWord, VersionWord};

/// Seqlock revalidation failures tolerated before a read gives up and takes
/// the engine's coordinated path. Retrying once or twice rides out a single
/// in-flight install; under a genuine write burst the coordinated path is
/// the right place to be anyway.
const SEQLOCK_MAX_RETRIES: u64 = 2;

/// Protocol-independent engine state shared by all tracking engines.
pub struct EngineCommon<S: Support> {
    /// The runtime this engine instruments.
    pub rt: Arc<Runtime>,
    /// The runtime support observing this engine.
    pub support: S,
    /// The adaptive policy (only the hybrid engine consults it on accesses,
    /// but flushes are shared).
    pub policy: AdaptivePolicy,
    /// The online opt→pess demotion controller (DESIGN.md §13), if this
    /// engine runs one. When present it *owns* the unlock-time valve
    /// decision: engines attach it to infinite-cutoff configurations, where
    /// the §6 phase machine never advances past `OptInitial` and its valve
    /// would otherwise pin every demoted object pessimistic forever.
    pub adapt: Option<crate::adapt::AdaptController>,
    /// One slot per mutator, each padded to its own cache line so thread
    /// A's hot bookkeeping (lock buffer, stats) never false-shares with
    /// thread B's.
    per_thread: Box<[drink_runtime::CachePadded<OwnedByThread<ThreadState>>]>,
}

impl<S: Support> EngineCommon<S> {
    /// Build engine state for `rt`.
    pub fn new(rt: Arc<Runtime>, support: S, policy: AdaptivePolicy) -> Self {
        let n = rt.config().max_threads;
        let heap_objects = rt.config().heap_objects;
        let per_thread = (0..n)
            .map(|i| {
                drink_runtime::CachePadded::new(OwnedByThread::new(ThreadState::new(
                    ThreadId(i as u16),
                    heap_objects,
                )))
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        EngineCommon {
            rt,
            support,
            policy,
            adapt: None,
            per_thread,
        }
    }

    /// Attach (or omit) an online demotion controller. Builder-style so the
    /// engines that don't run one never mention it.
    pub fn with_adapt(mut self, adapt: Option<crate::adapt::AdaptController>) -> Self {
        self.adapt = adapt;
        self
    }

    /// Receiver-side epoch-skip invariant (DESIGN.md §14): an explicit
    /// request naming an object can only reach this thread if its shard is
    /// stamped for that object — fan-outs skip unstamped shards, and
    /// targeted coordination goes to privilege holders named by the state
    /// word, who stamped at access/alloc time. This is the shard-skip oracle
    /// ("skipped shards' threads see zero explicit requests for the object")
    /// as a runtime assertion; the `skip-epoch-stamp` injected bug trips it.
    #[cfg(feature = "check-invariants")]
    fn assert_requests_stamped(&self, t: ThreadId, reqs: &[drink_runtime::CoordRequest]) {
        let heap = self.rt.heap();
        if heap.thread_shards() <= 1 {
            return;
        }
        let shard = self.rt.thread_shard(t);
        for req in reqs {
            if let Some(o) = req.obj {
                assert!(
                    heap.shard_stamped(o, shard),
                    "T{} received an explicit request for {o:?} but shard {shard} \
                     was never stamped for it — epoch-skip invariant violated",
                    t.raw()
                );
            }
        }
    }

    /// Per-thread state of mutator `t`.
    ///
    /// # Safety
    ///
    /// Caller must be the OS thread attached as mutator `t` (see
    /// [`OwnedByThread`]); the `&mut` aliasing is sound because only that
    /// thread ever derives a reference from this slot.
    #[allow(clippy::mut_from_ref)]
    #[inline(always)]
    pub unsafe fn ts(&self, t: ThreadId) -> &mut ThreadState {
        // SAFETY: forwarded to the caller.
        unsafe { self.per_thread[t.index()].get() }
    }

    /// Support context for the current state of `ts`.
    #[inline(always)]
    pub fn cx<'a>(&'a self, ts: &ThreadState) -> SupportCx<'a> {
        SupportCx {
            rt: &self.rt,
            t: ts.tid,
            op: ts.op_index,
        }
    }

    /// Register the calling OS thread as a mutator and initialize its slot.
    pub fn attach(&self) -> ThreadId {
        let t = self.rt.register_thread();
        self.per_thread[t.index()].reset_owner();
        // SAFETY: we are the thread that just claimed this slot.
        unsafe {
            *self.per_thread[t.index()].get() = ThreadState::new(t, self.rt.config().heap_objects);
        }
        t
    }

    /// Detach mutator `t`: thread exit is a PSRO (final flush), after which
    /// the thread is permanently "blocked" so that remaining and future
    /// coordination against it resolves implicitly. Merges the thread's
    /// statistics into the runtime's aggregate.
    ///
    /// # Safety
    ///
    /// Caller must be the OS thread attached as mutator `t`.
    pub unsafe fn detach(&self, t: ThreadId) {
        // SAFETY: caller contract.
        let ts = unsafe { self.ts(t) };
        self.psro_flush(ts);
        let ctl = self.rt.control(t);
        ctl.publish_blocked();
        // Flag only after the final flush and BLOCKED are visible: a fan-out
        // that observes the flag cites our release clock without an epoch
        // CAS, so the clock it reads must already dominate our last access.
        ctl.mark_detached();
        // Answer requests that raced with the status change; later requesters
        // see the detached flag (or BLOCKED) and coordinate implicitly
        // forever.
        let reqs = ctl.take_requests();
        if !reqs.is_empty() {
            let clock = ctl.bump_release_clock();
            ts.stats.bump(Event::RespondedExplicit);
            ts.stats.add(Event::CoordBatchRequests, reqs.len() as u64);
            self.support.on_responded(self.cx(ts), clock);
            for req in reqs {
                req.token.complete(clock);
            }
        }
        assert!(ts.holds_no_locks(), "detached while holding object locks");
        ts.stats.merge_into(self.rt.stats());
    }

    // --- Deferred unlocking (§3.1, Figure 10(c)) ---

    /// Unlock every object state in `ts`'s lock buffer, moving each to a
    /// pessimistic-unlocked or optimistic state per the adaptive policy, and
    /// clear the read set.
    pub fn flush_lock_buffer(&self, ts: &mut ThreadState) {
        if ts.lock_buffer.is_empty() && ts.rd_set.is_empty() {
            return;
        }
        ts.stats.bump(Event::LockBufferFlush);
        self.rt.trace(ts.tid, TraceKind::LockBufferFlush, ts.lock_buffer.len() as u64);
        // Swap the buffer out: unlock CASes can trigger support callbacks in
        // the future, and re-entrant pushes into a borrowed Vec would be UB.
        let mut buffer = std::mem::take(&mut ts.lock_buffer);
        for &o in &buffer {
            // Clear the membership bitmaps entry-by-entry: rd_set ⊆ locked ⊆
            // buffer, so this is O(|buffer|), never O(heap).
            ts.locked.remove(o.0);
            ts.rd_set.remove(o.0);
            self.unlock_one_object(ts, o);
        }
        buffer.clear();
        ts.lock_buffer = buffer;
        debug_assert!(
            ts.rd_set.is_empty() && ts.locked.is_empty(),
            "object-set bitmaps out of sync with the lock buffer"
        );
        #[cfg(feature = "check-invariants")]
        ts.check_set_invariants();
    }

    /// Unlock this thread's hold on object `o` (one flush step).
    fn unlock_one_object(&self, ts: &mut ThreadState, o: ObjId) {
        let obj = self.rt.obj(o);
        let state = obj.state();
        let mut cur = state.load(Ordering::Acquire);
        loop {
            let w = StateWord(cur);
            debug_assert!(
                w.is_pess_locked(),
                "lock buffer entry {o:?} not locked: {w:?}"
            );
            #[cfg(feature = "check-invariants")]
            w.validate()
                .unwrap_or_else(|e| panic!("ill-formed state word on {o:?}: {w:?} — {e}"));
            // With a demotion controller attached, *it* is the valve: a
            // demoted object stays pessimistic until the controller promotes
            // it back (the §6 phase valve is vacuous at infinite cutoff).
            let to_opt = match &self.adapt {
                Some(a) => !a.is_demoted(o.0),
                None => self.policy.unlock_to_optimistic(obj.profile()),
            };
            let unlocked = w.unlock_one();
            // An exclusive state (or the last RdSh share) may transfer to
            // optimistic states at unlock time (Figure 3's upper diamond).
            let new = if unlocked.is_pess_unlocked() && to_opt {
                unlocked.to_optimistic()
            } else {
                unlocked
            };
            match state.compare_exchange_weak(cur, new.0, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    obj.bump_version();
                    ts.stats.bump(Event::StateUnlocked);
                    if unlocked.is_pess_unlocked() {
                        // Policy-valve decision: released to optimistic, or
                        // deliberately held pessimistic.
                        if to_opt {
                            ts.stats.bump(Event::PessToOpt);
                            self.rt.trace(ts.tid, TraceKind::PessToOpt, o.0 as u64);
                        } else {
                            self.rt.trace(ts.tid, TraceKind::ValveStayPess, o.0 as u64);
                        }
                    }
                    return;
                }
                // Concurrent RdSh read-lock count changes (or a concurrent
                // upgrade of our WrExRLock to RdShRLock) can race; retry.
                Err(actual) => cur = actual,
            }
        }
    }

    // --- Safe points ---

    /// Non-blocking safe point: respond to pending requests, if any. The
    /// no-request fast path is a single relaxed load.
    #[inline(always)]
    pub fn poll(&self, ts: &mut ThreadState) {
        ts.stats.bump(Event::SafepointPoll);
        self.rt.sched_point(ts.tid, SchedPoint::SafepointPoll);
        if self.rt.control(ts.tid).has_pending_requests() {
            self.respond_pending(ts);
        }
    }

    /// Respond to all pending explicit requests: yield ownership (support
    /// rollback hook), flush the lock buffer, bump the release clock, and
    /// complete the tokens. This is a *responding safe point* (§2.2).
    ///
    /// Also invoked from coordination spin loops (Figure 1 line 18) so a
    /// waiting thread keeps acting as a safe point.
    #[cold]
    pub fn respond_pending(&self, ts: &mut ThreadState) {
        // Injected fault (check builds only): freeze the responder before it
        // drains, modeling a descheduled/overloaded victim. Gated on a
        // request actually waiting — some intermediate-state wait loops call
        // this unconditionally, and an ungated sleep would stall requesters
        // too, not just responders. What bounds the requester's wait is then
        // the coordination deadline (recoverable) or the spin watchdog
        // (panic) — scripts/check_gate.sh's stall canary asserts the latter
        // fires, is artifacted, and reproduces.
        #[cfg(feature = "check-invariants")]
        if self.rt.control(ts.tid).has_pending_requests() {
            if let Some(d) = drink_runtime::injected_fault("stall-responder") {
                std::thread::sleep(d);
            }
        }
        let ctl = self.rt.control(ts.tid);
        self.rt.sched_point(ts.tid, SchedPoint::CoordRespond);
        // Drain into per-session scratch (swapped out so support callbacks
        // borrowing `ts` stay sound); the whole batch — however many
        // requesters piled up — is answered by ONE clock bump below.
        let mut reqs = std::mem::take(&mut ts.req_scratch);
        debug_assert!(reqs.is_empty(), "respond_pending re-entered");
        ctl.drain_requests_into(&mut reqs);
        if reqs.is_empty() {
            ts.req_scratch = reqs;
            return;
        }
        #[cfg(feature = "check-invariants")]
        self.assert_requests_stamped(ts.tid, &reqs);
        let mut requested = std::mem::take(&mut ts.obj_scratch);
        requested.extend(reqs.iter().filter_map(|r| r.obj));
        self.support.before_yield(
            self.cx(ts),
            crate::support::YieldInfo {
                requested: &requested,
                pess_locked: &ts.lock_buffer,
            },
        );
        // Bump *before* unlocking: a thread that acquires one of the states
        // we are about to unlock reads our clock afterwards and must observe
        // a value that dominates our accesses (see §4.2's edge soundness).
        let clock = ctl.bump_release_clock();
        self.flush_lock_buffer(ts);
        ts.stats.bump(Event::RespondedExplicit);
        ts.stats.add(Event::CoordBatchRequests, reqs.len() as u64);
        self.rt.trace(ts.tid, TraceKind::CoordRespond, reqs.len() as u64);
        self.support.on_responded(self.cx(ts), clock);
        for req in reqs.drain(..) {
            req.token.complete(clock);
        }
        requested.clear();
        ts.req_scratch = reqs;
        ts.obj_scratch = requested;
    }

    /// The respond closure handed to [`crate::coord`] while this thread
    /// itself waits for a coordination response.
    #[inline]
    pub fn respond_closure<'a>(&'a self, ts: &'a mut ThreadState) -> impl FnMut() + 'a {
        move || {
            if self.rt.control(ts.tid).has_pending_requests() {
                self.respond_pending(ts);
            }
        }
    }

    /// Claim a slow-path transition from `cur`. Without pre-publish this
    /// installs `final_w` directly; with pre-publish ([`Support::PREPUBLISH`])
    /// it parks the state at `Int(t)` so the caller can run support hooks
    /// before making the final state observable via
    /// [`EngineCommon::publish`].
    ///
    /// Takes the whole header (not just the state word) because every
    /// successful install must bump the object's seqlock version before the
    /// claimant's payload access (DESIGN.md §12).
    #[inline(always)]
    pub fn claim(&self, obj: &ObjHeader, cur: u64, t: ThreadId, final_w: StateWord) -> bool {
        let target = if S::PREPUBLISH {
            StateWord::int(t).0
        } else {
            final_w.0
        };
        let ok = obj
            .state()
            .compare_exchange(cur, target, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if ok {
            obj.bump_version();
        }
        ok
    }

    /// Second half of [`EngineCommon::claim`]: publish the final state.
    #[inline(always)]
    pub fn publish(&self, obj: &ObjHeader, final_w: StateWord) {
        #[cfg(feature = "check-invariants")]
        final_w
            .validate()
            .unwrap_or_else(|e| panic!("publishing ill-formed state word {final_w:?} — {e}"));
        if S::PREPUBLISH {
            obj.state().store(final_w.0, Ordering::Release);
            obj.bump_version();
        }
    }

    /// The coordination-free read protocol for read-mostly RdSh objects
    /// (DESIGN.md §12). The caller has just decoded `o`'s state word as
    /// `RdSh` and decided (via [`AdaptivePolicy::read_mostly`]) that the
    /// object is read-mostly; this attempts the read with **no state
    /// transition**:
    ///
    /// 1. load the version word (acquire) — `v0`;
    /// 2. re-load the state word (acquire); anything other than `RdSh`
    ///    means a writer is in flight — give up immediately;
    /// 3. load the payload;
    /// 4. acquire fence, then re-load the version — `v1`;
    /// 5. `v0 == v1` validates: no install overlapped the window, so the
    ///    payload is exactly what a coordinated RdSh read would have
    ///    returned, and the standing RdSh epoch already covers the
    ///    dependence. Otherwise retry, falling back to the engine's
    ///    coordinated path (`None`) after [`SEQLOCK_MAX_RETRIES`] failures.
    ///
    /// The acquire load of the `RdSh` state word synchronizes with the
    /// epoch creator's release install, so pre-epoch writes are visible
    /// without the fence transition's global fence; `ts.rd_sh_count` is
    /// deliberately **not** updated (this path makes no claim about other
    /// objects' epochs).
    pub fn seqlock_read(&self, ts: &mut ThreadState, o: ObjId) -> Option<u64> {
        let obj = self.rt.obj(o);
        let mut retries = 0u64;
        loop {
            let v0 = VersionWord(obj.version().load(Ordering::Acquire));
            // Liveness invariant: alloc-init is an install and bumps, so a
            // live object's version is never 0 (modulo a full u64 wrap —
            // unreachable in any real run). A zero here means installs are
            // not bumping, which is exactly what the `skip-version-bump`
            // injected bug does; the chaos matrix relies on this check to
            // catch it deterministically.
            #[cfg(feature = "check-invariants")]
            assert!(
                v0.0 != 0,
                "seqlock read of {o:?}: version word never bumped — \
                 state-word installs are not advancing the version counter"
            );
            let w = StateWord(obj.state().load(Ordering::Acquire));
            if w.kind() != Kind::RdSh {
                // A writer claimed the object (or it left RdSh) between the
                // caller's decode and ours: coordinated path.
                if retries > 0 {
                    self.rt.stats().record_latency(LatencyKind::SeqlockRetries, retries);
                }
                return None;
            }
            let value = obj.data_read();
            self.rt.sched_point(ts.tid, SchedPoint::SeqlockReadValidate);
            fence(Ordering::Acquire);
            let v1 = VersionWord(obj.version().load(Ordering::Relaxed));
            if v0.validates(v1) {
                ts.stats.bump(Event::SeqlockValidated);
                if retries > 0 {
                    self.rt.stats().record_latency(LatencyKind::SeqlockRetries, retries);
                }
                self.rt.trace(ts.tid, TraceKind::SeqlockRead, o.0 as u64);
                return Some(value);
            }
            ts.stats.bump(Event::SeqlockRetry);
            retries += 1;
            if retries > SEQLOCK_MAX_RETRIES {
                ts.stats.bump(Event::SeqlockFallback);
                self.rt.stats().record_latency(LatencyKind::SeqlockRetries, retries);
                self.rt.trace(ts.tid, TraceKind::SeqlockFallback, o.0 as u64);
                return None;
            }
        }
    }

    /// RdSh epoch claiming for transitions that create a RdSh state. Without
    /// pre-publish, the epoch must be claimed *before* the installing CAS
    /// (the new state word embeds it); call this first and pass the result
    /// to [`EngineCommon::post_epoch`] after the claim succeeds. With
    /// pre-publish, the epoch is instead claimed *inside* the Int window —
    /// this guarantees that epochs become observable in counter order, which
    /// the recorder's creation-chain edges require, and that no claimed
    /// epoch is ever abandoned by a failed CAS.
    #[inline(always)]
    pub fn pre_epoch(&self) -> u64 {
        if S::PREPUBLISH {
            0
        } else {
            self.rt.next_rdsh_count()
        }
    }

    /// See [`EngineCommon::pre_epoch`].
    #[inline(always)]
    pub fn post_epoch(&self, pre: u64) -> u64 {
        if S::PREPUBLISH {
            self.rt.next_rdsh_count()
        } else {
            pre
        }
    }

    /// PSRO instrumentation: bump the release clock, flush, notify support.
    /// (Bump-before-flush: see [`EngineCommon::respond_pending`].)
    pub fn psro_flush(&self, ts: &mut ThreadState) {
        let clock = self.rt.control(ts.tid).bump_release_clock();
        self.flush_lock_buffer(ts);
        self.support.on_release(self.cx(ts), clock);
    }

    // --- Monitor operations (program synchronization) ---

    /// Monitor acquire: a blocking safe point when contended. Counts as one
    /// program operation for the deterministic op index.
    pub fn monitor_acquire(&self, ts: &mut ThreadState, m: MonitorId) {
        let info = self.rt.monitor_acquire(m, ts.tid, self);
        ts.stats.bump(if info.blocked {
            Event::MonitorAcquireBlocked
        } else {
            Event::MonitorAcquireFast
        });
        self.support
            .on_monitor_acquire(self.cx(ts), m, info.prev_release);
        ts.op_index += 1;
    }

    /// Monitor release: a PSRO. Counts as one program operation.
    pub fn monitor_release(&self, ts: &mut ThreadState, m: MonitorId) {
        self.support.on_monitor_release(self.cx(ts), m);
        self.rt.monitor_release(m, ts.tid, self);
        ts.stats.bump(Event::MonitorRelease);
        ts.op_index += 1;
    }

    /// Monitor wait: PSRO + blocking safe point + re-acquire.
    pub fn monitor_wait(&self, ts: &mut ThreadState, m: MonitorId) {
        let info = self.rt.monitor_wait(m, ts.tid, self);
        ts.stats.bump(Event::MonitorAcquireBlocked);
        self.support
            .on_monitor_acquire(self.cx(ts), m, info.prev_release);
        ts.op_index += 1;
    }
}

impl<S: Support> RtHooks for EngineCommon<S> {
    #[inline]
    fn poll(&self, t: ThreadId) {
        // SAFETY: RtHooks callbacks always run on the mutator thread itself.
        let ts = unsafe { self.ts(t) };
        self.poll(ts);
    }

    fn before_block(&self, t: ThreadId) {
        // SAFETY: as above.
        let ts = unsafe { self.ts(t) };
        // Reaching a blocking safe point relinquishes ownership: support gets
        // its rollback hook (conservatively: everything may transfer while
        // blocked), the clock is bumped (so implicit coordination can cite it
        // as an edge source), then pessimistic locks are flushed.
        self.support.before_yield(
            self.cx(ts),
            crate::support::YieldInfo {
                requested: &[],
                pess_locked: &ts.lock_buffer,
            },
        );
        let clock = self.rt.control(t).bump_release_clock();
        // Injected bug `skip-flush-before-block` (check-invariants builds
        // only): entering BLOCKED while still holding pessimistic object
        // locks. Implicit coordination then transfers states the blocked
        // thread believes it holds — exactly the protocol violation the
        // blocking-safe-point flush exists to prevent.
        #[cfg(feature = "check-invariants")]
        let skip_flush = drink_runtime::injected_bug("skip-flush-before-block");
        #[cfg(not(feature = "check-invariants"))]
        let skip_flush = false;
        if !skip_flush {
            self.flush_lock_buffer(ts);
        }
        // The "BLOCKED threads hold no pessimistic locks" invariant. This is
        // precisely what detects `skip-flush-before-block`: the first time a
        // perturbed schedule parks a thread with a non-empty lock buffer, the
        // violation is reported here instead of hanging a remote spinner.
        #[cfg(feature = "check-invariants")]
        assert!(
            ts.holds_no_locks(),
            "T{} about to publish BLOCKED while holding pessimistic locks",
            t.raw()
        );
        self.support.on_release(self.cx(ts), clock);
    }

    fn on_blocked_publish(&self, t: ThreadId) {
        // SAFETY: as above.
        let ts = unsafe { self.ts(t) };
        // Answer explicit requests that raced with the BLOCKED publication.
        // The buffer is already flushed; one bump answers the whole batch.
        let ctl = self.rt.control(t);
        let mut reqs = std::mem::take(&mut ts.req_scratch);
        debug_assert!(reqs.is_empty(), "blocked-publish drain re-entered");
        ctl.drain_requests_into(&mut reqs);
        if !reqs.is_empty() {
            #[cfg(feature = "check-invariants")]
            self.assert_requests_stamped(t, &reqs);
            let clock = ctl.bump_release_clock();
            ts.stats.bump(Event::RespondedExplicit);
            ts.stats.add(Event::CoordBatchRequests, reqs.len() as u64);
            self.support.on_responded(self.cx(ts), clock);
            for req in reqs.drain(..) {
                req.token.complete(clock);
            }
        }
        ts.req_scratch = reqs;
    }

    fn after_unblock(&self, t: ThreadId, epoch_bumped: bool) {
        // SAFETY: as above.
        let ts = unsafe { self.ts(t) };
        if epoch_bumped {
            ts.stats.bump(Event::ImplicitObservedOnWake);
            self.support.on_wake_after_implicit(self.cx(ts));
        }
        // Stale explicit requests may also have queued up while parked.
        if self.rt.control(t).has_pending_requests() {
            self.respond_pending(ts);
        }
    }

    fn on_psro(&self, t: ThreadId) {
        // SAFETY: as above.
        let ts = unsafe { self.ts(t) };
        self.psro_flush(ts);
    }

    #[inline]
    fn sched_point(&self, t: ThreadId, point: SchedPoint) {
        self.rt.sched_point(t, point);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::NullSupport;
    use crate::word::LockMode;
    use drink_runtime::RuntimeConfig;

    fn engine() -> EngineCommon<NullSupport> {
        let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(4)
        .heap_objects(16)
        .monitors(2)
        .build()));
        EngineCommon::new(rt, NullSupport, AdaptivePolicy::default())
    }

    #[test]
    fn attach_assigns_dense_ids() {
        let e = engine();
        assert_eq!(e.attach(), ThreadId(0));
        assert_eq!(e.attach(), ThreadId(1));
    }

    #[test]
    fn flush_unlocks_exclusive_states() {
        let e = engine();
        let t = e.attach();
        let ts = unsafe { e.ts(t) };
        let o = ObjId(3);
        e.rt.obj(o)
            .state()
            .store(StateWord::wr_ex_pess(t, LockMode::Write).0, Ordering::SeqCst);
        ts.push_lock(o);
        e.flush_lock_buffer(ts);
        let w = StateWord(e.rt.obj(o).state().load(Ordering::SeqCst));
        assert_eq!(w, StateWord::wr_ex_pess(t, LockMode::Unlocked));
        assert!(ts.holds_no_locks());
    }

    #[test]
    fn flush_decrements_rdsh_share() {
        let e = engine();
        let t = e.attach();
        let ts = unsafe { e.ts(t) };
        let o = ObjId(0);
        e.rt.obj(o)
            .state()
            .store(StateWord::rd_sh_pess(7, 3).0, Ordering::SeqCst);
        ts.push_read_lock(o);
        e.flush_lock_buffer(ts);
        let w = StateWord(e.rt.obj(o).state().load(Ordering::SeqCst));
        assert_eq!(w, StateWord::rd_sh_pess(7, 2), "only this thread's share released");
    }

    #[test]
    fn flush_respects_policy_to_optimistic() {
        use crate::policy::{PolicyParams, Phase};
        let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(4)
        .heap_objects(16)
        .monitors(2)
        .build()));
        let e = EngineCommon::new(
            rt,
            NullSupport,
            AdaptivePolicy::new(PolicyParams {
                cutoff_confl: 1,
                k_confl: 1,
                inertia: 1,
                contended_cutoff: u32::MAX,
            }),
        );
        let t = e.attach();
        let ts = unsafe { e.ts(t) };
        let o = ObjId(1);
        let obj = e.rt.obj(o);
        obj.state()
            .store(StateWord::wr_ex_pess(t, LockMode::Write).0, Ordering::SeqCst);
        // Drive the profile to OptFinal.
        e.policy.on_explicit_conflict(obj.profile());
        e.policy.on_pess_transition(obj.profile(), false, false);
        assert_eq!(AdaptivePolicy::profile(obj.profile()).phase, Phase::OptFinal);

        ts.push_lock(o);
        e.flush_lock_buffer(ts);
        let w = StateWord(obj.state().load(Ordering::SeqCst));
        assert_eq!(w, StateWord::wr_ex_opt(t), "unlock transfers to optimistic");
        assert_eq!(ts.stats.get(Event::PessToOpt), 1);
    }

    #[test]
    fn respond_pending_flushes_and_completes_tokens() {
        let e = engine();
        let t = e.attach();
        let requester = e.attach();
        let ts = unsafe { e.ts(t) };
        let o = ObjId(2);
        e.rt.obj(o)
            .state()
            .store(StateWord::rd_ex_pess(t, LockMode::Read).0, Ordering::SeqCst);
        ts.push_read_lock(o);

        let token = drink_runtime::ResponseToken::new();
        e.rt.control(t).enqueue_request(drink_runtime::CoordRequest {
            from: requester,
            obj: None,
            token: token.clone(),
        });
        e.poll(ts);
        assert!(token.is_done());
        assert_eq!(token.responder_clock(), 1);
        assert!(ts.holds_no_locks());
        let w = StateWord(e.rt.obj(o).state().load(Ordering::SeqCst));
        assert!(w.is_pess_unlocked());
    }

    #[test]
    fn batch_of_k_requests_answered_by_one_clock_bump() {
        const K: usize = 5;
        let e = engine();
        let t = e.attach();
        let ts = unsafe { e.ts(t) };
        let tokens: Vec<_> = (0..K)
            .map(|i| {
                let token = drink_runtime::ResponseToken::new();
                e.rt.control(t).enqueue_request(drink_runtime::CoordRequest {
                    from: ThreadId(1),
                    obj: Some(ObjId(i as u32)),
                    token: token.clone(),
                });
                token
            })
            .collect();
        assert_eq!(e.rt.control(t).release_clock(), 0);
        e.poll(ts);
        // One drained batch of K requests: exactly one release-clock bump...
        assert_eq!(e.rt.control(t).release_clock(), 1);
        // ...completes all K tokens, all carrying that one clock...
        for token in &tokens {
            assert!(token.is_done());
            assert_eq!(token.responder_clock(), 1);
        }
        // ...and the occupancy counters record the coalescing.
        assert_eq!(ts.stats.get(Event::RespondedExplicit), 1);
        assert_eq!(ts.stats.get(Event::CoordBatchRequests), K as u64);
    }

    #[test]
    fn detach_marks_control_detached() {
        let e = engine();
        let t = e.attach();
        assert!(!e.rt.control(t).is_detached());
        unsafe { e.detach(t) };
        assert!(e.rt.control(t).is_detached());
    }

    #[test]
    fn detach_answers_raced_requests_and_blocks_forever() {
        let e = engine();
        let t = e.attach();
        let requester = e.attach();
        let token = drink_runtime::ResponseToken::new();
        e.rt.control(t).enqueue_request(drink_runtime::CoordRequest {
            from: requester,
            obj: None,
            token: token.clone(),
        });
        unsafe { e.detach(t) };
        assert!(token.is_done());
        assert!(matches!(
            e.rt.control(t).status(),
            drink_runtime::ThreadStatus::Blocked { .. }
        ));
        // Post-detach coordination resolves implicitly.
        let ts_req = unsafe { e.ts(requester) };
        let out = crate::coord::coordinate_one(&e.rt, requester, t, None, &mut || {});
        assert_eq!(out.mode, crate::support::CoordMode::Implicit);
        let _ = ts_req;
    }

    #[test]
    fn psro_bumps_release_clock() {
        let e = engine();
        let t = e.attach();
        let ts = unsafe { e.ts(t) };
        assert_eq!(e.rt.control(t).release_clock(), 0);
        e.psro_flush(ts);
        assert_eq!(e.rt.control(t).release_clock(), 1);
    }

    #[test]
    fn monitor_ops_advance_op_index() {
        let e = engine();
        let t = e.attach();
        let ts = unsafe { e.ts(t) };
        let m = MonitorId(0);
        e.monitor_acquire(ts, m);
        assert_eq!(ts.op_index, 1);
        e.monitor_release(ts, m);
        assert_eq!(ts.op_index, 2);
        assert_eq!(ts.stats.get(Event::MonitorAcquireFast), 1);
        assert_eq!(ts.stats.get(Event::MonitorRelease), 1);
        assert_eq!(e.rt.control(t).release_clock(), 1, "release is a PSRO");
    }
}
