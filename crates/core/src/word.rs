//! The per-object state word: encoding of every state in the hybrid model.
//!
//! §3.2 of the paper defines the state space:
//!
//! * **pessimistic unlocked**: `WrExPess(T)`, `RdExPess(T)`, `RdShPess(c)`;
//! * **pessimistic locked**: `WrExRLock(T)`, `WrExWLock(T)`, `RdExRLock(T)`,
//!   `RdShRLock(n)(c)` (read-locked by `n` threads);
//! * **optimistic**: `WrExOpt(T)`, `RdExOpt(T)`, `RdShOpt(c)`;
//! * plus Octet's intermediate state `Int(T)` used while a thread coordinates
//!   for an optimistic conflicting transition (§2.2, Figure 1 line 8).
//!
//! The paper's IA-32 prototype packs all of this into one 32-bit word, which
//! costs it the `WrExRLock` state ("Extraneous contention", §7.1). We use a
//! 64-bit word, so the full model fits; a config flag in the hybrid engine
//! reproduces the prototype's omission for the ablation study.
//!
//! Layout (LSB first):
//!
//! ```text
//! bits  0..=1   kind        0 = WrEx, 1 = RdEx, 2 = RdSh, 3 = Int
//! bit   2       pessimistic flag
//! bits  3..=4   lock mode   0 = unlocked, 1 = read-locked, 2 = write-locked
//! bits  8..=23  owner thread id (WrEx*/RdEx*/Int)
//! bits 24..=31  read-lock count n (RdSh, pessimistic locked)
//! bits 32..=63  RdSh counter c (from the global gRdShCount)
//! ```
//!
//! The all-ones word is reserved as the `LOCKED` sentinel used by the
//! standalone pessimistic engine (§2.1's pseudocode "locks" the state with a
//! special value); it decodes to no legal state.

use std::fmt;

use drink_runtime::ThreadId;

/// State kind: the four top-level shapes a state word can take.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Kind {
    /// Write-exclusive: last read or written by the owner.
    WrEx = 0,
    /// Read-exclusive: last read (not written) by the owner.
    RdEx = 1,
    /// Read-shared: last read by multiple threads; carries counter `c`.
    RdSh = 2,
    /// Octet's intermediate state: the owner is mid-coordination.
    Int = 3,
}

/// Reader–writer lock mode of a pessimistic state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum LockMode {
    /// Pessimistic unlocked (or optimistic, which has no lock).
    Unlocked = 0,
    /// Read-locked.
    Read = 1,
    /// Write-locked.
    Write = 2,
}

const KIND_SHIFT: u32 = 0;
const KIND_MASK: u64 = 0b11;
const PESS_BIT: u64 = 1 << 2;
const LOCK_SHIFT: u32 = 3;
const LOCK_MASK: u64 = 0b11;
const OWNER_SHIFT: u32 = 8;
const OWNER_MASK: u64 = 0xFFFF;
const N_SHIFT: u32 = 24;
const N_MASK: u64 = 0xFF;
const C_SHIFT: u32 = 32;
const C_MASK: u64 = 0xFFFF_FFFF;

/// Maximum representable read-lock count (8-bit field). The hybrid engine
/// asserts thread counts stay below this.
pub const MAX_READ_LOCKS: u64 = N_MASK;

/// Maximum representable RdSh counter value (32-bit field).
pub const MAX_RDSH_COUNT: u64 = C_MASK;

/// A decoded-on-demand view of the per-object state word.
///
/// ```
/// use drink_core::word::{StateWord, Kind, LockMode};
/// use drink_runtime::ThreadId;
///
/// let t = ThreadId(3);
/// let w = StateWord::rd_sh_pess(42, 2); // RdShRLock(2) at epoch 42
/// assert_eq!(w.kind(), Kind::RdSh);
/// assert!(w.is_pess_locked());
/// assert_eq!(w.read_locks(), 2);
///
/// // One holder flushes; the last unlock may transfer to optimistic states.
/// let after_one = w.unlock_one();
/// assert_eq!(after_one.read_locks(), 1);
/// let unlocked = after_one.unlock_one();
/// assert!(unlocked.is_pess_unlocked());
/// assert_eq!(unlocked.to_optimistic().is_pess(), false);
///
/// // Exclusive states carry their owner.
/// assert_eq!(StateWord::wr_ex_pess(t, LockMode::Write).owner(), t);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateWord(pub u64);

impl StateWord {
    /// The standalone pessimistic engine's `LOCKED` sentinel (§2.1).
    pub const LOCKED: StateWord = StateWord(u64::MAX);

    // --- Constructors ---

    /// `WrExOpt(T)`.
    #[inline(always)]
    pub fn wr_ex_opt(t: ThreadId) -> Self {
        StateWord((Kind::WrEx as u64) | ((t.raw() as u64) << OWNER_SHIFT))
    }

    /// `RdExOpt(T)`.
    #[inline(always)]
    pub fn rd_ex_opt(t: ThreadId) -> Self {
        StateWord((Kind::RdEx as u64) | ((t.raw() as u64) << OWNER_SHIFT))
    }

    /// `RdShOpt(c)`.
    #[inline(always)]
    pub fn rd_sh_opt(c: u64) -> Self {
        debug_assert!(c <= MAX_RDSH_COUNT, "gRdShCount overflow");
        StateWord((Kind::RdSh as u64) | (c << C_SHIFT))
    }

    /// `Int(T)`: the coordination-in-progress intermediate state.
    #[inline(always)]
    pub fn int(t: ThreadId) -> Self {
        StateWord((Kind::Int as u64) | ((t.raw() as u64) << OWNER_SHIFT))
    }

    /// `WrExPess(T)` with the given lock mode (`Unlocked`, `RLock`, `WLock`).
    #[inline(always)]
    pub fn wr_ex_pess(t: ThreadId, lock: LockMode) -> Self {
        StateWord(
            (Kind::WrEx as u64)
                | PESS_BIT
                | ((lock as u64) << LOCK_SHIFT)
                | ((t.raw() as u64) << OWNER_SHIFT),
        )
    }

    /// `RdExPess(T)`: unlocked or read-locked (a write-locked read-exclusive
    /// state does not exist — writes upgrade to WrEx).
    #[inline(always)]
    pub fn rd_ex_pess(t: ThreadId, lock: LockMode) -> Self {
        debug_assert!(lock != LockMode::Write, "RdEx cannot be write-locked");
        StateWord(
            (Kind::RdEx as u64)
                | PESS_BIT
                | ((lock as u64) << LOCK_SHIFT)
                | ((t.raw() as u64) << OWNER_SHIFT),
        )
    }

    /// `RdShPess(c)` (if `n == 0`) or `RdShRLock(n)(c)` (if `n > 0`).
    #[inline(always)]
    pub fn rd_sh_pess(c: u64, n: u64) -> Self {
        debug_assert!(c <= MAX_RDSH_COUNT, "gRdShCount overflow");
        debug_assert!(n <= MAX_READ_LOCKS, "read-lock count overflow");
        let lock = if n > 0 { LockMode::Read } else { LockMode::Unlocked };
        StateWord(
            (Kind::RdSh as u64)
                | PESS_BIT
                | ((lock as u64) << LOCK_SHIFT)
                | (n << N_SHIFT)
                | (c << C_SHIFT),
        )
    }

    // --- Accessors ---

    /// State kind. The LOCKED sentinel decodes as `Int` but callers must
    /// check [`StateWord::is_locked_sentinel`] first in the engines that use it.
    #[inline(always)]
    pub fn kind(self) -> Kind {
        match (self.0 >> KIND_SHIFT) & KIND_MASK {
            0 => Kind::WrEx,
            1 => Kind::RdEx,
            2 => Kind::RdSh,
            _ => Kind::Int,
        }
    }

    /// Is this a pessimistic state?
    #[inline(always)]
    pub fn is_pess(self) -> bool {
        self.0 & PESS_BIT != 0
    }

    /// Reader–writer lock mode (always `Unlocked` for optimistic states).
    #[inline(always)]
    pub fn lock_mode(self) -> LockMode {
        match (self.0 >> LOCK_SHIFT) & LOCK_MASK {
            0 => LockMode::Unlocked,
            1 => LockMode::Read,
            _ => LockMode::Write,
        }
    }

    /// Owner thread (meaningful for WrEx*/RdEx*/Int).
    #[inline(always)]
    pub fn owner(self) -> ThreadId {
        ThreadId::from_raw(((self.0 >> OWNER_SHIFT) & OWNER_MASK) as u16)
    }

    /// Read-lock count `n` (meaningful for pessimistic RdSh).
    #[inline(always)]
    pub fn read_locks(self) -> u64 {
        (self.0 >> N_SHIFT) & N_MASK
    }

    /// RdSh counter `c` (meaningful for RdSh states).
    #[inline(always)]
    pub fn rdsh_count(self) -> u64 {
        (self.0 >> C_SHIFT) & C_MASK
    }

    /// Is this the standalone pessimistic engine's LOCKED sentinel?
    #[inline(always)]
    pub fn is_locked_sentinel(self) -> bool {
        self.0 == u64::MAX
    }

    /// Is this an Int (coordination-intermediate) state? (Excludes the
    /// LOCKED sentinel.)
    #[inline(always)]
    pub fn is_int(self) -> bool {
        self.kind() == Kind::Int && !self.is_locked_sentinel()
    }

    /// Is this a pessimistic state currently locked (read or write)?
    #[inline(always)]
    pub fn is_pess_locked(self) -> bool {
        self.is_pess() && self.lock_mode() != LockMode::Unlocked
    }

    /// Is this a pessimistic state currently unlocked?
    #[inline(always)]
    pub fn is_pess_unlocked(self) -> bool {
        self.is_pess() && self.lock_mode() == LockMode::Unlocked
    }

    // --- Derived helpers used by the engines ---

    /// The unlocked pessimistic version of a locked pessimistic state, after
    /// one holder releases. For `RdShRLock(n)` with `n > 1` this is
    /// `RdShRLock(n-1)`; otherwise the fully unlocked state.
    pub fn unlock_one(self) -> StateWord {
        debug_assert!(self.is_pess_locked());
        match self.kind() {
            Kind::WrEx => StateWord::wr_ex_pess(self.owner(), LockMode::Unlocked),
            Kind::RdEx => StateWord::rd_ex_pess(self.owner(), LockMode::Unlocked),
            Kind::RdSh => {
                let n = self.read_locks();
                debug_assert!(n >= 1);
                StateWord::rd_sh_pess(self.rdsh_count(), n - 1)
            }
            Kind::Int => unreachable!("Int states are never pessimistic-locked"),
        }
    }

    /// The optimistic counterpart of a pessimistic state (same last-access
    /// information, used when the adaptive policy moves an object back to
    /// optimistic states at unlock time).
    pub fn to_optimistic(self) -> StateWord {
        debug_assert!(self.is_pess());
        match self.kind() {
            Kind::WrEx => StateWord::wr_ex_opt(self.owner()),
            Kind::RdEx => StateWord::rd_ex_opt(self.owner()),
            Kind::RdSh => StateWord::rd_sh_opt(self.rdsh_count()),
            Kind::Int => unreachable!("Int states are never pessimistic"),
        }
    }

    /// The pessimistic-unlocked counterpart of an optimistic state.
    pub fn to_pess_unlocked(self) -> StateWord {
        debug_assert!(!self.is_pess() && !self.is_int());
        match self.kind() {
            Kind::WrEx => StateWord::wr_ex_pess(self.owner(), LockMode::Unlocked),
            Kind::RdEx => StateWord::rd_ex_pess(self.owner(), LockMode::Unlocked),
            Kind::RdSh => StateWord::rd_sh_pess(self.rdsh_count(), 0),
            Kind::Int => unreachable!(),
        }
    }

    /// Well-formedness check per the encoding above: is this a word one of
    /// the constructors could have produced (or the LOCKED sentinel)?
    ///
    /// `check-invariants` builds run this on every word the engines publish;
    /// an `Err` means a state that has no meaning in the §3.2 state space —
    /// e.g. a RdSh word carrying an owner tid, or an optimistic word with a
    /// lock bit — and therefore a protocol bug, not a legal transition.
    pub fn validate(self) -> Result<(), &'static str> {
        if self.is_locked_sentinel() {
            return Ok(());
        }
        const KNOWN_BITS: u64 = KIND_MASK
            | PESS_BIT
            | (LOCK_MASK << LOCK_SHIFT)
            | (OWNER_MASK << OWNER_SHIFT)
            | (N_MASK << N_SHIFT)
            | (C_MASK << C_SHIFT);
        if self.0 & !KNOWN_BITS != 0 {
            return Err("reserved bits set");
        }
        if (self.0 >> LOCK_SHIFT) & LOCK_MASK == 3 {
            return Err("lock mode 3 is not encodable");
        }
        if !self.is_pess() && self.lock_mode() != LockMode::Unlocked {
            return Err("optimistic state carries a lock");
        }
        match self.kind() {
            Kind::RdSh => {
                if (self.0 >> OWNER_SHIFT) & OWNER_MASK != 0 {
                    return Err("RdSh state carries an owner tid");
                }
                if !self.is_pess() && self.read_locks() != 0 {
                    return Err("optimistic RdSh carries a read-lock count");
                }
                if self.is_pess() && (self.read_locks() > 0) != (self.lock_mode() == LockMode::Read)
                {
                    return Err("RdSh lock mode disagrees with read-lock count");
                }
                if self.is_pess() && self.lock_mode() == LockMode::Write {
                    return Err("RdSh cannot be write-locked");
                }
            }
            Kind::WrEx | Kind::RdEx => {
                if self.read_locks() != 0 {
                    return Err("exclusive state carries a read-lock count");
                }
                if self.rdsh_count() != 0 {
                    return Err("exclusive state carries a RdSh counter");
                }
                if self.kind() == Kind::RdEx && self.lock_mode() == LockMode::Write {
                    return Err("RdEx cannot be write-locked (writes upgrade to WrEx)");
                }
            }
            Kind::Int => {
                if self.is_pess()
                    || self.lock_mode() != LockMode::Unlocked
                    || self.read_locks() != 0
                    || self.rdsh_count() != 0
                {
                    return Err("Int state carries pess/lock/count bits");
                }
            }
        }
        Ok(())
    }
}

/// The per-object seqlock version (DESIGN.md §12): the value of the sibling
/// version word in the heap header (`ObjHeader::version`). Writers advance it
/// (wrapping) at every state-word install; a coordination-free reader
/// validates by loading it before and after the payload read and demanding
/// equality. Unlike a classic seqlock there is no odd/even "writer present"
/// phase — the state word itself is the write intent (a claim installs
/// LOCKED/Int *and* bumps), so equality of the version across the read
/// window is the whole protocol.
///
/// Wraparound is benign: a false validation would need exactly 2⁶⁴ installs
/// inside one read window, and `validates` is pure equality, so the
/// arithmetic is total.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VersionWord(pub u64);

impl VersionWord {
    /// The version a freshly allocated (or reset) object starts at.
    pub const INITIAL: VersionWord = VersionWord(0);

    /// The version after one more state-word install (wrapping).
    #[inline(always)]
    pub fn bumped(self) -> VersionWord {
        VersionWord(self.0.wrapping_add(1))
    }

    /// Seqlock validation: did the version stay put across the read window?
    #[inline(always)]
    pub fn validates(self, reread: VersionWord) -> bool {
        self.0 == reread.0
    }
}

impl fmt::Debug for StateWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_locked_sentinel() {
            return write!(f, "LOCKED");
        }
        let pess = if self.is_pess() { "Pess" } else { "Opt" };
        let lock = match self.lock_mode() {
            LockMode::Unlocked => "",
            LockMode::Read => ",RLock",
            LockMode::Write => ",WLock",
        };
        match self.kind() {
            Kind::WrEx => write!(f, "WrEx{pess}[{}{lock}]", self.owner()),
            Kind::RdEx => write!(f, "RdEx{pess}[{}{lock}]", self.owner()),
            Kind::RdSh => {
                if self.is_pess() && self.read_locks() > 0 {
                    write!(
                        f,
                        "RdShRLock({})[c={}]",
                        self.read_locks(),
                        self.rdsh_count()
                    )
                } else {
                    write!(f, "RdSh{pess}[c={}]", self.rdsh_count())
                }
            }
            Kind::Int => write!(f, "Int[{}]", self.owner()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u16) -> ThreadId {
        ThreadId(n)
    }

    #[test]
    fn zero_word_is_wrex_opt_thread_zero() {
        let w = StateWord(0);
        assert_eq!(w.kind(), Kind::WrEx);
        assert!(!w.is_pess());
        assert_eq!(w.lock_mode(), LockMode::Unlocked);
        assert_eq!(w.owner(), t(0));
        assert_eq!(w, StateWord::wr_ex_opt(t(0)));
    }

    #[test]
    fn optimistic_constructors_roundtrip() {
        for tid in [0u16, 1, 42, u16::MAX] {
            let w = StateWord::wr_ex_opt(t(tid));
            assert_eq!((w.kind(), w.is_pess(), w.owner()), (Kind::WrEx, false, t(tid)));
            let r = StateWord::rd_ex_opt(t(tid));
            assert_eq!((r.kind(), r.is_pess(), r.owner()), (Kind::RdEx, false, t(tid)));
        }
        for c in [1u64, 7, MAX_RDSH_COUNT] {
            let s = StateWord::rd_sh_opt(c);
            assert_eq!((s.kind(), s.is_pess(), s.rdsh_count()), (Kind::RdSh, false, c));
        }
    }

    #[test]
    fn pessimistic_constructors_roundtrip() {
        let w = StateWord::wr_ex_pess(t(3), LockMode::Write);
        assert!(w.is_pess() && w.is_pess_locked());
        assert_eq!(w.lock_mode(), LockMode::Write);
        assert_eq!(w.owner(), t(3));

        let r = StateWord::rd_ex_pess(t(5), LockMode::Read);
        assert!(r.is_pess_locked());
        assert_eq!(r.lock_mode(), LockMode::Read);

        let u = StateWord::rd_ex_pess(t(5), LockMode::Unlocked);
        assert!(u.is_pess_unlocked());

        let s = StateWord::rd_sh_pess(9, 2);
        assert_eq!(s.read_locks(), 2);
        assert_eq!(s.rdsh_count(), 9);
        assert!(s.is_pess_locked());
        let s0 = StateWord::rd_sh_pess(9, 0);
        assert!(s0.is_pess_unlocked());
    }

    #[test]
    fn int_state_and_locked_sentinel_are_distinct() {
        let i = StateWord::int(t(2));
        assert!(i.is_int());
        assert!(!i.is_locked_sentinel());
        assert_eq!(i.owner(), t(2));
        assert!(StateWord::LOCKED.is_locked_sentinel());
        assert!(!StateWord::LOCKED.is_int());
    }

    #[test]
    fn unlock_one_steps_through_rdsh_counts() {
        let s2 = StateWord::rd_sh_pess(4, 2);
        let s1 = s2.unlock_one();
        assert_eq!(s1, StateWord::rd_sh_pess(4, 1));
        let s0 = s1.unlock_one();
        assert_eq!(s0, StateWord::rd_sh_pess(4, 0));
        assert!(s0.is_pess_unlocked());
    }

    #[test]
    fn unlock_one_on_exclusive_states() {
        let w = StateWord::wr_ex_pess(t(1), LockMode::Write);
        assert_eq!(w.unlock_one(), StateWord::wr_ex_pess(t(1), LockMode::Unlocked));
        let wr = StateWord::wr_ex_pess(t(1), LockMode::Read);
        assert_eq!(wr.unlock_one(), StateWord::wr_ex_pess(t(1), LockMode::Unlocked));
        let r = StateWord::rd_ex_pess(t(1), LockMode::Read);
        assert_eq!(r.unlock_one(), StateWord::rd_ex_pess(t(1), LockMode::Unlocked));
    }

    #[test]
    fn pess_opt_conversions_preserve_last_access_info() {
        let w = StateWord::wr_ex_pess(t(7), LockMode::Unlocked);
        assert_eq!(w.to_optimistic(), StateWord::wr_ex_opt(t(7)));
        assert_eq!(StateWord::wr_ex_opt(t(7)).to_pess_unlocked(), w);

        let s = StateWord::rd_sh_pess(11, 0);
        assert_eq!(s.to_optimistic(), StateWord::rd_sh_opt(11));
        assert_eq!(StateWord::rd_sh_opt(11).to_pess_unlocked(), s);

        let r = StateWord::rd_ex_pess(t(2), LockMode::Unlocked);
        assert_eq!(r.to_optimistic(), StateWord::rd_ex_opt(t(2)));
        assert_eq!(StateWord::rd_ex_opt(t(2)).to_pess_unlocked(), r);
    }

    #[test]
    fn debug_formatting_names_states() {
        assert_eq!(format!("{:?}", StateWord::wr_ex_opt(t(1))), "WrExOpt[T1]");
        assert_eq!(
            format!("{:?}", StateWord::wr_ex_pess(t(2), LockMode::Write)),
            "WrExPess[T2,WLock]"
        );
        assert_eq!(format!("{:?}", StateWord::rd_sh_pess(3, 2)), "RdShRLock(2)[c=3]");
        assert_eq!(format!("{:?}", StateWord::rd_sh_opt(5)), "RdShOpt[c=5]");
        assert_eq!(format!("{:?}", StateWord::LOCKED), "LOCKED");
        assert_eq!(format!("{:?}", StateWord::int(t(9))), "Int[T9]");
    }

    #[test]
    fn validate_rejects_ill_formed_words() {
        // RdSh with a nonzero owner tid (the ISSUE's canonical example).
        let rdsh_with_owner = StateWord(StateWord::rd_sh_opt(5).0 | (3u64 << 8));
        assert_eq!(rdsh_with_owner.validate(), Err("RdSh state carries an owner tid"));
        // Optimistic word with a lock bit.
        let opt_locked = StateWord(StateWord::wr_ex_opt(t(1)).0 | (1 << 3));
        assert_eq!(opt_locked.validate(), Err("optimistic state carries a lock"));
        // Reserved low bits (5..=7).
        assert_eq!(StateWord(1 << 5).validate(), Err("reserved bits set"));
        // Lock-mode field at its unencodable value.
        let lock3 = StateWord(StateWord::wr_ex_pess(t(1), LockMode::Write).0 | (0b11 << 3));
        assert_eq!(lock3.validate(), Err("lock mode 3 is not encodable"));
        // Exclusive state with RdSh fields.
        let wrex_with_n = StateWord(StateWord::wr_ex_pess(t(1), LockMode::Read).0 | (2 << 24));
        assert_eq!(wrex_with_n.validate(), Err("exclusive state carries a read-lock count"));
        let rdex_with_c = StateWord(StateWord::rd_ex_opt(t(1)).0 | (9 << 32));
        assert_eq!(rdex_with_c.validate(), Err("exclusive state carries a RdSh counter"));
        // RdSh whose lock mode disagrees with its count.
        let rdsh_bad_n = StateWord(StateWord::rd_sh_pess(4, 0).0 | (1 << 24));
        assert_eq!(rdsh_bad_n.validate(), Err("RdSh lock mode disagrees with read-lock count"));
        // Int with a pess bit.
        let int_pess = StateWord(StateWord::int(t(2)).0 | (1 << 2));
        assert_eq!(int_pess.validate(), Err("Int state carries pess/lock/count bits"));
    }

    #[test]
    #[cfg(debug_assertions)]
    fn rd_ex_pess_write_lock_is_rejected_in_debug() {
        let r = std::panic::catch_unwind(|| StateWord::rd_ex_pess(ThreadId(1), LockMode::Write));
        assert!(r.is_err(), "RdEx+WLock must trip the debug_assert");
    }

    #[test]
    fn version_word_wraps_and_never_validates_across_a_bump() {
        assert_eq!(VersionWord::INITIAL.bumped(), VersionWord(1));
        let top = VersionWord(u64::MAX);
        assert_eq!(top.bumped(), VersionWord(0), "wraps to zero, no overflow panic");
        assert!(!top.validates(top.bumped()));
        assert!(top.validates(top));
    }

    #[test]
    fn fields_do_not_interfere() {
        // Set every field to its max and read each back.
        let w = StateWord::rd_sh_pess(MAX_RDSH_COUNT, MAX_READ_LOCKS);
        assert_eq!(w.kind(), Kind::RdSh);
        assert!(w.is_pess());
        assert_eq!(w.read_locks(), MAX_READ_LOCKS);
        assert_eq!(w.rdsh_count(), MAX_RDSH_COUNT);

        let x = StateWord::wr_ex_pess(t(u16::MAX), LockMode::Write);
        assert_eq!(x.owner(), t(u16::MAX));
        assert_eq!(x.read_locks(), 0);
        assert_eq!(x.rdsh_count(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_tid() -> impl Strategy<Value = ThreadId> {
        any::<u16>().prop_map(ThreadId)
    }

    proptest! {
        /// Every constructor's fields read back exactly.
        #[test]
        fn encode_decode_roundtrip_exclusive(tid in arb_tid(), write in any::<bool>(), pess in any::<bool>(), rlock in any::<bool>()) {
            let w = match (write, pess, rlock) {
                (true, false, _) => StateWord::wr_ex_opt(tid),
                (false, false, _) => StateWord::rd_ex_opt(tid),
                (true, true, true) => StateWord::wr_ex_pess(tid, LockMode::Read),
                (true, true, false) => StateWord::wr_ex_pess(tid, LockMode::Write),
                (false, true, true) => StateWord::rd_ex_pess(tid, LockMode::Read),
                (false, true, false) => StateWord::rd_ex_pess(tid, LockMode::Unlocked),
            };
            prop_assert_eq!(w.owner(), tid);
            prop_assert_eq!(w.is_pess(), pess);
            prop_assert_eq!(w.kind(), if write { Kind::WrEx } else { Kind::RdEx });
            prop_assert!(!w.is_locked_sentinel());
            prop_assert!(!w.is_int());
        }

        #[test]
        fn encode_decode_roundtrip_rdsh(c in 0u64..=MAX_RDSH_COUNT, n in 0u64..=MAX_READ_LOCKS) {
            let pess = StateWord::rd_sh_pess(c, n);
            prop_assert_eq!(pess.kind(), Kind::RdSh);
            prop_assert!(pess.is_pess());
            prop_assert_eq!(pess.rdsh_count(), c);
            prop_assert_eq!(pess.read_locks(), n);
            prop_assert_eq!(pess.is_pess_locked(), n > 0);

            let opt = StateWord::rd_sh_opt(c);
            prop_assert_eq!(opt.kind(), Kind::RdSh);
            prop_assert!(!opt.is_pess());
            prop_assert_eq!(opt.rdsh_count(), c);
        }

        /// Unlocking a locked state n times fully releases it, and each step
        /// is still a legal pessimistic state.
        #[test]
        fn unlock_chain_terminates(c in 0u64..=MAX_RDSH_COUNT, n in 1u64..=MAX_READ_LOCKS) {
            let mut w = StateWord::rd_sh_pess(c, n);
            for step in 0..n {
                prop_assert!(w.is_pess_locked(), "still locked at step {step}");
                w = w.unlock_one();
                prop_assert_eq!(w.rdsh_count(), c);
            }
            prop_assert!(w.is_pess_unlocked());
            prop_assert_eq!(w.read_locks(), 0);
        }

        /// Pess ↔ opt conversions are mutually inverse on unlocked states and
        /// preserve the last-access information.
        #[test]
        fn pess_opt_conversion_inverse(tid in arb_tid(), c in 0u64..=MAX_RDSH_COUNT, sel in 0u8..3) {
            let pess = match sel {
                0 => StateWord::wr_ex_pess(tid, LockMode::Unlocked),
                1 => StateWord::rd_ex_pess(tid, LockMode::Unlocked),
                _ => StateWord::rd_sh_pess(c, 0),
            };
            let opt = pess.to_optimistic();
            prop_assert!(!opt.is_pess());
            prop_assert_eq!(opt.kind(), pess.kind());
            prop_assert_eq!(opt.to_pess_unlocked(), pess);
            if sel < 2 {
                prop_assert_eq!(opt.owner(), tid);
            } else {
                prop_assert_eq!(opt.rdsh_count(), c);
            }
        }

        /// No constructed state ever collides with the LOCKED sentinel or an
        /// Int state.
        #[test]
        fn constructors_never_collide_with_sentinels(tid in arb_tid(), c in 0u64..=MAX_RDSH_COUNT, n in 0u64..=MAX_READ_LOCKS) {
            for w in [
                StateWord::wr_ex_opt(tid),
                StateWord::rd_ex_opt(tid),
                StateWord::rd_sh_opt(c),
                StateWord::wr_ex_pess(tid, LockMode::Write),
                StateWord::wr_ex_pess(tid, LockMode::Read),
                StateWord::wr_ex_pess(tid, LockMode::Unlocked),
                StateWord::rd_ex_pess(tid, LockMode::Read),
                StateWord::rd_ex_pess(tid, LockMode::Unlocked),
                StateWord::rd_sh_pess(c, n),
            ] {
                prop_assert!(!w.is_locked_sentinel(), "{w:?}");
                prop_assert!(!w.is_int(), "{w:?}");
            }
            prop_assert!(StateWord::int(tid).is_int());
        }

        /// Every word a constructor can produce passes `validate`, and so do
        /// the words derived from it by the engine helpers.
        #[test]
        fn constructed_words_always_validate(tid in arb_tid(), c in 0u64..=MAX_RDSH_COUNT, n in 0u64..=MAX_READ_LOCKS) {
            for w in [
                StateWord::wr_ex_opt(tid),
                StateWord::rd_ex_opt(tid),
                StateWord::rd_sh_opt(c),
                StateWord::int(tid),
                StateWord::wr_ex_pess(tid, LockMode::Write),
                StateWord::wr_ex_pess(tid, LockMode::Read),
                StateWord::wr_ex_pess(tid, LockMode::Unlocked),
                StateWord::rd_ex_pess(tid, LockMode::Read),
                StateWord::rd_ex_pess(tid, LockMode::Unlocked),
                StateWord::rd_sh_pess(c, n),
                StateWord::LOCKED,
            ] {
                prop_assert_eq!(w.validate(), Ok(()), "{:?}", w);
            }
            let locked = StateWord::rd_sh_pess(c, n.max(1));
            prop_assert_eq!(locked.unlock_one().validate(), Ok(()));
            prop_assert_eq!(StateWord::rd_sh_pess(c, 0).to_optimistic().validate(), Ok(()));
            prop_assert_eq!(StateWord::wr_ex_opt(tid).to_pess_unlocked().validate(), Ok(()));
        }

        /// `validate` on an arbitrary u64 accepts only words that re-encode
        /// to themselves through the constructors (i.e. it admits no junk).
        #[test]
        fn validate_is_sound_on_random_words(raw in any::<u64>()) {
            let w = StateWord(raw);
            if w.validate().is_ok() && !w.is_locked_sentinel() {
                let rebuilt = match (w.kind(), w.is_pess()) {
                    (Kind::WrEx, false) => StateWord::wr_ex_opt(w.owner()),
                    (Kind::RdEx, false) => StateWord::rd_ex_opt(w.owner()),
                    (Kind::RdSh, false) => StateWord::rd_sh_opt(w.rdsh_count()),
                    (Kind::Int, _) => StateWord::int(w.owner()),
                    (Kind::WrEx, true) => StateWord::wr_ex_pess(w.owner(), w.lock_mode()),
                    (Kind::RdEx, true) => StateWord::rd_ex_pess(w.owner(), w.lock_mode()),
                    (Kind::RdSh, true) => StateWord::rd_sh_pess(w.rdsh_count(), w.read_locks()),
                };
                prop_assert_eq!(rebuilt.0, raw, "{:?}", w);
            }
        }

        /// A single bump never validates against the version it started
        /// from, at any starting point — including the wraparound at
        /// `u64::MAX` (a bumped version only re-validates after exactly 2⁶⁴
        /// installs inside one read window).
        #[test]
        fn version_bump_always_invalidates(raw in any::<u64>()) {
            let v = VersionWord(raw);
            prop_assert!(v.validates(v));
            prop_assert!(!v.validates(v.bumped()));
            prop_assert!(!v.bumped().validates(v));
            prop_assert_eq!(v.bumped().0, raw.wrapping_add(1));
        }

        /// Bumping is injective over any window shorter than the full 2⁶⁴
        /// cycle: k bumps (k in 1..=256) never return to the start.
        #[test]
        fn version_short_windows_never_alias(raw in any::<u64>(), k in 1u64..=256) {
            let start = VersionWord(raw);
            let mut v = start;
            for _ in 0..k {
                v = v.bumped();
            }
            prop_assert!(!start.validates(v), "aliased after {k} bumps");
        }

        /// The version word is layout-independent of the state word: any
        /// state word re-encodes identically regardless of the version
        /// beside it (they are separate heap-header words, not bitfields of
        /// one word — this pins that no future packing change silently
        /// steals StateWord bits).
        #[test]
        fn version_and_state_words_do_not_interfere(tid in arb_tid(), c in 0u64..=MAX_RDSH_COUNT, raw in any::<u64>()) {
            let w = StateWord::rd_sh_opt(c);
            let v = VersionWord(raw);
            prop_assert_eq!(w.rdsh_count(), c);
            prop_assert_eq!(v.0, raw);
            let x = StateWord::wr_ex_opt(tid);
            prop_assert_eq!(x.owner(), tid);
            prop_assert_eq!(v.bumped().0, raw.wrapping_add(1));
        }

        /// Distinct logical states encode to distinct words.
        #[test]
        fn distinct_states_distinct_words(t1 in arb_tid(), t2 in arb_tid()) {
            let words = [
                StateWord::wr_ex_opt(t1),
                StateWord::rd_ex_opt(t1),
                StateWord::wr_ex_pess(t1, LockMode::Write),
                StateWord::wr_ex_pess(t1, LockMode::Read),
                StateWord::wr_ex_pess(t1, LockMode::Unlocked),
                StateWord::rd_ex_pess(t1, LockMode::Read),
                StateWord::rd_ex_pess(t1, LockMode::Unlocked),
                StateWord::int(t1),
            ];
            for (i, a) in words.iter().enumerate() {
                for (j, b) in words.iter().enumerate() {
                    if i != j {
                        prop_assert_ne!(a.0, b.0);
                    }
                }
            }
            if t1 != t2 {
                prop_assert_ne!(StateWord::wr_ex_opt(t1).0, StateWord::wr_ex_opt(t2).0);
            }
        }
    }
}
