//! Directed tests of `Tracker::try_write`'s abort semantics: when a support
//! requests an abort after a mid-transition yield, the write must not
//! complete, nothing may stay claimed, and the state word must be restored.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use drink_core::engine::hybrid::{HybridConfig, HybridEngine};
use drink_core::engine::optimistic::OptimisticEngine;
use drink_core::prelude::*;
use drink_core::support::{Support, SupportCx, YieldInfo};
use drink_core::word::StateWord;
use drink_runtime::{ObjId, Runtime, RuntimeConfig, ThreadId};

/// A support that arms "abort" for a chosen thread as soon as that thread
/// yields (responds to coordination) — a minimal stand-in for the RS
/// enforcer's rolled-back region.
#[derive(Clone, Default)]
struct AbortOnYield {
    armed: Arc<AtomicBool>,
    tripped: Arc<AtomicBool>,
    yields_seen: Arc<AtomicU64>,
}

impl Support for AbortOnYield {
    fn before_yield(&self, _cx: SupportCx<'_>, _info: YieldInfo<'_>) {
        self.yields_seen.fetch_add(1, Ordering::Relaxed);
        if self.armed.load(Ordering::Relaxed) {
            self.tripped.store(true, Ordering::Relaxed);
        }
    }

    fn should_abort(&self, _t: ThreadId) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }
}

const O: ObjId = ObjId(0);

/// Two threads contend on one object; the victim's support is armed so its
/// first yield dooms its in-flight write.
fn run_abort_scenario<F>(make_engine: F)
where
    F: FnOnce(Arc<Runtime>, AbortOnYield) -> Box<dyn EngineOps>,
{
    let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build()));
    let support = AbortOnYield::default();
    let engine = make_engine(rt, support.clone());

    let t0 = engine.attach();
    engine.alloc_init(O, t0);
    engine.write(t0, O, 10); // t0 owns O

    std::thread::scope(|s| {
        let e = &*engine;
        let sup = &support;
        let h = s.spawn(move || {
            let t1 = e.attach();
            // t1 takes O (forcing t0 to coordinate next), arms the trap, and
            // keeps answering safe points until the main thread disarms it.
            e.write(t1, O, 20);
            sup.armed.store(true, Ordering::Relaxed);
            let mut spin = e.rt().spinner("main to finish scenario");
            while sup.armed.load(Ordering::Relaxed) {
                e.safepoint(t1);
                spin.spin();
            }
            e.detach(t1);
        });

        // Wait until t1 owns O and the trap is armed — answering t1's
        // coordination request for O along the way.
        let mut spin = engine.rt().spinner("t1 to take ownership");
        while !support.armed.load(Ordering::Relaxed) {
            engine.safepoint(t0);
            spin.spin();
        }
        // Now t0's try_write must coordinate with t1. While waiting, t1 also
        // requests something?? — simpler: the abort trips on *t0's own*
        // yield. Force a yield by having t1 send a request: instead we rely
        // on t0 responding to nothing — so trip the flag directly to emulate
        // "region already doomed mid-wait".
        support.tripped.store(true, Ordering::Relaxed);
        let before = engine.rt().obj(O).data_read();
        let result = engine.try_write(t0, O, 99);
        assert!(result.is_none(), "doomed write must abort");
        assert_eq!(
            engine.rt().obj(O).data_read(),
            before,
            "aborted write must not publish its value"
        );
        let w = StateWord(engine.rt().obj(O).state().load(Ordering::SeqCst));
        assert!(!w.is_int(), "no Int leaked: {w:?}");
        support.armed.store(false, Ordering::Relaxed);
        h.join().unwrap();
    });
    engine.detach(t0);
}

/// Object-safe subset of `Tracker` used by the scenario driver.
trait EngineOps: Send + Sync {
    fn attach(&self) -> ThreadId;
    fn detach(&self, t: ThreadId);
    fn alloc_init(&self, o: ObjId, owner: ThreadId);
    fn write(&self, t: ThreadId, o: ObjId, v: u64);
    fn try_write(&self, t: ThreadId, o: ObjId, v: u64) -> Option<u64>;
    fn safepoint(&self, t: ThreadId);
    fn rt(&self) -> &Arc<Runtime>;
}

impl<S: Support> EngineOps for HybridEngine<S> {
    fn attach(&self) -> ThreadId {
        Tracker::attach(self)
    }
    fn detach(&self, t: ThreadId) {
        Tracker::detach(self, t)
    }
    fn alloc_init(&self, o: ObjId, owner: ThreadId) {
        Tracker::alloc_init(self, o, owner)
    }
    fn write(&self, t: ThreadId, o: ObjId, v: u64) {
        Tracker::write(self, t, o, v)
    }
    fn try_write(&self, t: ThreadId, o: ObjId, v: u64) -> Option<u64> {
        Tracker::try_write(self, t, o, v)
    }
    fn safepoint(&self, t: ThreadId) {
        Tracker::safepoint(self, t)
    }
    fn rt(&self) -> &Arc<Runtime> {
        Tracker::rt(self)
    }
}

impl<S: Support> EngineOps for OptimisticEngine<S> {
    fn attach(&self) -> ThreadId {
        Tracker::attach(self)
    }
    fn detach(&self, t: ThreadId) {
        Tracker::detach(self, t)
    }
    fn alloc_init(&self, o: ObjId, owner: ThreadId) {
        Tracker::alloc_init(self, o, owner)
    }
    fn write(&self, t: ThreadId, o: ObjId, v: u64) {
        Tracker::write(self, t, o, v)
    }
    fn try_write(&self, t: ThreadId, o: ObjId, v: u64) -> Option<u64> {
        Tracker::try_write(self, t, o, v)
    }
    fn safepoint(&self, t: ThreadId) {
        Tracker::safepoint(self, t)
    }
    fn rt(&self) -> &Arc<Runtime> {
        Tracker::rt(self)
    }
}

#[test]
fn hybrid_doomed_write_aborts_cleanly() {
    run_abort_scenario(|rt, sup| {
        Box::new(HybridEngine::with_config(rt, sup, HybridConfig::default()))
    });
}

#[test]
fn optimistic_doomed_write_aborts_cleanly() {
    run_abort_scenario(|rt, sup| Box::new(OptimisticEngine::with_support(rt, sup)));
}

#[test]
fn try_write_succeeds_when_not_doomed() {
    let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build()));
    let engine = HybridEngine::with_config(rt, AbortOnYield::default(), HybridConfig::default());
    let t = Tracker::attach(&engine);
    Tracker::alloc_init(&engine, O, t);
    Tracker::write(&engine, t, O, 5);
    let prev = Tracker::try_write(&engine, t, O, 6);
    assert_eq!(prev, Some(5), "try_write returns the pre-write payload");
    assert_eq!(Tracker::rt(&engine).obj(O).data_read(), 6);
    Tracker::detach(&engine, t);
}
