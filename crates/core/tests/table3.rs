//! Executable Appendix B: Table 3's state transitions, row by row.
//!
//! Each case constructs the old state, performs the access on the hybrid
//! engine, and asserts the new state (and, where the row specifies it, the
//! synchronization class counted). Rows that require a remote holder run a
//! cooperating second thread that acquires the state through the engine and
//! then polls safe points.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use drink_core::engine::hybrid::{HybridConfig, HybridEngine, SelfReadMode};
use drink_core::policy::PolicyParams;
use drink_core::prelude::*;
use drink_core::word::{Kind, LockMode, StateWord};
use drink_runtime::{Event, ObjId, Runtime, RuntimeConfig, ThreadId};

const O: ObjId = ObjId(0);

/// Table 3 pins the *transition protocol*, so the seqlock read path — which
/// serves read-mostly RdSh reads with no transition at all (DESIGN.md §12) —
/// must stay off here. Any support without `SEQLOCK_READS` does that; this
/// one is otherwise identical to [`NullSupport`]. The seqlock path itself is
/// covered by the engines' unit tests and the chaos harness.
struct TransitionsOnly;
impl drink_core::support::Support for TransitionsOnly {}

type Engine = HybridEngine<TransitionsOnly>;

/// Policy that never moves objects between models on its own, so injected
/// states stay put (pessimistic stays pessimistic at unlock).
fn inert_policy() -> PolicyParams {
    PolicyParams {
        cutoff_confl: u32::MAX,
        k_confl: u32::MAX,
        inertia: u32::MAX,
        contended_cutoff: u32::MAX,
    }
}

fn engine() -> Engine {
    HybridEngine::with_config(
        Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(4)
        .heap_objects(8)
        .monitors(2)
        .build())),
        TransitionsOnly,
        HybridConfig {
            policy: inert_policy(),
            self_read: SelfReadMode::WrExRLock,
            eager_unlock: false,
            adapt: None,
        },
    )
}

fn inject(e: &Engine, w: StateWord) {
    e.rt().obj(O).state().store(w.0, Ordering::SeqCst);
}

fn state(e: &Engine) -> StateWord {
    StateWord(e.rt().obj(O).state().load(Ordering::SeqCst))
}

/// One single-threaded row: old state → access → expected state (+ event).
fn row_own(
    old: StateWord,
    write: bool,
    expect: impl Fn(ThreadId, &StateWord) -> bool,
    event: Event,
    label: &str,
) {
    let e = engine();
    let t = e.attach();
    inject(&e, old);
    if write {
        e.write(t, O, 1);
    } else {
        let _ = e.read(t, O);
    }
    let now = state(&e);
    assert!(expect(t, &now), "{label}: got {now:?}");
    assert!(
        e.rt().stats().get(event) == 0, // stats merge at detach
        "{label}: stats merge early?"
    );
    e.detach(t);
    assert!(
        e.rt().stats().get(event) >= 1,
        "{label}: expected {event:?} to be counted"
    );
}

// --- Pessimistic uncontended, reentrant (no atomic op) rows ---

#[test]
fn wrexwlock_w_by_owner_is_reentrant() {
    row_own(
        StateWord::wr_ex_pess(ThreadId(0), LockMode::Write),
        true,
        |t, w| *w == StateWord::wr_ex_pess(t, LockMode::Write),
        Event::PessReentrant,
        "WrExWLock(T) W by T → same",
    );
}

#[test]
fn wrexwlock_r_by_owner_is_reentrant() {
    row_own(
        StateWord::wr_ex_pess(ThreadId(0), LockMode::Write),
        false,
        |t, w| *w == StateWord::wr_ex_pess(t, LockMode::Write),
        Event::PessReentrant,
        "WrExWLock(T) R by T → same",
    );
}

#[test]
fn wrexrlock_r_by_owner_is_reentrant() {
    row_own(
        StateWord::wr_ex_pess(ThreadId(0), LockMode::Read),
        false,
        |t, w| *w == StateWord::wr_ex_pess(t, LockMode::Read),
        Event::PessReentrant,
        "WrExRLock(T) R by T → same",
    );
}

#[test]
fn rdexrlock_r_by_owner_is_reentrant() {
    row_own(
        StateWord::rd_ex_pess(ThreadId(0), LockMode::Read),
        false,
        |t, w| *w == StateWord::rd_ex_pess(t, LockMode::Read),
        Event::PessReentrant,
        "RdExRLock(T) R by T → same",
    );
}

#[test]
fn rdsh_rlock_r_in_rdset_is_reentrant() {
    // Reach "o ∈ T.rdSet" through the engine: first read joins the lock.
    let e = engine();
    let t = e.attach();
    inject(&e, StateWord::rd_sh_pess(5, 0));
    let _ = e.read(t, O); // RdShPess(5) → RdShRLock(1)(5), o ∈ rdSet
    assert_eq!(state(&e), StateWord::rd_sh_pess(5, 1));
    let _ = e.read(t, O); // reentrant
    assert_eq!(state(&e), StateWord::rd_sh_pess(5, 1));
    e.detach(t);
    assert_eq!(e.rt().stats().get(Event::PessReentrant), 1);
}

// --- Pessimistic uncontended CAS rows (own states) ---

#[test]
fn wrexpess_w_by_owner_write_locks() {
    row_own(
        StateWord::wr_ex_pess(ThreadId(0), LockMode::Unlocked),
        true,
        |t, w| *w == StateWord::wr_ex_pess(t, LockMode::Write),
        Event::PessUncontended,
        "WrExPess(T) W by T → WrExWLock(T)",
    );
}

#[test]
fn wrexpess_r_by_owner_read_locks_full_model() {
    row_own(
        StateWord::wr_ex_pess(ThreadId(0), LockMode::Unlocked),
        false,
        |t, w| *w == StateWord::wr_ex_pess(t, LockMode::Read),
        Event::PessUncontended,
        "WrExPess(T) R by T → WrExRLock(T)",
    );
}

#[test]
fn rdexpess_r_by_owner_read_locks() {
    row_own(
        StateWord::rd_ex_pess(ThreadId(0), LockMode::Unlocked),
        false,
        |t, w| *w == StateWord::rd_ex_pess(t, LockMode::Read),
        Event::PessUncontended,
        "RdExPess(T) R by T → RdExRLock(T)",
    );
}

#[test]
fn rdexpess_w_by_owner_write_locks() {
    row_own(
        StateWord::rd_ex_pess(ThreadId(0), LockMode::Unlocked),
        true,
        |t, w| *w == StateWord::wr_ex_pess(t, LockMode::Write),
        Event::PessUncontended,
        "RdExPess(T) W by T → WrExWLock(T)",
    );
}

#[test]
fn rdexrlock_w_by_owner_upgrades_in_place() {
    row_own(
        StateWord::rd_ex_pess(ThreadId(0), LockMode::Read),
        true,
        |t, w| *w == StateWord::wr_ex_pess(t, LockMode::Write),
        Event::PessUncontended,
        "RdExRLock(T) W by T → WrExWLock(T)",
    );
}

#[test]
fn wrexrlock_w_by_owner_upgrades_in_place() {
    row_own(
        StateWord::wr_ex_pess(ThreadId(0), LockMode::Read),
        true,
        |t, w| *w == StateWord::wr_ex_pess(t, LockMode::Write),
        Event::PessUncontended,
        "WrExRLock(T) W by T → WrExWLock(T)",
    );
}

// --- Pessimistic uncontended CAS rows (cross-thread, unlocked) ---

#[test]
fn rdexpess_other_r_creates_rdsh_rlock_1() {
    let e = engine();
    let t0 = e.attach();
    let _t1 = e.attach(); // register the "previous owner" id
    inject(&e, StateWord::rd_ex_pess(ThreadId(1), LockMode::Unlocked));
    let _ = e.read(t0, O);
    let w = state(&e);
    assert_eq!(w.kind(), Kind::RdSh);
    assert!(w.is_pess());
    assert_eq!(w.read_locks(), 1);
    assert!(w.rdsh_count() >= 2, "fresh epoch from gRdShCount: {w:?}");
    e.detach(t0);
}

#[test]
fn rdexrlock_other_r_creates_rdsh_rlock_2() {
    let e = engine();
    let t0 = e.attach();
    let _t1 = e.attach();
    inject(&e, StateWord::rd_ex_pess(ThreadId(1), LockMode::Read));
    let _ = e.read(t0, O);
    let w = state(&e);
    assert_eq!((w.kind(), w.read_locks()), (Kind::RdSh, 2));
    e.detach(t0);
}

#[test]
fn wrexrlock_other_r_creates_rdsh_rlock_2_without_contention() {
    // §3.2's motivating row: the second reader of a read-locked
    // write-exclusive state joins instead of contending.
    let e = engine();
    let t0 = e.attach();
    let _t1 = e.attach();
    inject(&e, StateWord::wr_ex_pess(ThreadId(1), LockMode::Read));
    let _ = e.read(t0, O);
    let w = state(&e);
    assert_eq!((w.kind(), w.read_locks()), (Kind::RdSh, 2));
    e.detach(t0);
    assert_eq!(e.rt().stats().get(Event::PessContended), 0);
}

#[test]
fn rdshpess_r_keeps_epoch_and_locks_once() {
    let e = engine();
    let t0 = e.attach();
    inject(&e, StateWord::rd_sh_pess(9, 0));
    let _ = e.read(t0, O);
    assert_eq!(state(&e), StateWord::rd_sh_pess(9, 1), "same epoch, n=1");
    e.detach(t0);
}

#[test]
fn rdsh_rlock_foreign_r_joins() {
    // RdShRLock(1) held by another thread; our read joins → n = 2.
    let e = engine();
    let t0 = e.attach();
    inject(&e, StateWord::rd_sh_pess(9, 1));
    let _ = e.read(t0, O);
    assert_eq!(state(&e), StateWord::rd_sh_pess(9, 2));
    e.detach(t0);
}

#[test]
fn wrexpess_other_w_takes_write_lock() {
    let e = engine();
    let t0 = e.attach();
    let _t1 = e.attach();
    inject(&e, StateWord::wr_ex_pess(ThreadId(1), LockMode::Unlocked));
    e.write(t0, O, 1);
    assert_eq!(state(&e), StateWord::wr_ex_pess(t0, LockMode::Write));
    e.detach(t0);
    assert_eq!(e.rt().stats().get(Event::PessContended), 0);
}

#[test]
fn wrexpess_other_r_becomes_rdex_rlock() {
    let e = engine();
    let t0 = e.attach();
    let _t1 = e.attach();
    inject(&e, StateWord::wr_ex_pess(ThreadId(1), LockMode::Unlocked));
    let _ = e.read(t0, O);
    assert_eq!(state(&e), StateWord::rd_ex_pess(t0, LockMode::Read));
    e.detach(t0);
}

#[test]
fn rdexpess_other_w_takes_write_lock() {
    let e = engine();
    let t0 = e.attach();
    let _t1 = e.attach();
    inject(&e, StateWord::rd_ex_pess(ThreadId(1), LockMode::Unlocked));
    e.write(t0, O, 1);
    assert_eq!(state(&e), StateWord::wr_ex_pess(t0, LockMode::Write));
    e.detach(t0);
}

#[test]
fn rdshpess_w_takes_write_lock() {
    let e = engine();
    let t0 = e.attach();
    inject(&e, StateWord::rd_sh_pess(3, 0));
    e.write(t0, O, 1);
    assert_eq!(state(&e), StateWord::wr_ex_pess(t0, LockMode::Write));
    e.detach(t0);
}

// --- Optimistic rows within the hybrid engine ---

#[test]
fn optimistic_rows_match_table_1() {
    let e = engine();
    let t0 = e.attach();

    // WrExOpt(T) R/W by T → same.
    inject(&e, StateWord::wr_ex_opt(t0));
    e.write(t0, O, 1);
    let _ = e.read(t0, O);
    assert_eq!(state(&e), StateWord::wr_ex_opt(t0));

    // RdExOpt(T) R by T → same; W by T → WrExOpt(T) (upgrading CAS).
    inject(&e, StateWord::rd_ex_opt(t0));
    let _ = e.read(t0, O);
    assert_eq!(state(&e), StateWord::rd_ex_opt(t0));
    e.write(t0, O, 2);
    assert_eq!(state(&e), StateWord::wr_ex_opt(t0));

    // RdExOpt(T1) R by T → RdShOpt(gRdShCount).
    inject(&e, StateWord::rd_ex_opt(ThreadId(1)));
    let _ = e.read(t0, O);
    let w = state(&e);
    assert_eq!((w.kind(), w.is_pess()), (Kind::RdSh, false));

    // RdShOpt(c) with fresh rdShCount → same (the upgrade refreshed it).
    let c = w.rdsh_count();
    let _ = e.read(t0, O);
    assert_eq!(state(&e).rdsh_count(), c);

    e.detach(t0);
    let r = e.rt().stats().report();
    assert_eq!(r.get(Event::OptUpgrading), 2);
    assert_eq!(r.pess_uncontended(), 0);
}

#[test]
fn rdsh_opt_stale_read_is_a_fence_transition() {
    let e = engine();
    let t0 = e.attach();
    // Epoch well above t0's rdShCount (fresh thread: 0).
    inject(&e, StateWord::rd_sh_opt(7));
    let _ = e.read(t0, O);
    assert_eq!(state(&e), StateWord::rd_sh_opt(7), "fence: no state change");
    // Second read: rdShCount now ≥ 7 → same-state.
    let _ = e.read(t0, O);
    e.detach(t0);
    let r = e.rt().stats().report();
    assert_eq!(r.get(Event::OptFence), 1);
}

// --- Conflicting and contended rows (need a live remote) ---

/// Run `setup` on a helper thread (which becomes T1 and ACQUIRES through the
/// engine), then perform `access` on T0 while T1 polls, and return the final
/// state. Asserts the expected contended count.
fn contended_row(
    setup: impl Fn(&Engine, ThreadId) + Send + Sync,
    access: impl Fn(&Engine, ThreadId),
    expect_contended: u64,
) -> StateWord {
    let e = engine();
    let t0 = e.attach();
    let ready = AtomicBool::new(false);
    let done = AtomicBool::new(false);
    let mut out = StateWord(0);
    std::thread::scope(|s| {
        let er = &e;
        let ready_r = &ready;
        let done_r = &done;
        let setup_r = &setup;
        s.spawn(move || {
            let t1 = er.attach();
            setup_r(er, t1);
            ready_r.store(true, Ordering::Release);
            let mut spin = er.rt().spinner("main to finish");
            while !done_r.load(Ordering::Acquire) {
                er.safepoint(t1);
                spin.spin();
            }
            er.detach(t1);
        });
        let mut spin = e.rt().spinner("helper setup");
        while !ready.load(Ordering::Acquire) {
            spin.spin();
        }
        access(&e, t0);
        out = state(&e);
        done.store(true, Ordering::Release);
    });
    e.detach(t0);
    assert_eq!(e.rt().stats().get(Event::PessContended), expect_contended);
    out
}

#[test]
fn wrexwlock_foreign_w_is_contended_then_acquired() {
    let w = contended_row(
        |e, t1| {
            inject(e, StateWord::wr_ex_pess(t1, LockMode::Unlocked));
            e.write(t1, O, 5); // t1 really holds the write lock + buffer entry
        },
        |e, t0| e.write(t0, O, 6),
        1,
    );
    assert_eq!(w, StateWord::wr_ex_pess(ThreadId(0), LockMode::Write));
}

#[test]
fn wrexwlock_foreign_r_is_contended_then_read_locks() {
    let w = contended_row(
        |e, t1| {
            inject(e, StateWord::wr_ex_pess(t1, LockMode::Unlocked));
            e.write(t1, O, 5);
        },
        |e, t0| {
            let v = e.read(t0, O);
            assert_eq!(v, 5, "reader must observe the holder's write");
        },
        1,
    );
    assert_eq!(w, StateWord::rd_ex_pess(ThreadId(0), LockMode::Read));
}

#[test]
fn rdsh_rlock_foreign_w_is_contended_then_acquired() {
    let w = contended_row(
        |e, t1| {
            inject(e, StateWord::rd_sh_pess(3, 0));
            let _ = e.read(t1, O); // t1 joins: RdShRLock(1), in its buffer
        },
        |e, t0| e.write(t0, O, 7),
        1,
    );
    assert_eq!(w, StateWord::wr_ex_pess(ThreadId(0), LockMode::Write));
}

#[test]
fn wrexopt_foreign_w_conflicts_via_coordination() {
    let w = contended_row(
        |e, t1| {
            inject(e, StateWord::wr_ex_opt(t1));
        },
        |e, t0| e.write(t0, O, 8),
        0, // optimistic conflicts are not pessimistic contention
    );
    // Inert policy (∞ cutoff): stays optimistic.
    assert_eq!(w, StateWord::wr_ex_opt(ThreadId(0)));
}

#[test]
fn rdshopt_foreign_w_coordinates_with_everyone() {
    let w = contended_row(
        |e, _t1| {
            inject(e, StateWord::rd_sh_opt(2));
        },
        |e, t0| e.write(t0, O, 9),
        0,
    );
    assert_eq!(w, StateWord::wr_ex_opt(ThreadId(0)));
}

// --- Unlock / Pess→Opt rows ---

#[test]
fn psro_unlocks_to_pessimistic_unlocked_by_default() {
    let e = engine(); // inert policy: never to optimistic
    let t0 = e.attach();
    inject(&e, StateWord::wr_ex_pess(t0, LockMode::Unlocked));
    e.write(t0, O, 1); // locks
    e.lock(t0, drink_runtime::MonitorId(0));
    e.unlock(t0, drink_runtime::MonitorId(0)); // PSRO: flush
    assert_eq!(state(&e), StateWord::wr_ex_pess(t0, LockMode::Unlocked));
    e.detach(t0);
}

#[test]
fn prototype_self_read_mode_write_locks() {
    // §7.1: the 32-bit prototype transitions WrExPess(T) R by T to
    // WrExWLock(T) instead of WrExRLock(T).
    let e = HybridEngine::with_config(
        Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build())),
        TransitionsOnly,
        HybridConfig {
            policy: inert_policy(),
            self_read: SelfReadMode::WrExWLock,
            eager_unlock: false,
            adapt: None,
        },
    );
    let t0 = e.attach();
    inject(&e, StateWord::wr_ex_pess(t0, LockMode::Unlocked));
    let _ = e.read(t0, O);
    assert_eq!(state(&e), StateWord::wr_ex_pess(t0, LockMode::Write));
    e.detach(t0);
}

#[test]
fn unsound_self_read_mode_downgrades() {
    // §7.1's unsound diagnostic: self-read loses the write bit.
    let e = HybridEngine::with_config(
        Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build())),
        TransitionsOnly,
        HybridConfig {
            policy: inert_policy(),
            self_read: SelfReadMode::RdExRLockUnsound,
            eager_unlock: false,
            adapt: None,
        },
    );
    let t0 = e.attach();
    inject(&e, StateWord::wr_ex_pess(t0, LockMode::Unlocked));
    let _ = e.read(t0, O);
    assert_eq!(state(&e), StateWord::rd_ex_pess(t0, LockMode::Read));
    e.detach(t0);
}
