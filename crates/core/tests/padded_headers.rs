//! `RuntimeConfig::padded_headers` is a pure layout knob: flipping it must
//! change nothing the engines can observe. This test runs the identical
//! deterministic two-thread workload under both layouts and asserts the
//! engines produce identical payloads and identical event counts — the
//! executable form of the acceptance criterion "flipping the knob requires
//! no engine-code changes".

use std::sync::Arc;

use drink_core::prelude::*;
use drink_runtime::{Event, MonitorId, ObjId, Runtime, RuntimeConfig, StatsReport};

fn run(padded: bool) -> (Vec<u64>, StatsReport) {
    let config = RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(16)
        .monitors(1)
        .padded_headers(padded)
        .build();
    let rt = Arc::new(Runtime::new(config));
    assert_eq!(rt.heap().is_padded(), padded);
    let engine = HybridEngine::new(rt);

    // Deterministic single-threaded phase: allocate, mixed reads/writes,
    // monitor-protected increments (PSRO flushes), then a second thread that
    // only touches its own objects so scheduling cannot reorder conflicts.
    let t0 = engine.attach();
    for o in 0..8u32 {
        engine.alloc_init(ObjId(o), t0);
    }
    for round in 0..50u64 {
        for o in 0..8u32 {
            engine.lock(t0, MonitorId(0));
            let v = engine.read(t0, ObjId(o));
            engine.write(t0, ObjId(o), v + round);
            engine.unlock(t0, MonitorId(0));
        }
        engine.safepoint(t0);
    }

    std::thread::scope(|s| {
        let e = &engine;
        s.spawn(move || {
            let t1 = e.attach();
            for o in 8..16u32 {
                e.alloc_init(ObjId(o), t1);
            }
            for round in 0..50u64 {
                for o in 8..16u32 {
                    let v = e.read(t1, ObjId(o));
                    e.write(t1, ObjId(o), v + round + 1);
                }
                e.safepoint(t1);
            }
            e.detach(t1);
        });
    });
    engine.detach(t0);

    let data = engine.rt().heap().snapshot_data();
    let report = engine.rt().stats().report();
    (data, report)
}

#[test]
fn padded_and_compact_layouts_are_observationally_identical() {
    let (data_compact, report_compact) = run(false);
    let (data_padded, report_padded) = run(true);

    assert_eq!(data_compact, data_padded, "payloads diverge across layouts");
    for e in Event::ALL {
        assert_eq!(
            report_compact.get(e),
            report_padded.get(e),
            "event {e:?} diverges across layouts"
        );
    }
    // And the workload actually exercised the tracked paths.
    assert!(report_compact.get(Event::Write) > 0);
    assert!(report_compact.get(Event::MonitorRelease) > 0);
}
