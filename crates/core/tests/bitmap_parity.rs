//! Parity between the dense-bitmap object sets and the seed's `HashSet`
//! bookkeeping.
//!
//! PR 1 replaced `ThreadState::rd_set: HashSet<u32>` (and the linear
//! `lock_buffer` membership scans) with [`DenseObjSet`], a per-thread bitmap.
//! The engines consult those sets only through `insert` / `remove` /
//! `contains` / `clear` / `is_empty`, so parity splits into two obligations,
//! each checked here:
//!
//! 1. **ADT parity** — `DenseObjSet` behaves identically to `HashSet<u32>`
//!    under arbitrary operation sequences (property test, including growth
//!    past the initial capacity).
//! 2. **Engine parity** — on a lock/unlock/reentrancy-heavy single-threaded
//!    schedule, the hybrid engine's Table 2 event counts match a reference
//!    model that re-implements the seed's `HashSet`-based bookkeeping and
//!    predicts every access's classification.

use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use drink_core::engine::hybrid::{HybridConfig, HybridEngine, SelfReadMode};
use drink_core::policy::PolicyParams;
use drink_core::prelude::*;
use drink_core::tstate::DenseObjSet;
use drink_core::word::{LockMode, StateWord};
use drink_runtime::{Event, ObjId, Runtime, RuntimeConfig};
use proptest::prelude::*;

// --- 1. ADT parity -------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn dense_obj_set_matches_hashset(ops in proptest::collection::vec((0u32..96, 0u8..4), 0..200)) {
        // Deliberately small initial capacity so inserts beyond it exercise
        // the growth path (the engines size the set to the heap up front;
        // growth must still be correct, not just unreachable).
        let mut dense = DenseObjSet::with_capacity(16);
        let mut reference: HashSet<u32> = HashSet::new();
        for (id, op) in ops {
            match op {
                0 => prop_assert_eq!(dense.insert(id), reference.insert(id)),
                1 => prop_assert_eq!(dense.remove(id), reference.remove(&id)),
                2 => prop_assert_eq!(dense.contains(id), reference.contains(&id)),
                _ => {
                    dense.clear();
                    reference.clear();
                }
            }
            prop_assert_eq!(dense.len(), reference.len());
            prop_assert_eq!(dense.is_empty(), reference.is_empty());
        }
        for id in 0..96 {
            prop_assert_eq!(dense.contains(id), reference.contains(&id));
        }
    }
}

// --- 2. Engine parity ----------------------------------------------------

/// Reference model of the seed's per-thread bookkeeping: a `HashSet` read
/// set, a `HashSet` write-hold set, and the lock buffer length. It predicts,
/// for every access in the schedule, which Table 2 class the hybrid engine
/// must count, exactly as the seed's `HashSet`-based `ThreadState` did.
#[derive(Default)]
struct SeedModel {
    rd_set: HashSet<u32>,
    wr_held: HashSet<u32>,
    buffer_len: u64,
    // Predicted Table 2 counters.
    pess_uncontended: u64,
    pess_reentrant: u64,
    lock_buffer_flush: u64,
    state_unlocked: u64,
}

impl SeedModel {
    /// Predict a read of `o`. Objects in this schedule are always this
    /// thread's `WrExPess` family, so a read either acquires the read lock
    /// (uncontended, joins the buffer + read set) or is reentrant.
    fn read(&mut self, o: u32) {
        if self.rd_set.contains(&o) || self.wr_held.contains(&o) {
            self.pess_reentrant += 1;
        } else {
            self.pess_uncontended += 1;
            self.rd_set.insert(o);
            self.buffer_len += 1;
        }
    }

    /// Predict a write of `o`: reentrant under a write hold, an in-place
    /// upgrade under our own read lock (counted uncontended, leaves the
    /// read set, keeps its buffer entry), or a fresh write-lock acquisition.
    fn write(&mut self, o: u32) {
        if self.wr_held.contains(&o) {
            self.pess_reentrant += 1;
        } else if self.rd_set.remove(&o) {
            self.pess_uncontended += 1;
            self.wr_held.insert(o);
        } else {
            self.pess_uncontended += 1;
            self.wr_held.insert(o);
            self.buffer_len += 1;
        }
    }

    /// Predict a PSRO flush: one flush event if the buffer is non-empty,
    /// one unlock per buffer entry, and both sets drain.
    fn flush(&mut self) {
        if self.buffer_len > 0 {
            self.lock_buffer_flush += 1;
            self.state_unlocked += self.buffer_len;
        }
        self.buffer_len = 0;
        self.rd_set.clear();
        self.wr_held.clear();
    }
}

/// Policy that never migrates objects between models, so injected
/// pessimistic states stay pessimistic across flushes.
fn inert_policy() -> PolicyParams {
    PolicyParams {
        cutoff_confl: u32::MAX,
        k_confl: u32::MAX,
        inertia: u32::MAX,
        contended_cutoff: u32::MAX,
    }
}

#[test]
fn bitmap_counts_match_hashset_reference_model() {
    const OBJECTS: u32 = 24;
    const ROUNDS: usize = 8;

    let e = HybridEngine::with_config(
        Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(OBJECTS as usize)
        .monitors(1)
        .build())),
        NullSupport,
        HybridConfig {
            policy: inert_policy(),
            self_read: SelfReadMode::WrExRLock,
            eager_unlock: false,
            adapt: None,
        },
    );
    let t = e.attach();

    // Every object starts as this thread's unlocked WrExPess.
    for o in 0..OBJECTS {
        e.rt()
            .obj(ObjId(o))
            .state()
            .store(StateWord::wr_ex_pess(t, LockMode::Unlocked).0, Ordering::SeqCst);
    }

    let mut model = SeedModel::default();

    // A lock/unlock/reentrancy-heavy schedule: every round re-acquires and
    // re-touches a skewed mix of objects (read-first, write-first,
    // read-upgrade-write, repeated reentrant hits), then flushes at a PSRO.
    // A cheap deterministic LCG drives the skew so rounds differ.
    let mut seed = 0x9e37_79b9u64;
    let mut next = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (seed >> 33) as u32
    };
    for round in 0..ROUNDS {
        let hits = 5 * OBJECTS as usize;
        for _ in 0..hits {
            let o = next() % OBJECTS;
            match next() % 5 {
                0 | 1 => {
                    let _ = e.read(t, ObjId(o));
                    model.read(o);
                }
                2 | 3 => {
                    e.write(t, ObjId(o), u64::from(o));
                    model.write(o);
                }
                _ => {
                    // Reentrancy burst: read, upgrade-write, reread.
                    let _ = e.read(t, ObjId(o));
                    model.read(o);
                    e.write(t, ObjId(o), u64::from(o));
                    model.write(o);
                    let _ = e.read(t, ObjId(o));
                    model.read(o);
                }
            }
        }
        // PSRO: monitor release flushes the lock buffer.
        e.lock(t, drink_runtime::MonitorId(0));
        e.unlock(t, drink_runtime::MonitorId(0));
        model.flush();
        assert!(round < ROUNDS); // schedule sanity
    }

    e.detach(t); // merges thread-local stats into the global report
    let r = e.rt().stats().report();

    assert_eq!(
        r.get(Event::PessUncontended),
        model.pess_uncontended,
        "uncontended acquisitions diverge from HashSet reference"
    );
    assert_eq!(
        r.get(Event::PessReentrant),
        model.pess_reentrant,
        "reentrant classifications diverge from HashSet reference"
    );
    assert_eq!(
        r.get(Event::LockBufferFlush),
        model.lock_buffer_flush,
        "flush count diverges from HashSet reference"
    );
    assert_eq!(
        r.get(Event::StateUnlocked),
        model.state_unlocked,
        "unlock count diverges from HashSet reference"
    );
    // The schedule is single-threaded over injected pessimistic states:
    // nothing may be classified contended or optimistic.
    assert_eq!(r.get(Event::PessContended), 0);
    assert_eq!(r.get(Event::OptSameState), 0);
    assert_eq!(r.get(Event::OptConflictExplicit), 0);

    // And the schedule really was reentrancy-heavy, or the test is vacuous.
    assert!(model.pess_reentrant > model.pess_uncontended);
}
