//! # drink-race: object-level data-race detection on dependence tracking
//!
//! A third runtime-support client, beyond the paper's recorder (§4) and RS
//! enforcer (§5): the paper's §2 names data-race detectors as canonical
//! runtime support, and its deferred-unlocking design leans on the
//! observation (from von Praun & Gross, the paper's \[39\]) that *object-level
//! data races* — unsynchronized conflicting accesses to the same object —
//! "closely over-approximate precise data races in practice".
//!
//! [`RaceDetector`] implements exactly that notion at *transition*
//! granularity:
//!
//! * per-thread and per-monitor **sync vector clocks** track happens-before
//!   induced by program synchronization only (monitor release → acquire);
//!   coordination performed by the tracking protocol itself deliberately
//!   does **not** order accesses — the protocol's job is to make racy
//!   accesses safe to observe, not to excuse them;
//! * every ownership-taking transition deposits a **grab record**
//!   `(thread, its sync epoch)` in a per-object side table; the next
//!   transition checks whether its thread's vector clock covers the previous
//!   grab and reports an object-level race otherwise.
//!
//! ## Precision, precisely
//!
//! *Over-approximation* (inherited from object-level granularity): distinct
//! fields of one object are not distinguished, so false positives are
//! possible for field-disjoint sharing — the same trade the paper's hybrid
//! model makes for contention (§3.1).
//!
//! *Under-approximation* (specific to transition granularity): same-state
//! accesses are invisible by design (that is the entire point of optimistic
//! tracking), so an access the previous owner performed *after* its recorded
//! grab and *after* its last release is not distinguished from its grab-time
//! accesses. A shared-memory race detector needing per-access precision
//! (FastTrack et al.) must instrument every access — i.e., pay the
//! pessimistic-tracking costs this paper exists to avoid. This detector is
//! the cheap, transition-granular point in that design space.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use drink_core::support::{Support, SupportCx, TransitionEv};
use drink_core::tstate::OwnedByThread;
use drink_runtime::{MonitorId, ObjId, ThreadId};

/// One reported object-level race.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RaceReport {
    /// The object involved.
    pub obj: ObjId,
    /// The previous holder (its grab was not ordered before `second`).
    pub first: ThreadId,
    /// The thread whose transition exposed the race.
    pub second: ThreadId,
}

/// Pack `(tid + 1, wrote, epoch)` into a side-table word; 0 = empty.
#[inline]
fn pack(t: ThreadId, epoch: u64, wrote: bool) -> u64 {
    debug_assert!(epoch < 1 << 46);
    ((t.raw() as u64 + 1) << 47) | ((wrote as u64) << 46) | epoch
}

#[inline]
fn unpack(w: u64) -> Option<(ThreadId, u64, bool)> {
    if w == 0 {
        None
    } else {
        Some((
            ThreadId::from_raw(((w >> 47) - 1) as u16),
            w & ((1 << 46) - 1),
            (w >> 46) & 1 == 1,
        ))
    }
}

struct ThreadSync {
    /// Sync vector clock; component `t` counts thread `t`'s completed
    /// monitor releases.
    vc: Vec<u64>,
}

struct Shared {
    threads: usize,
    /// Per-thread sync state (owner-thread access only).
    sync: Box<[OwnedByThread<ThreadSync>]>,
    /// Per-monitor published vector clock.
    monitors: Mutex<std::collections::HashMap<u32, Vec<u64>>>,
    /// Per-object grab records.
    grabs: Box<[AtomicU64]>,
    /// Deduplicated reports.
    reports: Mutex<std::collections::HashSet<RaceReport>>,
}

/// The object-level race detector: attach as an engine's `Support`.
#[derive(Clone)]
pub struct RaceDetector {
    inner: Arc<Shared>,
}

impl RaceDetector {
    /// A detector for `threads` mutator slots over `objects` heap objects.
    pub fn new(threads: usize, objects: usize) -> Self {
        RaceDetector {
            inner: Arc::new(Shared {
                threads,
                sync: (0..threads)
                    .map(|_| OwnedByThread::new(ThreadSync { vc: vec![0; threads] }))
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
                monitors: Mutex::new(Default::default()),
                grabs: (0..objects)
                    .map(|_| AtomicU64::new(0))
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
                reports: Mutex::new(Default::default()),
            }),
        }
    }

    /// A detector sized for `rt`.
    pub fn for_runtime(rt: &drink_runtime::Runtime) -> Self {
        RaceDetector::new(rt.config().max_threads, rt.heap().len())
    }

    /// The races found so far, sorted for stable output.
    pub fn reports(&self) -> Vec<RaceReport> {
        let mut v: Vec<RaceReport> = self.inner.reports.lock().iter().copied().collect();
        v.sort_by_key(|r| (r.obj.0, r.first.raw(), r.second.raw()));
        v
    }

    /// Number of distinct `(object, thread-pair)` races found.
    pub fn race_count(&self) -> usize {
        self.inner.reports.lock().len()
    }

    /// Objects with at least one reported race.
    pub fn racy_objects(&self) -> Vec<ObjId> {
        let mut v: Vec<ObjId> = self
            .inner
            .reports
            .lock()
            .iter()
            .map(|r| r.obj)
            .collect();
        v.sort_by_key(|o| o.0);
        v.dedup();
        v
    }

    /// Grab the object for `cx.t`: check the previous record, then replace.
    /// `write` is the current access's kind; a pair is conflicting only if
    /// at least one side wrote.
    fn grab_and_check(&self, cx: &SupportCx<'_>, obj: ObjId, write: bool) {
        // SAFETY: support hooks run on the acting mutator thread.
        let sync = unsafe { self.inner.sync[cx.t.index()].get() };
        let me_epoch = sync.vc[cx.t.index()];
        let prev = self.inner.grabs[obj.index()].swap(pack(cx.t, me_epoch, write), Ordering::AcqRel);
        if let Some((prev_t, prev_epoch, prev_wrote)) = unpack(prev) {
            // The previous grab happened when `prev_t` had completed
            // `prev_epoch` releases; ordering it before us requires syncing
            // with a release that came *after* it — release number
            // `prev_epoch + 1` or later. Read→read transfers are not
            // conflicts (no write on either side).
            if prev_t != cx.t
                && (write || prev_wrote)
                && prev_t.index() < self.inner.threads
                && sync.vc[prev_t.index()] <= prev_epoch
            {
                self.inner.reports.lock().insert(RaceReport {
                    obj,
                    first: prev_t,
                    second: cx.t,
                });
            }
        }
    }
}

impl Support for RaceDetector {
    fn on_transition(&self, cx: SupportCx<'_>, obj: ObjId, ev: TransitionEv<'_>) {
        match ev {
            // Ownership-taking transitions: check + re-grab, carrying the
            // access kind (RdSh creations are reads by definition).
            TransitionEv::Conflict { write, .. }
            | TransitionEv::PessConflictingAcquire { write, .. } => {
                self.grab_and_check(&cx, obj, write)
            }
            TransitionEv::RdShCreate { .. } => self.grab_and_check(&cx, obj, false),
            // Own-state transitions refresh the grab epoch without a check.
            // UpgradeOwn is the owner's write; PessLocalAcquire a self-read
            // of a written state (keep the write bit: the owner's writes are
            // what the next transfer must be ordered after).
            TransitionEv::UpgradeOwn | TransitionEv::PessLocalAcquire => {
                // SAFETY: acting thread.
                let sync = unsafe { self.inner.sync[cx.t.index()].get() };
                let me_epoch = sync.vc[cx.t.index()];
                self.inner.grabs[obj.index()]
                    .store(pack(cx.t, me_epoch, true), Ordering::Release);
            }
            // Read-after-read of an existing epoch: no conflict to check
            // (the write preceding the RdSh formation was checked when the
            // RdSh was created).
            TransitionEv::Fence { .. } => {}
        }
    }

    fn on_monitor_acquire(
        &self,
        cx: SupportCx<'_>,
        m: MonitorId,
        _prev: Option<(ThreadId, u64)>,
    ) {
        // Join the monitor's published clock into ours.
        let monitors = self.inner.monitors.lock();
        if let Some(mvc) = monitors.get(&m.0) {
            // SAFETY: acting thread.
            let sync = unsafe { self.inner.sync[cx.t.index()].get() };
            for (a, b) in sync.vc.iter_mut().zip(mvc) {
                *a = (*a).max(*b);
            }
        }
    }

    fn on_monitor_release(&self, cx: SupportCx<'_>, m: MonitorId) {
        // Publish our clock to the monitor, then advance our epoch: accesses
        // after this release form a new, unordered-until-synced segment.
        // SAFETY: acting thread.
        let sync = unsafe { self.inner.sync[cx.t.index()].get() };
        sync.vc[cx.t.index()] += 1;
        self.inner
            .monitors
            .lock()
            .insert(m.0, sync.vc.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drink_core::prelude::*;
    use drink_runtime::{Runtime, RuntimeConfig};

    fn engine_with_detector(
        threads: usize,
        objects: usize,
    ) -> (HybridEngine<RaceDetector>, RaceDetector) {
        let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(threads)
        .heap_objects(objects)
        .monitors(4)
        .build()));
        let det = RaceDetector::for_runtime(&rt);
        let engine = HybridEngine::with_config(
            rt,
            det.clone(),
            drink_core::engine::hybrid::HybridConfig::default(),
        );
        (engine, det)
    }

    #[test]
    fn pack_roundtrip() {
        assert_eq!(unpack(0), None);
        for (t, e) in [(0u16, 0u64), (3, 7), (u16::MAX, 1 << 40)] {
            for wrote in [false, true] {
                assert_eq!(
                    unpack(pack(ThreadId(t), e, wrote)),
                    Some((ThreadId(t), e, wrote))
                );
            }
        }
    }

    #[test]
    fn well_synchronized_handoff_is_race_free() {
        let (engine, det) = engine_with_detector(2, 4);
        let m = MonitorId(0);
        let o = ObjId(0);
        let t0 = engine.attach();
        engine.alloc_init(o, t0);
        engine.lock(t0, m);
        engine.write(t0, o, 1);
        engine.unlock(t0, m);

        std::thread::scope(|s| {
            let e = &engine;
            let h = s.spawn(move || {
                let t1 = e.attach();
                e.lock(t1, m);
                let _ = e.read(t1, o);
                e.unlock(t1, m);
                e.detach(t1);
            });
            let mut spin = engine.rt().spinner("locked reader");
            while !h.is_finished() {
                engine.safepoint(t0);
                spin.spin();
            }
            h.join().unwrap();
        });
        // Take it back under the same lock: the second transfer is the one
        // the detector checks, and it is ordered through m.
        engine.lock(t0, m);
        engine.write(t0, o, 2);
        engine.unlock(t0, m);
        engine.detach(t0);
        assert_eq!(det.race_count(), 0, "{:?}", det.reports());
    }

    #[test]
    fn unsynchronized_handoff_is_reported() {
        let (engine, det) = engine_with_detector(2, 4);
        let o = ObjId(1);
        let t0 = engine.attach();
        engine.alloc_init(o, t0);
        engine.write(t0, o, 1);

        // First transfer (t1's read) deposits t1's grab; it is unchecked
        // because t0's allocation-time accesses leave no record (a real
        // detector treats first publication as initialization). t0's write
        // back is the checked, racy transfer.
        std::thread::scope(|s| {
            let e = &engine;
            let h = s.spawn(move || {
                let t1 = e.attach();
                let _ = e.read(t1, o); // no synchronization anywhere
                e.detach(t1);
            });
            let mut spin = engine.rt().spinner("racy reader");
            while !h.is_finished() {
                engine.safepoint(t0);
                spin.spin();
            }
            h.join().unwrap();
        });
        engine.write(t0, o, 2); // conflicts with t1's grab: race
        engine.detach(t0);
        assert_eq!(det.racy_objects(), vec![o]);
    }

    #[test]
    fn sync_through_different_monitor_does_not_order() {
        // T0 writes o under m0; T1 reads o under m1: synchronized, but not
        // with each other — still an object-level race.
        let (engine, det) = engine_with_detector(2, 4);
        let o = ObjId(2);
        let t0 = engine.attach();
        engine.alloc_init(o, t0);
        engine.lock(t0, MonitorId(0));
        engine.write(t0, o, 1);
        engine.unlock(t0, MonitorId(0));

        std::thread::scope(|s| {
            let e = &engine;
            let h = s.spawn(move || {
                let t1 = e.attach();
                e.lock(t1, MonitorId(1));
                let _ = e.read(t1, o);
                e.unlock(t1, MonitorId(1));
                e.detach(t1);
            });
            let mut spin = engine.rt().spinner("cross-monitor reader");
            while !h.is_finished() {
                engine.safepoint(t0);
                spin.spin();
            }
            h.join().unwrap();
        });
        // t0 takes the object back under m0 — still never synchronized with
        // t1's m1-guarded grab: an object-level race.
        engine.lock(t0, MonitorId(0));
        engine.write(t0, o, 2);
        engine.unlock(t0, MonitorId(0));
        engine.detach(t0);
        assert_eq!(det.racy_objects(), vec![o]);
    }

    #[test]
    fn unsynchronized_read_read_transfer_is_not_a_race() {
        // T0 writes under a lock and releases; T1 and T2 both read with
        // sync to T0's release. The T1→T2 read-read ownership transfer is
        // unsynchronized between the READERS, but with no write on either
        // side it is not a conflict.
        let (engine, det) = engine_with_detector(3, 4);
        let m = MonitorId(0);
        let o = ObjId(3);
        let t0 = engine.attach();
        engine.alloc_init(o, t0);
        engine.lock(t0, m);
        engine.write(t0, o, 1);
        engine.unlock(t0, m);

        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            let e = &engine;
            let mut handles = Vec::new();
            for _ in 0..2 {
                let b = &barrier;
                handles.push(s.spawn(move || {
                    let t = e.attach();
                    // Sync with the writer's release...
                    e.lock(t, m);
                    e.unlock(t, m);
                    b.wait();
                    // ...then read racily w.r.t. the *other reader* only.
                    let _ = e.read(t, o);
                    e.detach(t);
                }));
            }
            let mut spin = engine.rt().spinner("readers");
            while handles.iter().any(|h| !h.is_finished()) {
                engine.safepoint(t0);
                spin.spin();
            }
            for h in handles {
                h.join().unwrap();
            }
        });
        engine.detach(t0);
        assert_eq!(
            det.race_count(),
            0,
            "read-read transfers must not be reported: {:?}",
            det.reports()
        );
    }

    #[test]
    fn reports_deduplicate_per_object_and_pair() {
        let (engine, det) = engine_with_detector(2, 2);
        let o = ObjId(0);
        let t0 = engine.attach();
        engine.alloc_init(o, t0);

        std::thread::scope(|s| {
            let e = &engine;
            let h = s.spawn(move || {
                let t1 = e.attach();
                for i in 0..200 {
                    e.write(t1, o, i);
                    std::thread::yield_now();
                }
                e.detach(t1);
            });
            for i in 0..200 {
                engine.write(t0, o, i);
                engine.safepoint(t0);
                std::thread::yield_now();
                if h.is_finished() {
                    break;
                }
            }
            // Keep acting as a safe point until the peer is done — otherwise
            // its next coordination request would wait on a joining thread.
            let mut spin = engine.rt().spinner("racy peer to finish");
            while !h.is_finished() {
                engine.safepoint(t0);
                spin.spin();
            }
            h.join().unwrap();
        });
        engine.detach(t0);
        // Many racy transfers, but at most two (ordered) pair reports.
        assert!(det.race_count() >= 1);
        assert!(det.race_count() <= 2, "{:?}", det.reports());
    }
}
