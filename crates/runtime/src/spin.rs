//! Watchdog-equipped spin loop helper.
//!
//! Coordination in this system is built on bounded spinning: a requester spins
//! on a response token while acting as a safe point, a contended pessimistic
//! transition spins until the remote thread flushes its lock buffer, and a
//! replayed sink spins on a source thread's clock. A protocol bug in any of
//! these would hang the process silently, so every spin loop in the workspace
//! goes through [`Spin`], which backs off politely and panics with a
//! descriptive message if a configurable deadline passes.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::ids::ThreadId;
use crate::{SchedHooks, SchedPoint};

/// Default watchdog budget used when neither the runtime config nor the
/// `DRINK_SPIN_BUDGET_MS` env var overrides it. Generous enough for heavily
/// oversubscribed CI machines.
pub const DEFAULT_BUDGET: Duration = Duration::from_secs(60);

/// `DRINK_SPIN_BUDGET_MS`, parsed once. CI boxes set it to tighten the 60 s
/// default so protocol hangs fail in seconds instead of minutes; it overrides
/// *every* spinner's budget, including explicitly configured ones (a value of
/// `0` disables every watchdog).
fn env_budget() -> Option<Duration> {
    static CACHE: OnceLock<Option<Duration>> = OnceLock::new();
    *CACHE.get_or_init(|| parse_budget_ms(std::env::var("DRINK_SPIN_BUDGET_MS").ok()?.as_str()))
}

/// Parse a `DRINK_SPIN_BUDGET_MS` value. Split out for testability (the env
/// lookup itself is cached process-wide).
fn parse_budget_ms(s: &str) -> Option<Duration> {
    s.trim().parse::<u64>().ok().map(Duration::from_millis)
}

/// Watchdog budget for condvar *parks* (the one wait a [`Spin`] can't
/// cover): `DRINK_SPIN_BUDGET_MS` if set, else `configured`; `None` when the
/// effective budget is zero (watchdog disabled). A parked thread whose
/// wake-up depends on a peer that died mid-protocol would otherwise hang the
/// process silently — the checking harness relies on this to turn injected
/// protocol bugs into bounded, reportable failures.
pub fn park_budget(configured: Duration) -> Option<Duration> {
    let b = env_budget().unwrap_or(configured);
    (!b.is_zero()).then_some(b)
}

/// Exponential-backoff spinner with a deadline watchdog.
///
/// The first few iterations use `core::hint::spin_loop`, then the spinner
/// starts yielding to the OS scheduler; this keeps latency low for the
/// short waits that dominate (a remote thread reaching its next safe point)
/// without burning a core during long replay waits. The escalation to
/// `yield_now` happens even with the watchdog disabled (zero budget): the
/// protocols in this workspace wait on *other threads'* progress, so a
/// watchdog-free spinner that stayed in `spin_loop` would starve exactly the
/// thread being waited for on oversubscribed machines.
pub struct Spin<'h> {
    what: &'static str,
    deadline: Option<Instant>,
    budget: Duration,
    iters: u32,
    started: Option<Instant>,
    sched: Option<(&'h dyn SchedHooks, ThreadId)>,
}

impl<'h> Spin<'h> {
    /// Default watchdog budget (see [`DEFAULT_BUDGET`]).
    pub const DEFAULT_BUDGET: Duration = DEFAULT_BUDGET;

    /// A spinner for the wait described by `what` (used in the panic message).
    pub fn new(what: &'static str) -> Self {
        Spin::with_budget(what, DEFAULT_BUDGET)
    }

    /// A spinner with an explicit watchdog budget. A zero budget disables the
    /// watchdog entirely (spins forever, yielding to the OS after the
    /// `spin_loop` phase). `DRINK_SPIN_BUDGET_MS`, if set, overrides `budget`.
    pub fn with_budget(what: &'static str, budget: Duration) -> Self {
        Spin {
            what,
            deadline: None,
            budget: env_budget().unwrap_or(budget),
            iters: 0,
            started: None,
            sched: None,
        }
    }

    /// Attach a schedule-perturbation layer: every backoff step reports a
    /// [`SchedPoint::SpinBackoff`] for thread `t`.
    pub fn with_sched(mut self, sched: &'h dyn SchedHooks, t: ThreadId) -> Self {
        self.sched = Some((sched, t));
        self
    }

    /// One backoff step. Panics if the watchdog budget is exhausted, which in
    /// this workspace always indicates a coordination-protocol bug (or an
    /// impossibly overloaded machine).
    ///
    /// Three phases. (1) Iterations 1–15: a single `spin_loop` hint — the
    /// sub-microsecond waits that dominate. (2) Iterations 16–127: batches
    /// of `spin_loop` hints that double every 16 iterations (capped at 64),
    /// still with **no clock read and no syscall** — this window covers a
    /// peer finishing its current safe-point response, which takes hundreds
    /// of nanoseconds, not a scheduling quantum. An earlier version of this
    /// loop called `Instant::now()` *and* `yield_now()` on every iteration
    /// past 16; under 8-thread RdSh fan-outs (where every waiter sits right
    /// in this window) that clock/syscall churn was the dominant cost — the
    /// `opt_access_t8` collapse in BENCH_contention.json. (3) Iteration 128
    /// on: yield to the OS scheduler each step — the protocols here wait on
    /// *other threads'* progress, so a long spinner that never yielded would
    /// starve exactly the thread being waited for on oversubscribed machines
    /// — arming the watchdog deadline once and re-reading the clock only
    /// every 32nd step.
    #[inline]
    pub fn spin(&mut self) {
        self.iters += 1;
        if let Some((sched, t)) = self.sched {
            sched.perturb(t, SchedPoint::SpinBackoff);
        }
        if self.iters < 16 {
            core::hint::spin_loop();
            return;
        }
        if self.iters < 128 {
            // Batched-hint phase: 2, 2, …, 4, …, 64 hints per step.
            let batch = 1u32 << (((self.iters - 16) / 16 + 1).min(6));
            for _ in 0..batch {
                core::hint::spin_loop();
            }
            return;
        }
        if self.budget.is_zero() {
            // Watchdog disabled: never read the clock, but still escalate
            // from spin_loop to yielding so the waited-for thread can run.
            std::thread::yield_now();
            return;
        }
        // Arm the watchdog on the first long-wait step; afterwards the
        // deadline is only re-checked every 32nd step (a yield costs ~1 µs,
        // so the check granularity is tens of microseconds — invisible next
        // to any sane budget).
        let deadline = match self.deadline {
            Some(d) => d,
            None => {
                let now = Instant::now();
                self.started = Some(now);
                let d = now + self.budget;
                self.deadline = Some(d);
                d
            }
        };
        if self.iters % 32 == 0 {
            let now = Instant::now();
            if now >= deadline {
                panic!(
                    "spin watchdog expired after {:?} while waiting for: {}",
                    self.started.map(|s| now - s).unwrap_or_default(),
                    self.what
                );
            }
        }
        std::thread::yield_now();
    }

    /// Number of backoff steps taken so far.
    pub fn iterations(&self) -> u32 {
        self.iters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_spins_complete() {
        let mut s = Spin::new("test wait");
        for _ in 0..100 {
            s.spin();
        }
        assert_eq!(s.iterations(), 100);
    }

    #[test]
    #[should_panic(expected = "spin watchdog expired")]
    fn watchdog_fires_on_expiry() {
        let mut s = Spin::with_budget("doomed wait", Duration::from_millis(20));
        loop {
            s.spin();
        }
    }

    #[test]
    fn zero_budget_disables_watchdog_without_arming_a_deadline() {
        let mut s = Spin::with_budget("unbounded wait", Duration::ZERO);
        for _ in 0..5_000 {
            s.spin();
        }
        assert!(s.iterations() >= 5_000);
        assert!(
            s.deadline.is_none() && s.started.is_none(),
            "zero budget must never touch the clock"
        );
    }

    #[test]
    fn hint_phases_never_touch_the_clock_or_the_scheduler() {
        // 100 iterations stay inside phases (1)+(2): no deadline is armed,
        // so no `Instant::now()` was ever read. This pins the fix for the
        // opt_access_t8 pathology — short coordination waits must be pure
        // spin hints.
        let mut s = Spin::new("short wait");
        for _ in 0..100 {
            s.spin();
        }
        assert_eq!(s.iterations(), 100);
        assert!(
            s.deadline.is_none() && s.started.is_none(),
            "hint phases must not read the clock"
        );
    }

    #[test]
    fn budget_env_values_parse_to_millis() {
        assert_eq!(parse_budget_ms("250"), Some(Duration::from_millis(250)));
        assert_eq!(parse_budget_ms(" 1000 "), Some(Duration::from_secs(1)));
        assert_eq!(parse_budget_ms("0"), Some(Duration::ZERO));
        assert_eq!(parse_budget_ms("nope"), None);
        assert_eq!(parse_budget_ms(""), None);
    }

    #[test]
    fn sched_layer_sees_every_backoff_step() {
        use std::sync::atomic::{AtomicU32, Ordering};

        #[derive(Debug, Default)]
        struct Counter(AtomicU32);
        impl SchedHooks for Counter {
            fn perturb(&self, _t: ThreadId, point: SchedPoint) {
                assert_eq!(point, SchedPoint::SpinBackoff);
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        let counter = Counter::default();
        let mut s = Spin::new("counted wait").with_sched(&counter, ThreadId(3));
        for _ in 0..40 {
            s.spin();
        }
        assert_eq!(counter.0.load(Ordering::Relaxed), 40);
    }
}
