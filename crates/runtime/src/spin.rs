//! Watchdog-equipped spin loop helper.
//!
//! Coordination in this system is built on bounded spinning: a requester spins
//! on a response token while acting as a safe point, a contended pessimistic
//! transition spins until the remote thread flushes its lock buffer, and a
//! replayed sink spins on a source thread's clock. A protocol bug in any of
//! these would hang the process silently, so every spin loop in the workspace
//! goes through [`Spin`], which backs off politely and panics with a
//! descriptive message if a configurable deadline passes.

use std::time::{Duration, Instant};

/// Exponential-backoff spinner with a deadline watchdog.
///
/// The first few iterations use `core::hint::spin_loop`, then the spinner
/// starts yielding to the OS scheduler; this keeps latency low for the
/// short waits that dominate (a remote thread reaching its next safe point)
/// without burning a core during long replay waits.
pub struct Spin {
    what: &'static str,
    deadline: Option<Instant>,
    budget: Duration,
    iters: u32,
    started: Option<Instant>,
}

impl Spin {
    /// Default watchdog budget used when the runtime config does not override
    /// it. Generous enough for heavily oversubscribed CI machines.
    pub const DEFAULT_BUDGET: Duration = Duration::from_secs(60);

    /// A spinner for the wait described by `what` (used in the panic message).
    pub fn new(what: &'static str) -> Self {
        Spin::with_budget(what, Spin::DEFAULT_BUDGET)
    }

    /// A spinner with an explicit watchdog budget. A zero budget disables the
    /// watchdog entirely (spins forever).
    pub fn with_budget(what: &'static str, budget: Duration) -> Self {
        Spin {
            what,
            deadline: None,
            budget,
            iters: 0,
            started: None,
        }
    }

    /// One backoff step. Panics if the watchdog budget is exhausted, which in
    /// this workspace always indicates a coordination-protocol bug (or an
    /// impossibly overloaded machine).
    ///
    /// Yields to the OS scheduler early (after 16 iterations): the protocols
    /// in this workspace wait on *other threads'* progress, so on
    /// oversubscribed machines (including single-core CI boxes) burning the
    /// quantum in `spin_loop` delays exactly the thread being waited for.
    #[inline]
    pub fn spin(&mut self) {
        self.iters += 1;
        if self.iters < 16 {
            core::hint::spin_loop();
            return;
        }
        // Arm the watchdog lazily so that the fast path never reads the clock.
        let now = Instant::now();
        let deadline = *self.deadline.get_or_insert_with(|| {
            self.started = Some(now);
            if self.budget.is_zero() {
                now + Duration::from_secs(u64::MAX / 4)
            } else {
                now + self.budget
            }
        });
        if now >= deadline {
            panic!(
                "spin watchdog expired after {:?} while waiting for: {}",
                self.started.map(|s| now - s).unwrap_or_default(),
                self.what
            );
        }
        std::thread::yield_now();
    }

    /// Number of backoff steps taken so far.
    pub fn iterations(&self) -> u32 {
        self.iters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_spins_complete() {
        let mut s = Spin::new("test wait");
        for _ in 0..100 {
            s.spin();
        }
        assert_eq!(s.iterations(), 100);
    }

    #[test]
    #[should_panic(expected = "spin watchdog expired")]
    fn watchdog_fires_on_expiry() {
        let mut s = Spin::with_budget("doomed wait", Duration::from_millis(20));
        loop {
            s.spin();
        }
    }

    #[test]
    fn zero_budget_disables_watchdog() {
        let mut s = Spin::with_budget("unbounded wait", Duration::ZERO);
        for _ in 0..5_000 {
            s.spin();
        }
        assert!(s.iterations() >= 5_000);
    }
}
