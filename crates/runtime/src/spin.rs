//! Watchdog-equipped spin loop helper.
//!
//! Coordination in this system is built on bounded spinning: a requester spins
//! on a response token while acting as a safe point, a contended pessimistic
//! transition spins until the remote thread flushes its lock buffer, and a
//! replayed sink spins on a source thread's clock. A protocol bug in any of
//! these would hang the process silently, so every spin loop in the workspace
//! goes through [`Spin`], which backs off politely and panics with a
//! descriptive message if a configurable deadline passes.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::ids::ThreadId;
use crate::{SchedHooks, SchedPoint};

/// Default watchdog budget used when neither the runtime config nor the
/// `DRINK_SPIN_BUDGET_MS` env var overrides it. Generous enough for heavily
/// oversubscribed CI machines.
pub const DEFAULT_BUDGET: Duration = Duration::from_secs(60);

/// `DRINK_SPIN_BUDGET_MS`, parsed once. CI boxes set it to tighten the 60 s
/// default so protocol hangs fail in seconds instead of minutes; it overrides
/// *every* spinner's budget, including explicitly configured ones (a value of
/// `0` disables every watchdog).
fn env_budget() -> Option<Duration> {
    static CACHE: OnceLock<Option<Duration>> = OnceLock::new();
    *CACHE.get_or_init(|| parse_budget_ms(std::env::var("DRINK_SPIN_BUDGET_MS").ok()?.as_str()))
}

/// Parse a `DRINK_SPIN_BUDGET_MS` value. Split out for testability (the env
/// lookup itself is cached process-wide).
fn parse_budget_ms(s: &str) -> Option<Duration> {
    s.trim().parse::<u64>().ok().map(Duration::from_millis)
}

/// Watchdog budget for condvar *parks* (the one wait a [`Spin`] can't
/// cover): `DRINK_SPIN_BUDGET_MS` if set, else `configured`; `None` when the
/// effective budget is zero (watchdog disabled). A parked thread whose
/// wake-up depends on a peer that died mid-protocol would otherwise hang the
/// process silently — the checking harness relies on this to turn injected
/// protocol bugs into bounded, reportable failures.
pub fn park_budget(configured: Duration) -> Option<Duration> {
    park_budget_with(configured, None)
}

/// [`park_budget`] with a per-wait override: a caller that knows its wait's
/// expected bound (a coordination deadline, a bounded handoff) passes it as
/// `per_wait` and it beats the global `configured` default. The
/// `DRINK_SPIN_BUDGET_MS` env var still beats both — it is the CI-wide hang
/// bound and must be able to tighten *every* wait in the process at once.
pub fn park_budget_with(configured: Duration, per_wait: Option<Duration>) -> Option<Duration> {
    let b = env_budget().unwrap_or(per_wait.unwrap_or(configured));
    (!b.is_zero()).then_some(b)
}

/// Outcome of one [`Spin::checked_spin`] step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpinOutcome {
    /// Budget not (yet) exhausted; keep waiting.
    Progress,
    /// The budget expired. The caller recovers (coordination deadlines fall
    /// back to the pessimistic protocol); only [`Spin::spin`] panics.
    Expired,
}

/// Exponential-backoff spinner with a deadline watchdog.
///
/// The first few iterations use `core::hint::spin_loop`, then the spinner
/// starts yielding to the OS scheduler; this keeps latency low for the
/// short waits that dominate (a remote thread reaching its next safe point)
/// without burning a core during long replay waits. The escalation to
/// `yield_now` happens even with the watchdog disabled (zero budget): the
/// protocols in this workspace wait on *other threads'* progress, so a
/// watchdog-free spinner that stayed in `spin_loop` would starve exactly the
/// thread being waited for on oversubscribed machines.
pub struct Spin<'h> {
    what: &'static str,
    deadline: Option<Instant>,
    budget: Duration,
    iters: u32,
    started: Option<Instant>,
    /// Set by [`Spin::note_park`]: the wait escalated past spinning to a
    /// condvar park at least once. Reported by the watchdog panic so a hang
    /// report says which phase of the backoff ladder the thread died in.
    parked: bool,
    sched: Option<(&'h dyn SchedHooks, ThreadId)>,
}

impl<'h> Spin<'h> {
    /// Default watchdog budget (see [`DEFAULT_BUDGET`]).
    pub const DEFAULT_BUDGET: Duration = DEFAULT_BUDGET;

    /// A spinner for the wait described by `what` (used in the panic message).
    pub fn new(what: &'static str) -> Self {
        Spin::with_budget(what, DEFAULT_BUDGET)
    }

    /// A spinner with an explicit watchdog budget. A zero budget disables the
    /// watchdog entirely (spins forever, yielding to the OS after the
    /// `spin_loop` phase). `DRINK_SPIN_BUDGET_MS`, if set, overrides `budget`.
    pub fn with_budget(what: &'static str, budget: Duration) -> Self {
        Spin::budgeted(what, env_budget().unwrap_or(budget))
    }

    /// A spinner with an exact budget that `DRINK_SPIN_BUDGET_MS` does *not*
    /// override. This is for **recoverable** deadlines (coordination waits
    /// resolved by [`Spin::checked_spin`]): the env var is the CI-wide bound
    /// on protocol-bug *hangs*, and a recoverable deadline that expires
    /// cleanly is not a hang — stretching a 50 ms coordination deadline to a
    /// 10 s CI budget would defeat the degradation path it exists to trigger.
    pub fn with_exact_budget(what: &'static str, budget: Duration) -> Self {
        Spin::budgeted(what, budget)
    }

    fn budgeted(what: &'static str, budget: Duration) -> Self {
        Spin {
            what,
            deadline: None,
            budget,
            iters: 0,
            started: None,
            parked: false,
            sched: None,
        }
    }

    /// Attach a schedule-perturbation layer: every backoff step reports a
    /// [`SchedPoint::SpinBackoff`] for thread `t`.
    pub fn with_sched(mut self, sched: &'h dyn SchedHooks, t: ThreadId) -> Self {
        self.sched = Some((sched, t));
        self
    }

    /// One backoff step. Panics if the watchdog budget is exhausted, which in
    /// this workspace always indicates a coordination-protocol bug (or an
    /// impossibly overloaded machine).
    ///
    /// Three phases. (1) Iterations 1–15: a single `spin_loop` hint — the
    /// sub-microsecond waits that dominate. (2) Iterations 16–127: batches
    /// of `spin_loop` hints that double every 16 iterations (capped at 64),
    /// still with **no clock read and no syscall** — this window covers a
    /// peer finishing its current safe-point response, which takes hundreds
    /// of nanoseconds, not a scheduling quantum. An earlier version of this
    /// loop called `Instant::now()` *and* `yield_now()` on every iteration
    /// past 16; under 8-thread RdSh fan-outs (where every waiter sits right
    /// in this window) that clock/syscall churn was the dominant cost — the
    /// `opt_access_t8` collapse in BENCH_contention.json. (3) Iteration 128
    /// on: yield to the OS scheduler each step — the protocols here wait on
    /// *other threads'* progress, so a long spinner that never yielded would
    /// starve exactly the thread being waited for on oversubscribed machines
    /// — arming the watchdog deadline once and re-reading the clock only
    /// every 32nd step.
    #[inline]
    pub fn spin(&mut self) {
        if self.checked_spin() == SpinOutcome::Expired {
            self.expire();
        }
    }

    /// [`Spin::spin`]'s backoff step, but budget expiry returns
    /// [`SpinOutcome::Expired`] instead of panicking. Coordination waits with
    /// a configured deadline use this and fall back to the pessimistic
    /// protocol on expiry; the hard-panic [`Spin::spin`] stays for waits
    /// where expiry can only mean a protocol bug (replay waits, lock-buffer
    /// flush waits). After an expiry the spinner keeps reporting `Expired`
    /// on (every 32nd) subsequent step — callers are expected to stop.
    #[inline]
    pub fn checked_spin(&mut self) -> SpinOutcome {
        self.iters += 1;
        if let Some((sched, t)) = self.sched {
            sched.perturb(t, SchedPoint::SpinBackoff);
        }
        if self.iters < 16 {
            core::hint::spin_loop();
            return SpinOutcome::Progress;
        }
        if self.iters < 128 {
            // Batched-hint phase: 2, 2, …, 4, …, 64 hints per step.
            let batch = 1u32 << (((self.iters - 16) / 16 + 1).min(6));
            for _ in 0..batch {
                core::hint::spin_loop();
            }
            return SpinOutcome::Progress;
        }
        if self.budget.is_zero() {
            // Watchdog disabled: never read the clock, but still escalate
            // from spin_loop to yielding so the waited-for thread can run.
            std::thread::yield_now();
            return SpinOutcome::Progress;
        }
        // Arm the watchdog on the first long-wait step; afterwards the
        // deadline is only re-checked every 32nd step (a yield costs ~1 µs,
        // so the check granularity is tens of microseconds — invisible next
        // to any sane budget).
        let deadline = match self.deadline {
            Some(d) => d,
            None => {
                let now = Instant::now();
                self.started = Some(now);
                let d = now + self.budget;
                self.deadline = Some(d);
                d
            }
        };
        if self.iters % 32 == 0 && Instant::now() >= deadline {
            return SpinOutcome::Expired;
        }
        std::thread::yield_now();
        SpinOutcome::Progress
    }

    /// The watchdog panic, with enough forensics to tell a protocol hang
    /// from an overloaded host: backoff steps taken, elapsed wall time vs
    /// the configured budget, and whether the wait ever escalated to a
    /// condvar park.
    #[cold]
    fn expire(&self) -> ! {
        let elapsed = self
            .started
            .map(|s| Instant::now() - s)
            .unwrap_or_default();
        panic!(
            "spin watchdog expired after {:?} (budget {:?}, {} backoff steps, park phase {}) \
             while waiting for: {}",
            elapsed,
            self.budget,
            self.iters,
            if self.parked { "reached" } else { "not reached" },
            self.what
        );
    }

    /// Record that the wait escalated to a condvar park (the adaptive
    /// backoff ladder's last rung). Only affects the watchdog's forensics.
    pub fn note_park(&mut self) {
        self.parked = true;
    }

    /// Has the wait escalated to a condvar park at least once?
    pub fn park_phase_reached(&self) -> bool {
        self.parked
    }

    /// Number of backoff steps taken so far.
    pub fn iterations(&self) -> u32 {
        self.iters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_spins_complete() {
        let mut s = Spin::new("test wait");
        for _ in 0..100 {
            s.spin();
        }
        assert_eq!(s.iterations(), 100);
    }

    #[test]
    #[should_panic(expected = "spin watchdog expired")]
    fn watchdog_fires_on_expiry() {
        let mut s = Spin::with_budget("doomed wait", Duration::from_millis(20));
        loop {
            s.spin();
        }
    }

    #[test]
    fn zero_budget_disables_watchdog_without_arming_a_deadline() {
        let mut s = Spin::with_budget("unbounded wait", Duration::ZERO);
        for _ in 0..5_000 {
            s.spin();
        }
        assert!(s.iterations() >= 5_000);
        assert!(
            s.deadline.is_none() && s.started.is_none(),
            "zero budget must never touch the clock"
        );
    }

    #[test]
    fn hint_phases_never_touch_the_clock_or_the_scheduler() {
        // 100 iterations stay inside phases (1)+(2): no deadline is armed,
        // so no `Instant::now()` was ever read. This pins the fix for the
        // opt_access_t8 pathology — short coordination waits must be pure
        // spin hints.
        let mut s = Spin::new("short wait");
        for _ in 0..100 {
            s.spin();
        }
        assert_eq!(s.iterations(), 100);
        assert!(
            s.deadline.is_none() && s.started.is_none(),
            "hint phases must not read the clock"
        );
    }

    #[test]
    fn checked_spin_reports_expiry_instead_of_panicking() {
        let mut s = Spin::with_exact_budget("recoverable wait", Duration::from_millis(10));
        let mut steps = 0u32;
        loop {
            steps += 1;
            if s.checked_spin() == SpinOutcome::Expired {
                break;
            }
            assert!(steps < 50_000_000, "watchdog never expired");
        }
        assert!(steps >= 128, "expiry can only happen in the yield phase");
        // The spinner is still usable for forensics after expiry.
        assert_eq!(s.iterations(), steps);
    }

    #[test]
    fn watchdog_panic_reports_steps_budget_and_park_phase() {
        let result = std::panic::catch_unwind(|| {
            let mut s = Spin::with_exact_budget("forensic wait", Duration::from_millis(10));
            s.note_park();
            loop {
                s.spin();
            }
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("budget 10ms"), "budget missing: {msg}");
        assert!(msg.contains("backoff steps"), "step count missing: {msg}");
        assert!(msg.contains("park phase reached"), "park flag missing: {msg}");
        assert!(msg.contains("forensic wait"), "what missing: {msg}");
    }

    #[test]
    fn park_phase_flag_defaults_off_and_latches() {
        let mut s = Spin::new("park flag");
        assert!(!s.park_phase_reached());
        s.note_park();
        assert!(s.park_phase_reached());
    }

    #[test]
    fn per_wait_override_beats_configured_default() {
        // No DRINK_SPIN_BUDGET_MS in the test environment, so the per-wait
        // override is the effective budget; zero still disables the watchdog.
        assert_eq!(
            park_budget_with(Duration::from_secs(60), Some(Duration::from_millis(5))),
            Some(Duration::from_millis(5))
        );
        assert_eq!(
            park_budget_with(Duration::from_secs(60), None),
            Some(Duration::from_secs(60))
        );
        assert_eq!(park_budget_with(Duration::ZERO, Some(Duration::ZERO)), None);
    }

    #[test]
    fn budget_env_values_parse_to_millis() {
        assert_eq!(parse_budget_ms("250"), Some(Duration::from_millis(250)));
        assert_eq!(parse_budget_ms(" 1000 "), Some(Duration::from_secs(1)));
        assert_eq!(parse_budget_ms("0"), Some(Duration::ZERO));
        assert_eq!(parse_budget_ms("nope"), None);
        assert_eq!(parse_budget_ms(""), None);
    }

    #[test]
    fn sched_layer_sees_every_backoff_step() {
        use std::sync::atomic::{AtomicU32, Ordering};

        #[derive(Debug, Default)]
        struct Counter(AtomicU32);
        impl SchedHooks for Counter {
            fn perturb(&self, _t: ThreadId, point: SchedPoint) {
                assert_eq!(point, SchedPoint::SpinBackoff);
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        let counter = Counter::default();
        let mut s = Spin::new("counted wait").with_sched(&counter, ThreadId(3));
        for _ in 0..40 {
            s.spin();
        }
        assert_eq!(counter.0.load(Ordering::Relaxed), 40);
    }
}
