//! Sharded thread/monitor registry and the canonical shard mapping.
//!
//! The flat `Box<[ThreadControl]>` the runtime started with keeps every
//! control block in one allocation: fine at 8 threads, but past that the
//! substrate's own bookkeeping becomes a scalability liability — every
//! fan-out walks one long array, and the monitor table shares the same
//! single-allocation shape. This module shards both tables into
//! cache-line-independent shards ([`Registry`]) and exports the one shard
//! mapping ([`ShardMap`]) the rest of the system must agree on:
//!
//! * the registry maps **thread** ids to shards (round-robin striping, so
//!   dense registration fills shards evenly);
//! * the heap's per-object access-epoch table (DESIGN.md §14) is indexed by
//!   the same thread-shard mapping, which is what lets `coordinate_many`
//!   skip whole shards no thread of which ever touched the object;
//! * `drink-core`'s adapt controller and `DenseObjSet` reuse [`ShardMap`]
//!   for their **object**-indexed sharding, so demotion decisions and skip
//!   decisions are computed from one mapping function, not two that can
//!   drift.
//!
//! Shard count comes from `RuntimeConfig::builder().shards()`; the default
//! is `next_pow2(max_threads / 8)` — one shard per 8 threads, i.e. existing
//! ≤8-thread configurations get exactly one shard and behave byte-for-byte
//! like the flat layout.

use std::sync::atomic::{AtomicU16, Ordering};

use crate::control::ThreadControl;
use crate::ids::{MonitorId, ThreadId};
use crate::monitor::Monitor;

/// The canonical dense-index → shard mapping. Shard counts are always
/// powers of two, so the mapping is a single mask: index `i` lives in shard
/// `i & (shards - 1)` (round-robin striping).
///
/// Everything that shards by a dense id — the registry (thread ids), the
/// heap's access-epoch table (thread ids), the adapt controller and
/// `DenseObjSet` (object ids) — goes through this one type, so "does the
/// skip decision agree with the demotion decision" is true by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    mask: usize,
    shift: u32,
}

impl ShardMap {
    /// A mapping with `shards` shards, rounded up to a power of two
    /// (minimum 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        ShardMap { mask: shards - 1, shift: shards.trailing_zeros() }
    }

    /// The default mapping for `max_threads` mutators:
    /// `next_pow2(max_threads / 8)` shards — one shard per 8 threads, one
    /// shard total at or below 8.
    pub fn auto(max_threads: usize) -> Self {
        ShardMap::new((max_threads / 8).next_power_of_two())
    }

    /// Number of shards (a power of two, ≥ 1).
    #[inline(always)]
    pub fn shards(self) -> usize {
        self.mask + 1
    }

    /// The shard dense index `i` maps to.
    #[inline(always)]
    pub fn shard_of(self, i: usize) -> usize {
        i & self.mask
    }

    /// The slot of index `i` within its shard (`i / shards`; round-robin
    /// striping interleaves consecutive indices across shards).
    #[inline(always)]
    pub fn slot_of(self, i: usize) -> usize {
        i >> self.shift
    }

    /// How many of the dense indices `0..len` map to shard `s`.
    pub fn shard_len(self, len: usize, s: usize) -> usize {
        if s >= len {
            0
        } else {
            let shards = self.shards();
            (len - s + shards - 1) / shards
        }
    }
}

/// One registry shard: its slice of the thread-control table and its slice
/// of the monitor table, each in their own allocation so shards never share
/// cache lines (each `ThreadControl` is additionally 128-byte aligned).
#[derive(Debug)]
struct RegistryShard {
    controls: Box<[ThreadControl]>,
    monitors: Box<[Monitor]>,
}

/// The sharded mutator-thread and monitor registry.
///
/// Ids stay dense and are assigned in registration order exactly as before;
/// only the *storage* is sharded. Lookup is two indexings
/// (`shards[id & mask].controls[id >> shift]`) instead of one, which the
/// hot-path bench gate bounds.
#[derive(Debug)]
pub struct Registry {
    shards: Box<[RegistryShard]>,
    map: ShardMap,
    max_threads: usize,
    n_monitors: usize,
    next_tid: AtomicU16,
}

impl Registry {
    /// Build a registry for up to `max_threads` mutators and `monitors`
    /// program monitors, sharded per `map`.
    pub fn new(max_threads: usize, monitors: usize, map: ShardMap) -> Self {
        assert!(max_threads <= ThreadId::MAX, "too many threads");
        let shards = (0..map.shards())
            .map(|s| RegistryShard {
                controls: (0..map.shard_len(max_threads, s))
                    .map(|_| ThreadControl::new())
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
                monitors: (0..map.shard_len(monitors, s))
                    .map(|_| Monitor::new())
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Registry { shards, map, max_threads, n_monitors: monitors, next_tid: AtomicU16::new(0) }
    }

    /// The thread-shard mapping this registry (and the heap's access-epoch
    /// table) uses.
    #[inline(always)]
    pub fn shard_map(&self) -> ShardMap {
        self.map
    }

    /// Register the calling thread; ids are dense and assigned in
    /// registration order. Panics if `max_threads` is exceeded.
    ///
    /// `Release` so that everything the registering thread published before
    /// registering (e.g. state it pre-seeded for its peers) is visible to
    /// any thread whose [`Registry::registered`] `Acquire` load observes the
    /// new count — fan-out snapshots slice the registry by that count and
    /// then read the peer's control state.
    pub fn register(&self) -> ThreadId {
        let raw = self.next_tid.fetch_add(1, Ordering::Release);
        assert!(
            (raw as usize) < self.max_threads,
            "thread registry full ({} max)",
            self.max_threads
        );
        ThreadId(raw)
    }

    /// Number of threads registered so far. `Acquire`: pairs with the
    /// `Release` registration bump (see [`Registry::register`]).
    #[inline]
    pub fn registered(&self) -> usize {
        (self.next_tid.load(Ordering::Acquire) as usize).min(self.max_threads)
    }

    /// Control block of thread `t`.
    #[inline(always)]
    pub fn control(&self, t: ThreadId) -> &ThreadControl {
        let i = t.index();
        &self.shards[self.map.shard_of(i)].controls[self.map.slot_of(i)]
    }

    /// The monitor with id `m`.
    #[inline(always)]
    pub fn monitor(&self, m: MonitorId) -> &Monitor {
        let i = m.index();
        assert!(i < self.n_monitors, "MonitorId {} out of range ({} monitors)", i, self.n_monitors);
        &self.shards[self.map.shard_of(i)].monitors[self.map.slot_of(i)]
    }

    /// Iterate the registered threads' control blocks in dense id order
    /// (`ThreadId(0)`, `ThreadId(1)`, …) — the same order the flat
    /// `Vec<ThreadControl>` model yields, which the registry proptest pins.
    pub fn controls(&self) -> impl Iterator<Item = &ThreadControl> + '_ {
        (0..self.registered()).map(move |i| self.control(ThreadId(i as u16)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shard_map_defaults_scale_with_threads() {
        for (threads, shards) in [(1, 1), (4, 1), (8, 1), (9, 1), (16, 2), (32, 4), (64, 8)] {
            assert_eq!(ShardMap::auto(threads).shards(), shards, "max_threads={threads}");
        }
    }

    #[test]
    fn shard_map_rounds_to_pow2_and_strides_round_robin() {
        let m = ShardMap::new(3);
        assert_eq!(m.shards(), 4);
        assert_eq!(m.shard_of(0), 0);
        assert_eq!(m.shard_of(5), 1);
        assert_eq!(m.shard_of(7), 3);
        assert_eq!(m.slot_of(0), 0);
        assert_eq!(m.slot_of(5), 1);
        // shard_len partitions any prefix exactly.
        for len in 0..40 {
            let total: usize = (0..m.shards()).map(|s| m.shard_len(len, s)).sum();
            assert_eq!(total, len, "len={len}");
        }
    }

    #[test]
    fn registration_is_dense_and_lookup_is_stable() {
        let r = Registry::new(16, 4, ShardMap::new(4));
        let a = r.register();
        let b = r.register();
        assert_eq!((a, b), (ThreadId(0), ThreadId(1)));
        assert_eq!(r.registered(), 2);
        // Different shards, distinct control blocks.
        assert_ne!(r.control(a) as *const _, r.control(b) as *const _);
        // Monitors resolve for every id.
        for m in 0..4 {
            let _ = r.monitor(MonitorId(m));
        }
    }

    #[test]
    #[should_panic(expected = "thread registry full")]
    fn registry_overflow_panics() {
        let r = Registry::new(1, 1, ShardMap::new(1));
        r.register();
        r.register();
    }

    #[test]
    fn monitors_are_distinct_across_and_within_shards() {
        let r = Registry::new(8, 6, ShardMap::new(2));
        let mut seen = std::collections::HashSet::new();
        for m in 0..6u32 {
            assert!(seen.insert(r.monitor(MonitorId(m)) as *const Monitor as usize));
        }
    }

    proptest! {
        /// Satellite: sharded registry iteration is permutation-equal to the
        /// flat `Vec<ThreadControl>` reference model — it yields exactly the
        /// registered blocks, in dense id order, and `control(t)` is
        /// identity-equal to the iterated block.
        #[test]
        fn registry_iteration_matches_flat_model(
            max in 1usize..40,
            shards in 1usize..16,
            frac in 0.0f64..1.0,
        ) {
            let registered = ((max as f64 * frac) as usize).min(max);
            let r = Registry::new(max, 2, ShardMap::new(shards));
            for i in 0..registered {
                prop_assert_eq!(r.register(), ThreadId(i as u16));
            }
            // Flat model: ids 0..registered, in order.
            let iterated: Vec<*const ThreadControl> =
                r.controls().map(|c| c as *const _).collect();
            prop_assert_eq!(iterated.len(), registered);
            let direct: Vec<*const ThreadControl> = (0..registered)
                .map(|i| r.control(ThreadId(i as u16)) as *const _)
                .collect();
            prop_assert_eq!(&iterated, &direct);
            // Permutation-equality: no duplicates (each id has its own block).
            let mut dedup = iterated.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), registered);
        }

        /// Round-robin striping keeps shard populations balanced: for any
        /// prefix of dense ids, per-shard counts differ by at most one.
        #[test]
        fn shard_populations_stay_balanced(len in 0usize..100, shards in 1usize..16) {
            let m = ShardMap::new(shards);
            let mut counts = vec![0usize; m.shards()];
            for i in 0..len {
                counts[m.shard_of(i)] += 1;
            }
            for (s, &c) in counts.iter().enumerate() {
                prop_assert_eq!(c, m.shard_len(len, s), "s={}", s);
            }
            let max = counts.iter().max().copied().unwrap_or(0);
            let min = counts.iter().min().copied().unwrap_or(0);
            prop_assert!(max - min <= 1);
        }
    }
}
