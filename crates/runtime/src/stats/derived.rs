//! Derived metrics over a [`StatsReport`] — the single home for every ratio
//! and percentile the bench bins, oracles, and tables print.
//!
//! Before this module each consumer re-derived its ratios from raw
//! [`Event`](crate::stats::Event) counts (and got subtly different zero-count
//! conventions). Now there is exactly one definition per quantity, keyed by
//! [`Metric`]:
//!
//! | metric                  | definition                                             |
//! |-------------------------|--------------------------------------------------------|
//! | `Accesses`              | reads + writes                                         |
//! | `OptSameState`          | same-state optimistic accesses                         |
//! | `OptConflicting`        | conflicting optimistic transitions (expl + impl)       |
//! | `PessUncontended`       | uncontended pessimistic transitions (CAS + reentrant)  |
//! | `PessReentrantPct`      | 100 · reentrant / uncontended (0 if none)              |
//! | `PessContended`         | contended pessimistic transitions                      |
//! | `OptToPess`             | optimistic → pessimistic state changes                 |
//! | `PessToOpt`             | pessimistic → optimistic state changes                 |
//! | `ExplicitConflictRate`  | explicit conflicts / accesses (0 if none)              |
//! | `BatchOccupancy`        | batched requests / responding safe points (0 if none)  |
//! | `FanoutWidth`           | fan-out peers / fan-outs (0 if none)                   |
//! | `*P50/P90/P99/MaxNs`    | latency percentiles (ns) from the log2 histograms      |
//!
//! Every metric evaluates to `f64` (counts are exact until 2⁵³, far beyond
//! any run here); the zero-denominator convention is always `0.0`.

use serde::{Deserialize, Serialize};

use super::{Event, LatencyKind, StatsReport};

/// One derived quantity; see the module table. `eval` is total: it never
/// divides by zero and never panics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    Accesses,
    OptSameState,
    OptConflicting,
    PessUncontended,
    PessReentrantPct,
    PessContended,
    OptToPess,
    PessToOpt,
    ExplicitConflictRate,
    BatchOccupancy,
    FanoutWidth,
    CoordRoundtripP50,
    CoordRoundtripP90,
    CoordRoundtripP99,
    CoordRoundtripMaxNs,
    FanoutCompleteP50,
    FanoutCompleteP90,
    FanoutCompleteP99,
    FanoutCompleteMaxNs,
    MonitorAcquireP50,
    MonitorAcquireP90,
    MonitorAcquireP99,
    MonitorAcquireMaxNs,
    ServeServiceP50,
    ServeServiceP90,
    ServeServiceP99,
    ServeServiceMaxNs,
    ServeSojournP50,
    ServeSojournP90,
    ServeSojournP99,
    ServeSojournMaxNs,
}

impl Metric {
    /// Every metric, in declaration order (for table printers).
    pub const ALL: [Metric; 31] = [
        Metric::Accesses,
        Metric::OptSameState,
        Metric::OptConflicting,
        Metric::PessUncontended,
        Metric::PessReentrantPct,
        Metric::PessContended,
        Metric::OptToPess,
        Metric::PessToOpt,
        Metric::ExplicitConflictRate,
        Metric::BatchOccupancy,
        Metric::FanoutWidth,
        Metric::CoordRoundtripP50,
        Metric::CoordRoundtripP90,
        Metric::CoordRoundtripP99,
        Metric::CoordRoundtripMaxNs,
        Metric::FanoutCompleteP50,
        Metric::FanoutCompleteP90,
        Metric::FanoutCompleteP99,
        Metric::FanoutCompleteMaxNs,
        Metric::MonitorAcquireP50,
        Metric::MonitorAcquireP90,
        Metric::MonitorAcquireP99,
        Metric::MonitorAcquireMaxNs,
        Metric::ServeServiceP50,
        Metric::ServeServiceP90,
        Metric::ServeServiceP99,
        Metric::ServeServiceMaxNs,
        Metric::ServeSojournP50,
        Metric::ServeSojournP90,
        Metric::ServeSojournP99,
        Metric::ServeSojournMaxNs,
    ];

    /// Stable snake_case name for reports and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Accesses => "accesses",
            Metric::OptSameState => "opt_same_state",
            Metric::OptConflicting => "opt_conflicting",
            Metric::PessUncontended => "pess_uncontended",
            Metric::PessReentrantPct => "pess_reentrant_pct",
            Metric::PessContended => "pess_contended",
            Metric::OptToPess => "opt_to_pess",
            Metric::PessToOpt => "pess_to_opt",
            Metric::ExplicitConflictRate => "explicit_conflict_rate",
            Metric::BatchOccupancy => "batch_occupancy",
            Metric::FanoutWidth => "fanout_width",
            Metric::CoordRoundtripP50 => "coord_roundtrip_p50_ns",
            Metric::CoordRoundtripP90 => "coord_roundtrip_p90_ns",
            Metric::CoordRoundtripP99 => "coord_roundtrip_p99_ns",
            Metric::CoordRoundtripMaxNs => "coord_roundtrip_max_ns",
            Metric::FanoutCompleteP50 => "fanout_complete_p50_ns",
            Metric::FanoutCompleteP90 => "fanout_complete_p90_ns",
            Metric::FanoutCompleteP99 => "fanout_complete_p99_ns",
            Metric::FanoutCompleteMaxNs => "fanout_complete_max_ns",
            Metric::MonitorAcquireP50 => "monitor_acquire_p50_ns",
            Metric::MonitorAcquireP90 => "monitor_acquire_p90_ns",
            Metric::MonitorAcquireP99 => "monitor_acquire_p99_ns",
            Metric::MonitorAcquireMaxNs => "monitor_acquire_max_ns",
            Metric::ServeServiceP50 => "serve_service_p50_ns",
            Metric::ServeServiceP90 => "serve_service_p90_ns",
            Metric::ServeServiceP99 => "serve_service_p99_ns",
            Metric::ServeServiceMaxNs => "serve_service_max_ns",
            Metric::ServeSojournP50 => "serve_sojourn_p50_ns",
            Metric::ServeSojournP90 => "serve_sojourn_p90_ns",
            Metric::ServeSojournP99 => "serve_sojourn_p99_ns",
            Metric::ServeSojournMaxNs => "serve_sojourn_max_ns",
        }
    }

    /// Evaluate against a report.
    pub fn eval(self, r: &StatsReport) -> f64 {
        fn ratio(num: u64, den: u64) -> f64 {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        }
        let pct = |kind: LatencyKind, p: f64| r.latency(kind).percentile(p) as f64;
        match self {
            Metric::Accesses => r.accesses() as f64,
            Metric::OptSameState => r.opt_same_state() as f64,
            Metric::OptConflicting => r.opt_conflicting() as f64,
            Metric::PessUncontended => r.pess_uncontended() as f64,
            Metric::PessReentrantPct => {
                100.0 * ratio(r.get(Event::PessReentrant), r.pess_uncontended())
            }
            Metric::PessContended => r.pess_contended() as f64,
            Metric::OptToPess => r.opt_to_pess() as f64,
            Metric::PessToOpt => r.pess_to_opt() as f64,
            Metric::ExplicitConflictRate => {
                ratio(r.get(Event::OptConflictExplicit), r.accesses())
            }
            Metric::BatchOccupancy => {
                ratio(r.get(Event::CoordBatchRequests), r.get(Event::RespondedExplicit))
            }
            Metric::FanoutWidth => {
                ratio(r.get(Event::CoordFanoutPeers), r.get(Event::CoordFanout))
            }
            Metric::CoordRoundtripP50 => pct(LatencyKind::CoordRoundtrip, 50.0),
            Metric::CoordRoundtripP90 => pct(LatencyKind::CoordRoundtrip, 90.0),
            Metric::CoordRoundtripP99 => pct(LatencyKind::CoordRoundtrip, 99.0),
            Metric::CoordRoundtripMaxNs => r.latency(LatencyKind::CoordRoundtrip).max() as f64,
            Metric::FanoutCompleteP50 => pct(LatencyKind::FanoutComplete, 50.0),
            Metric::FanoutCompleteP90 => pct(LatencyKind::FanoutComplete, 90.0),
            Metric::FanoutCompleteP99 => pct(LatencyKind::FanoutComplete, 99.0),
            Metric::FanoutCompleteMaxNs => r.latency(LatencyKind::FanoutComplete).max() as f64,
            Metric::MonitorAcquireP50 => pct(LatencyKind::MonitorAcquire, 50.0),
            Metric::MonitorAcquireP90 => pct(LatencyKind::MonitorAcquire, 90.0),
            Metric::MonitorAcquireP99 => pct(LatencyKind::MonitorAcquire, 99.0),
            Metric::MonitorAcquireMaxNs => r.latency(LatencyKind::MonitorAcquire).max() as f64,
            Metric::ServeServiceP50 => pct(LatencyKind::ServeService, 50.0),
            Metric::ServeServiceP90 => pct(LatencyKind::ServeService, 90.0),
            Metric::ServeServiceP99 => pct(LatencyKind::ServeService, 99.0),
            Metric::ServeServiceMaxNs => r.latency(LatencyKind::ServeService).max() as f64,
            Metric::ServeSojournP50 => pct(LatencyKind::ServeSojourn, 50.0),
            Metric::ServeSojournP90 => pct(LatencyKind::ServeSojourn, 90.0),
            Metric::ServeSojournP99 => pct(LatencyKind::ServeSojourn, 99.0),
            Metric::ServeSojournMaxNs => r.latency(LatencyKind::ServeSojourn).max() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{GlobalStats, LocalStats};

    fn sample_report() -> StatsReport {
        let g = GlobalStats::new();
        let mut l = LocalStats::new();
        l.add(Event::Read, 80);
        l.add(Event::Write, 20);
        l.add(Event::OptConflictExplicit, 5);
        l.add(Event::OptConflictImplicit, 3);
        l.add(Event::PessUncontended, 6);
        l.add(Event::PessReentrant, 2);
        l.add(Event::CoordFanout, 2);
        l.add(Event::CoordFanoutPeers, 6);
        l.add(Event::RespondedExplicit, 4);
        l.add(Event::CoordBatchRequests, 8);
        l.merge_into(&g);
        g.record_latency(LatencyKind::CoordRoundtrip, 1000);
        g.record_latency(LatencyKind::CoordRoundtrip, 3000);
        g.report()
    }

    #[test]
    fn ratios_match_the_wrapper_methods() {
        let r = sample_report();
        assert_eq!(Metric::Accesses.eval(&r), 100.0);
        assert_eq!(Metric::ExplicitConflictRate.eval(&r), r.explicit_conflict_rate());
        assert_eq!(Metric::BatchOccupancy.eval(&r), r.batch_occupancy());
        assert_eq!(Metric::FanoutWidth.eval(&r), r.fanout_width());
        assert_eq!(Metric::PessReentrantPct.eval(&r), r.pess_reentrant_pct());
        assert_eq!(Metric::ExplicitConflictRate.eval(&r), 0.05);
        assert_eq!(Metric::BatchOccupancy.eval(&r), 2.0);
        assert_eq!(Metric::FanoutWidth.eval(&r), 3.0);
        assert_eq!(Metric::PessReentrantPct.eval(&r), 25.0);
    }

    #[test]
    fn latency_metrics_read_the_histograms() {
        let r = sample_report();
        // Samples 1000 and 3000 ns: p50 is bucket of 1000 (= [512, 1024)),
        // max is exact.
        assert_eq!(Metric::CoordRoundtripP50.eval(&r), 1023.0);
        assert_eq!(Metric::CoordRoundtripMaxNs.eval(&r), 3000.0);
        assert_eq!(Metric::MonitorAcquireP99.eval(&r), 0.0, "no samples -> 0");
    }

    #[test]
    fn every_metric_is_total_on_an_empty_report() {
        let r = GlobalStats::new().report();
        for m in Metric::ALL {
            assert_eq!(m.eval(&r), 0.0, "{}", m.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Metric::ALL.len());
    }
}
