//! Per-thread control state for the coordination protocol (§2.2, Figure 1).
//!
//! Each mutator thread owns a [`ThreadControl`] that other threads inspect
//! when they need to coordinate:
//!
//! * a **status word** encoding RUNNING/BLOCKED plus an *epoch*. A requester
//!   that finds the remote thread blocked coordinates **implicitly** by
//!   CASing the epoch forward; the remote thread observes the bump when it
//!   wakes. A requester that finds the thread running coordinates
//!   **explicitly** by enqueuing a request and spinning on a response token
//!   until the remote thread reaches a safe point;
//! * a **lock-free request queue** (Treiber-stack push, owner-side
//!   detach-and-reverse drain) with a `has_requests` flag so the safe point
//!   poll on the fast path is a single relaxed load and neither side ever
//!   blocks on a lock;
//! * a **release clock**, incremented at every program synchronization
//!   release operation and responding safe point. The hybrid dependence
//!   recorder (§4.2) reads remote threads' release clocks to name the source
//!   of a happens-before edge without communicating.
//!
//! The status word is the linchpin of instrumentation–access atomicity: a
//! thread publishes BLOCKED only at a blocking safe point (no access in
//! flight), so a successful implicit epoch CAS proves the remote thread
//! cannot be between its instrumentation and its access.

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::ids::ThreadId;

/// Condvar-based parking slot for a thread waiting on coordination — the
/// last rung of the adaptive backoff ladder (DESIGN.md §13). One thread
/// parks (the coordination requester); any thread notifies (a responder
/// completing one of the requester's tokens, or a peer enqueuing a request
/// *to* the parked thread so it wakes to act as a safe point).
///
/// The fast path of `notify` is a single atomic load: when nobody is parked
/// (the overwhelmingly common case — responders complete tokens against
/// spinning requesters), no lock is touched. The classic lost-wakeup race
/// (notify between the parker's last poll and its `parked` publication) is
/// *tolerated*, not closed: every park is bounded by a timeout the caller
/// keeps small (≤ ~1 ms), so a lost notify costs one park interval, never a
/// hang. That is also why `park` never needs a watchdog of its own.
#[derive(Debug, Default)]
pub struct Waker {
    /// Is a thread inside (or committed to entering) `park`?
    parked: AtomicBool,
    /// Pending-notify flag, protecting the condvar wait against a notify
    /// that lands between `parked` publication and the actual wait.
    state: Mutex<bool>,
    cv: Condvar,
}

impl Waker {
    /// Wake the parked thread, if any. Lock-free (one load) when nobody is
    /// parked.
    pub fn notify(&self) {
        if self.parked.load(Ordering::SeqCst) {
            let mut pending = self.state.lock();
            *pending = true;
            self.cv.notify_all();
        }
    }

    /// Park the calling thread for at most `timeout`, or until a notify
    /// arrives. Returns immediately if a notify raced ahead. Only one
    /// thread may park on a given `Waker` (it is a per-thread slot).
    pub fn park(&self, timeout: Duration) {
        self.parked.store(true, Ordering::SeqCst);
        {
            let mut pending = self.state.lock();
            if !*pending {
                self.cv.wait_for(&mut pending, timeout);
            }
            *pending = false;
        }
        self.parked.store(false, Ordering::SeqCst);
    }
}

/// Decoded value of the status word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadStatus {
    /// The thread is executing mutator code; coordinate explicitly.
    Running {
        /// Epoch at the time of the load.
        epoch: u64,
    },
    /// The thread is parked at a blocking safe point; coordinate implicitly.
    Blocked {
        /// Epoch at the time of the load; pass to
        /// [`ThreadControl::try_implicit`].
        epoch: u64,
    },
}

const BLOCKED_BIT: u64 = 1;

#[inline(always)]
fn encode(blocked: bool, epoch: u64) -> u64 {
    (epoch << 1) | u64::from(blocked)
}

#[inline(always)]
fn decode(word: u64) -> ThreadStatus {
    let epoch = word >> 1;
    if word & BLOCKED_BIT != 0 {
        ThreadStatus::Blocked { epoch }
    } else {
        ThreadStatus::Running { epoch }
    }
}

/// Shared token a requester spins on while the remote thread reaches a safe
/// point.
///
/// The responder publishes its release clock alongside the completion flag so
/// that recorders can name the response as an edge source without a second
/// roundtrip.
#[derive(Debug, Default)]
pub struct ResponseToken {
    done: AtomicBool,
    responder_clock: AtomicU64,
    /// The requester's parking slot, set when the requester's backoff ladder
    /// may escalate to a condvar park: `complete` notifies it so a parked
    /// requester wakes immediately instead of sleeping out its interval.
    waker: Option<Arc<Waker>>,
}

impl ResponseToken {
    /// Fresh pending token.
    pub fn new() -> Arc<Self> {
        Arc::new(ResponseToken::default())
    }

    /// Fresh pending token carrying the requester's parking slot, so the
    /// responder's `complete` wakes a parked requester.
    pub fn with_waker(waker: Arc<Waker>) -> Arc<Self> {
        Arc::new(ResponseToken {
            waker: Some(waker),
            ..ResponseToken::default()
        })
    }

    /// Responder side: publish the response. `responder_clock` is the
    /// responder's release clock *after* its responding-safe-point bump.
    pub fn complete(&self, responder_clock: u64) {
        self.responder_clock
            .store(responder_clock, Ordering::Relaxed);
        self.done.store(true, Ordering::Release);
        if let Some(w) = &self.waker {
            w.notify();
        }
    }

    /// Requester side: has the responder finished?
    #[inline]
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Requester side: the responder's clock at response time. Only
    /// meaningful once [`ResponseToken::is_done`] returned true.
    pub fn responder_clock(&self) -> u64 {
        self.responder_clock.load(Ordering::Relaxed)
    }
}

/// An explicit coordination request, delivered to the remote thread's queue.
#[derive(Clone, Debug)]
pub struct CoordRequest {
    /// The requesting thread.
    pub from: ThreadId,
    /// The object whose state the requester wants to change, if the request
    /// is about a specific object (conflicting/contended transitions). Lets
    /// speculation-based runtime support decide whether answering actually
    /// disturbs its in-flight region.
    pub obj: Option<crate::ids::ObjId>,
    /// Token the requester spins on.
    pub token: Arc<ResponseToken>,
}

/// Node of the lock-free request inbox. Allocated by the requester,
/// reclaimed by the draining owner (or by `Drop`).
struct InboxNode {
    req: CoordRequest,
    next: *mut InboxNode,
}

/// Cross-thread-visible control state of one mutator thread.
///
/// Cache-line-aligned (two lines, matching crossbeam's `CachePadded` on
/// x86_64, where adjacent-line prefetching makes 128 the effective
/// false-sharing granularity): neighboring threads' control blocks live in a
/// dense array in [`crate::runtime::Runtime`], and a requester spinning on
/// one thread's status word must not steal the line under another thread's
/// release-clock bumps.
///
/// # Request queue
///
/// The explicit-request inbox is a Treiber stack: requesters push with one
/// CAS, the owning thread detaches the whole list with one `swap` at a safe
/// point and reverses it to recover FIFO arrival order. No lock is ever
/// taken on either side.
#[derive(Debug)]
#[repr(align(128))]
pub struct ThreadControl {
    status: AtomicU64,
    has_requests: AtomicBool,
    detached: AtomicBool,
    inbox: AtomicPtr<InboxNode>,
    release_clock: AtomicU64,
    /// This thread's coordination parking slot (see [`Waker`]): it parks
    /// here when its fan-out backoff escalates past yielding, and peers
    /// enqueuing requests to it notify it so a parked thread still acts as
    /// a (slightly delayed) safe point.
    waker: Arc<Waker>,
}

impl Default for ThreadControl {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadControl {
    /// A control block in the RUNNING state with epoch 0 and clock 0.
    pub fn new() -> Self {
        ThreadControl {
            status: AtomicU64::new(encode(false, 0)),
            has_requests: AtomicBool::new(false),
            detached: AtomicBool::new(false),
            inbox: AtomicPtr::new(ptr::null_mut()),
            release_clock: AtomicU64::new(0),
            waker: Arc::new(Waker::default()),
        }
    }

    /// This thread's coordination parking slot. The owning thread parks on
    /// it; responders and requesters notify it through
    /// [`ResponseToken::with_waker`] / [`ThreadControl::enqueue_request`].
    #[inline]
    pub fn waker(&self) -> &Arc<Waker> {
        &self.waker
    }

    // --- Liveness ---

    /// Owning thread: mark this mutator permanently detached. Must be called
    /// *after* the final flush/clock bump and the BLOCKED publication, so
    /// that any thread observing the flag (SeqCst) also observes a release
    /// clock that dominates this thread's last access. Thread ids are never
    /// reused within a runtime, so the flag is monotonic.
    pub fn mark_detached(&self) {
        self.detached.store(true, Ordering::SeqCst);
    }

    /// Any thread: has this mutator detached for good? A detached peer can
    /// be dropped from coordination fan-outs without an epoch CAS: it is
    /// permanently blocked, never accesses again, and its release clock is
    /// final (modulo answering stale tokens, which only bumps it further).
    #[inline]
    pub fn is_detached(&self) -> bool {
        self.detached.load(Ordering::SeqCst)
    }

    // --- Status word ---

    /// Current status. SeqCst: status reads race with blocking publication
    /// and must totally order against request enqueues (see
    /// [`ThreadControl::enqueue_request`]).
    #[inline]
    pub fn status(&self) -> ThreadStatus {
        decode(self.status.load(Ordering::SeqCst))
    }

    /// Publish BLOCKED. Must only be called by the owning thread, at a
    /// blocking safe point, *after* it has reached a consistent state
    /// (lock buffer flushed). Returns the epoch at block time, to be passed
    /// to [`ThreadControl::return_to_running`].
    pub fn publish_blocked(&self) -> u64 {
        let word = self.status.load(Ordering::Relaxed);
        let ThreadStatus::Running { epoch } = decode(word) else {
            panic!("publish_blocked while already blocked");
        };
        self.status.store(encode(true, epoch), Ordering::SeqCst);
        epoch
    }

    /// Requester side: attempt implicit coordination against a thread
    /// observed blocked at `epoch`. Succeeds iff the thread is still blocked
    /// at that exact epoch; the epoch is advanced so the remote thread learns
    /// (on wake) that coordination happened. On failure the caller must
    /// re-read the status and retry the whole coordination protocol.
    pub fn try_implicit(&self, observed_epoch: u64) -> bool {
        self.status
            .compare_exchange(
                encode(true, observed_epoch),
                encode(true, observed_epoch + 1),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    /// Owning thread: return to RUNNING after a blocking safe point.
    /// Returns true if any implicit coordination happened while blocked.
    pub fn return_to_running(&self, block_epoch: u64) -> bool {
        loop {
            let word = self.status.load(Ordering::SeqCst);
            let ThreadStatus::Blocked { epoch } = decode(word) else {
                panic!("return_to_running while not blocked");
            };
            // CAS rather than store: an implicit epoch bump may race with us.
            if self
                .status
                .compare_exchange(word, encode(false, epoch), Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return epoch != block_epoch;
            }
        }
    }

    // --- Explicit request queue ---

    /// Requester side: enqueue an explicit request — one allocation plus one
    /// CAS, never a lock. The `has_requests` flag is set (SeqCst) after the
    /// push so the remote thread's cheap poll cannot miss it.
    ///
    /// Ordering: the push CAS is Release, so the node's contents (and
    /// everything the requester did before enqueuing) happen-before the
    /// owner's Acquire detach in [`ThreadControl::take_requests`]. The
    /// lost-wakeup race is closed by the *flag*, not the stack: flag-set
    /// (SeqCst, after push) vs. flag-clear (SeqCst, before detach) means a
    /// concurrently pushed request is either seen by the current drain or
    /// leaves the flag true for the next poll. A spuriously true flag over an
    /// already-drained stack only costs an empty detach.
    pub fn enqueue_request(&self, req: CoordRequest) {
        let node = Box::into_raw(Box::new(InboxNode {
            req,
            next: ptr::null_mut(),
        }));
        let mut head = self.inbox.load(Ordering::Relaxed);
        loop {
            // Safety: `node` is not yet published; we have exclusive access.
            unsafe { (*node).next = head };
            match self
                .inbox
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => head = actual,
            }
        }
        self.has_requests.store(true, Ordering::SeqCst);
        // Wake the owner if it parked mid-coordination: a parked requester
        // must still act as a safe point for *this* request (deadlock
        // freedom). One relaxed-ish load when nobody is parked.
        self.waker.notify();
    }

    /// Owning thread: single relaxed load, the entirety of the safe point
    /// poll fast path when no coordination is pending.
    #[inline(always)]
    pub fn has_pending_requests(&self) -> bool {
        self.has_requests.load(Ordering::Relaxed)
    }

    /// Owning thread: drain all pending requests without taking a lock —
    /// one `swap` detaches the whole stack, then the (thread-local) list is
    /// reversed to FIFO arrival order. Clears the flag before detaching, so
    /// a request enqueued concurrently is either drained now or re-flags for
    /// the next poll.
    pub fn take_requests(&self) -> Vec<CoordRequest> {
        let mut out = Vec::new();
        self.drain_requests_into(&mut out);
        out
    }

    /// [`ThreadControl::take_requests`] into a caller-provided buffer:
    /// appends the drained batch in FIFO arrival order without allocating,
    /// so responding safe points can reuse one scratch `Vec` per thread.
    pub fn drain_requests_into(&self, out: &mut Vec<CoordRequest>) {
        if !self.has_pending_requests() {
            return;
        }
        // Injected bug `late-has-requests-clear` (check-invariants builds
        // only): clearing the flag *after* the detach re-opens the lost-
        // wakeup race documented above — a request pushed between the swap
        // and the late clear is drained AND has its flag wiped, so the next
        // poll's fast path sees nothing even though the push already
        // happened-before a later enqueue the requester is spinning on.
        #[cfg(feature = "check-invariants")]
        let late_clear = crate::injected_bug("late-has-requests-clear");
        #[cfg(not(feature = "check-invariants"))]
        let late_clear = false;
        if !late_clear {
            self.has_requests.store(false, Ordering::SeqCst);
        }
        let mut head = self.inbox.swap(ptr::null_mut(), Ordering::Acquire);
        if late_clear {
            // Hold the race window open so the chaos harness can actually
            // land an enqueue inside it: a push arriving here is detached by
            // no one (we already swapped) and its flag is wiped below — the
            // request is stranded until some *later* enqueue re-flags.
            std::thread::sleep(std::time::Duration::from_micros(100));
            self.has_requests.store(false, Ordering::SeqCst);
        }
        let start = out.len();
        while !head.is_null() {
            // Safety: the swap made this list exclusively ours; nodes were
            // fully initialized before their Release publication.
            let node = unsafe { Box::from_raw(head) };
            head = node.next;
            out.push(node.req);
        }
        out[start..].reverse();
    }

    /// Any thread, **at quiescence only** (all mutators joined): is there a
    /// request in the inbox that the fast-path flag does not announce?
    ///
    /// While mutators run this is transiently true during every enqueue
    /// (the node is pushed before the flag is set), so it is meaningless as
    /// a runtime assertion — but once no enqueue can be in flight, a
    /// stranded request means a drain wiped the flag over a live node (the
    /// lost-wakeup race [`ThreadControl::take_requests`] exists to prevent):
    /// no future poll would ever have answered it. The checking harness
    /// scans for this after every run.
    pub fn has_stranded_requests(&self) -> bool {
        !self.inbox.load(Ordering::SeqCst).is_null()
            && !self.has_requests.load(Ordering::SeqCst)
    }

    // --- Release clock ---

    /// Owning thread: bump the release clock (at a PSRO or responding safe
    /// point). Release ordering: everything the thread did before the bump
    /// happens-before any observer that acquires the new value.
    pub fn bump_release_clock(&self) -> u64 {
        self.release_clock.fetch_add(1, Ordering::Release) + 1
    }

    /// Any thread: read the release clock (acquire).
    #[inline]
    pub fn release_clock(&self) -> u64 {
        self.release_clock.load(Ordering::Acquire)
    }
}

impl Drop for ThreadControl {
    fn drop(&mut self) {
        // Reclaim any requests that were never answered (e.g. a panicking
        // run tearing the runtime down mid-coordination).
        let mut head = *self.inbox.get_mut();
        while !head.is_null() {
            // Safety: &mut self means no concurrent pushers remain.
            let node = unsafe { Box::from_raw(head) };
            head = node.next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn status_roundtrip() {
        let c = ThreadControl::new();
        assert_eq!(c.status(), ThreadStatus::Running { epoch: 0 });
        let e = c.publish_blocked();
        assert_eq!(e, 0);
        assert_eq!(c.status(), ThreadStatus::Blocked { epoch: 0 });
        assert!(!c.return_to_running(e));
        assert_eq!(c.status(), ThreadStatus::Running { epoch: 0 });
    }

    #[test]
    fn implicit_coordination_bumps_epoch_and_is_observed() {
        let c = ThreadControl::new();
        let e = c.publish_blocked();
        assert!(c.try_implicit(e));
        assert_eq!(c.status(), ThreadStatus::Blocked { epoch: e + 1 });
        // A second implicit attempt with the stale epoch fails...
        assert!(!c.try_implicit(e));
        // ...but succeeds with the fresh one.
        assert!(c.try_implicit(e + 1));
        assert!(c.return_to_running(e), "wake must observe the bumps");
    }

    #[test]
    fn implicit_fails_against_running_thread() {
        let c = ThreadControl::new();
        assert!(!c.try_implicit(0));
    }

    #[test]
    #[should_panic(expected = "publish_blocked while already blocked")]
    fn double_block_panics() {
        let c = ThreadControl::new();
        c.publish_blocked();
        c.publish_blocked();
    }

    #[test]
    fn request_queue_flag_protocol() {
        let c = ThreadControl::new();
        assert!(!c.has_pending_requests());
        assert!(c.take_requests().is_empty());
        let tok = ResponseToken::new();
        c.enqueue_request(CoordRequest {
            from: ThreadId(1),
            obj: None,
            token: tok.clone(),
        });
        assert!(c.has_pending_requests());
        let reqs = c.take_requests();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].from, ThreadId(1));
        assert!(!c.has_pending_requests());
    }

    #[test]
    fn detached_flag_starts_clear_and_latches() {
        let c = ThreadControl::new();
        assert!(!c.is_detached());
        c.publish_blocked();
        c.mark_detached();
        assert!(c.is_detached());
        // The flag is independent of the status word's epoch games.
        assert!(c.try_implicit(0));
        assert!(c.is_detached());
    }

    #[test]
    fn drain_into_appends_fifo_after_existing_entries() {
        let c = ThreadControl::new();
        let mut out = vec![CoordRequest {
            from: ThreadId(9),
            obj: None,
            token: ResponseToken::new(),
        }];
        for i in 0..3 {
            c.enqueue_request(CoordRequest {
                from: ThreadId(i),
                obj: None,
                token: ResponseToken::new(),
            });
        }
        c.drain_requests_into(&mut out);
        let froms: Vec<u16> = out.iter().map(|r| r.from.0).collect();
        assert_eq!(froms, vec![9, 0, 1, 2], "existing entries kept, batch FIFO");
        assert!(!c.has_pending_requests());
        // Draining an empty inbox is a no-op on the buffer.
        c.drain_requests_into(&mut out);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn response_token_carries_clock() {
        let tok = ResponseToken::new();
        assert!(!tok.is_done());
        tok.complete(42);
        assert!(tok.is_done());
        assert_eq!(tok.responder_clock(), 42);
    }

    #[test]
    fn release_clock_is_monotonic() {
        let c = ThreadControl::new();
        assert_eq!(c.release_clock(), 0);
        assert_eq!(c.bump_release_clock(), 1);
        assert_eq!(c.bump_release_clock(), 2);
        assert_eq!(c.release_clock(), 2);
    }

    #[test]
    fn drain_preserves_single_producer_fifo_order() {
        let c = ThreadControl::new();
        for i in 0..10 {
            c.enqueue_request(CoordRequest {
                from: ThreadId(i),
                obj: Some(crate::ids::ObjId(u32::from(i))),
                token: ResponseToken::new(),
            });
        }
        let reqs = c.take_requests();
        let froms: Vec<u16> = reqs.iter().map(|r| r.from.0).collect();
        assert_eq!(froms, (0..10).collect::<Vec<u16>>());
    }

    #[test]
    fn drop_reclaims_unanswered_requests() {
        let tok = ResponseToken::new();
        {
            let c = ThreadControl::new();
            for _ in 0..4 {
                c.enqueue_request(CoordRequest {
                    from: ThreadId(0),
                    obj: None,
                    token: tok.clone(),
                });
            }
            // c dropped with a non-empty inbox.
        }
        // All queue-held Arcs were released by the drop.
        assert_eq!(std::sync::Arc::strong_count(&tok), 1);
    }

    #[test]
    fn token_completion_wakes_a_parked_requester() {
        let waker = Arc::new(Waker::default());
        let tok = ResponseToken::with_waker(waker.clone());
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            let tok2 = tok.clone();
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                tok2.complete(7);
            });
            // Generous timeout: the notify, not the timeout, should end it.
            while !tok.is_done() {
                waker.park(Duration::from_secs(5));
            }
        });
        assert!(tok.is_done());
        assert_eq!(tok.responder_clock(), 7);
        assert!(
            t0.elapsed() < Duration::from_secs(4),
            "park must be ended by the notify, not the timeout"
        );
    }

    #[test]
    fn park_times_out_without_a_notify() {
        let waker = Waker::default();
        let t0 = std::time::Instant::now();
        waker.park(Duration::from_millis(10));
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn notify_before_park_is_not_lost() {
        let waker = Waker::default();
        // Pre-notify while "parked" is being published: simulate the benign
        // race by setting parked first, then notifying, then parking.
        waker.parked.store(true, Ordering::SeqCst);
        waker.notify();
        let t0 = std::time::Instant::now();
        waker.park(Duration::from_secs(5));
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "a pending notify must make park return immediately"
        );
    }

    #[test]
    fn enqueue_request_notifies_the_owners_waker() {
        let c = Arc::new(ThreadControl::new());
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            let c2 = c.clone();
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                c2.enqueue_request(CoordRequest {
                    from: ThreadId(1),
                    obj: None,
                    token: ResponseToken::new(),
                });
            });
            while !c.has_pending_requests() {
                c.waker().park(Duration::from_secs(5));
            }
        });
        assert_eq!(c.take_requests().len(), 1);
        assert!(t0.elapsed() < Duration::from_secs(4), "woken by the enqueue");
    }

    #[test]
    fn control_block_is_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<ThreadControl>(), 128);
        assert!(std::mem::size_of::<ThreadControl>() >= 128);
    }

    #[test]
    fn concurrent_enqueue_never_loses_requests() {
        let c = std::sync::Arc::new(ThreadControl::new());
        let drained = std::sync::Arc::new(AtomicUsize::new(0));
        const PER_THREAD: usize = 1_000;
        const THREADS: usize = 4;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        c.enqueue_request(CoordRequest {
                            from: ThreadId(t as u16),
                            obj: None,
                            token: ResponseToken::new(),
                        });
                    }
                });
            }
            let c2 = c.clone();
            let drained2 = drained.clone();
            s.spawn(move || {
                let mut seen = 0;
                let mut spin = crate::spin::Spin::new("drain all requests");
                while seen < PER_THREAD * THREADS {
                    let got = c2.take_requests().len();
                    if got == 0 {
                        spin.spin();
                    }
                    seen += got;
                }
                drained2.store(seen, Ordering::Relaxed);
            });
        });
        assert_eq!(
            drained.load(Ordering::Relaxed) + c.take_requests().len(),
            PER_THREAD * THREADS
        );
    }
}
