//! Per-thread control state for the coordination protocol (§2.2, Figure 1).
//!
//! Each mutator thread owns a [`ThreadControl`] that other threads inspect
//! when they need to coordinate:
//!
//! * a **status word** encoding RUNNING/BLOCKED plus an *epoch*. A requester
//!   that finds the remote thread blocked coordinates **implicitly** by
//!   CASing the epoch forward; the remote thread observes the bump when it
//!   wakes. A requester that finds the thread running coordinates
//!   **explicitly** by enqueuing a request and spinning on a response token
//!   until the remote thread reaches a safe point;
//! * a **request queue** with a lock-free `has_requests` flag so the safe
//!   point poll on the fast path is a single relaxed load;
//! * a **release clock**, incremented at every program synchronization
//!   release operation and responding safe point. The hybrid dependence
//!   recorder (§4.2) reads remote threads' release clocks to name the source
//!   of a happens-before edge without communicating.
//!
//! The status word is the linchpin of instrumentation–access atomicity: a
//! thread publishes BLOCKED only at a blocking safe point (no access in
//! flight), so a successful implicit epoch CAS proves the remote thread
//! cannot be between its instrumentation and its access.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::ids::ThreadId;

/// Decoded value of the status word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadStatus {
    /// The thread is executing mutator code; coordinate explicitly.
    Running {
        /// Epoch at the time of the load.
        epoch: u64,
    },
    /// The thread is parked at a blocking safe point; coordinate implicitly.
    Blocked {
        /// Epoch at the time of the load; pass to
        /// [`ThreadControl::try_implicit`].
        epoch: u64,
    },
}

const BLOCKED_BIT: u64 = 1;

#[inline(always)]
fn encode(blocked: bool, epoch: u64) -> u64 {
    (epoch << 1) | u64::from(blocked)
}

#[inline(always)]
fn decode(word: u64) -> ThreadStatus {
    let epoch = word >> 1;
    if word & BLOCKED_BIT != 0 {
        ThreadStatus::Blocked { epoch }
    } else {
        ThreadStatus::Running { epoch }
    }
}

/// Shared token a requester spins on while the remote thread reaches a safe
/// point.
///
/// The responder publishes its release clock alongside the completion flag so
/// that recorders can name the response as an edge source without a second
/// roundtrip.
#[derive(Debug, Default)]
pub struct ResponseToken {
    done: AtomicBool,
    responder_clock: AtomicU64,
}

impl ResponseToken {
    /// Fresh pending token.
    pub fn new() -> Arc<Self> {
        Arc::new(ResponseToken::default())
    }

    /// Responder side: publish the response. `responder_clock` is the
    /// responder's release clock *after* its responding-safe-point bump.
    pub fn complete(&self, responder_clock: u64) {
        self.responder_clock
            .store(responder_clock, Ordering::Relaxed);
        self.done.store(true, Ordering::Release);
    }

    /// Requester side: has the responder finished?
    #[inline]
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Requester side: the responder's clock at response time. Only
    /// meaningful once [`ResponseToken::is_done`] returned true.
    pub fn responder_clock(&self) -> u64 {
        self.responder_clock.load(Ordering::Relaxed)
    }
}

/// An explicit coordination request, delivered to the remote thread's queue.
#[derive(Clone, Debug)]
pub struct CoordRequest {
    /// The requesting thread.
    pub from: ThreadId,
    /// The object whose state the requester wants to change, if the request
    /// is about a specific object (conflicting/contended transitions). Lets
    /// speculation-based runtime support decide whether answering actually
    /// disturbs its in-flight region.
    pub obj: Option<crate::ids::ObjId>,
    /// Token the requester spins on.
    pub token: Arc<ResponseToken>,
}

/// Cross-thread-visible control state of one mutator thread.
#[derive(Debug)]
pub struct ThreadControl {
    status: AtomicU64,
    has_requests: AtomicBool,
    requests: Mutex<VecDeque<CoordRequest>>,
    release_clock: AtomicU64,
}

impl Default for ThreadControl {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadControl {
    /// A control block in the RUNNING state with epoch 0 and clock 0.
    pub fn new() -> Self {
        ThreadControl {
            status: AtomicU64::new(encode(false, 0)),
            has_requests: AtomicBool::new(false),
            requests: Mutex::new(VecDeque::new()),
            release_clock: AtomicU64::new(0),
        }
    }

    // --- Status word ---

    /// Current status. SeqCst: status reads race with blocking publication
    /// and must totally order against request enqueues (see
    /// [`ThreadControl::enqueue_request`]).
    #[inline]
    pub fn status(&self) -> ThreadStatus {
        decode(self.status.load(Ordering::SeqCst))
    }

    /// Publish BLOCKED. Must only be called by the owning thread, at a
    /// blocking safe point, *after* it has reached a consistent state
    /// (lock buffer flushed). Returns the epoch at block time, to be passed
    /// to [`ThreadControl::return_to_running`].
    pub fn publish_blocked(&self) -> u64 {
        let word = self.status.load(Ordering::Relaxed);
        let ThreadStatus::Running { epoch } = decode(word) else {
            panic!("publish_blocked while already blocked");
        };
        self.status.store(encode(true, epoch), Ordering::SeqCst);
        epoch
    }

    /// Requester side: attempt implicit coordination against a thread
    /// observed blocked at `epoch`. Succeeds iff the thread is still blocked
    /// at that exact epoch; the epoch is advanced so the remote thread learns
    /// (on wake) that coordination happened. On failure the caller must
    /// re-read the status and retry the whole coordination protocol.
    pub fn try_implicit(&self, observed_epoch: u64) -> bool {
        self.status
            .compare_exchange(
                encode(true, observed_epoch),
                encode(true, observed_epoch + 1),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    /// Owning thread: return to RUNNING after a blocking safe point.
    /// Returns true if any implicit coordination happened while blocked.
    pub fn return_to_running(&self, block_epoch: u64) -> bool {
        loop {
            let word = self.status.load(Ordering::SeqCst);
            let ThreadStatus::Blocked { epoch } = decode(word) else {
                panic!("return_to_running while not blocked");
            };
            // CAS rather than store: an implicit epoch bump may race with us.
            if self
                .status
                .compare_exchange(word, encode(false, epoch), Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return epoch != block_epoch;
            }
        }
    }

    // --- Explicit request queue ---

    /// Requester side: enqueue an explicit request. The `has_requests` flag
    /// is set (SeqCst) after the push so the remote thread's cheap poll
    /// cannot miss it.
    pub fn enqueue_request(&self, req: CoordRequest) {
        self.requests.lock().push_back(req);
        self.has_requests.store(true, Ordering::SeqCst);
    }

    /// Owning thread: single relaxed load, the entirety of the safe point
    /// poll fast path when no coordination is pending.
    #[inline(always)]
    pub fn has_pending_requests(&self) -> bool {
        self.has_requests.load(Ordering::Relaxed)
    }

    /// Owning thread: drain all pending requests. Clears the flag before
    /// draining, so a request enqueued concurrently is either drained now or
    /// re-flags for the next poll.
    pub fn take_requests(&self) -> Vec<CoordRequest> {
        if !self.has_pending_requests() {
            return Vec::new();
        }
        self.has_requests.store(false, Ordering::SeqCst);
        let mut q = self.requests.lock();
        q.drain(..).collect()
    }

    // --- Release clock ---

    /// Owning thread: bump the release clock (at a PSRO or responding safe
    /// point). Release ordering: everything the thread did before the bump
    /// happens-before any observer that acquires the new value.
    pub fn bump_release_clock(&self) -> u64 {
        self.release_clock.fetch_add(1, Ordering::Release) + 1
    }

    /// Any thread: read the release clock (acquire).
    #[inline]
    pub fn release_clock(&self) -> u64 {
        self.release_clock.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn status_roundtrip() {
        let c = ThreadControl::new();
        assert_eq!(c.status(), ThreadStatus::Running { epoch: 0 });
        let e = c.publish_blocked();
        assert_eq!(e, 0);
        assert_eq!(c.status(), ThreadStatus::Blocked { epoch: 0 });
        assert!(!c.return_to_running(e));
        assert_eq!(c.status(), ThreadStatus::Running { epoch: 0 });
    }

    #[test]
    fn implicit_coordination_bumps_epoch_and_is_observed() {
        let c = ThreadControl::new();
        let e = c.publish_blocked();
        assert!(c.try_implicit(e));
        assert_eq!(c.status(), ThreadStatus::Blocked { epoch: e + 1 });
        // A second implicit attempt with the stale epoch fails...
        assert!(!c.try_implicit(e));
        // ...but succeeds with the fresh one.
        assert!(c.try_implicit(e + 1));
        assert!(c.return_to_running(e), "wake must observe the bumps");
    }

    #[test]
    fn implicit_fails_against_running_thread() {
        let c = ThreadControl::new();
        assert!(!c.try_implicit(0));
    }

    #[test]
    #[should_panic(expected = "publish_blocked while already blocked")]
    fn double_block_panics() {
        let c = ThreadControl::new();
        c.publish_blocked();
        c.publish_blocked();
    }

    #[test]
    fn request_queue_flag_protocol() {
        let c = ThreadControl::new();
        assert!(!c.has_pending_requests());
        assert!(c.take_requests().is_empty());
        let tok = ResponseToken::new();
        c.enqueue_request(CoordRequest {
            from: ThreadId(1),
            obj: None,
            token: tok.clone(),
        });
        assert!(c.has_pending_requests());
        let reqs = c.take_requests();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].from, ThreadId(1));
        assert!(!c.has_pending_requests());
    }

    #[test]
    fn response_token_carries_clock() {
        let tok = ResponseToken::new();
        assert!(!tok.is_done());
        tok.complete(42);
        assert!(tok.is_done());
        assert_eq!(tok.responder_clock(), 42);
    }

    #[test]
    fn release_clock_is_monotonic() {
        let c = ThreadControl::new();
        assert_eq!(c.release_clock(), 0);
        assert_eq!(c.bump_release_clock(), 1);
        assert_eq!(c.bump_release_clock(), 2);
        assert_eq!(c.release_clock(), 2);
    }

    #[test]
    fn concurrent_enqueue_never_loses_requests() {
        let c = std::sync::Arc::new(ThreadControl::new());
        let drained = std::sync::Arc::new(AtomicUsize::new(0));
        const PER_THREAD: usize = 1_000;
        const THREADS: usize = 4;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        c.enqueue_request(CoordRequest {
                            from: ThreadId(t as u16),
                            obj: None,
                            token: ResponseToken::new(),
                        });
                    }
                });
            }
            let c2 = c.clone();
            let drained2 = drained.clone();
            s.spawn(move || {
                let mut seen = 0;
                let mut spin = crate::spin::Spin::new("drain all requests");
                while seen < PER_THREAD * THREADS {
                    let got = c2.take_requests().len();
                    if got == 0 {
                        spin.spin();
                    }
                    seen += got;
                }
                drained2.store(seen, Ordering::Relaxed);
            });
        });
        assert_eq!(
            drained.load(Ordering::Relaxed) + c.take_requests().len(),
            PER_THREAD * THREADS
        );
    }
}
