//! The runtime registry: threads, heap, monitors, global counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use std::sync::Arc;

use crate::control::ThreadControl;
use crate::heap::Heap;
use crate::ids::{MonitorId, ObjId, ThreadId};
use crate::monitor::{AcquireInfo, Monitor};
use crate::registry::{Registry, ShardMap};
use crate::stats::{GlobalStats, LatencyKind};
use crate::trace::{RingTraceSink, TraceKind, TraceSink, TraceSnapshot};
use crate::{RtHooks, SchedHooks, SchedPoint};

/// Sizing and tuning knobs for one [`Runtime`] instance.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Maximum number of mutator threads that may register.
    pub max_threads: usize,
    /// Number of tracked objects in the heap.
    pub heap_objects: usize,
    /// Number of program monitors.
    pub monitors: usize,
    /// Watchdog budget for every spin loop (coordination waits, replay
    /// waits). Zero disables the watchdog.
    pub spin_budget: Duration,
    /// Iterations a contended monitor acquire spins (polling safe points as
    /// a RUNNING thread, like a JVM thin lock) before parking. Affects how
    /// often coordination against lock waiters is explicit vs. implicit.
    pub monitor_spin_iters: u32,
    /// Recoverable deadline for coordination waits (explicit roundtrips and
    /// fan-outs). Zero (the default) disables it: coordination waits are
    /// then bounded only by the hard-panic `spin_budget` watchdog. Non-zero
    /// turns an expired coordination wait into a clean `CoordDeadlineExceeded`
    /// fallback — the requester abandons the roundtrip, demotes the object
    /// to the pessimistic protocol, and retries — instead of a process
    /// panic. Unlike `spin_budget` this is *not* overridden by
    /// `DRINK_SPIN_BUDGET_MS`: the env var bounds hangs, and a deadline that
    /// expires cleanly is not a hang.
    pub coord_deadline: Duration,
    /// Pad each object header to its own 64-byte cache line so neighboring
    /// objects' state-word CASes stop false-sharing. Off by default: the
    /// compact layout is the seed layout the paper-comparison numbers use.
    /// The layout is fully encapsulated in [`crate::heap::Heap`]; flipping
    /// this never requires engine-code changes.
    pub padded_headers: bool,
    /// Per-thread trace ring capacity (events). `0` (the default) disables
    /// tracing entirely: no sink is installed and every trace site reduces
    /// to one branch. Non-zero auto-installs a [`RingTraceSink`] holding the
    /// last `trace_capacity` events per thread.
    pub trace_capacity: usize,
    /// Number of registry/monitor-table shards (rounded up to a power of
    /// two). `0` (the default) means auto: `next_pow2(max_threads / 8)` —
    /// one shard per 8 threads, so ≤8-thread configurations keep the flat
    /// single-shard layout. The same mapping indexes the heap's per-object
    /// access-epoch table, which lets fan-outs skip shards whose threads
    /// provably never touched the object (DESIGN.md §14).
    pub shards: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            max_threads: 64,
            heap_objects: 1024,
            monitors: 16,
            spin_budget: crate::spin::DEFAULT_BUDGET,
            monitor_spin_iters: 300,
            coord_deadline: Duration::ZERO,
            padded_headers: false,
            trace_capacity: 0,
            shards: 0,
        }
    }
}

impl RuntimeConfig {
    /// Start building a config from the defaults. The builder is the one
    /// supported construction path; every knob has a typed setter, so adding
    /// a field never breaks call sites the way struct literals did.
    pub fn builder() -> RuntimeConfigBuilder {
        RuntimeConfigBuilder { config: RuntimeConfig::default() }
    }

    /// The thread-shard mapping this config resolves to (`shards` rounded to
    /// a power of two, or the `next_pow2(max_threads / 8)` auto default).
    pub fn shard_map(&self) -> ShardMap {
        if self.shards == 0 {
            ShardMap::auto(self.max_threads)
        } else {
            ShardMap::new(self.shards)
        }
    }
}

/// Builder for [`RuntimeConfig`]; see [`RuntimeConfig::builder`].
#[derive(Clone, Debug)]
pub struct RuntimeConfigBuilder {
    config: RuntimeConfig,
}

impl RuntimeConfigBuilder {
    /// Maximum number of mutator threads that may register.
    pub fn max_threads(mut self, n: usize) -> Self {
        self.config.max_threads = n;
        self
    }

    /// Number of tracked objects in the heap.
    pub fn heap_objects(mut self, n: usize) -> Self {
        self.config.heap_objects = n;
        self
    }

    /// Number of program monitors.
    pub fn monitors(mut self, n: usize) -> Self {
        self.config.monitors = n;
        self
    }

    /// Watchdog budget for every spin loop; zero disables the watchdog.
    pub fn spin_budget(mut self, budget: Duration) -> Self {
        self.config.spin_budget = budget;
        self
    }

    /// Iterations a contended monitor acquire spins before parking.
    pub fn monitor_spin_iters(mut self, iters: u32) -> Self {
        self.config.monitor_spin_iters = iters;
        self
    }

    /// Recoverable deadline for coordination waits; zero disables it (the
    /// default — only the hard-panic watchdog bounds coordination then).
    pub fn coord_deadline(mut self, deadline: Duration) -> Self {
        self.config.coord_deadline = deadline;
        self
    }

    /// Pad each object header to its own cache line.
    pub fn padded_headers(mut self, padded: bool) -> Self {
        self.config.padded_headers = padded;
        self
    }

    /// Per-thread trace ring capacity; non-zero enables tracing.
    pub fn trace_capacity(mut self, events: usize) -> Self {
        self.config.trace_capacity = events;
        self
    }

    /// Number of registry/monitor/epoch-table shards; `0` (the default)
    /// derives `next_pow2(max_threads / 8)`.
    pub fn shards(mut self, n: usize) -> Self {
        self.config.shards = n;
        self
    }

    /// Finish, yielding the config.
    pub fn build(self) -> RuntimeConfig {
        self.config
    }
}

/// One execution environment: a thread registry, a tracked heap, a monitor
/// table, the global RdSh counter, and aggregate statistics.
///
/// A `Runtime` is created per measured run and shared across mutators by
/// reference (workload drivers use scoped threads).
#[derive(Debug)]
pub struct Runtime {
    config: RuntimeConfig,
    /// Sharded thread-control and monitor tables (see [`crate::registry`]).
    registry: Registry,
    heap: Heap,
    /// The paper's monotonically increasing global counter `gRdShCount`
    /// (Table 1 footnote): upgrading transitions to RdSh take their counter
    /// value `c` from here.
    g_rdsh_count: AtomicU64,
    stats: GlobalStats,
    /// Optional schedule-perturbation layer (crate `drink-check`). `None` in
    /// production runs; every perturbation site reduces to one branch.
    sched: Option<Arc<dyn SchedHooks>>,
    /// Optional event-trace sink (`drink-trace`, [`crate::trace`]). `None`
    /// keeps every trace site a single never-taken branch.
    sink: Option<Arc<dyn TraceSink>>,
}

impl Runtime {
    /// Build a runtime per `config`.
    pub fn new(config: RuntimeConfig) -> Self {
        assert!(config.max_threads <= ThreadId::MAX, "too many threads");
        let map = config.shard_map();
        let registry = Registry::new(config.max_threads, config.monitors, map);
        let heap = Heap::with_shards(config.heap_objects, config.padded_headers, map);
        let sink: Option<Arc<dyn TraceSink>> = (config.trace_capacity > 0)
            .then(|| {
                Arc::new(RingTraceSink::new(config.max_threads, config.trace_capacity))
                    as Arc<dyn TraceSink>
            });
        Runtime {
            config,
            registry,
            heap,
            // Start at 1 so that counter value 0 can mean "no RdSh epoch".
            g_rdsh_count: AtomicU64::new(1),
            stats: GlobalStats::new(),
            sched: None,
            sink,
        }
    }

    /// Register a schedule-perturbation layer. Must be called before the
    /// runtime is shared (it takes `&mut self`); the harness does this right
    /// after construction, before wrapping the runtime in an `Arc`.
    pub fn set_sched_hooks(&mut self, sched: Arc<dyn SchedHooks>) {
        self.sched = Some(sched);
    }

    /// Install (or replace) the event-trace sink. Like
    /// [`Runtime::set_sched_hooks`] this takes `&mut self`: callers that need
    /// the sink to outlive the runtime (the chaos harness keeps its `Arc`
    /// across a `catch_unwind` so a crashed run's last events survive) clone
    /// the `Arc` before handing it over.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Whether a trace sink is installed (tracing on).
    pub fn tracing_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Record protocol event `kind` for thread `t`. With no sink installed
    /// this is one pointer test; with the ring sink it is three relaxed
    /// stores and a release store, never an allocation.
    #[inline(always)]
    pub fn trace(&self, t: ThreadId, kind: TraceKind, arg: u64) {
        if let Some(sink) = &self.sink {
            sink.record(t, kind, arg);
        }
    }

    /// Snapshot every thread's recent events, or `None` when tracing is off.
    pub fn trace_snapshot(&self) -> Option<TraceSnapshot> {
        self.sink.as_ref().map(|s| s.snapshot())
    }

    /// Report that thread `t` reached schedule-relevant point `point`,
    /// letting the registered [`SchedHooks`] layer (if any) delay it.
    #[inline]
    pub fn sched_point(&self, t: ThreadId, point: SchedPoint) {
        if let Some(sched) = &self.sched {
            sched.perturb(t, point);
        }
    }

    /// The configuration this runtime was built with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Register the calling thread as a mutator; ids are dense and assigned
    /// in registration order. Panics if `max_threads` is exceeded. The
    /// registration bump is `Release`, pairing with the `Acquire` load in
    /// [`Runtime::registered_threads`] (see [`Registry::register`]).
    pub fn register_thread(&self) -> ThreadId {
        self.registry.register()
    }

    /// Number of threads registered so far (`Acquire`; pairs with the
    /// `Release` registration bump so a fan-out snapshot that observes a new
    /// count also observes whatever the registrant published beforehand).
    pub fn registered_threads(&self) -> usize {
        self.registry.registered()
    }

    /// Control block of thread `t`.
    #[inline(always)]
    pub fn control(&self, t: ThreadId) -> &ThreadControl {
        self.registry.control(t)
    }

    /// All registered control blocks in dense id order (coordination with
    /// "every other thread" for RdSh conflicts iterates registered threads
    /// only). The storage is sharded, so this is an iterator rather than a
    /// contiguous slice.
    pub fn controls(&self) -> impl Iterator<Item = &ThreadControl> + '_ {
        self.registry.controls()
    }

    /// The thread-shard mapping shared by the registry, the monitor table
    /// and the heap's access-epoch table.
    #[inline(always)]
    pub fn shard_map(&self) -> ShardMap {
        self.registry.shard_map()
    }

    /// The registry shard thread `t` belongs to.
    #[inline(always)]
    pub fn thread_shard(&self, t: ThreadId) -> usize {
        self.registry.shard_map().shard_of(t.index())
    }

    /// Stamp object `o`'s access epoch for thread `t`'s shard (shorthand
    /// for `heap().stamp_access(o, thread_shard(t))`; see DESIGN.md §14).
    #[inline(always)]
    pub fn stamp_access(&self, t: ThreadId, o: ObjId) {
        self.heap.stamp_access(o, self.thread_shard(t));
    }

    /// The tracked heap.
    #[inline(always)]
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// The object with id `o` (shorthand for `heap().obj(o)`).
    #[inline(always)]
    pub fn obj(&self, o: ObjId) -> &crate::heap::ObjHeader {
        self.heap.obj(o)
    }

    /// The monitor with id `m`.
    #[inline(always)]
    pub fn monitor(&self, m: MonitorId) -> &Monitor {
        self.registry.monitor(m)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &GlobalStats {
        &self.stats
    }

    /// Claim the next RdSh counter value (the paper's `gRdShCount`).
    /// AcqRel: the RMW chain on this counter is what orders RdSh epoch
    /// creations, which Octet's fence transitions (and the recorder's epoch
    /// chain) rely on.
    #[inline]
    pub fn next_rdsh_count(&self) -> u64 {
        self.g_rdsh_count.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Current RdSh counter value without claiming.
    pub fn current_rdsh_count(&self) -> u64 {
        self.g_rdsh_count.load(Ordering::Relaxed)
    }

    // --- Monitor convenience wrappers ---

    /// Acquire monitor `m` for thread `t` (see [`Monitor::acquire`]). Feeds
    /// the acquire-latency histogram and the event trace; with neither
    /// enabled the extra cost is two clock reads on a path that already
    /// spins or parks.
    pub fn monitor_acquire<H: RtHooks>(&self, m: MonitorId, t: ThreadId, hooks: &H) -> AcquireInfo {
        let t0 = Instant::now();
        let info = self
            .monitor(m)
            .acquire(t, self.control(t), hooks, self.config.monitor_spin_iters);
        self.stats
            .record_latency(LatencyKind::MonitorAcquire, t0.elapsed().as_nanos() as u64);
        let kind = if info.blocked {
            TraceKind::MonitorAcquireBlocked
        } else {
            TraceKind::MonitorAcquireFast
        };
        self.trace(t, kind, m.index() as u64);
        info
    }

    /// Release monitor `m` (see [`Monitor::release`]).
    pub fn monitor_release<H: RtHooks>(&self, m: MonitorId, t: ThreadId, hooks: &H) {
        self.trace(t, TraceKind::MonitorRelease, m.index() as u64);
        self.monitor(m).release(t, self.control(t), hooks)
    }

    /// Wait on monitor `m` (see [`Monitor::wait`]).
    pub fn monitor_wait<H: RtHooks>(&self, m: MonitorId, t: ThreadId, hooks: &H) -> AcquireInfo {
        self.trace(t, TraceKind::MonitorWait, m.index() as u64);
        self.monitor(m).wait(t, self.control(t), hooks)
    }

    /// Notify all waiters of monitor `m`.
    pub fn monitor_notify_all(&self, m: MonitorId) {
        self.monitor(m).notify_all()
    }

    /// Notify all waiters of monitor `m`, attributing the notify to thread
    /// `t` so a perturbation layer can delay it inside the notify window
    /// (the classic lost-wakeup race is notify-before-park).
    pub fn monitor_notify_all_from(&self, m: MonitorId, t: ThreadId) {
        self.sched_point(t, SchedPoint::MonitorNotify);
        self.monitor(m).notify_all()
    }

    /// Run an arbitrary blocking operation (thread join, I/O stand-in, timed
    /// sleep) as a blocking safe point: flush → publish BLOCKED → respond to
    /// raced requests → run `f` → return to RUNNING. Returns `f`'s result and
    /// whether implicit coordination occurred while blocked.
    pub fn blocking<H: RtHooks, R>(&self, t: ThreadId, hooks: &H, f: impl FnOnce() -> R) -> (R, bool) {
        hooks.before_block(t);
        hooks.sched_point(t, SchedPoint::BlockedPublish);
        let epoch = self.control(t).publish_blocked();
        hooks.on_blocked_publish(t);
        let r = f();
        let bumped = self.control(t).return_to_running(epoch);
        hooks.after_unblock(t, bumped);
        (r, bumped)
    }

    /// A watchdog spinner configured with this runtime's spin budget.
    pub fn spinner(&self, what: &'static str) -> crate::spin::Spin<'_> {
        crate::spin::Spin::with_budget(what, self.config.spin_budget)
    }

    /// The configured coordination deadline, or `None` when disabled. The
    /// coordination layer consults this to decide between a recoverable
    /// deadline wait ([`crate::spin::Spin::checked_spin`]) and the
    /// hard-panic watchdog.
    #[inline]
    pub fn coord_deadline(&self) -> Option<Duration> {
        (!self.config.coord_deadline.is_zero()).then_some(self.config.coord_deadline)
    }

    /// Like [`Runtime::spinner`], but with the registered perturbation layer
    /// (if any) attached so each backoff step of thread `t` can be delayed.
    pub fn spinner_for(&self, t: ThreadId, what: &'static str) -> crate::spin::Spin<'_> {
        let spin = self.spinner(what);
        match &self.sched {
            Some(sched) => spin.with_sched(&**sched, t),
            None => spin,
        }
    }

    /// A spinner for a *recoverable* coordination-deadline wait: the exact
    /// `budget` is used (a `DRINK_SPIN_BUDGET_MS` override bounds hangs, not
    /// clean deadline expiries), and the perturbation layer (if any) is
    /// attached. The caller drives it with
    /// [`crate::spin::Spin::checked_spin`] and handles
    /// [`crate::spin::SpinOutcome::Expired`] instead of panicking.
    pub fn deadline_spinner_for(
        &self,
        t: ThreadId,
        what: &'static str,
        budget: Duration,
    ) -> crate::spin::Spin<'_> {
        let spin = crate::spin::Spin::with_exact_budget(what, budget);
        match &self.sched {
            Some(sched) => spin.with_sched(&**sched, t),
            None => spin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoHooks;

    fn cfg(max_threads: usize, heap_objects: usize, monitors: usize) -> RuntimeConfig {
        RuntimeConfig::builder()
            .max_threads(max_threads)
            .heap_objects(heap_objects)
            .monitors(monitors)
            .build()
    }

    #[test]
    fn registration_is_dense() {
        let rt = Runtime::new(cfg(4, 8, 2));
        assert_eq!(rt.register_thread(), ThreadId(0));
        assert_eq!(rt.register_thread(), ThreadId(1));
        assert_eq!(rt.registered_threads(), 2);
        assert_eq!(rt.controls().count(), 2);
    }

    #[test]
    #[should_panic(expected = "thread registry full")]
    fn registry_overflow_panics() {
        let rt = Runtime::new(cfg(1, 1, 1));
        rt.register_thread();
        rt.register_thread();
    }

    #[test]
    fn builder_sets_every_knob_and_sized_alias_matches() {
        let built = RuntimeConfig::builder()
            .max_threads(5)
            .heap_objects(77)
            .monitors(3)
            .spin_budget(Duration::from_millis(123))
            .monitor_spin_iters(9)
            .coord_deadline(Duration::from_millis(45))
            .padded_headers(true)
            .trace_capacity(64)
            .shards(3)
            .build();
        assert_eq!(built.max_threads, 5);
        assert_eq!(built.heap_objects, 77);
        assert_eq!(built.monitors, 3);
        assert_eq!(built.spin_budget, Duration::from_millis(123));
        assert_eq!(built.monitor_spin_iters, 9);
        assert_eq!(built.coord_deadline, Duration::from_millis(45));
        assert!(built.padded_headers);
        assert_eq!(built.trace_capacity, 64);
        assert_eq!(built.shards, 3);
        assert_eq!(built.shard_map().shards(), 4, "explicit shards round to pow2");

        let defaults = RuntimeConfig::builder().max_threads(5).heap_objects(77).monitors(3).build();
        assert_eq!(defaults.trace_capacity, 0, "tracing off unless asked for");
        assert_eq!(defaults.coord_deadline, Duration::ZERO, "deadline off by default");
    }

    #[test]
    fn sharded_runtime_shares_one_mapping() {
        // Defaults: one shard per 8 threads.
        assert_eq!(Runtime::new(cfg(8, 4, 1)).shard_map().shards(), 1);
        let rt = Runtime::new(RuntimeConfig::builder().max_threads(16).heap_objects(8).build());
        assert_eq!(rt.shard_map().shards(), 2);
        assert_eq!(rt.heap().thread_shards(), 2, "heap epoch table uses the registry mapping");
        let t0 = rt.register_thread();
        let t1 = rt.register_thread();
        assert_eq!(rt.thread_shard(t0), 0);
        assert_eq!(rt.thread_shard(t1), 1);
        rt.stamp_access(t1, ObjId(3));
        assert!(rt.heap().shard_stamped(ObjId(3), 1));
        assert!(!rt.heap().shard_stamped(ObjId(3), 0));
    }

    #[test]
    fn coord_deadline_accessor_treats_zero_as_disabled() {
        let off = Runtime::new(RuntimeConfig::default());
        assert_eq!(off.coord_deadline(), None);
        let on = Runtime::new(
            RuntimeConfig::builder().coord_deadline(Duration::from_millis(30)).build(),
        );
        assert_eq!(on.coord_deadline(), Some(Duration::from_millis(30)));
    }

    #[test]
    fn tracing_off_by_default_and_on_via_builder() {
        let off = Runtime::new(RuntimeConfig::default());
        assert!(!off.tracing_enabled());
        assert!(off.trace_snapshot().is_none());
        // Off-path trace is a no-op, not a panic.
        off.trace(ThreadId(0), TraceKind::Read, 1);

        let on = Runtime::new(RuntimeConfig::builder().max_threads(2).trace_capacity(16).build());
        assert!(on.tracing_enabled());
        let t = on.register_thread();
        on.trace(t, TraceKind::Write, 42);
        let snap = on.trace_snapshot().unwrap();
        assert_eq!(snap.threads.len(), 2);
        assert_eq!(snap.threads[t.index()].events.len(), 1);
        assert_eq!(snap.threads[t.index()].events[0].arg, 42);
    }

    #[test]
    fn monitor_acquire_records_latency_and_trace() {
        let rt = Runtime::new(
            RuntimeConfig::builder().max_threads(2).monitors(1).trace_capacity(16).build(),
        );
        let t = rt.register_thread();
        rt.monitor_acquire(MonitorId(0), t, &NoHooks);
        rt.monitor_release(MonitorId(0), t, &NoHooks);
        let report = rt.stats().report();
        assert_eq!(report.latency(LatencyKind::MonitorAcquire).count(), 1);
        assert!(report.latency(LatencyKind::MonitorAcquire).max() > 0);
        let events: Vec<TraceKind> = rt.trace_snapshot().unwrap().threads[t.index()]
            .events
            .iter()
            .map(|e| e.kind)
            .collect();
        assert_eq!(events, vec![TraceKind::MonitorAcquireFast, TraceKind::MonitorRelease]);
    }

    #[test]
    fn rdsh_counter_is_monotonic_and_starts_past_zero() {
        let rt = Runtime::new(RuntimeConfig::default());
        let a = rt.next_rdsh_count();
        let b = rt.next_rdsh_count();
        assert!(a >= 2, "0 is reserved for 'no epoch', counter starts at 1");
        assert!(b > a);
        assert_eq!(rt.current_rdsh_count(), b);
    }

    #[test]
    fn blocking_helper_roundtrips_status() {
        let rt = Runtime::new(RuntimeConfig::default());
        let t = rt.register_thread();
        let (val, bumped) = rt.blocking(t, &NoHooks, || 42);
        assert_eq!(val, 42);
        assert!(!bumped);
        assert!(matches!(
            rt.control(t).status(),
            crate::control::ThreadStatus::Running { .. }
        ));
    }

    #[test]
    fn monitor_wrappers_work() {
        let rt = Runtime::new(cfg(2, 2, 2));
        let t = rt.register_thread();
        let info = rt.monitor_acquire(MonitorId(0), t, &NoHooks);
        assert!(!info.blocked);
        rt.monitor_release(MonitorId(0), t, &NoHooks);
        assert_eq!(rt.monitor(MonitorId(0)).holder(), None);
    }
}
