//! Program monitors (locks) with instrumentation hooks.
//!
//! Monitors are the *program's* synchronization — the paper's `synchronized`
//! blocks. The tracking instrumentation cares about them at two points:
//!
//! * a **release** (and the release half of `wait`) is a *program
//!   synchronization release operation* (PSRO): hybrid tracking flushes the
//!   thread's lock buffer immediately before the release becomes visible
//!   (§3.1, Figure 2a), and the hybrid recorder's release clock is bumped;
//! * a **contended acquire** (and the wait half of `wait`) is a *blocking
//!   safe point*: the thread publishes BLOCKED so other threads can
//!   coordinate with it implicitly (§2.2).
//!
//! The monitor also remembers, under its internal lock, the last releasing
//! thread and that thread's release clock. Recorders read this at acquire
//! time to log the synchronization happens-before edge, which lets the
//! replayer elide monitor operations entirely and still preserve mutual
//! exclusion (§7.6: "the replayer elides program synchronization operations
//! and replays only the recorded dependences").

use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::control::ThreadControl;
use crate::ids::ThreadId;
use crate::spin::{park_budget, DEFAULT_BUDGET};
use crate::{RtHooks, SchedPoint};

#[derive(Debug, Default)]
struct MonState {
    /// Current holder, if any.
    held_by: Option<ThreadId>,
    /// Reentrancy depth of the holder.
    recursion: u32,
    /// Last releasing thread and its release clock at release time.
    last_release: Option<(ThreadId, u64)>,
    /// Wait-set generation, used by `wait`/`notify_all` to avoid stealing
    /// wakeups across distinct waits.
    wait_generation: u64,
}

/// Outcome of an acquire, consumed by tracking engines and recorders.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AcquireInfo {
    /// Did the acquire block (making it a blocking safe point)?
    pub blocked: bool,
    /// If it blocked: did implicit coordination happen while parked?
    pub implicit_bumped: bool,
    /// The previous releaser and its release clock, if the monitor has ever
    /// been released. Recorders turn this into a sync happens-before edge.
    pub prev_release: Option<(ThreadId, u64)>,
    /// True if this acquire was reentrant (the thread already held it).
    pub reentrant: bool,
}

enum TryAcquire {
    Taken(AcquireInfo),
    Contended,
}

/// Park on `cv` until `ready(&st)` holds, with the same watchdog contract as
/// [`crate::spin::Spin`]: condvar parks are the one wait a spinner cannot
/// cover, and a parked thread whose wake-up depends on a peer that died
/// mid-protocol would hang the process silently. With the watchdog disabled
/// (zero budget) this is a plain condition-variable loop.
fn park_until(
    cv: &Condvar,
    st: &mut MutexGuard<'_, MonState>,
    what: &'static str,
    mut ready: impl FnMut(&MonState) -> bool,
) {
    let budget = park_budget(DEFAULT_BUDGET);
    let mut started = None;
    while !ready(st) {
        match budget {
            None => cv.wait(st),
            Some(b) => {
                let t0 = *started.get_or_insert_with(std::time::Instant::now);
                cv.wait_for(st, b);
                if !ready(st) && t0.elapsed() >= b {
                    panic!(
                        "park watchdog expired after {:?} while waiting for: {what}",
                        t0.elapsed()
                    );
                }
            }
        }
    }
}

/// A reentrant program monitor with wait/notify.
#[derive(Debug)]
pub struct Monitor {
    state: Mutex<MonState>,
    acquire_cv: Condvar,
    wait_cv: Condvar,
}

impl Default for Monitor {
    fn default() -> Self {
        Self::new()
    }
}

impl Monitor {
    /// A fresh, unheld monitor.
    pub fn new() -> Self {
        Monitor {
            state: Mutex::new(MonState::default()),
            acquire_cv: Condvar::new(),
            wait_cv: Condvar::new(),
        }
    }

    /// One attempt to take the monitor without waiting.
    fn try_acquire(&self, t: ThreadId) -> TryAcquire {
        let mut st = self.state.lock();
        match st.held_by {
            None => {
                st.held_by = Some(t);
                st.recursion = 1;
                TryAcquire::Taken(AcquireInfo {
                    blocked: false,
                    implicit_bumped: false,
                    prev_release: st.last_release,
                    reentrant: false,
                })
            }
            Some(holder) if holder == t => {
                st.recursion += 1;
                TryAcquire::Taken(AcquireInfo {
                    blocked: false,
                    implicit_bumped: false,
                    prev_release: st.last_release,
                    reentrant: true,
                })
            }
            Some(_) => TryAcquire::Contended,
        }
    }

    /// Acquire the monitor for `t`. Uncontended acquires never touch the
    /// thread status word. Contended acquires first *spin* for up to
    /// `spin_iters` iterations — remaining a RUNNING thread and polling safe
    /// points, like a JVM thin lock — and only then run the full
    /// blocking-safe-point protocol around parking. (The spin phase matters
    /// to the tracking protocols: a spinning waiter answers coordination
    /// requests *explicitly*, a parked one is coordinated with *implicitly*.)
    pub fn acquire<H: RtHooks>(
        &self,
        t: ThreadId,
        control: &ThreadControl,
        hooks: &H,
        spin_iters: u32,
    ) -> AcquireInfo {
        match self.try_acquire(t) {
            TryAcquire::Taken(info) => return info,
            TryAcquire::Contended => {}
        }

        // Spin phase: keep responding to coordination while waiting. Yield
        // periodically so the holder can run on oversubscribed machines.
        for i in 0..spin_iters {
            hooks.poll(t);
            hooks.sched_point(t, SchedPoint::MonitorAcquireSpin);
            if i % 8 == 7 {
                std::thread::yield_now();
            } else {
                core::hint::spin_loop();
            }
            if let TryAcquire::Taken(info) = self.try_acquire(t) {
                return info;
            }
        }

        // Contended: blocking safe point. Reach a consistent state, publish
        // BLOCKED, then respond to any explicit requests that raced with the
        // status change before parking.
        hooks.before_block(t);
        let block_epoch = control.publish_blocked();
        hooks.on_blocked_publish(t);
        hooks.sched_point(t, SchedPoint::MonitorPark);

        let prev_release;
        {
            let mut st = self.state.lock();
            park_until(&self.acquire_cv, &mut st, "contended monitor acquire", |s| {
                s.held_by.is_none()
            });
            st.held_by = Some(t);
            st.recursion = 1;
            prev_release = st.last_release;
        }

        let implicit_bumped = control.return_to_running(block_epoch);
        hooks.after_unblock(t, implicit_bumped);
        hooks.sched_point(t, SchedPoint::MonitorUnpark);

        AcquireInfo {
            blocked: true,
            implicit_bumped,
            prev_release,
            reentrant: false,
        }
    }

    /// Release the monitor. The PSRO hook runs *before* the release becomes
    /// visible to other threads, matching the paper's Figure 2(a): the lock
    /// buffer is flushed, then the program lock is released.
    ///
    /// Panics if `t` does not hold the monitor (a workload bug).
    pub fn release<H: RtHooks>(&self, t: ThreadId, control: &ThreadControl, hooks: &H) {
        // PSRO instrumentation first: flush pessimistic states, bump clock.
        hooks.on_psro(t);
        let clock = control.release_clock();
        hooks.sched_point(t, SchedPoint::MonitorRelease);
        let mut st = self.state.lock();
        assert_eq!(st.held_by, Some(t), "release of monitor not held by {t}");
        st.recursion -= 1;
        if st.recursion == 0 {
            st.held_by = None;
            st.last_release = Some((t, clock));
            drop(st);
            self.acquire_cv.notify_one();
        }
    }

    /// `Object.wait()`: atomically release the monitor and park until
    /// notified, then re-acquire. The release half is a PSRO; the park is a
    /// blocking safe point. Spurious wakeups are possible (callers loop on
    /// their condition, as in Java).
    ///
    /// Panics if `t` does not hold the monitor.
    pub fn wait<H: RtHooks>(&self, t: ThreadId, control: &ThreadControl, hooks: &H) -> AcquireInfo {
        hooks.on_psro(t);
        let clock = control.release_clock();

        hooks.before_block(t);
        let block_epoch = control.publish_blocked();
        hooks.on_blocked_publish(t);
        hooks.sched_point(t, SchedPoint::MonitorWaitPark);

        let prev_release;
        {
            let mut st = self.state.lock();
            assert_eq!(st.held_by, Some(t), "wait on monitor not held by {t}");
            let saved_recursion = st.recursion;
            st.held_by = None;
            st.recursion = 0;
            st.last_release = Some((t, clock));
            let my_generation = st.wait_generation;
            self.acquire_cv.notify_one();

            // Park until a notify advances the generation.
            park_until(&self.wait_cv, &mut st, "monitor notify", |s| {
                s.wait_generation != my_generation
            });
            // Re-acquire.
            park_until(&self.acquire_cv, &mut st, "monitor re-acquire after wait", |s| {
                s.held_by.is_none()
            });
            st.held_by = Some(t);
            st.recursion = saved_recursion;
            prev_release = st.last_release;
        }

        let implicit_bumped = control.return_to_running(block_epoch);
        hooks.after_unblock(t, implicit_bumped);
        hooks.sched_point(t, SchedPoint::MonitorUnpark);

        AcquireInfo {
            blocked: true,
            implicit_bumped,
            prev_release,
            reentrant: false,
        }
    }

    /// `Object.notifyAll()`: wake every waiter. The caller should hold the
    /// monitor (as in Java), but this is not enforced — some lock-free
    /// shutdown patterns notify without holding.
    pub fn notify_all(&self) {
        let mut st = self.state.lock();
        st.wait_generation += 1;
        drop(st);
        self.wait_cv.notify_all();
    }

    /// Current holder (diagnostic; racy by nature).
    pub fn holder(&self) -> Option<ThreadId> {
        self.state.lock().held_by
    }

    /// Last releaser and its clock (diagnostic / recorder use outside the
    /// acquire path).
    pub fn last_release(&self) -> Option<(ThreadId, u64)> {
        self.state.lock().last_release
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoHooks;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn controls(n: usize) -> Vec<ThreadControl> {
        (0..n).map(|_| ThreadControl::new()).collect()
    }

    #[test]
    fn uncontended_acquire_release() {
        let m = Monitor::new();
        let c = controls(1);
        let info = m.acquire(ThreadId(0), &c[0], &NoHooks, 0);
        assert!(!info.blocked);
        assert!(!info.reentrant);
        assert_eq!(info.prev_release, None);
        assert_eq!(m.holder(), Some(ThreadId(0)));
        m.release(ThreadId(0), &c[0], &NoHooks);
        assert_eq!(m.holder(), None);
        assert_eq!(m.last_release(), Some((ThreadId(0), 0)));
    }

    #[test]
    fn reentrant_acquire_counts_recursion() {
        let m = Monitor::new();
        let c = controls(1);
        m.acquire(ThreadId(0), &c[0], &NoHooks, 0);
        let info = m.acquire(ThreadId(0), &c[0], &NoHooks, 0);
        assert!(info.reentrant);
        m.release(ThreadId(0), &c[0], &NoHooks);
        assert_eq!(m.holder(), Some(ThreadId(0)), "still held after inner release");
        m.release(ThreadId(0), &c[0], &NoHooks);
        assert_eq!(m.holder(), None);
    }

    #[test]
    #[should_panic(expected = "release of monitor not held")]
    fn release_without_hold_panics() {
        let m = Monitor::new();
        let c = controls(1);
        m.release(ThreadId(0), &c[0], &NoHooks);
    }

    #[test]
    fn contended_acquire_blocks_and_records_prev_release() {
        let m = Arc::new(Monitor::new());
        let c: Arc<Vec<ThreadControl>> = Arc::new(controls(2));
        let t0 = ThreadId(0);
        let t1 = ThreadId(1);

        m.acquire(t0, &c[0], &NoHooks, 0);
        c[0].bump_release_clock(); // pretend a PSRO bump happened earlier

        std::thread::scope(|s| {
            let m2 = m.clone();
            let c2 = c.clone();
            let h = s.spawn(move || m2.acquire(t1, &c2[1], &NoHooks, 0));
            // Give the contender time to park, then release.
            std::thread::sleep(std::time::Duration::from_millis(1));
            m.release(t0, &c[0], &NoHooks);
            let info = h.join().unwrap();
            assert!(info.blocked);
            assert_eq!(info.prev_release, Some((t0, 1)));
            m.release(t1, &c[1], &NoHooks);
        });
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        const THREADS: usize = 8;
        const ITERS: usize = 2_000;
        let m = Arc::new(Monitor::new());
        let c: Arc<Vec<ThreadControl>> = Arc::new(controls(THREADS));
        let counter = Arc::new(AtomicU64::new(0));

        std::thread::scope(|s| {
            for i in 0..THREADS {
                let m = m.clone();
                let c = c.clone();
                let counter = counter.clone();
                s.spawn(move || {
                    let t = ThreadId(i as u16);
                    for _ in 0..ITERS {
                        m.acquire(t, &c[i], &NoHooks, 64);
                        // Non-atomic-looking increment under the monitor: only
                        // correct if mutual exclusion holds.
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        m.release(t, &c[i], &NoHooks);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), (THREADS * ITERS) as u64);
    }

    #[test]
    fn wait_notify_roundtrip() {
        let m = Arc::new(Monitor::new());
        let c: Arc<Vec<ThreadControl>> = Arc::new(controls(2));
        let flag = Arc::new(AtomicU64::new(0));

        std::thread::scope(|s| {
            let m2 = m.clone();
            let c2 = c.clone();
            let flag2 = flag.clone();
            let waiter = s.spawn(move || {
                let t = ThreadId(0);
                m2.acquire(t, &c2[0], &NoHooks, 0);
                while flag2.load(Ordering::Relaxed) == 0 {
                    m2.wait(t, &c2[0], &NoHooks);
                }
                m2.release(t, &c2[0], &NoHooks);
            });

            let t = ThreadId(1);
            // Let the waiter park first (best-effort).
            std::thread::sleep(std::time::Duration::from_millis(10));
            m.acquire(t, &c[1], &NoHooks, 0);
            flag.store(1, Ordering::Relaxed);
            m.notify_all();
            m.release(t, &c[1], &NoHooks);
            waiter.join().unwrap();
        });
        assert_eq!(m.holder(), None);
    }

    #[test]
    fn blocked_acquirer_can_be_implicitly_coordinated() {
        let m = Arc::new(Monitor::new());
        let c: Arc<Vec<ThreadControl>> = Arc::new(controls(2));
        m.acquire(ThreadId(0), &c[0], &NoHooks, 0);

        std::thread::scope(|s| {
            let m2 = m.clone();
            let c2 = c.clone();
            let h = s.spawn(move || m2.acquire(ThreadId(1), &c2[1], &NoHooks, 0));

            // Wait until T1 publishes BLOCKED, then coordinate implicitly.
            let mut spin = crate::spin::Spin::new("T1 to block on monitor");
            let epoch = loop {
                if let crate::control::ThreadStatus::Blocked { epoch } = c[1].status() {
                    break epoch;
                }
                spin.spin();
            };
            assert!(c[1].try_implicit(epoch));

            m.release(ThreadId(0), &c[0], &NoHooks);
            let info = h.join().unwrap();
            assert!(info.blocked);
            assert!(info.implicit_bumped, "wake must report the implicit bump");
        });
    }
}
