//! Small typed identifiers used across the substrate.
//!
//! The paper encodes the owning thread's address inside each object's 32-bit
//! state word. We instead use dense small integers, which both fit easily in
//! our 64-bit state word and index directly into the runtime's thread table.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a mutator thread registered with the [`crate::Runtime`].
///
/// Thread ids are dense indices into the runtime's thread-control table. The
/// state word reserves 16 bits for an owner id, so at most [`ThreadId::MAX`]
/// mutators may be registered.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadId(pub u16);

impl ThreadId {
    /// Upper bound (exclusive) on thread ids: the state word's owner field is
    /// 16 bits wide.
    pub const MAX: usize = u16::MAX as usize;

    /// Index into per-thread tables.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw 16-bit value, as stored in state words.
    #[inline(always)]
    pub fn raw(self) -> u16 {
        self.0
    }

    /// Reconstruct from the raw value stored in a state word.
    #[inline(always)]
    pub fn from_raw(raw: u16) -> Self {
        ThreadId(raw)
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a tracked shared object: a dense index into the [`crate::Heap`].
///
/// The paper uses the term "object" for any unit of shared memory (scalar
/// object, array, or static field); so do we.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjId(pub u32);

impl ObjId {
    /// Index into the heap's object table.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Identifier of a program monitor (lock): a dense index into the runtime's
/// monitor table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MonitorId(pub u32);

impl MonitorId {
    /// Index into the monitor table.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for MonitorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for MonitorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_roundtrip() {
        for raw in [0u16, 1, 7, 255, u16::MAX] {
            let t = ThreadId::from_raw(raw);
            assert_eq!(t.raw(), raw);
            assert_eq!(t.index(), raw as usize);
        }
    }

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{}", ThreadId(3)), "T3");
        assert_eq!(format!("{:?}", ObjId(12)), "o12");
        assert_eq!(format!("{}", MonitorId(0)), "m0");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(ThreadId(1) < ThreadId(2));
        assert!(ObjId(9) < ObjId(10));
        assert!(MonitorId(0) < MonitorId(1));
    }
}
