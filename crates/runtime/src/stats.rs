//! Execution statistics shared by every tracking engine.
//!
//! The paper's evaluation is driven almost entirely by *state-transition
//! counts* (Table 2) and by the per-transition-kind *cycle costs* (§2.2).
//! Every engine therefore increments a [`LocalStats`] counter for each event;
//! local counters are plain (uncontended) `u64`s merged into a [`GlobalStats`]
//! when a mutator detaches, so counting never perturbs the measured protocols
//! with extra cache traffic.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

pub mod derived;

/// Every countable event in the substrate and the tracking engines.
///
/// The first block mirrors the transition taxonomy of Table 1/Table 3; the
/// second block counts coordination and runtime-support events. The paper's
/// Table 2 columns are derived from these counters by
/// [`StatsReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum Event {
    // --- Optimistic transitions (Table 1 / bottom half of Table 3) ---
    /// Same-state optimistic transition: the synchronization-free fast path.
    OptSameState,
    /// Upgrading transition (RdEx→WrEx by owner, RdEx→RdSh): one CAS.
    OptUpgrading,
    /// Fence transition: first read of a RdSh object with a stale
    /// per-thread rdShCount; a memory fence, no CAS.
    OptFence,
    /// Conflicting optimistic transition resolved with explicit (roundtrip)
    /// coordination.
    OptConflictExplicit,
    /// Conflicting optimistic transition resolved implicitly against a
    /// blocked thread.
    OptConflictImplicit,

    // --- Pessimistic transitions (top half of Table 3) ---
    /// Uncontended pessimistic transition that required a CAS.
    PessUncontended,
    /// Reentrant pessimistic transition: no state change, no atomic op
    /// (already read/write-locked appropriately by this thread).
    PessReentrant,
    /// Contended pessimistic transition: conflicted with a locked state and
    /// fell back to coordination.
    PessContended,
    /// Pessimistic transition whose previous state was last held by a
    /// *different* thread (§7.5 reports 26% of racyInc's pessimistic accesses
    /// "lock a state with a different thread than the previous access" —
    /// the remote-cache-miss proxy).
    PessOwnerChange,

    // --- Hybrid-model state moves (the diamonds of Figure 3) ---
    /// An object moved from optimistic to pessimistic states.
    OptToPess,
    /// An object moved from pessimistic back to optimistic states.
    PessToOpt,

    // --- Deferred unlocking ---
    /// A lock-buffer flush (at a PSRO or responding safe point).
    LockBufferFlush,
    /// An individual object state unlocked during a flush.
    StateUnlocked,

    // --- Coordination mechanics ---
    /// This thread responded to an explicit coordination request at a safe
    /// point.
    RespondedExplicit,
    /// This thread was coordinated with implicitly while blocked (counted on
    /// wake-up; several implicit coordinations may collapse into one epoch
    /// observation).
    ImplicitObservedOnWake,
    /// This thread performed an implicit coordination against a blocked
    /// remote thread.
    ImplicitPerformed,
    /// A coordination roundtrip this thread initiated (send → response).
    CoordinationRoundtrip,
    /// Total explicit requests answered across responding safe points. Each
    /// responding safe point drains its whole inbox and answers the batch
    /// with *one* release-clock bump, so
    /// `CoordBatchRequests / RespondedExplicit` is the mean batch occupancy
    /// (the coalescing rate Table-2-style reports can show).
    CoordBatchRequests,
    /// Coordination fan-outs initiated (one `coordinate_many` call: the
    /// conservative RdSh protocol that coordinates with every live peer).
    CoordFanout,
    /// Total peers covered by fan-outs; `CoordFanoutPeers / CoordFanout` is
    /// the mean fan-out width.
    CoordFanoutPeers,

    // --- Program-level events ---
    /// Tracked read access.
    Read,
    /// Tracked write access.
    Write,
    /// Monitor acquired without blocking.
    MonitorAcquireFast,
    /// Monitor acquire had to block.
    MonitorAcquireBlocked,
    /// Monitor released (a PSRO).
    MonitorRelease,
    /// Safe point poll executed.
    SafepointPoll,

    // --- Runtime support ---
    /// Recorder: a happens-before edge was logged.
    RecorderEdge,
    /// Replayer: a sink had to spin-wait for its source clock.
    ReplayWait,
    /// RS enforcer: a region started (or restarted) execution.
    RegionExec,
    /// RS enforcer: a region was rolled back and restarted.
    RegionRestart,

    // --- Seqlock read path (DESIGN.md §12) ---
    /// A coordination-free RdSh read whose version revalidation succeeded:
    /// no state transition, no fence-count update, no fan-out.
    SeqlockValidated,
    /// A seqlock read attempt whose revalidation failed (a writer installed
    /// a new state word inside the read window); the read retried.
    SeqlockRetry,
    /// A seqlock read that exhausted its retries and fell back to the
    /// engine's coordinated slow path.
    SeqlockFallback,

    // --- Degradation ladder (DESIGN.md §13) ---
    /// A coordination wait hit the configured `coord_deadline` and the
    /// requester abandoned the roundtrip, falling back to the pessimistic
    /// protocol for that object instead of spinning on.
    CoordDeadlineExceeded,
    /// The online controller demoted an object shard opt→pess (observed
    /// coordination cost crossed the hysteresis band's upper edge).
    AdaptDemotion,
    /// The online controller re-promoted an object shard pess→opt after its
    /// cooldown (observed coordination cost fell below the band's lower edge).
    AdaptPromotion,

    // --- Sharded substrate (DESIGN.md §14) ---
    /// A fan-out's snapshot pass skipped a peer because its registry shard's
    /// access epoch proved no thread of that shard ever touched the object:
    /// zero roundtrip, zero enqueue, resolved as vacuously implicit. Counted
    /// per skipped *peer* (divide by `CoordFanout` for peers-skipped-per-
    /// fan-out).
    CoordFanoutSkipped,
}

impl Event {
    /// Number of event kinds (length of the counter arrays).
    pub const COUNT: usize = Event::CoordFanoutSkipped as usize + 1;

    /// Compile-time proof backing the unchecked indexing in
    /// [`LocalStats::bump`]: discriminants are the dense range `0..COUNT`.
    const EVENT_DISCRIMINANTS_DENSE: () = {
        let mut i = 0;
        while i < Event::COUNT {
            assert!((Event::ALL[i] as usize) == i, "Event discriminants must be dense 0..COUNT");
            i += 1;
        }
    };

    /// All events, in counter-index order.
    pub const ALL: [Event; Event::COUNT] = [
        Event::OptSameState,
        Event::OptUpgrading,
        Event::OptFence,
        Event::OptConflictExplicit,
        Event::OptConflictImplicit,
        Event::PessUncontended,
        Event::PessReentrant,
        Event::PessContended,
        Event::PessOwnerChange,
        Event::OptToPess,
        Event::PessToOpt,
        Event::LockBufferFlush,
        Event::StateUnlocked,
        Event::RespondedExplicit,
        Event::ImplicitObservedOnWake,
        Event::ImplicitPerformed,
        Event::CoordinationRoundtrip,
        Event::CoordBatchRequests,
        Event::CoordFanout,
        Event::CoordFanoutPeers,
        Event::Read,
        Event::Write,
        Event::MonitorAcquireFast,
        Event::MonitorAcquireBlocked,
        Event::MonitorRelease,
        Event::SafepointPoll,
        Event::RecorderEdge,
        Event::ReplayWait,
        Event::RegionExec,
        Event::RegionRestart,
        Event::SeqlockValidated,
        Event::SeqlockRetry,
        Event::SeqlockFallback,
        Event::CoordDeadlineExceeded,
        Event::AdaptDemotion,
        Event::AdaptPromotion,
        Event::CoordFanoutSkipped,
    ];

    /// Stable human-readable name (used by the bench harnesses' reports).
    pub fn name(self) -> &'static str {
        match self {
            Event::OptSameState => "opt.same_state",
            Event::OptUpgrading => "opt.upgrading",
            Event::OptFence => "opt.fence",
            Event::OptConflictExplicit => "opt.conflict_explicit",
            Event::OptConflictImplicit => "opt.conflict_implicit",
            Event::PessUncontended => "pess.uncontended",
            Event::PessReentrant => "pess.reentrant",
            Event::PessContended => "pess.contended",
            Event::PessOwnerChange => "pess.owner_change",
            Event::OptToPess => "hybrid.opt_to_pess",
            Event::PessToOpt => "hybrid.pess_to_opt",
            Event::LockBufferFlush => "hybrid.lock_buffer_flush",
            Event::StateUnlocked => "hybrid.state_unlocked",
            Event::RespondedExplicit => "coord.responded_explicit",
            Event::ImplicitObservedOnWake => "coord.implicit_observed",
            Event::ImplicitPerformed => "coord.implicit_performed",
            Event::CoordinationRoundtrip => "coord.roundtrip",
            Event::CoordBatchRequests => "coord.batch_requests",
            Event::CoordFanout => "coord.fanout",
            Event::CoordFanoutPeers => "coord.fanout_peers",
            Event::Read => "access.read",
            Event::Write => "access.write",
            Event::MonitorAcquireFast => "monitor.acquire_fast",
            Event::MonitorAcquireBlocked => "monitor.acquire_blocked",
            Event::MonitorRelease => "monitor.release",
            Event::SafepointPoll => "safepoint.poll",
            Event::RecorderEdge => "recorder.edge",
            Event::ReplayWait => "replayer.wait",
            Event::RegionExec => "rs.region_exec",
            Event::RegionRestart => "rs.region_restart",
            Event::SeqlockValidated => "seqlock.validated",
            Event::SeqlockRetry => "seqlock.retry",
            Event::SeqlockFallback => "seqlock.fallback",
            Event::CoordDeadlineExceeded => "coord.deadline_exceeded",
            Event::AdaptDemotion => "adapt.demotion",
            Event::AdaptPromotion => "adapt.promotion",
            Event::CoordFanoutSkipped => "coord.fanout_skipped",
        }
    }
}

/// Per-thread event counters: plain integers, owned by one mutator, merged on
/// detach. Incrementing is a single add on thread-private memory, so the
/// measured protocols are unperturbed.
#[derive(Clone, Debug)]
pub struct LocalStats {
    counts: [u64; Event::COUNT],
}

impl Default for LocalStats {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        // Force evaluation of the discriminant-density proof that `bump`'s
        // unchecked indexing relies on.
        const { Event::EVENT_DISCRIMINANTS_DENSE };
        LocalStats {
            counts: [0; Event::COUNT],
        }
    }

    /// Count one occurrence of `e`.
    ///
    /// This sits on the read/write fast path of every engine, so it must
    /// compile to a single indexed add with no bounds check: `Event` is
    /// `repr(usize)` with dense discriminants `0..COUNT` (const-asserted
    /// below), so `e as usize` is always in range of the counter array.
    #[inline(always)]
    pub fn bump(&mut self, e: Event) {
        // Safety: every Event discriminant is < Event::COUNT (see the
        // EVENT_DISCRIMINANTS_DENSE const assertion).
        unsafe {
            *self.counts.get_unchecked_mut(e as usize) += 1;
        }
    }

    /// Count `n` occurrences of `e`.
    #[inline(always)]
    pub fn add(&mut self, e: Event, n: u64) {
        // Safety: as in `bump`.
        unsafe {
            *self.counts.get_unchecked_mut(e as usize) += n;
        }
    }

    /// Current count for `e`.
    #[inline]
    pub fn get(&self, e: Event) -> u64 {
        self.counts[e as usize]
    }

    /// Merge this thread's counters into the global aggregate.
    pub fn merge_into(&self, global: &GlobalStats) {
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                global.counts[i].fetch_add(c, Ordering::Relaxed);
            }
        }
    }
}

/// The latency distributions the runtime measures, alongside the counters.
/// Recording happens on slow paths only (an explicit roundtrip, a fan-out, a
/// monitor acquire), straight into [`GlobalStats`] — [`LocalStats`] carries
/// no histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum LatencyKind {
    /// One explicit coordination roundtrip: request enqueued → token
    /// completed by the remote's responding safe point.
    CoordRoundtrip,
    /// A whole RdSh fan-out (or sequential all-peer loop): entry to last
    /// peer resolved.
    FanoutComplete,
    /// Monitor acquire, fast or blocked.
    MonitorAcquire,
    /// Validation retries a seqlock read needed before it succeeded or fell
    /// back (recorded as a *count*, not nanoseconds — the log2 buckets work
    /// the same way; only contested reads record, so the zero-retry common
    /// case stays histogram-free).
    SeqlockRetries,
    /// Service time of one request in the open-loop serve macro-bench
    /// (`drink-serve`): dequeue → completion, the store work alone.
    ServeService,
    /// Sojourn time of one serve request: *arrival* → completion, so queueing
    /// delay is included. Under open-loop load this — not service time — is
    /// what a client of the store experiences (DESIGN.md §15).
    ServeSojourn,
}

impl LatencyKind {
    /// Number of kinds; also the length of [`LatencyKind::ALL`].
    pub const COUNT: usize = 6;

    /// Every kind, in discriminant order.
    pub const ALL: [LatencyKind; LatencyKind::COUNT] = [
        LatencyKind::CoordRoundtrip,
        LatencyKind::FanoutComplete,
        LatencyKind::MonitorAcquire,
        LatencyKind::SeqlockRetries,
        LatencyKind::ServeService,
        LatencyKind::ServeSojourn,
    ];

    /// Short dotted name, matching the [`Event`] convention.
    pub fn name(self) -> &'static str {
        match self {
            LatencyKind::CoordRoundtrip => "latency.coord_roundtrip",
            LatencyKind::FanoutComplete => "latency.fanout_complete",
            LatencyKind::MonitorAcquire => "latency.monitor_acquire",
            LatencyKind::SeqlockRetries => "latency.seqlock_retries",
            LatencyKind::ServeService => "latency.serve_service",
            LatencyKind::ServeSojourn => "latency.serve_sojourn",
        }
    }
}

/// Number of log2 buckets per histogram: bucket `i` covers `[2^i, 2^(i+1))`
/// nanoseconds, with bucket 31 absorbing everything ≥ 2³¹ ns (~2.1 s — far
/// beyond any sane roundtrip; the spin watchdog fires first).
pub const LATENCY_BUCKETS: usize = 32;

/// Shared-write HDR-style histogram: log2 buckets plus an exact maximum.
/// All operations are relaxed atomics — totals are exact, cross-bucket
/// ordering is not needed.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    max_ns: AtomicU64,
}

/// Bucket index for a nanosecond value: `floor(log2(ns))`, with 0 ns mapped
/// to bucket 0 and everything past the top clamped to the last bucket.
pub fn latency_bucket(ns: u64) -> usize {
    ((63 - (ns | 1).leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
}

impl LatencyHistogram {
    /// Record one sample.
    pub fn record(&self, ns: u64) {
        self.buckets[latency_bucket(ns)].fetch_add(1, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Copy the current state into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        for (i, b) in self.buckets.iter().enumerate() {
            buckets[i] = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets, max_ns: self.max_ns.load(Ordering::Relaxed) }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// Immutable, serializable snapshot of one [`LatencyHistogram`], with the
/// percentile arithmetic. A percentile is reported as its bucket's inclusive
/// upper bound (`2^(i+1) - 1` ns), clamped to the exact observed maximum —
/// so a reported pXX never understates the true pXX and overstates it by
/// less than 2× (the log2 bucket width).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub buckets: [u64; LATENCY_BUCKETS],
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `p`-th percentile (`0 < p <= 100`) in nanoseconds, 0 if empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p / 100.0 * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let upper = if i + 1 >= 64 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Exact observed maximum in nanoseconds.
    pub fn max(&self) -> u64 {
        self.max_ns
    }
}

/// Process-wide aggregate of all mutators' counters.
#[derive(Debug)]
pub struct GlobalStats {
    counts: [AtomicU64; Event::COUNT],
    hists: [LatencyHistogram; LatencyKind::COUNT],
}

impl Default for GlobalStats {
    fn default() -> Self {
        Self::new()
    }
}

impl GlobalStats {
    /// Fresh zeroed aggregate.
    pub fn new() -> Self {
        GlobalStats {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: Default::default(),
        }
    }

    /// Current aggregate count for `e`.
    pub fn get(&self, e: Event) -> u64 {
        self.counts[e as usize].load(Ordering::Relaxed)
    }

    /// Record one latency sample (slow paths only; see [`LatencyKind`]).
    pub fn record_latency(&self, kind: LatencyKind, ns: u64) {
        self.hists[kind as usize].record(ns);
    }

    /// The live histogram for `kind`.
    pub fn latency(&self, kind: LatencyKind) -> &LatencyHistogram {
        &self.hists[kind as usize]
    }

    /// Snapshot every counter and histogram into a serializable report.
    pub fn report(&self) -> StatsReport {
        let mut counts = [0u64; Event::COUNT];
        for (i, c) in self.counts.iter().enumerate() {
            counts[i] = c.load(Ordering::Relaxed);
        }
        let mut hists = [HistogramSnapshot::default(); LatencyKind::COUNT];
        for (i, h) in self.hists.iter().enumerate() {
            hists[i] = h.snapshot();
        }
        StatsReport { counts, hists }
    }

    /// Reset all counters and histograms to zero (between benchmark phases).
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        for h in &self.hists {
            h.reset();
        }
    }
}

/// An immutable snapshot of [`GlobalStats`]. Raw counts and latency
/// histograms live here; every *derived* quantity (the paper's ratios, the
/// latency percentiles) is defined once in [`derived::Metric`] — the methods
/// below are thin delegating wrappers kept for call-site ergonomics.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct StatsReport {
    counts: [u64; Event::COUNT],
    hists: [HistogramSnapshot; LatencyKind::COUNT],
}

impl StatsReport {
    /// Count for one event kind.
    pub fn get(&self, e: Event) -> u64 {
        self.counts[e as usize]
    }

    /// Latency distribution snapshot for `kind`.
    pub fn latency(&self, kind: LatencyKind) -> &HistogramSnapshot {
        &self.hists[kind as usize]
    }

    /// Total tracked accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.get(Event::Read) + self.get(Event::Write)
    }

    /// Table 2, "Optimistic / Same state".
    pub fn opt_same_state(&self) -> u64 {
        self.get(Event::OptSameState)
    }

    /// Table 2, "Optimistic / Conflicting" (explicit + implicit).
    pub fn opt_conflicting(&self) -> u64 {
        self.get(Event::OptConflictExplicit) + self.get(Event::OptConflictImplicit)
    }

    /// Table 2, "Pessimistic / Uncontended" (CAS + reentrant).
    pub fn pess_uncontended(&self) -> u64 {
        self.get(Event::PessUncontended) + self.get(Event::PessReentrant)
    }

    /// Table 2, "%Reentrant": share of uncontended pessimistic transitions
    /// that were reentrant (no atomic operation).
    pub fn pess_reentrant_pct(&self) -> f64 {
        derived::Metric::PessReentrantPct.eval(self)
    }

    /// Table 2, "Pessimistic / Contended".
    pub fn pess_contended(&self) -> u64 {
        self.get(Event::PessContended)
    }

    /// Table 2, "Opt. to Pess.".
    pub fn opt_to_pess(&self) -> u64 {
        self.get(Event::OptToPess)
    }

    /// Table 2, "Pess. to Opt.".
    pub fn pess_to_opt(&self) -> u64 {
        self.get(Event::PessToOpt)
    }

    /// Conflict rate: conflicting optimistic transitions (explicit only, as
    /// in Figure 6) over all accesses.
    pub fn explicit_conflict_rate(&self) -> f64 {
        derived::Metric::ExplicitConflictRate.eval(self)
    }

    /// Mean number of explicit requests answered per responding safe point
    /// (≥ 1 whenever any response happened). A value above 1 means
    /// responder-side batching coalesced requests: N tokens were answered by
    /// one release-clock bump instead of N.
    pub fn batch_occupancy(&self) -> f64 {
        derived::Metric::BatchOccupancy.eval(self)
    }

    /// Mean number of peers per coordination fan-out (the conservative RdSh
    /// protocol's width).
    pub fn fanout_width(&self) -> f64 {
        derived::Metric::FanoutWidth.eval(self)
    }

    /// Coordination-free RdSh reads whose seqlock validation succeeded
    /// (DESIGN.md §12). The chaos oracles assert this is non-zero on
    /// read-mostly specs.
    pub fn validated_reads(&self) -> u64 {
        self.get(Event::SeqlockValidated)
    }

    /// All (event, count) pairs with non-zero counts, for printing.
    pub fn nonzero(&self) -> Vec<(Event, u64)> {
        Event::ALL
            .iter()
            .copied()
            .filter(|&e| self.get(e) != 0)
            .map(|e| (e, self.get(e)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_all_is_in_discriminant_order() {
        for (i, e) in Event::ALL.iter().enumerate() {
            assert_eq!(*e as usize, i, "ALL out of order at {i}: {e:?}");
        }
    }

    #[test]
    fn event_names_are_unique() {
        let mut names: Vec<_> = Event::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Event::COUNT);
    }

    #[test]
    fn local_merge_accumulates() {
        let global = GlobalStats::new();
        let mut a = LocalStats::new();
        let mut b = LocalStats::new();
        a.bump(Event::Read);
        a.add(Event::OptSameState, 10);
        b.add(Event::Read, 2);
        b.bump(Event::PessContended);
        a.merge_into(&global);
        b.merge_into(&global);
        let r = global.report();
        assert_eq!(r.get(Event::Read), 3);
        assert_eq!(r.get(Event::OptSameState), 10);
        assert_eq!(r.get(Event::PessContended), 1);
        assert_eq!(r.get(Event::Write), 0);
    }

    #[test]
    fn report_derives_table2_columns() {
        let global = GlobalStats::new();
        let mut l = LocalStats::new();
        l.add(Event::Read, 60);
        l.add(Event::Write, 40);
        l.add(Event::PessUncontended, 30);
        l.add(Event::PessReentrant, 10);
        l.add(Event::OptConflictExplicit, 5);
        l.add(Event::OptConflictImplicit, 2);
        l.merge_into(&global);
        let r = global.report();
        assert_eq!(r.accesses(), 100);
        assert_eq!(r.pess_uncontended(), 40);
        assert!((r.pess_reentrant_pct() - 25.0).abs() < 1e-9);
        assert_eq!(r.opt_conflicting(), 7);
        assert!((r.explicit_conflict_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn report_derives_coordination_batch_columns() {
        let global = GlobalStats::new();
        let mut l = LocalStats::new();
        // 4 responding safe points answered 10 requests total.
        l.add(Event::RespondedExplicit, 4);
        l.add(Event::CoordBatchRequests, 10);
        // 3 fan-outs covered 21 peers (8-thread runtime).
        l.add(Event::CoordFanout, 3);
        l.add(Event::CoordFanoutPeers, 21);
        l.merge_into(&global);
        let r = global.report();
        assert!((r.batch_occupancy() - 2.5).abs() < 1e-12);
        assert!((r.fanout_width() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_counters() {
        let global = GlobalStats::new();
        let mut l = LocalStats::new();
        l.bump(Event::RegionRestart);
        l.merge_into(&global);
        assert_eq!(global.get(Event::RegionRestart), 1);
        global.reset();
        assert_eq!(global.get(Event::RegionRestart), 0);
    }

    #[test]
    fn empty_report_rates_are_zero() {
        let r = GlobalStats::new().report();
        assert_eq!(r.pess_reentrant_pct(), 0.0);
        assert_eq!(r.explicit_conflict_rate(), 0.0);
        assert!(r.nonzero().is_empty());
    }

    // --- latency histograms ---

    /// splitmix64 — seeded randomized cases stand in for proptest (no such
    /// dependency in this workspace).
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Sorted-vec reference percentile with the same nearest-rank convention
    /// as `HistogramSnapshot::percentile`.
    fn reference_percentile(sorted: &[u64], p: f64) -> u64 {
        assert!(!sorted.is_empty());
        let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(1), 0);
        assert_eq!(latency_bucket(2), 1);
        assert_eq!(latency_bucket(3), 1);
        assert_eq!(latency_bucket(4), 2);
        assert_eq!(latency_bucket(1023), 9);
        assert_eq!(latency_bucket(1024), 10);
        assert_eq!(latency_bucket(u64::MAX), LATENCY_BUCKETS - 1);
        assert_eq!(latency_bucket((1 << 31) - 1), 30);
        assert_eq!(latency_bucket(1 << 31), 31);
        assert_eq!(latency_bucket(1 << 40), 31, "overflow clamps to top bucket");
    }

    #[test]
    fn histogram_percentiles_match_sorted_vec_reference_proptest() {
        let mut rng = 0x1157_0001u64;
        for case in 0..100 {
            let hist = LatencyHistogram::default();
            let n = (splitmix64(&mut rng) % 500 + 1) as usize;
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                // Mix of magnitudes: spread samples over ~2^0..2^30 ns.
                let shift = splitmix64(&mut rng) % 31;
                let v = splitmix64(&mut rng) % (1u64 << shift).max(2);
                hist.record(v);
                samples.push(v);
            }
            samples.sort_unstable();
            let snap = hist.snapshot();
            assert_eq!(snap.count(), n as u64);
            assert_eq!(snap.max(), *samples.last().unwrap());
            for p in [1.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
                let got = snap.percentile(p);
                let want = reference_percentile(&samples, p);
                // The histogram reports the bucket upper bound (clamped to
                // the exact max): same log2 bucket as the reference value,
                // and never below it.
                assert_eq!(
                    latency_bucket(got),
                    latency_bucket(want),
                    "case {case} p{p}: got {got} want bucket of {want}"
                );
                assert!(got >= want, "case {case} p{p}: {got} < {want}");
                assert!(got <= snap.max(), "case {case} p{p}");
            }
        }
    }

    #[test]
    fn histogram_snapshot_serde_roundtrip() {
        let hist = LatencyHistogram::default();
        hist.record(7);
        hist.record(100);
        hist.record(1_000_000);
        let snap = hist.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.count(), 3);
        assert_eq!(back.max(), 1_000_000);
    }

    #[test]
    fn report_carries_histograms_and_reset_clears_them() {
        let g = GlobalStats::new();
        g.record_latency(LatencyKind::FanoutComplete, 512);
        g.record_latency(LatencyKind::FanoutComplete, 2048);
        let r = g.report();
        assert_eq!(r.latency(LatencyKind::FanoutComplete).count(), 2);
        assert_eq!(r.latency(LatencyKind::FanoutComplete).p50(), 1023);
        assert_eq!(r.latency(LatencyKind::FanoutComplete).max(), 2048);
        assert_eq!(r.latency(LatencyKind::CoordRoundtrip).count(), 0);
        g.reset();
        assert_eq!(g.report().latency(LatencyKind::FanoutComplete).count(), 0);
    }

    #[test]
    fn empty_percentiles_are_zero() {
        let snap = HistogramSnapshot::default();
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.max(), 0);
    }

    #[test]
    fn latency_kind_names_follow_the_event_convention() {
        for (i, k) in LatencyKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i);
            assert!(k.name().starts_with("latency."));
        }
    }
}
