//! Execution statistics shared by every tracking engine.
//!
//! The paper's evaluation is driven almost entirely by *state-transition
//! counts* (Table 2) and by the per-transition-kind *cycle costs* (§2.2).
//! Every engine therefore increments a [`LocalStats`] counter for each event;
//! local counters are plain (uncontended) `u64`s merged into a [`GlobalStats`]
//! when a mutator detaches, so counting never perturbs the measured protocols
//! with extra cache traffic.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Every countable event in the substrate and the tracking engines.
///
/// The first block mirrors the transition taxonomy of Table 1/Table 3; the
/// second block counts coordination and runtime-support events. The paper's
/// Table 2 columns are derived from these counters by
/// [`StatsReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum Event {
    // --- Optimistic transitions (Table 1 / bottom half of Table 3) ---
    /// Same-state optimistic transition: the synchronization-free fast path.
    OptSameState,
    /// Upgrading transition (RdEx→WrEx by owner, RdEx→RdSh): one CAS.
    OptUpgrading,
    /// Fence transition: first read of a RdSh object with a stale
    /// per-thread rdShCount; a memory fence, no CAS.
    OptFence,
    /// Conflicting optimistic transition resolved with explicit (roundtrip)
    /// coordination.
    OptConflictExplicit,
    /// Conflicting optimistic transition resolved implicitly against a
    /// blocked thread.
    OptConflictImplicit,

    // --- Pessimistic transitions (top half of Table 3) ---
    /// Uncontended pessimistic transition that required a CAS.
    PessUncontended,
    /// Reentrant pessimistic transition: no state change, no atomic op
    /// (already read/write-locked appropriately by this thread).
    PessReentrant,
    /// Contended pessimistic transition: conflicted with a locked state and
    /// fell back to coordination.
    PessContended,
    /// Pessimistic transition whose previous state was last held by a
    /// *different* thread (§7.5 reports 26% of racyInc's pessimistic accesses
    /// "lock a state with a different thread than the previous access" —
    /// the remote-cache-miss proxy).
    PessOwnerChange,

    // --- Hybrid-model state moves (the diamonds of Figure 3) ---
    /// An object moved from optimistic to pessimistic states.
    OptToPess,
    /// An object moved from pessimistic back to optimistic states.
    PessToOpt,

    // --- Deferred unlocking ---
    /// A lock-buffer flush (at a PSRO or responding safe point).
    LockBufferFlush,
    /// An individual object state unlocked during a flush.
    StateUnlocked,

    // --- Coordination mechanics ---
    /// This thread responded to an explicit coordination request at a safe
    /// point.
    RespondedExplicit,
    /// This thread was coordinated with implicitly while blocked (counted on
    /// wake-up; several implicit coordinations may collapse into one epoch
    /// observation).
    ImplicitObservedOnWake,
    /// This thread performed an implicit coordination against a blocked
    /// remote thread.
    ImplicitPerformed,
    /// A coordination roundtrip this thread initiated (send → response).
    CoordinationRoundtrip,
    /// Total explicit requests answered across responding safe points. Each
    /// responding safe point drains its whole inbox and answers the batch
    /// with *one* release-clock bump, so
    /// `CoordBatchRequests / RespondedExplicit` is the mean batch occupancy
    /// (the coalescing rate Table-2-style reports can show).
    CoordBatchRequests,
    /// Coordination fan-outs initiated (one `coordinate_many` call: the
    /// conservative RdSh protocol that coordinates with every live peer).
    CoordFanout,
    /// Total peers covered by fan-outs; `CoordFanoutPeers / CoordFanout` is
    /// the mean fan-out width.
    CoordFanoutPeers,

    // --- Program-level events ---
    /// Tracked read access.
    Read,
    /// Tracked write access.
    Write,
    /// Monitor acquired without blocking.
    MonitorAcquireFast,
    /// Monitor acquire had to block.
    MonitorAcquireBlocked,
    /// Monitor released (a PSRO).
    MonitorRelease,
    /// Safe point poll executed.
    SafepointPoll,

    // --- Runtime support ---
    /// Recorder: a happens-before edge was logged.
    RecorderEdge,
    /// Replayer: a sink had to spin-wait for its source clock.
    ReplayWait,
    /// RS enforcer: a region started (or restarted) execution.
    RegionExec,
    /// RS enforcer: a region was rolled back and restarted.
    RegionRestart,
}

impl Event {
    /// Number of event kinds (length of the counter arrays).
    pub const COUNT: usize = Event::RegionRestart as usize + 1;

    /// Compile-time proof backing the unchecked indexing in
    /// [`LocalStats::bump`]: discriminants are the dense range `0..COUNT`.
    const EVENT_DISCRIMINANTS_DENSE: () = {
        let mut i = 0;
        while i < Event::COUNT {
            assert!((Event::ALL[i] as usize) == i, "Event discriminants must be dense 0..COUNT");
            i += 1;
        }
    };

    /// All events, in counter-index order.
    pub const ALL: [Event; Event::COUNT] = [
        Event::OptSameState,
        Event::OptUpgrading,
        Event::OptFence,
        Event::OptConflictExplicit,
        Event::OptConflictImplicit,
        Event::PessUncontended,
        Event::PessReentrant,
        Event::PessContended,
        Event::PessOwnerChange,
        Event::OptToPess,
        Event::PessToOpt,
        Event::LockBufferFlush,
        Event::StateUnlocked,
        Event::RespondedExplicit,
        Event::ImplicitObservedOnWake,
        Event::ImplicitPerformed,
        Event::CoordinationRoundtrip,
        Event::CoordBatchRequests,
        Event::CoordFanout,
        Event::CoordFanoutPeers,
        Event::Read,
        Event::Write,
        Event::MonitorAcquireFast,
        Event::MonitorAcquireBlocked,
        Event::MonitorRelease,
        Event::SafepointPoll,
        Event::RecorderEdge,
        Event::ReplayWait,
        Event::RegionExec,
        Event::RegionRestart,
    ];

    /// Stable human-readable name (used by the bench harnesses' reports).
    pub fn name(self) -> &'static str {
        match self {
            Event::OptSameState => "opt.same_state",
            Event::OptUpgrading => "opt.upgrading",
            Event::OptFence => "opt.fence",
            Event::OptConflictExplicit => "opt.conflict_explicit",
            Event::OptConflictImplicit => "opt.conflict_implicit",
            Event::PessUncontended => "pess.uncontended",
            Event::PessReentrant => "pess.reentrant",
            Event::PessContended => "pess.contended",
            Event::PessOwnerChange => "pess.owner_change",
            Event::OptToPess => "hybrid.opt_to_pess",
            Event::PessToOpt => "hybrid.pess_to_opt",
            Event::LockBufferFlush => "hybrid.lock_buffer_flush",
            Event::StateUnlocked => "hybrid.state_unlocked",
            Event::RespondedExplicit => "coord.responded_explicit",
            Event::ImplicitObservedOnWake => "coord.implicit_observed",
            Event::ImplicitPerformed => "coord.implicit_performed",
            Event::CoordinationRoundtrip => "coord.roundtrip",
            Event::CoordBatchRequests => "coord.batch_requests",
            Event::CoordFanout => "coord.fanout",
            Event::CoordFanoutPeers => "coord.fanout_peers",
            Event::Read => "access.read",
            Event::Write => "access.write",
            Event::MonitorAcquireFast => "monitor.acquire_fast",
            Event::MonitorAcquireBlocked => "monitor.acquire_blocked",
            Event::MonitorRelease => "monitor.release",
            Event::SafepointPoll => "safepoint.poll",
            Event::RecorderEdge => "recorder.edge",
            Event::ReplayWait => "replayer.wait",
            Event::RegionExec => "rs.region_exec",
            Event::RegionRestart => "rs.region_restart",
        }
    }
}

/// Per-thread event counters: plain integers, owned by one mutator, merged on
/// detach. Incrementing is a single add on thread-private memory, so the
/// measured protocols are unperturbed.
#[derive(Clone, Debug)]
pub struct LocalStats {
    counts: [u64; Event::COUNT],
}

impl Default for LocalStats {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        // Force evaluation of the discriminant-density proof that `bump`'s
        // unchecked indexing relies on.
        const { Event::EVENT_DISCRIMINANTS_DENSE };
        LocalStats {
            counts: [0; Event::COUNT],
        }
    }

    /// Count one occurrence of `e`.
    ///
    /// This sits on the read/write fast path of every engine, so it must
    /// compile to a single indexed add with no bounds check: `Event` is
    /// `repr(usize)` with dense discriminants `0..COUNT` (const-asserted
    /// below), so `e as usize` is always in range of the counter array.
    #[inline(always)]
    pub fn bump(&mut self, e: Event) {
        // Safety: every Event discriminant is < Event::COUNT (see the
        // EVENT_DISCRIMINANTS_DENSE const assertion).
        unsafe {
            *self.counts.get_unchecked_mut(e as usize) += 1;
        }
    }

    /// Count `n` occurrences of `e`.
    #[inline(always)]
    pub fn add(&mut self, e: Event, n: u64) {
        // Safety: as in `bump`.
        unsafe {
            *self.counts.get_unchecked_mut(e as usize) += n;
        }
    }

    /// Current count for `e`.
    #[inline]
    pub fn get(&self, e: Event) -> u64 {
        self.counts[e as usize]
    }

    /// Merge this thread's counters into the global aggregate.
    pub fn merge_into(&self, global: &GlobalStats) {
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                global.counts[i].fetch_add(c, Ordering::Relaxed);
            }
        }
    }
}

/// Process-wide aggregate of all mutators' counters.
#[derive(Debug)]
pub struct GlobalStats {
    counts: [AtomicU64; Event::COUNT],
}

impl Default for GlobalStats {
    fn default() -> Self {
        Self::new()
    }
}

impl GlobalStats {
    /// Fresh zeroed aggregate.
    pub fn new() -> Self {
        GlobalStats {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Current aggregate count for `e`.
    pub fn get(&self, e: Event) -> u64 {
        self.counts[e as usize].load(Ordering::Relaxed)
    }

    /// Snapshot every counter into a serializable report.
    pub fn report(&self) -> StatsReport {
        let mut counts = [0u64; Event::COUNT];
        for (i, c) in self.counts.iter().enumerate() {
            counts[i] = c.load(Ordering::Relaxed);
        }
        StatsReport { counts }
    }

    /// Reset all counters to zero (between benchmark phases).
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// An immutable snapshot of [`GlobalStats`], with the derived quantities the
/// paper reports.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct StatsReport {
    counts: [u64; Event::COUNT],
}

impl StatsReport {
    /// Count for one event kind.
    pub fn get(&self, e: Event) -> u64 {
        self.counts[e as usize]
    }

    /// Total tracked accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.get(Event::Read) + self.get(Event::Write)
    }

    /// Table 2, "Optimistic / Same state".
    pub fn opt_same_state(&self) -> u64 {
        self.get(Event::OptSameState)
    }

    /// Table 2, "Optimistic / Conflicting" (explicit + implicit).
    pub fn opt_conflicting(&self) -> u64 {
        self.get(Event::OptConflictExplicit) + self.get(Event::OptConflictImplicit)
    }

    /// Table 2, "Pessimistic / Uncontended" (CAS + reentrant).
    pub fn pess_uncontended(&self) -> u64 {
        self.get(Event::PessUncontended) + self.get(Event::PessReentrant)
    }

    /// Table 2, "%Reentrant": share of uncontended pessimistic transitions
    /// that were reentrant (no atomic operation).
    pub fn pess_reentrant_pct(&self) -> f64 {
        let unc = self.pess_uncontended();
        if unc == 0 {
            0.0
        } else {
            100.0 * self.get(Event::PessReentrant) as f64 / unc as f64
        }
    }

    /// Table 2, "Pessimistic / Contended".
    pub fn pess_contended(&self) -> u64 {
        self.get(Event::PessContended)
    }

    /// Table 2, "Opt. to Pess.".
    pub fn opt_to_pess(&self) -> u64 {
        self.get(Event::OptToPess)
    }

    /// Table 2, "Pess. to Opt.".
    pub fn pess_to_opt(&self) -> u64 {
        self.get(Event::PessToOpt)
    }

    /// Conflict rate: conflicting optimistic transitions (explicit only, as
    /// in Figure 6) over all accesses.
    pub fn explicit_conflict_rate(&self) -> f64 {
        let acc = self.accesses();
        if acc == 0 {
            0.0
        } else {
            self.get(Event::OptConflictExplicit) as f64 / acc as f64
        }
    }

    /// Mean number of explicit requests answered per responding safe point
    /// (≥ 1 whenever any response happened). A value above 1 means
    /// responder-side batching coalesced requests: N tokens were answered by
    /// one release-clock bump instead of N.
    pub fn batch_occupancy(&self) -> f64 {
        let responses = self.get(Event::RespondedExplicit);
        if responses == 0 {
            0.0
        } else {
            self.get(Event::CoordBatchRequests) as f64 / responses as f64
        }
    }

    /// Mean number of peers per coordination fan-out (the conservative RdSh
    /// protocol's width).
    pub fn fanout_width(&self) -> f64 {
        let fanouts = self.get(Event::CoordFanout);
        if fanouts == 0 {
            0.0
        } else {
            self.get(Event::CoordFanoutPeers) as f64 / fanouts as f64
        }
    }

    /// All (event, count) pairs with non-zero counts, for printing.
    pub fn nonzero(&self) -> Vec<(Event, u64)> {
        Event::ALL
            .iter()
            .copied()
            .filter(|&e| self.get(e) != 0)
            .map(|e| (e, self.get(e)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_all_is_in_discriminant_order() {
        for (i, e) in Event::ALL.iter().enumerate() {
            assert_eq!(*e as usize, i, "ALL out of order at {i}: {e:?}");
        }
    }

    #[test]
    fn event_names_are_unique() {
        let mut names: Vec<_> = Event::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Event::COUNT);
    }

    #[test]
    fn local_merge_accumulates() {
        let global = GlobalStats::new();
        let mut a = LocalStats::new();
        let mut b = LocalStats::new();
        a.bump(Event::Read);
        a.add(Event::OptSameState, 10);
        b.add(Event::Read, 2);
        b.bump(Event::PessContended);
        a.merge_into(&global);
        b.merge_into(&global);
        let r = global.report();
        assert_eq!(r.get(Event::Read), 3);
        assert_eq!(r.get(Event::OptSameState), 10);
        assert_eq!(r.get(Event::PessContended), 1);
        assert_eq!(r.get(Event::Write), 0);
    }

    #[test]
    fn report_derives_table2_columns() {
        let global = GlobalStats::new();
        let mut l = LocalStats::new();
        l.add(Event::Read, 60);
        l.add(Event::Write, 40);
        l.add(Event::PessUncontended, 30);
        l.add(Event::PessReentrant, 10);
        l.add(Event::OptConflictExplicit, 5);
        l.add(Event::OptConflictImplicit, 2);
        l.merge_into(&global);
        let r = global.report();
        assert_eq!(r.accesses(), 100);
        assert_eq!(r.pess_uncontended(), 40);
        assert!((r.pess_reentrant_pct() - 25.0).abs() < 1e-9);
        assert_eq!(r.opt_conflicting(), 7);
        assert!((r.explicit_conflict_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn report_derives_coordination_batch_columns() {
        let global = GlobalStats::new();
        let mut l = LocalStats::new();
        // 4 responding safe points answered 10 requests total.
        l.add(Event::RespondedExplicit, 4);
        l.add(Event::CoordBatchRequests, 10);
        // 3 fan-outs covered 21 peers (8-thread runtime).
        l.add(Event::CoordFanout, 3);
        l.add(Event::CoordFanoutPeers, 21);
        l.merge_into(&global);
        let r = global.report();
        assert!((r.batch_occupancy() - 2.5).abs() < 1e-12);
        assert!((r.fanout_width() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_counters() {
        let global = GlobalStats::new();
        let mut l = LocalStats::new();
        l.bump(Event::RegionRestart);
        l.merge_into(&global);
        assert_eq!(global.get(Event::RegionRestart), 1);
        global.reset();
        assert_eq!(global.get(Event::RegionRestart), 0);
    }

    #[test]
    fn empty_report_rates_are_zero() {
        let r = GlobalStats::new().report();
        assert_eq!(r.pess_reentrant_pct(), 0.0);
        assert_eq!(r.explicit_conflict_rate(), 0.0);
        assert!(r.nonzero().is_empty());
    }
}
