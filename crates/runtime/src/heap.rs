//! The tracked-object heap.
//!
//! Jikes RVM adds "two 32-bit words to each (scalar and array) object and
//! static field: one for last-access state and another for the adaptive
//! policy's profile information" (§7.1). Our [`ObjHeader`] is the Rust
//! equivalent: a 64-bit **state word** (interpreted only by `drink-core`),
//! a 64-bit **profile word** (interpreted only by the adaptive policy), and a
//! 64-bit **data word** standing in for the object's payload.
//!
//! The data word is an atomic accessed with `Relaxed` ordering: the *program*
//! under test is allowed to race on it (that is the whole point of tracking),
//! and the tracking protocols — not the data accesses — are responsible for
//! establishing happens-before between conflicting accesses. Using a relaxed
//! atomic keeps racy programs well-defined in Rust while adding no fences,
//! exactly like a plain field access in Java.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::ids::ObjId;

/// One tracked shared object: state word + profile word + payload.
#[derive(Debug)]
pub struct ObjHeader {
    state: AtomicU64,
    profile: AtomicU64,
    data: AtomicU64,
}

impl Default for ObjHeader {
    fn default() -> Self {
        Self::new()
    }
}

impl ObjHeader {
    /// A fresh object with all three words zero. The zero state word is
    /// defined by `drink-core` to be "WrEx-optimistic, owned by thread 0";
    /// engines that need a different initial state re-initialize at
    /// allocation via [`ObjHeader::reset`].
    pub fn new() -> Self {
        ObjHeader {
            state: AtomicU64::new(0),
            profile: AtomicU64::new(0),
            data: AtomicU64::new(0),
        }
    }

    /// The last-access state word. All interpretation lives in `drink-core`.
    #[inline(always)]
    pub fn state(&self) -> &AtomicU64 {
        &self.state
    }

    /// The adaptive policy's profile word.
    #[inline(always)]
    pub fn profile(&self) -> &AtomicU64 {
        &self.profile
    }

    /// Program-level read of the payload (relaxed; races allowed).
    #[inline(always)]
    pub fn data_read(&self) -> u64 {
        self.data.load(Ordering::Relaxed)
    }

    /// Program-level write of the payload (relaxed; races allowed).
    #[inline(always)]
    pub fn data_write(&self, v: u64) {
        self.data.store(v, Ordering::Relaxed);
    }

    /// Reset all three words (object re-allocation between runs).
    pub fn reset(&self, state: u64) {
        self.state.store(state, Ordering::SeqCst);
        self.profile.store(0, Ordering::SeqCst);
        self.data.store(0, Ordering::SeqCst);
    }
}

/// A fixed-size table of tracked objects.
///
/// Workloads size the heap up front; `ObjId`s are dense indices. (The paper's
/// programs allocate dynamically, but allocation itself is not part of any
/// measured protocol — each newly allocated object simply starts in
/// `WrExOpt(T)` for its allocating thread, which engines establish via
/// [`Heap::reset_all`] or per-object resets.)
#[derive(Debug)]
pub struct Heap {
    objects: Box<[ObjHeader]>,
}

impl Heap {
    /// A heap of `n` zeroed objects.
    pub fn new(n: usize) -> Self {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, ObjHeader::new);
        Heap {
            objects: v.into_boxed_slice(),
        }
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the heap holds no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The object with id `o`. Panics on out-of-range ids (a workload bug,
    /// never a protocol condition).
    #[inline(always)]
    pub fn obj(&self, o: ObjId) -> &ObjHeader {
        &self.objects[o.index()]
    }

    /// Iterate over `(ObjId, &ObjHeader)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, &ObjHeader)> {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, h)| (ObjId(i as u32), h))
    }

    /// Store `state` into every object's state word and clear profiles/data.
    pub fn reset_all(&self, state: u64) {
        for o in self.objects.iter() {
            o.reset(state);
        }
    }

    /// Snapshot of every object's payload, for replay-determinism checks.
    pub fn snapshot_data(&self) -> Vec<u64> {
        self.objects.iter().map(|o| o.data_read()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_indexing_and_len() {
        let h = Heap::new(8);
        assert_eq!(h.len(), 8);
        assert!(!h.is_empty());
        h.obj(ObjId(7)).data_write(99);
        assert_eq!(h.obj(ObjId(7)).data_read(), 99);
        assert_eq!(h.obj(ObjId(0)).data_read(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_obj_panics() {
        let h = Heap::new(2);
        h.obj(ObjId(2));
    }

    #[test]
    fn reset_all_clears_words() {
        let h = Heap::new(3);
        for (_, o) in h.iter() {
            o.data_write(5);
            o.state().store(123, Ordering::SeqCst);
            o.profile().store(9, Ordering::SeqCst);
        }
        h.reset_all(77);
        for (_, o) in h.iter() {
            assert_eq!(o.data_read(), 0);
            assert_eq!(o.state().load(Ordering::SeqCst), 77);
            assert_eq!(o.profile().load(Ordering::SeqCst), 0);
        }
    }

    #[test]
    fn snapshot_reflects_data() {
        let h = Heap::new(4);
        h.obj(ObjId(1)).data_write(10);
        h.obj(ObjId(3)).data_write(30);
        assert_eq!(h.snapshot_data(), vec![0, 10, 0, 30]);
    }

    #[test]
    fn iter_yields_dense_ids() {
        let h = Heap::new(5);
        let ids: Vec<u32> = h.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
