//! The tracked-object heap.
//!
//! Jikes RVM adds "two 32-bit words to each (scalar and array) object and
//! static field: one for last-access state and another for the adaptive
//! policy's profile information" (§7.1). Our [`ObjHeader`] is the Rust
//! equivalent: a 64-bit **state word** (interpreted only by `drink-core`),
//! a 64-bit **profile word** (interpreted only by the adaptive policy), and a
//! 64-bit **data word** standing in for the object's payload.
//!
//! The data word is an atomic accessed with `Relaxed` ordering: the *program*
//! under test is allowed to race on it (that is the whole point of tracking),
//! and the tracking protocols — not the data accesses — are responsible for
//! establishing happens-before between conflicting accesses. Using a relaxed
//! atomic keeps racy programs well-defined in Rust while adding no fences,
//! exactly like a plain field access in Java.
//!
//! # Layout
//!
//! The heap supports two storage layouts behind one access path:
//!
//! * **compact** (default): headers are packed back to back (32 bytes each),
//!   matching the seed layout so Table 2 / Figure 7 numbers stay comparable.
//!   Neighboring objects share cache lines, so concurrent state-word CASes on
//!   adjacent `ObjId`s false-share.
//! * **padded**: each header is padded to its own 64-byte cache line
//!   ([`RuntimeConfig::padded_headers`](crate::runtime::RuntimeConfig)),
//!   eliminating that false sharing at 2.7× the memory cost.
//!
//! The layout is fully encapsulated here: [`Heap::obj`] computes the header
//! address from a base pointer and a stride, so engine code is identical
//! under both layouts and flipping the knob never touches `drink-core`.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::ids::ObjId;
use crate::registry::ShardMap;

/// One tracked shared object: state word + profile word + seqlock version +
/// payload.
///
/// `repr(C)` so the padded layout can rely on the header sitting at offset 0
/// of its padded slot.
#[derive(Debug)]
#[repr(C)]
pub struct ObjHeader {
    state: AtomicU64,
    profile: AtomicU64,
    /// Seqlock version counter for the coordination-free read path: bumped
    /// (wrapping) at every state-word install, validated by optimistic
    /// readers of read-mostly RdSh objects (DESIGN.md §12). A sibling word
    /// rather than spare state-word bits: the state word has only three free
    /// bits, far too few for a counter that must not alias within a read
    /// window. Interpretation (and the version arithmetic) lives in
    /// `drink-core`'s `word::VersionWord`.
    version: AtomicU64,
    data: AtomicU64,
}

impl Default for ObjHeader {
    fn default() -> Self {
        Self::new()
    }
}

impl ObjHeader {
    /// A fresh object with all three words zero. The zero state word is
    /// defined by `drink-core` to be "WrEx-optimistic, owned by thread 0";
    /// engines that need a different initial state re-initialize at
    /// allocation via [`ObjHeader::reset`].
    pub fn new() -> Self {
        ObjHeader {
            state: AtomicU64::new(0),
            profile: AtomicU64::new(0),
            version: AtomicU64::new(0),
            data: AtomicU64::new(0),
        }
    }

    /// The last-access state word. All interpretation lives in `drink-core`.
    #[inline(always)]
    pub fn state(&self) -> &AtomicU64 {
        &self.state
    }

    /// The adaptive policy's profile word.
    #[inline(always)]
    pub fn profile(&self) -> &AtomicU64 {
        &self.profile
    }

    /// The seqlock version word (see the field docs).
    #[inline(always)]
    pub fn version(&self) -> &AtomicU64 {
        &self.version
    }

    /// Advance the version counter (wrapping). Called at **every**
    /// state-word install — claim, publish, unlock, coordination-induced
    /// change — immediately after the installing CAS/store and before the
    /// installer's payload write.
    ///
    /// Ordering (the full argument is DESIGN.md §12): the `AcqRel` RMW's
    /// acquire half keeps the installer's subsequent payload store from
    /// sinking above the bump, and the trailing **release fence** is the
    /// seqlock writer fence — it pairs with the validating reader's acquire
    /// fence *through the payload word itself*, so a reader whose payload
    /// load observed any post-bump write is guaranteed to observe the bump
    /// at revalidation and retry.
    #[inline(always)]
    pub fn bump_version(&self) {
        #[cfg(feature = "check-invariants")]
        if crate::injected_bug("skip-version-bump") {
            return;
        }
        self.version.fetch_add(1, Ordering::AcqRel);
        fence(Ordering::Release);
    }

    /// Program-level read of the payload (relaxed; races allowed).
    #[inline(always)]
    pub fn data_read(&self) -> u64 {
        self.data.load(Ordering::Relaxed)
    }

    /// Program-level write of the payload (relaxed; races allowed).
    #[inline(always)]
    pub fn data_write(&self, v: u64) {
        self.data.store(v, Ordering::Relaxed);
    }

    /// Reset all four words (object re-allocation between runs).
    pub fn reset(&self, state: u64) {
        self.state.store(state, Ordering::SeqCst);
        self.profile.store(0, Ordering::SeqCst);
        self.version.store(0, Ordering::SeqCst);
        self.data.store(0, Ordering::SeqCst);
    }

    /// Relaxed variant of [`ObjHeader::reset`] for bulk loops; the caller
    /// publishes all of them with one trailing fence.
    fn reset_relaxed(&self, state: u64) {
        self.state.store(state, Ordering::Relaxed);
        self.profile.store(0, Ordering::Relaxed);
        self.version.store(0, Ordering::Relaxed);
        self.data.store(0, Ordering::Relaxed);
    }
}

/// An [`ObjHeader`] padded out to one cache line.
#[derive(Debug, Default)]
#[repr(C, align(64))]
struct PaddedSlot {
    header: ObjHeader,
}

/// Owning storage for the two layouts. Kept only for its `Drop`; all access
/// goes through the base pointer + stride in [`Heap`].
#[derive(Debug)]
enum Slots {
    // The boxes are never read through — they exist to own the allocation
    // that `Heap::base` points into and free it on drop.
    Compact(#[allow(dead_code)] Box<[ObjHeader]>),
    Padded(#[allow(dead_code)] Box<[PaddedSlot]>),
}

/// A fixed-size table of tracked objects.
///
/// Workloads size the heap up front; `ObjId`s are dense indices. (The paper's
/// programs allocate dynamically, but allocation itself is not part of any
/// measured protocol — each newly allocated object simply starts in
/// `WrExOpt(T)` for its allocating thread, which engines establish via
/// [`Heap::reset_all`] or per-object resets.)
#[derive(Debug)]
pub struct Heap {
    /// First header. Headers are `stride` bytes apart; the stride is the
    /// only thing the two layouts disagree on, so `obj()` is branch-free.
    base: *const u8,
    stride: usize,
    len: usize,
    _slots: Slots,
    /// Per-(object × thread-shard) access-epoch table (DESIGN.md §14),
    /// row-major by object: `epochs[o * shards + s]` holds the heap
    /// generation at which some thread of registry shard `s` first accessed
    /// object `o`, or an older generation if none has. Empty when the
    /// runtime runs with a single thread shard — the skip machinery is then
    /// disabled wholesale and the tracked fast paths pay nothing.
    epochs: Box<[AtomicU64]>,
    /// Thread-shard mapping the epoch table is indexed by (must match the
    /// registry's).
    shard_map: ShardMap,
    /// Heap generation, bumped by [`Heap::reset_all`]. A stamp is live only
    /// if it equals the current generation, which is how a bulk reset
    /// invalidates every stamp without touching the table.
    epoch_gen: AtomicU64,
}

// Safety: the pointer field aliases the heap-allocated `_slots` storage,
// whose element types (atomics) are Sync; `base` is never written through
// except via those atomics.
unsafe impl Send for Heap {}
unsafe impl Sync for Heap {}

impl Heap {
    /// A heap of `n` zeroed objects in the compact (seed) layout.
    pub fn new(n: usize) -> Self {
        Self::with_layout(n, false)
    }

    /// A heap of `n` zeroed objects; `padded` selects one-header-per-cache-
    /// line storage. Single thread shard (no access-epoch table).
    pub fn with_layout(n: usize, padded: bool) -> Self {
        Self::with_shards(n, padded, ShardMap::new(1))
    }

    /// A heap of `n` zeroed objects with an access-epoch table indexed by
    /// `shard_map` (the runtime passes its registry's thread-shard mapping).
    pub fn with_shards(n: usize, padded: bool, shard_map: ShardMap) -> Self {
        let shards = shard_map.shards();
        let epochs = if shards > 1 {
            (0..n * shards).map(|_| AtomicU64::new(0)).collect::<Vec<_>>().into_boxed_slice()
        } else {
            Box::default()
        };
        if padded {
            let mut v = Vec::with_capacity(n);
            v.resize_with(n, PaddedSlot::default);
            let slots = v.into_boxed_slice();
            Heap {
                base: slots.as_ptr().cast(),
                stride: std::mem::size_of::<PaddedSlot>(),
                len: n,
                _slots: Slots::Padded(slots),
                epochs,
                shard_map,
                epoch_gen: AtomicU64::new(1),
            }
        } else {
            let mut v = Vec::with_capacity(n);
            v.resize_with(n, ObjHeader::new);
            let slots = v.into_boxed_slice();
            Heap {
                base: slots.as_ptr().cast(),
                stride: std::mem::size_of::<ObjHeader>(),
                len: n,
                _slots: Slots::Compact(slots),
                epochs,
                shard_map,
                epoch_gen: AtomicU64::new(1),
            }
        }
    }

    // --- Access-epoch table (DESIGN.md §14) ---

    /// Number of thread shards the access-epoch table is indexed by (1 means
    /// the table is absent and every stamp/skip query is a no-op).
    #[inline(always)]
    pub fn thread_shards(&self) -> usize {
        self.shard_map.shards()
    }

    /// The thread-shard mapping of the epoch table (the registry's mapping).
    #[inline(always)]
    pub fn thread_shard_map(&self) -> ShardMap {
        self.shard_map
    }

    /// Current heap generation (bumped by [`Heap::reset_all`]).
    #[inline]
    pub fn epoch_generation(&self) -> u64 {
        self.epoch_gen.load(Ordering::Relaxed)
    }

    /// Stamp object `o`'s access epoch for thread shard `shard`: records
    /// "some thread of this shard has (begun to) access `o` in the current
    /// heap generation". Engines call this at every tracked access, before
    /// loading the state word; after the first stamp per (object, shard,
    /// generation) the call is one relaxed load and a predicted branch.
    ///
    /// Ordering: the first stamp is a `SeqCst` store followed by a `SeqCst`
    /// fence, so the stamp is ordered before the stamper's subsequent
    /// state-word load in the single total order. A fan-out requester reads
    /// the epoch with a `SeqCst` load ([`Heap::shard_stamped`]); if that
    /// load does not observe the stamp, the stamp — and hence every access
    /// the stamping thread performs — is ordered after the requester's
    /// snapshot, which is exactly the already-tolerated "peer had not
    /// touched the object at snapshot time" vacuous case (full argument:
    /// DESIGN.md §14).
    #[inline(always)]
    pub fn stamp_access(&self, o: ObjId, shard: usize) {
        if self.thread_shards() == 1 {
            return;
        }
        let gen = self.epoch_gen.load(Ordering::Relaxed);
        let slot = &self.epochs[o.index() * self.thread_shards() + shard];
        if slot.load(Ordering::Relaxed) == gen {
            return;
        }
        #[cfg(feature = "check-invariants")]
        if crate::injected_bug("skip-epoch-stamp") {
            return;
        }
        slot.store(gen, Ordering::SeqCst);
        fence(Ordering::SeqCst);
    }

    /// Is shard `shard` stamped for object `o` in the current generation?
    /// `false` proves no thread of that shard has accessed `o` since the
    /// last [`Heap::reset_all`] (modulo the tolerated race documented at
    /// [`Heap::stamp_access`]); with a single thread shard this is always
    /// `false` and callers must not consult it for skip decisions.
    #[inline]
    pub fn shard_stamped(&self, o: ObjId, shard: usize) -> bool {
        if self.thread_shards() == 1 {
            return false;
        }
        self.epochs[o.index() * self.thread_shards() + shard].load(Ordering::SeqCst)
            == self.epoch_gen.load(Ordering::Relaxed)
    }

    /// Per-object bitmask of stamped thread shards (bit `s` set iff shard
    /// `s` is stamped in the current generation; shards beyond 64 are not
    /// representable and are omitted). The shard-skip oracle compares this
    /// against the stamps the workload's access pattern implies.
    pub fn stamp_snapshot(&self) -> Vec<u64> {
        let shards = self.thread_shards().min(64);
        (0..self.len)
            .map(|i| {
                let o = ObjId(i as u32);
                (0..shards).fold(0u64, |m, s| {
                    if self.shard_stamped(o, s) { m | (1 << s) } else { m }
                })
            })
            .collect()
    }

    /// True if this heap pads each header to its own cache line.
    pub fn is_padded(&self) -> bool {
        matches!(self._slots, Slots::Padded(_))
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the heap holds no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The object with id `o`. Panics on out-of-range ids (a workload bug,
    /// never a protocol condition).
    #[inline(always)]
    pub fn obj(&self, o: ObjId) -> &ObjHeader {
        let i = o.index();
        assert!(i < self.len, "ObjId {} out of range (heap len {})", o.0, self.len);
        // Safety: i is in range; a header lives at every multiple of
        // `stride` from `base` (offset 0 of its slot in both layouts), and
        // the storage outlives `&self`.
        unsafe { &*self.base.add(i * self.stride).cast::<ObjHeader>() }
    }

    /// Iterate over `(ObjId, &ObjHeader)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, &ObjHeader)> {
        (0..self.len).map(|i| {
            let id = ObjId(i as u32);
            (id, self.obj(id))
        })
    }

    /// Store `state` into every object's state word and clear profiles/data.
    ///
    /// The stores are Relaxed with one trailing SeqCst fence: bulk reset is
    /// a single-threaded setup step, and one fence publishes the whole heap
    /// at a fraction of the cost of 3·n SeqCst stores.
    ///
    /// Also bumps the heap generation, which invalidates every access-epoch
    /// stamp at once (a stamp is live only in the generation it was made;
    /// see DESIGN.md §14).
    pub fn reset_all(&self, state: u64) {
        for (_, o) in self.iter() {
            o.reset_relaxed(state);
        }
        self.epoch_gen.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
    }

    /// Snapshot of every object's payload, for replay-determinism checks.
    pub fn snapshot_data(&self) -> Vec<u64> {
        self.iter().map(|(_, o)| o.data_read()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_indexing_and_len() {
        let h = Heap::new(8);
        assert_eq!(h.len(), 8);
        assert!(!h.is_empty());
        h.obj(ObjId(7)).data_write(99);
        assert_eq!(h.obj(ObjId(7)).data_read(), 99);
        assert_eq!(h.obj(ObjId(0)).data_read(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_obj_panics() {
        let h = Heap::new(2);
        h.obj(ObjId(2));
    }

    #[test]
    #[should_panic]
    fn out_of_range_obj_panics_padded() {
        let h = Heap::with_layout(2, true);
        h.obj(ObjId(2));
    }

    #[test]
    fn reset_all_clears_words() {
        for padded in [false, true] {
            let h = Heap::with_layout(3, padded);
            for (_, o) in h.iter() {
                o.data_write(5);
                o.state().store(123, Ordering::SeqCst);
                o.profile().store(9, Ordering::SeqCst);
            }
            h.reset_all(77);
            for (_, o) in h.iter() {
                assert_eq!(o.data_read(), 0);
                assert_eq!(o.state().load(Ordering::SeqCst), 77);
                assert_eq!(o.profile().load(Ordering::SeqCst), 0);
            }
        }
    }

    #[test]
    fn snapshot_reflects_data() {
        let h = Heap::new(4);
        h.obj(ObjId(1)).data_write(10);
        h.obj(ObjId(3)).data_write(30);
        assert_eq!(h.snapshot_data(), vec![0, 10, 0, 30]);
    }

    #[test]
    fn iter_yields_dense_ids() {
        let h = Heap::new(5);
        let ids: Vec<u32> = h.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn layout_strides() {
        assert_eq!(std::mem::size_of::<ObjHeader>(), 32);
        assert_eq!(std::mem::size_of::<PaddedSlot>(), 64);
        let compact = Heap::new(4);
        let padded = Heap::with_layout(4, true);
        assert!(!compact.is_padded());
        assert!(padded.is_padded());
        let gap = |h: &Heap| {
            let a = h.obj(ObjId(0)) as *const _ as usize;
            let b = h.obj(ObjId(1)) as *const _ as usize;
            b - a
        };
        assert_eq!(gap(&compact), 32);
        assert_eq!(gap(&padded), 64);
        // Padded headers never share a cache line.
        assert_eq!(padded.obj(ObjId(1)) as *const _ as usize % 64, 0);
    }

    /// The sibling version word is invisible to the layout knob: it behaves
    /// identically under both strides, sits inside the header (same cache
    /// line as the state word in the padded layout), and bumping it never
    /// disturbs its neighbors.
    #[test]
    fn version_word_is_layout_invisible() {
        for padded in [false, true] {
            let h = Heap::with_layout(3, padded);
            let o = h.obj(ObjId(1));
            o.state().store(123, Ordering::SeqCst);
            o.profile().store(9, Ordering::SeqCst);
            o.data_write(5);
            assert_eq!(o.version().load(Ordering::SeqCst), 0);
            for _ in 0..4 {
                o.bump_version();
            }
            assert_eq!(o.version().load(Ordering::SeqCst), 4, "padded={padded}");
            // Neighboring words are untouched by bumps...
            assert_eq!(o.state().load(Ordering::SeqCst), 123);
            assert_eq!(o.profile().load(Ordering::SeqCst), 9);
            assert_eq!(o.data_read(), 5);
            // ...and neighboring *objects* have their own counters.
            assert_eq!(h.obj(ObjId(0)).version().load(Ordering::SeqCst), 0);
            assert_eq!(h.obj(ObjId(2)).version().load(Ordering::SeqCst), 0);
            // The version word lives inside the header span under both
            // layouts (no out-of-header sidecar that padding could miss).
            let base = o as *const ObjHeader as usize;
            let v = o.version() as *const _ as usize;
            assert!(v >= base && v < base + std::mem::size_of::<ObjHeader>());
            // reset_all clears it like the other words.
            h.reset_all(0);
            assert_eq!(o.version().load(Ordering::SeqCst), 0);
        }
    }

    #[test]
    fn padded_heap_behaves_identically() {
        let h = Heap::with_layout(6, true);
        h.obj(ObjId(5)).data_write(7);
        h.obj(ObjId(5)).state().store(1, Ordering::SeqCst);
        assert_eq!(h.snapshot_data(), vec![0, 0, 0, 0, 0, 7]);
        assert_eq!(h.iter().count(), 6);
    }

    #[test]
    fn single_shard_heap_has_no_epoch_table() {
        let h = Heap::new(4);
        assert_eq!(h.thread_shards(), 1);
        // Stamps are no-ops and skip queries always answer "not stamped".
        h.stamp_access(ObjId(0), 0);
        assert!(!h.shard_stamped(ObjId(0), 0));
    }

    #[test]
    fn stamps_are_per_object_per_shard_and_reset_invalidates() {
        for padded in [false, true] {
            let h = Heap::with_shards(3, padded, ShardMap::new(4));
            assert_eq!(h.thread_shards(), 4);
            assert!(!h.shard_stamped(ObjId(1), 2));
            h.stamp_access(ObjId(1), 2);
            assert!(h.shard_stamped(ObjId(1), 2), "padded={padded}");
            // Neither neighboring objects nor neighboring shards are stamped.
            assert!(!h.shard_stamped(ObjId(0), 2));
            assert!(!h.shard_stamped(ObjId(2), 2));
            assert!(!h.shard_stamped(ObjId(1), 1));
            assert!(!h.shard_stamped(ObjId(1), 3));
            assert_eq!(h.stamp_snapshot(), vec![0, 1 << 2, 0]);
            // Bulk reset invalidates every stamp without touching the table.
            let gen = h.epoch_generation();
            h.reset_all(0);
            assert_eq!(h.epoch_generation(), gen + 1);
            assert!(!h.shard_stamped(ObjId(1), 2));
            // Re-stamping in the new generation works.
            h.stamp_access(ObjId(1), 2);
            assert!(h.shard_stamped(ObjId(1), 2));
        }
    }

    use proptest::prelude::*;

    proptest! {
        /// Satellite: epoch-stamp monotonicity. A shard once stamped for an
        /// object is never reported unstamped (i.e. never skipped) again
        /// until the next heap reset, regardless of interleaved stamps to
        /// other objects and shards.
        #[test]
        fn stamp_monotonic_until_reset(
            objs in 1usize..8,
            shards in 2usize..8,
            ops in proptest::collection::vec((0usize..8, 0usize..8, 0usize..10), 0..64),
        ) {
            let map = ShardMap::new(shards);
            let h = Heap::with_shards(objs, false, map);
            let mut live: std::collections::HashSet<(usize, usize)> = Default::default();
            for (o, s, roll) in ops {
                let (o, s) = (o % objs, s % map.shards());
                // Roll 0 (10% of steps): bulk reset; otherwise stamp.
                if roll == 0 {
                    h.reset_all(0);
                    live.clear();
                } else {
                    h.stamp_access(ObjId(o as u32), s);
                    live.insert((o, s));
                }
                // Every stamp made since the last reset is still visible;
                // everything else reads unstamped.
                for oo in 0..objs {
                    for ss in 0..map.shards() {
                        prop_assert_eq!(
                            h.shard_stamped(ObjId(oo as u32), ss),
                            live.contains(&(oo, ss)),
                            "o={} s={}", oo, ss
                        );
                    }
                }
            }
        }
    }
}
