//! Cache-line padding for items that live in dense shared arrays.

/// Pads and aligns `T` to 128 bytes on x86_64/aarch64 (two 64-byte lines:
/// Intel's spatial prefetcher pulls line pairs, making 128 the effective
/// false-sharing granularity — same reasoning as crossbeam's `CachePadded`)
/// and 64 bytes elsewhere.
///
/// Used for per-thread state slots: thread A's hot mutable state
/// (lock buffer, stats) must not share a line with thread B's.
#[derive(Debug, Default)]
#[cfg_attr(any(target_arch = "x86_64", target_arch = "aarch64"), repr(align(128)))]
#[cfg_attr(not(any(target_arch = "x86_64", target_arch = "aarch64")), repr(align(64)))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    #[inline(always)]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_array_elements_do_not_share_lines() {
        let v: Vec<CachePadded<u8>> = (0..4).map(CachePadded::new).collect();
        let stride = std::mem::size_of::<CachePadded<u8>>();
        assert!(stride >= 64);
        let a = &*v[0] as *const u8 as usize;
        let b = &*v[1] as *const u8 as usize;
        assert_eq!(b - a, stride);
        assert_eq!(a % stride, 0);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(41u64);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }
}
