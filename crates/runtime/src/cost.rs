//! The paper's cycle-cost model (§2.2).
//!
//! > "The average time in CPU cycles for pessimistic instrumentation is 150
//! > cycles ... Optimistic instrumentation's cost is only a few dozen cycles
//! > for non-communicating accesses (Same state), but conflicting transitions
//! > that use Explicit coordination cost 2–3 orders of magnitude more ...
//! > Implicit coordination ... is relatively close to the cost of a
//! > pessimistic access."
//!
//! | kind                    | cycles |
//! |-------------------------|--------|
//! | pessimistic             | 150    |
//! | optimistic same-state   | 47     |
//! | conflicting (explicit)  | 9 200  |
//! | conflicting (implicit)  | 360    |
//!
//! We use the model in two places. First, the adaptive policy's constant
//! `K_confl = (T_confl − T_pess) / (T_pess − T_nonConfl)` is derived from it
//! (§6.1); with the paper's numbers that is (9200−150)/(150−47) ≈ 88, though
//! the paper's evaluation uses K_confl = 200. Second, the bench harnesses
//! convert measured transition *counts* into a platform-independent overhead
//! estimate, so that the shape of Figure 7 can be reproduced even though our
//! substrate is not the authors' 32-core Xeon.

use serde::{Deserialize, Serialize};

use crate::stats::{Event, StatsReport};

/// Per-transition-kind costs in CPU cycles, defaulting to the paper's §2.2
/// measurements.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Pessimistic transition (CAS lock + unlock), any transition type.
    pub pessimistic: f64,
    /// Optimistic same-state transition (fast path, no synchronization).
    pub opt_same_state: f64,
    /// Optimistic upgrading transition (one CAS). The paper's cost–benefit
    /// model treats these as costing about as much as a pessimistic
    /// transition (§6.1, footnote 5).
    pub opt_upgrading: f64,
    /// Optimistic fence transition (memory fence, no CAS).
    pub opt_fence: f64,
    /// Conflicting transition using explicit (roundtrip) coordination.
    pub conflict_explicit: f64,
    /// Conflicting transition using implicit coordination.
    pub conflict_implicit: f64,
    /// Reentrant pessimistic transition: a load and a branch, no atomic op.
    pub pess_reentrant: f64,
    /// Contended pessimistic transition: falls back to coordination, so it
    /// costs about as much as an explicit optimistic conflict.
    pub pess_contended: f64,
    /// Per-object bookkeeping when the adaptive policy moves an object
    /// between pessimistic and optimistic states (a CAS plus profiling).
    pub policy_move: f64,
    /// Releasing one pessimistic state (a CAS). Deferred unlocking batches
    /// these at PSROs; the §3.1 eager-unlock ablation pays one per access.
    pub state_unlock: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper()
    }
}

impl CostModel {
    /// The §2.2 table, with the derived entries documented above.
    pub const fn paper() -> Self {
        CostModel {
            pessimistic: 150.0,
            opt_same_state: 47.0,
            opt_upgrading: 150.0,
            opt_fence: 100.0,
            conflict_explicit: 9_200.0,
            conflict_implicit: 360.0,
            pess_reentrant: 12.0,
            pess_contended: 9_200.0,
            policy_move: 200.0,
            state_unlock: 70.0,
        }
    }

    /// The paper's run-time constant `K_confl` (§6.1):
    /// `(T_confl − T_pess) / (T_pess − T_nonConfl)`.
    pub fn k_confl(&self) -> f64 {
        (self.conflict_explicit - self.pessimistic) / (self.pessimistic - self.opt_same_state)
    }

    /// Total instrumentation cycles implied by a stats snapshot.
    pub fn instrumentation_cycles(&self, r: &StatsReport) -> f64 {
        let g = |e: Event| r.get(e) as f64;
        g(Event::OptSameState) * self.opt_same_state
            + g(Event::OptUpgrading) * self.opt_upgrading
            + g(Event::OptFence) * self.opt_fence
            + g(Event::OptConflictExplicit) * self.conflict_explicit
            + g(Event::OptConflictImplicit) * self.conflict_implicit
            + g(Event::PessUncontended) * self.pessimistic
            + g(Event::PessReentrant) * self.pess_reentrant
            + g(Event::PessContended) * self.pess_contended
            + (g(Event::OptToPess) + g(Event::PessToOpt)) * self.policy_move
            + g(Event::StateUnlocked) * self.state_unlock
    }

    /// Model-estimated overhead (fraction, e.g. `0.28` = 28%) over an
    /// uninstrumented run, given the application's average useful work per
    /// access in cycles.
    ///
    /// The paper reports overhead relative to unmodified Jikes RVM; the
    /// equivalent here is instrumentation cycles relative to the cycles the
    /// program itself spends. `work_per_access` is the calibration knob; the
    /// bench harnesses use a value fit so optimistic tracking's average
    /// overhead lands near the paper's 28%.
    pub fn model_overhead(&self, r: &StatsReport, work_per_access: f64) -> f64 {
        let accesses = r.accesses() as f64;
        if accesses == 0.0 {
            return 0.0;
        }
        self.instrumentation_cycles(r) / (accesses * work_per_access)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{GlobalStats, LocalStats};

    #[test]
    fn paper_costs_match_section_2_2() {
        let m = CostModel::paper();
        assert_eq!(m.pessimistic, 150.0);
        assert_eq!(m.opt_same_state, 47.0);
        assert_eq!(m.conflict_explicit, 9_200.0);
        assert_eq!(m.conflict_implicit, 360.0);
    }

    #[test]
    fn k_confl_is_roughly_88_for_paper_costs() {
        let k = CostModel::paper().k_confl();
        assert!((87.0..90.0).contains(&k), "K_confl = {k}");
    }

    #[test]
    fn cycles_weight_each_transition_kind() {
        let g = GlobalStats::new();
        let mut l = LocalStats::new();
        l.add(Event::OptSameState, 100);
        l.add(Event::OptConflictExplicit, 1);
        l.merge_into(&g);
        let m = CostModel::paper();
        let cycles = m.instrumentation_cycles(&g.report());
        assert_eq!(cycles, 100.0 * 47.0 + 9_200.0);
    }

    #[test]
    fn overhead_scales_with_work_per_access() {
        let g = GlobalStats::new();
        let mut l = LocalStats::new();
        l.add(Event::Read, 100);
        l.add(Event::OptSameState, 100);
        l.merge_into(&g);
        let r = g.report();
        let m = CostModel::paper();
        let at_100 = m.model_overhead(&r, 100.0);
        let at_200 = m.model_overhead(&r, 200.0);
        assert!((at_100 - 0.47).abs() < 1e-12);
        assert!((at_200 - 0.235).abs() < 1e-12);
    }

    #[test]
    fn zero_accesses_give_zero_overhead() {
        let r = GlobalStats::new().report();
        assert_eq!(CostModel::paper().model_overhead(&r, 100.0), 0.0);
    }
}
