//! drink-trace: per-thread protocol event tracing.
//!
//! The stats layer ([`crate::stats`]) answers *how many* of each transition a
//! run performed; this module answers *which thread did what, in what order*.
//! Each registered thread owns a fixed-capacity ring of timestamped
//! [`TraceRecord`]s written lock-free by that thread alone and snapshotted by
//! anyone — a chaos failure embeds the last-N events per thread next to the
//! shrunken seed, and `drink-bench trace` exports a whole run as
//! `chrome://tracing`-loadable JSON.
//!
//! ## Hot-path contract
//!
//! Tracing is always compiled and toggled at runtime by installing (or not
//! installing) a [`TraceSink`] on the [`crate::Runtime`]. The off path is one
//! branch: `Runtime::trace` tests an `Option<Arc<dyn TraceSink>>` (a single
//! pointer load thanks to the null-pointer optimization) and falls through.
//! The on path performs no allocation: a [`TraceRing`] write is three relaxed
//! stores plus one release store of the cursor.
//!
//! ## Seqlock-lite ring
//!
//! Each ring has exactly one writer (its owning thread) and any number of
//! snapshot readers. The writer publishes a monotone record count with
//! `Release` after filling the slot; a reader loads the count (`Acquire`),
//! copies the window, re-loads the count, and discards any record whose
//! position the writer may have reached during the copy — including the one
//! slot an in-flight write may be tearing. Readers never block the writer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::ids::ThreadId;

/// One protocol event kind. Discriminants are dense (`Read = 0` …) so a ring
/// slot can store the kind as a `u64` and decode it through [`TraceKind::ALL`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum TraceKind {
    /// Tracked read (arg = object id).
    Read,
    /// Tracked write (arg = object id).
    Write,
    /// Optimistic same-thread state upgrade: WrEx→ or RdEx→RdSh CAS
    /// (arg = object id).
    OptUpgrade,
    /// RdSh read fence before a load of a read-shared object (arg = object).
    OptFence,
    /// Conflicting optimistic transition resolved by explicit coordination
    /// (arg = object id).
    ConflictExplicit,
    /// Conflicting optimistic transition resolved implicitly against a
    /// blocked/detached owner (arg = object id).
    ConflictImplicit,
    /// State word moved optimistic → pessimistic (arg = object id).
    OptToPess,
    /// Deferred unlock released a pessimistic state back to optimistic
    /// (arg = object id).
    PessToOpt,
    /// Policy valve held a flushed object pessimistic instead of releasing
    /// it to optimistic (arg = object id).
    ValveStayPess,
    /// Uncontended pessimistic lock acquisition (arg = object id).
    PessClaim,
    /// Contended pessimistic acquisition began spinning (arg = object id).
    PessContended,
    /// Lock buffer flushed at a PSRO or responding safe point
    /// (arg = number of buffered locks flushed).
    LockBufferFlush,
    /// Explicit coordination request enqueued to a running thread
    /// (arg = remote thread id).
    CoordRequest,
    /// Coordination resolved implicitly — remote blocked or detached
    /// (arg = remote thread id).
    CoordImplicit,
    /// This thread answered a batch of pending requests at a safe point
    /// (arg = batch size).
    CoordRespond,
    /// Fan-out phase 1 done: requests enqueued to all running peers
    /// (arg = number of pending explicit peers).
    FanoutEnqueue,
    /// One fan-out peer's roundtrip completed (arg = remote thread id).
    FanoutPeerDone,
    /// Whole fan-out (or sequential all-peer loop) completed
    /// (arg = number of sources collected).
    FanoutComplete,
    /// Monitor acquired without blocking (arg = monitor id).
    MonitorAcquireFast,
    /// Monitor acquired after blocking (arg = monitor id).
    MonitorAcquireBlocked,
    /// Monitor released (arg = monitor id).
    MonitorRelease,
    /// Monitor wait: released, parked, reacquired (arg = monitor id).
    MonitorWait,
    /// Coordination-free RdSh read: seqlock version validation succeeded
    /// (arg = object id).
    SeqlockRead,
    /// Seqlock read exhausted its retries and fell back to the coordinated
    /// read path (arg = object id).
    SeqlockFallback,
    /// A coordination wait hit its recoverable deadline and the requester
    /// fell back to the pessimistic protocol (arg = object id, or the remote
    /// thread id for objectless waits).
    CoordDeadline,
    /// The online controller demoted an object shard opt→pess
    /// (arg = shard index).
    AdaptDemote,
    /// The online controller re-promoted an object shard pess→opt after its
    /// cooldown (arg = shard index).
    AdaptPromote,
}

impl TraceKind {
    /// Number of kinds; also the length of [`TraceKind::ALL`].
    pub const COUNT: usize = 27;

    /// Every kind, in discriminant order (`ALL[k as usize] == k`).
    pub const ALL: [TraceKind; TraceKind::COUNT] = [
        TraceKind::Read,
        TraceKind::Write,
        TraceKind::OptUpgrade,
        TraceKind::OptFence,
        TraceKind::ConflictExplicit,
        TraceKind::ConflictImplicit,
        TraceKind::OptToPess,
        TraceKind::PessToOpt,
        TraceKind::ValveStayPess,
        TraceKind::PessClaim,
        TraceKind::PessContended,
        TraceKind::LockBufferFlush,
        TraceKind::CoordRequest,
        TraceKind::CoordImplicit,
        TraceKind::CoordRespond,
        TraceKind::FanoutEnqueue,
        TraceKind::FanoutPeerDone,
        TraceKind::FanoutComplete,
        TraceKind::MonitorAcquireFast,
        TraceKind::MonitorAcquireBlocked,
        TraceKind::MonitorRelease,
        TraceKind::MonitorWait,
        TraceKind::SeqlockRead,
        TraceKind::SeqlockFallback,
        TraceKind::CoordDeadline,
        TraceKind::AdaptDemote,
        TraceKind::AdaptPromote,
    ];

    /// Short dotted name, matching the [`crate::stats::Event`] convention.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Read => "access.read",
            TraceKind::Write => "access.write",
            TraceKind::OptUpgrade => "opt.upgrade",
            TraceKind::OptFence => "opt.fence",
            TraceKind::ConflictExplicit => "conflict.explicit",
            TraceKind::ConflictImplicit => "conflict.implicit",
            TraceKind::OptToPess => "state.opt_to_pess",
            TraceKind::PessToOpt => "state.pess_to_opt",
            TraceKind::ValveStayPess => "state.valve_stay_pess",
            TraceKind::PessClaim => "pess.claim",
            TraceKind::PessContended => "pess.contended",
            TraceKind::LockBufferFlush => "pess.lock_buffer_flush",
            TraceKind::CoordRequest => "coord.request",
            TraceKind::CoordImplicit => "coord.implicit",
            TraceKind::CoordRespond => "coord.respond",
            TraceKind::FanoutEnqueue => "coord.fanout_enqueue",
            TraceKind::FanoutPeerDone => "coord.fanout_peer_done",
            TraceKind::FanoutComplete => "coord.fanout_complete",
            TraceKind::MonitorAcquireFast => "monitor.acquire_fast",
            TraceKind::MonitorAcquireBlocked => "monitor.acquire_blocked",
            TraceKind::MonitorRelease => "monitor.release",
            TraceKind::MonitorWait => "monitor.wait",
            TraceKind::SeqlockRead => "seqlock.read",
            TraceKind::SeqlockFallback => "seqlock.fallback",
            TraceKind::CoordDeadline => "coord.deadline",
            TraceKind::AdaptDemote => "adapt.demote",
            TraceKind::AdaptPromote => "adapt.promote",
        }
    }

    fn from_u64(raw: u64) -> Option<TraceKind> {
        TraceKind::ALL.get(raw as usize).copied()
    }
}

// Compile-time proof that the discriminants stay dense and `ALL` stays in
// discriminant order, so ring-slot decoding through `ALL` is exact.
const _: () = {
    let mut i = 0;
    while i < TraceKind::COUNT {
        assert!(TraceKind::ALL[i] as usize == i);
        i += 1;
    }
};

/// One traced event: nanoseconds since the sink's epoch, the kind, and a
/// kind-specific argument (object id, monitor id, peer thread, batch size).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    pub ts_ns: u64,
    pub kind: TraceKind,
    pub arg: u64,
}

/// One ring slot. Three independent atomics rather than one packed word:
/// the seqlock-lite cursor protocol already discards torn reads by position,
/// so the slot itself only needs data-race freedom, not atomic unity.
#[derive(Debug, Default)]
struct Slot {
    ts_ns: AtomicU64,
    kind: AtomicU64,
    arg: AtomicU64,
}

/// Fixed-capacity single-writer/any-reader event ring (see module docs for
/// the publication protocol). Capacity is rounded up to at least 2 so the
/// "writer may be tearing one slot" discard never empties a live ring.
#[derive(Debug)]
pub struct TraceRing {
    slots: Box<[Slot]>,
    /// Total records ever written; slot index is `cursor % capacity`.
    cursor: AtomicU64,
}

impl TraceRing {
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        TraceRing {
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever written (not capped at capacity).
    pub fn written(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Append one record. **Single-writer**: only the owning thread may call
    /// this. No allocation, no RMW — three relaxed stores + one release.
    #[inline]
    pub fn record(&self, ts_ns: u64, kind: TraceKind, arg: u64) {
        let cur = self.cursor.load(Ordering::Relaxed);
        let slot = &self.slots[(cur % self.slots.len() as u64) as usize];
        slot.ts_ns.store(ts_ns, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        self.cursor.store(cur + 1, Ordering::Release);
    }

    /// Copy out the most recent records, oldest first. Safe to call from any
    /// thread while the writer keeps writing; records the writer may have
    /// overwritten (or be mid-write on) during the copy are discarded, so
    /// every returned record is fully published and in order.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let cap = self.slots.len() as u64;
        let end = self.cursor.load(Ordering::Acquire);
        let start = end.saturating_sub(cap);
        let mut raw = Vec::with_capacity((end - start) as usize);
        for pos in start..end {
            let slot = &self.slots[(pos % cap) as usize];
            raw.push((
                slot.ts_ns.load(Ordering::Relaxed),
                slot.kind.load(Ordering::Relaxed),
                slot.arg.load(Ordering::Relaxed),
            ));
        }
        // Re-read the cursor: positions the writer passed during our copy are
        // overwritten, and position `end2` itself may be mid-write (its slot
        // holds position `end2 - cap`), so keep only positions strictly after
        // `end2 - cap`.
        let end2 = self.cursor.load(Ordering::Acquire);
        let keep_from = if end2 >= cap { end2 - cap + 1 } else { 0 };
        raw.into_iter()
            .enumerate()
            .filter(|(i, _)| start + *i as u64 >= keep_from)
            .filter_map(|(_, (ts_ns, kind, arg))| {
                TraceKind::from_u64(kind).map(|kind| TraceRecord { ts_ns, kind, arg })
            })
            .collect()
    }
}

/// The last-N events of one thread, as captured by a snapshot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadTrace {
    /// Raw thread id ([`ThreadId::raw`]).
    pub tid: u16,
    /// Events oldest-first.
    pub events: Vec<TraceRecord>,
}

/// A point-in-time copy of every thread's ring, plus exporters.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSnapshot {
    pub threads: Vec<ThreadTrace>,
}

impl TraceSnapshot {
    /// Total events across all threads.
    pub fn total_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Chrome trace event format (the JSON object form with a `traceEvents`
    /// array of instant events), loadable by `chrome://tracing` and Perfetto.
    pub fn to_chrome_json(&self) -> String {
        use serde::value::Value;
        let events: Vec<Value> = self
            .threads
            .iter()
            .flat_map(|t| {
                t.events.iter().map(move |e| {
                    Value::Map(vec![
                        ("name".to_string(), Value::Str(e.kind.name().to_string())),
                        ("ph".to_string(), Value::Str("i".to_string())),
                        ("s".to_string(), Value::Str("t".to_string())),
                        ("ts".to_string(), Value::F64(e.ts_ns as f64 / 1000.0)),
                        ("pid".to_string(), Value::U64(1)),
                        ("tid".to_string(), Value::U64(t.tid as u64)),
                        (
                            "args".to_string(),
                            Value::Map(vec![("arg".to_string(), Value::U64(e.arg))]),
                        ),
                    ])
                })
            })
            .collect();
        let doc = Value::Map(vec![("traceEvents".to_string(), Value::Seq(events))]);
        serde_json::to_string_pretty(&doc).expect("chrome trace serialization")
    }

    /// Compact per-thread text dump: one `+ts_us kind arg` line per event.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for t in &self.threads {
            let _ = writeln!(out, "thread {} ({} events)", t.tid, t.events.len());
            for e in &t.events {
                let _ = writeln!(
                    out,
                    "  +{:>12.3}us {:<24} {}",
                    e.ts_ns as f64 / 1000.0,
                    e.kind.name(),
                    e.arg
                );
            }
        }
        out
    }
}

/// Validate a Chrome-trace JSON document produced by
/// [`TraceSnapshot::to_chrome_json`] (or anything shaped like it): a map with
/// a `traceEvents` array whose entries all carry `name`/`ph`/`ts`/`pid`/`tid`.
/// Returns the event count. Used by the `drink-bench trace --check` gate step.
pub fn validate_chrome_json(text: &str) -> Result<usize, String> {
    use serde::value::Value;
    let doc: Value = serde_json::from_str(text).map_err(|e| format!("not JSON: {e}"))?;
    let Value::Map(fields) = &doc else {
        return Err("top level is not an object".to_string());
    };
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents")?;
    let Value::Seq(events) = events else {
        return Err("traceEvents is not an array".to_string());
    };
    for (i, ev) in events.iter().enumerate() {
        let Value::Map(fields) = ev else {
            return Err(format!("traceEvents[{i}] is not an object"));
        };
        for required in ["name", "ph", "ts", "pid", "tid"] {
            if !fields.iter().any(|(k, _)| k == required) {
                return Err(format!("traceEvents[{i}] missing {required:?}"));
            }
        }
    }
    Ok(events.len())
}

/// Destination for protocol events. `record` must be wait-free and
/// allocation-free: it runs inside engine fast paths.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    fn record(&self, t: ThreadId, kind: TraceKind, arg: u64);
    fn snapshot(&self) -> TraceSnapshot;
}

/// The standard sink: one [`TraceRing`] per possible thread, timestamps
/// measured from sink construction.
#[derive(Debug)]
pub struct RingTraceSink {
    rings: Box<[TraceRing]>,
    epoch: Instant,
}

impl RingTraceSink {
    /// A sink for up to `max_threads` threads, `capacity` events each.
    pub fn new(max_threads: usize, capacity: usize) -> Self {
        RingTraceSink {
            rings: (0..max_threads.max(1)).map(|_| TraceRing::new(capacity)).collect(),
            epoch: Instant::now(),
        }
    }

    pub fn ring(&self, t: ThreadId) -> Option<&TraceRing> {
        self.rings.get(t.index())
    }
}

impl TraceSink for RingTraceSink {
    #[inline]
    fn record(&self, t: ThreadId, kind: TraceKind, arg: u64) {
        if let Some(ring) = self.rings.get(t.index()) {
            ring.record(self.epoch.elapsed().as_nanos() as u64, kind, arg);
        }
    }

    fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot {
            threads: self
                .rings
                .iter()
                .enumerate()
                .map(|(tid, ring)| ThreadTrace {
                    tid: tid as u16,
                    events: ring.snapshot(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// Tiny deterministic PRNG (splitmix64) for the randomized tests below —
    /// no proptest dependency in this workspace, so each "proptest" is a
    /// seeded loop over random cases with the invariant asserted per case.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn ring_keeps_last_capacity_records_in_order() {
        let ring = TraceRing::new(8);
        for i in 0..100u64 {
            ring.record(i, TraceKind::Read, i);
        }
        let snap = ring.snapshot();
        // One slot is conservatively reserved for a potentially in-flight
        // write, so a full ring reports capacity - 1 records.
        assert_eq!(snap.len(), 7);
        let args: Vec<u64> = snap.iter().map(|r| r.arg).collect();
        assert_eq!(args, (93..100).collect::<Vec<u64>>());
        assert_eq!(ring.written(), 100);
    }

    #[test]
    fn ring_below_capacity_returns_everything() {
        let ring = TraceRing::new(64);
        for i in 0..10u64 {
            ring.record(i * 3, TraceKind::Write, 1000 + i);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 10);
        assert_eq!(snap[0], TraceRecord { ts_ns: 0, kind: TraceKind::Write, arg: 1000 });
        assert_eq!(snap[9].arg, 1009);
    }

    #[test]
    fn ring_wraparound_proptest_random_write_counts_and_capacities() {
        let mut rng = 0x5EED_0001u64;
        for _ in 0..200 {
            let cap = (splitmix64(&mut rng) % 63 + 2) as usize;
            let writes = splitmix64(&mut rng) % 300;
            let ring = TraceRing::new(cap);
            for i in 0..writes {
                ring.record(i, TraceKind::OptUpgrade, i);
            }
            let snap = ring.snapshot();
            // Window: everything if under capacity, else the last cap-1.
            let expect_len = if writes < cap as u64 {
                writes as usize
            } else {
                cap - 1
            };
            assert_eq!(snap.len(), expect_len, "cap={cap} writes={writes}");
            for (i, r) in snap.iter().enumerate() {
                assert_eq!(r.arg, writes - expect_len as u64 + i as u64);
            }
        }
    }

    #[test]
    fn concurrent_snapshots_see_consistent_published_records() {
        // Writer appends records whose ts/arg encode their position; readers
        // snapshot concurrently and every record they see must be coherent
        // (arg == ts) and strictly ordered. Catches torn slots escaping the
        // keep_from discard.
        let ring = Arc::new(TraceRing::new(32));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Acquire) {
                    ring.record(i, TraceKind::Read, i);
                    i += 1;
                }
                i
            })
        };
        let mut checked = 0usize;
        for _ in 0..2000 {
            let snap = ring.snapshot();
            for pair in snap.windows(2) {
                assert!(pair[0].arg < pair[1].arg, "out of order: {pair:?}");
            }
            for r in &snap {
                assert_eq!(r.ts_ns, r.arg, "torn record: {r:?}");
            }
            checked += snap.len();
        }
        stop.store(true, Ordering::Release);
        let written = writer.join().unwrap();
        assert!(written > 0);
        assert!(checked > 0);
    }

    #[test]
    fn sink_records_per_thread_and_snapshots() {
        let sink = RingTraceSink::new(3, 16);
        sink.record(ThreadId(0), TraceKind::Read, 7);
        sink.record(ThreadId(2), TraceKind::MonitorRelease, 1);
        sink.record(ThreadId(2), TraceKind::Write, 9);
        // Out-of-range thread ids are ignored, not a panic.
        sink.record(ThreadId(100), TraceKind::Write, 0);
        let snap = sink.snapshot();
        assert_eq!(snap.threads.len(), 3);
        assert_eq!(snap.threads[0].events.len(), 1);
        assert_eq!(snap.threads[1].events.len(), 0);
        assert_eq!(snap.threads[2].events.len(), 2);
        assert_eq!(snap.total_events(), 3);
        assert_eq!(snap.threads[2].events[1].kind, TraceKind::Write);
    }

    #[test]
    fn snapshot_serde_roundtrip_preserves_events() {
        let sink = RingTraceSink::new(2, 8);
        sink.record(ThreadId(1), TraceKind::ConflictExplicit, 42);
        let snap = sink.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: TraceSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn chrome_export_is_valid_and_counts_events() {
        let sink = RingTraceSink::new(2, 8);
        sink.record(ThreadId(0), TraceKind::CoordRequest, 1);
        sink.record(ThreadId(1), TraceKind::CoordRespond, 1);
        let json = sink.snapshot().to_chrome_json();
        assert_eq!(validate_chrome_json(&json), Ok(2));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("coord.request"));
    }

    #[test]
    fn chrome_validation_rejects_malformed_documents() {
        assert!(validate_chrome_json("not json").is_err());
        assert!(validate_chrome_json("[]").is_err());
        assert!(validate_chrome_json("{\"traceEvents\": 3}").is_err());
        assert!(
            validate_chrome_json("{\"traceEvents\": [{\"name\": \"x\"}]}")
                .unwrap_err()
                .contains("missing"),
        );
        assert_eq!(validate_chrome_json("{\"traceEvents\": []}"), Ok(0));
    }

    #[test]
    fn text_dump_lists_threads_and_events() {
        let sink = RingTraceSink::new(2, 8);
        sink.record(ThreadId(0), TraceKind::PessClaim, 5);
        let text = sink.snapshot().to_text();
        assert!(text.contains("thread 0 (1 events)"));
        assert!(text.contains("pess.claim"));
        assert!(text.contains("thread 1 (0 events)"));
    }

    #[test]
    fn kind_names_are_unique_and_dense() {
        let mut names: Vec<&str> = TraceKind::ALL.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), TraceKind::COUNT);
        for (i, k) in TraceKind::ALL.iter().enumerate() {
            assert_eq!(TraceKind::from_u64(i as u64), Some(*k));
        }
        assert_eq!(TraceKind::from_u64(TraceKind::COUNT as u64), None);
    }
}
