//! # drink-runtime: a managed-runtime substrate for dependence tracking
//!
//! The PPoPP'16 paper *Drinking from Both Glasses* implements its tracking
//! schemes inside Jikes RVM, where the JIT compilers insert instrumentation
//! before every memory access, program synchronization release operation
//! (PSRO), and safe point. This crate is the Rust substitute for that
//! substrate: it provides the *mechanisms* a managed runtime offers to the
//! tracking instrumentation, without prescribing any tracking policy.
//!
//! The substrate consists of:
//!
//! * a registry of **mutator threads**, each with a [`control::ThreadControl`]
//!   holding the cross-thread-visible status word (RUNNING/BLOCKED + epoch),
//!   an explicit coordination request queue, and a release clock;
//! * **safe point** conventions: threads respond to coordination requests only
//!   at safe points (explicit polls, or blocking operations), mirroring the
//!   JVM safe point mechanism the paper piggybacks on (§7.1);
//! * **monitors** (program locks) and wait/notify with hook callbacks at the
//!   points where the paper's instrumentation runs: PSROs, blocking safe
//!   points, and wake-ups;
//! * a **tracked-object heap**: every shared object carries a state word and a
//!   profile word (the "two 32-bit words per object" of §7.1 — we use two
//!   64-bit words) next to its data;
//! * shared **statistics** and the paper's **cycle-cost model** (§2.2) so that
//!   transition counts can be converted into platform-independent overhead
//!   estimates.
//!
//! Tracking engines (crate `drink-core`) implement the [`RtHooks`] trait to
//! receive these callbacks; workloads drive everything through the
//! `drink-core` `Session` façade.

pub mod control;
pub mod cost;
pub mod heap;
pub mod ids;
pub mod monitor;
pub mod pad;
pub mod registry;
pub mod runtime;
pub mod spin;
pub mod stats;
pub mod trace;

pub use control::{CoordRequest, ResponseToken, ThreadControl, ThreadStatus, Waker};
pub use cost::CostModel;
pub use heap::{Heap, ObjHeader};
pub use ids::{MonitorId, ObjId, ThreadId};
pub use monitor::Monitor;
pub use pad::CachePadded;
pub use registry::{Registry, ShardMap};
pub use runtime::{Runtime, RuntimeConfig, RuntimeConfigBuilder};
pub use spin::{Spin, SpinOutcome};
pub use stats::{Event, GlobalStats, HistogramSnapshot, LatencyKind, LocalStats, StatsReport};
pub use trace::{RingTraceSink, ThreadTrace, TraceKind, TraceRecord, TraceSink, TraceSnapshot};

/// A schedule-relevant program point, as reported to [`SchedHooks`].
///
/// These are exactly the windows where the tracking protocols race: the
/// moments between "decide based on a remote thread's state" and "act on
/// that decision". A perturbation layer (crate `drink-check`) injects
/// delays at these points to force the interleavings a 1-core OS scheduler
/// would essentially never produce on its own.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SchedPoint {
    /// A non-blocking safe point poll (loop back edge).
    SafepointPoll,
    /// One backoff step of a watchdog [`Spin`] loop.
    SpinBackoff,
    /// One iteration of a contended monitor acquire's spin phase.
    MonitorAcquireSpin,
    /// About to park on a contended monitor acquire (BLOCKED published).
    MonitorPark,
    /// Woke from a monitor park (acquire or wait), back to RUNNING.
    MonitorUnpark,
    /// About to make a monitor release visible (PSRO hook already ran).
    MonitorRelease,
    /// About to park inside `Object.wait()` (monitor already released).
    MonitorWaitPark,
    /// About to wake every waiter (`notifyAll`).
    MonitorNotify,
    /// Just enqueued an explicit coordination request (requester side).
    CoordRequest,
    /// About to answer pending explicit requests (responder side).
    CoordRespond,
    /// A coordination fan-out is about to enqueue explicit requests to every
    /// still-running peer at once (requester side, once per fan-out).
    CoordFanoutEnqueue,
    /// One iteration of a fan-out's combined poll loop: all outstanding
    /// tokens checked, peers re-examined for the blocked fallback (requester
    /// side). This is the widened blocked/running race window the batched
    /// protocol introduces.
    CoordFanoutPoll,
    /// About to publish BLOCKED at a generic blocking safe point.
    BlockedPublish,
    /// A seqlock reader has loaded the payload and is about to revalidate
    /// the version word (DESIGN.md §12). This is the race window of the
    /// coordination-free read path: a writer's claim landing here must make
    /// the revalidation fail.
    SeqlockReadValidate,
}

/// A deterministic schedule-perturbation layer, registered on a [`Runtime`]
/// via [`Runtime::set_sched_hooks`].
///
/// `perturb` is always invoked by thread `t` itself, at the [`SchedPoint`]s
/// above; implementations delay the calling thread (yield, sleep, spin) or
/// do nothing. Production runs register no hooks, and every call site
/// reduces to a branch on a `None`.
pub trait SchedHooks: Send + Sync + std::fmt::Debug {
    /// Possibly delay the calling thread `t` at `point`.
    fn perturb(&self, t: ThreadId, point: SchedPoint);
}

/// Is the deliberately-injected protocol bug `name` enabled via the
/// `DRINK_INJECT_BUG` env var? Only consulted from `check-invariants`
/// builds; the checking harness uses it to prove the chaos matrix catches
/// real protocol violations (see DESIGN.md §9).
pub fn injected_bug(name: &str) -> bool {
    static CACHE: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    CACHE
        .get_or_init(|| std::env::var("DRINK_INJECT_BUG").ok())
        .as_deref()
        == Some(name)
}

/// The parameter of the deliberately-injected *fault* `name`, from the
/// `DRINK_INJECT_FAULT=<name>:<ms>` env var, as a duration. Unlike
/// [`injected_bug`] (which plants protocol *violations* the oracles must
/// flag), a fault models a legal-but-hostile environment — e.g.
/// `stall-responder:<ms>` freezes a victim's responding-safe-point loop so
/// the coordination-deadline/demotion paths are actually exercised. Only
/// consulted from `check-invariants` builds.
pub fn injected_fault(name: &str) -> Option<std::time::Duration> {
    static CACHE: std::sync::OnceLock<Option<(String, u64)>> = std::sync::OnceLock::new();
    let parsed = CACHE.get_or_init(|| {
        let raw = std::env::var("DRINK_INJECT_FAULT").ok()?;
        let (fault, ms) = raw.split_once(':')?;
        Some((fault.to_string(), ms.trim().parse::<u64>().ok()?))
    });
    match parsed {
        Some((fault, ms)) if fault == name => Some(std::time::Duration::from_millis(*ms)),
        _ => None,
    }
}

/// Callbacks invoked by the substrate at the program points where a managed
/// runtime would run tracking instrumentation.
///
/// The tracking engines in `drink-core` implement this; the substrate itself
/// never interprets object states or coordination requests.
pub trait RtHooks {
    /// Non-blocking safe point poll: respond to any pending coordination
    /// requests. Called by the mutator at loop back edges and while it spins
    /// inside blocking operations.
    fn poll(&self, t: ThreadId);

    /// About to publish BLOCKED status: the thread must reach a consistent
    /// "blocking safe point" state (e.g. flush its pessimistic lock buffer and
    /// bump its release clock) because other threads may now coordinate with
    /// it implicitly.
    fn before_block(&self, t: ThreadId);

    /// Called immediately after BLOCKED status is visible, to respond to
    /// explicit requests that raced with the status change (the requester saw
    /// RUNNING an instant before we blocked).
    fn on_blocked_publish(&self, t: ThreadId);

    /// Back to RUNNING. `epoch_bumped` is true if one or more threads
    /// coordinated with this thread implicitly while it was blocked.
    fn after_unblock(&self, t: ThreadId, epoch_bumped: bool);

    /// Program synchronization release operation: monitor release, monitor
    /// wait (which releases the monitor), thread fork, thread exit.
    fn on_psro(&self, t: ThreadId);

    /// A schedule-relevant point was reached by thread `t`. The substrate
    /// calls this inside monitor spin/park/notify windows; engines forward
    /// it to the runtime's registered [`SchedHooks`] layer (if any). The
    /// default is a no-op, so only perturbed runs pay anything.
    #[inline]
    fn sched_point(&self, t: ThreadId, point: SchedPoint) {
        let _ = (t, point);
    }
}

/// A no-op hook implementation, useful for untracked baseline runs and tests
/// of the bare substrate.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHooks;

impl RtHooks for NoHooks {
    #[inline]
    fn poll(&self, _t: ThreadId) {}
    #[inline]
    fn before_block(&self, _t: ThreadId) {}
    #[inline]
    fn on_blocked_publish(&self, _t: ThreadId) {}
    #[inline]
    fn after_unblock(&self, _t: ThreadId, _epoch_bumped: bool) {}
    #[inline]
    fn on_psro(&self, _t: ThreadId) {}
}
