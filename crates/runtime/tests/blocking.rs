//! Substrate-level blocking and coordination behaviours that unit tests in
//! the individual modules don't reach: the generic blocking helper, monitor
//! wait/notify herds, and spin-budget configuration.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use drink_runtime::{
    MonitorId, NoHooks, Runtime, RuntimeConfig, ThreadStatus,
};

#[test]
fn blocking_helper_reports_implicit_coordination() {
    let rt = Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build());
    let t0 = rt.register_thread();
    let t1 = rt.register_thread();

    std::thread::scope(|s| {
        let rtr = &rt;
        let h = s.spawn(move || {
            // T0 blocks "on I/O" until its epoch gets bumped.
            let ((), bumped) = rtr.blocking(t0, &NoHooks, || {
                let mut spin = rtr.spinner("epoch bump");
                loop {
                    if let ThreadStatus::Blocked { epoch } = rtr.control(t0).status() {
                        if epoch > 0 {
                            return;
                        }
                    }
                    spin.spin();
                }
            });
            assert!(bumped, "wake must report the implicit bump");
        });

        // T1 coordinates implicitly once T0 publishes BLOCKED.
        let _ = t1;
        let mut spin = rt.spinner("T0 to block");
        let epoch = loop {
            if let ThreadStatus::Blocked { epoch } = rt.control(t0).status() {
                break epoch;
            }
            spin.spin();
        };
        assert!(rt.control(t0).try_implicit(epoch));
        h.join().unwrap();
    });
}

#[test]
fn notify_all_wakes_a_herd_of_waiters() {
    const WAITERS: usize = 5;
    let rt = Runtime::new(RuntimeConfig::builder()
        .max_threads(WAITERS + 1)
        .heap_objects(4)
        .monitors(1)
        .build());
    let m = MonitorId(0);
    let flag = AtomicU64::new(0);
    let woke = AtomicU64::new(0);

    std::thread::scope(|s| {
        for _ in 0..WAITERS {
            let rtr = &rt;
            let flag = &flag;
            let woke = &woke;
            s.spawn(move || {
                let t = rtr.register_thread();
                rtr.monitor_acquire(m, t, &NoHooks);
                while flag.load(Ordering::Relaxed) == 0 {
                    rtr.monitor_wait(m, t, &NoHooks);
                }
                rtr.monitor_release(m, t, &NoHooks);
                woke.fetch_add(1, Ordering::Relaxed);
            });
        }

        let t = rt.register_thread();
        // Let the herd settle into the wait set.
        std::thread::sleep(Duration::from_millis(30));
        rt.monitor_acquire(m, t, &NoHooks);
        flag.store(1, Ordering::Relaxed);
        rt.monitor_notify_all(m);
        rt.monitor_release(m, t, &NoHooks);
    });
    assert_eq!(woke.load(Ordering::Relaxed), WAITERS as u64);
    assert_eq!(rt.monitor(m).holder(), None);
}

#[test]
fn monitor_spin_iters_zero_parks_immediately() {
    // With a zero spin budget, a contended acquire must still succeed (it
    // parks right away and is woken by the release).
    let mut cfg = RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build();
    cfg.monitor_spin_iters = 0;
    let rt = Runtime::new(cfg);
    let m = MonitorId(0);
    let t0 = rt.register_thread();
    rt.monitor_acquire(m, t0, &NoHooks);

    std::thread::scope(|s| {
        let rtr = &rt;
        let h = s.spawn(move || {
            let t1 = rtr.register_thread();
            let info = rtr.monitor_acquire(m, t1, &NoHooks);
            assert!(info.blocked, "zero spin budget must park");
            rtr.monitor_release(m, t1, &NoHooks);
        });
        std::thread::sleep(Duration::from_millis(10));
        rt.monitor_release(m, t0, &NoHooks);
        h.join().unwrap();
    });
}

#[test]
fn reentrant_wait_preserves_recursion_depth() {
    let rt = Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build());
    let m = MonitorId(0);
    let flag = AtomicU64::new(0);

    std::thread::scope(|s| {
        let rtr = &rt;
        let flag_r = &flag;
        let h = s.spawn(move || {
            let t = rtr.register_thread();
            rtr.monitor_acquire(m, t, &NoHooks);
            rtr.monitor_acquire(m, t, &NoHooks); // depth 2
            while flag_r.load(Ordering::Relaxed) == 0 {
                rtr.monitor_wait(m, t, &NoHooks);
            }
            // Still held at depth 2: two releases required.
            rtr.monitor_release(m, t, &NoHooks);
            assert_eq!(rtr.monitor(m).holder(), Some(t));
            rtr.monitor_release(m, t, &NoHooks);
        });

        let t = rt.register_thread();
        std::thread::sleep(Duration::from_millis(20));
        rt.monitor_acquire(m, t, &NoHooks);
        flag.store(1, Ordering::Relaxed);
        rt.monitor_notify_all(m);
        rt.monitor_release(m, t, &NoHooks);
        h.join().unwrap();
    });
    assert_eq!(rt.monitor(m).holder(), None);
}

#[test]
fn spin_budget_configuration_reaches_spinners() {
    let mut cfg = RuntimeConfig::builder()
        .max_threads(1)
        .heap_objects(1)
        .monitors(1)
        .build();
    cfg.spin_budget = Duration::from_millis(25);
    let rt = Runtime::new(cfg);
    let mut spinner = rt.spinner("configured budget");
    let start = std::time::Instant::now();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
        spinner.spin();
    }));
    assert!(result.is_err(), "watchdog must fire");
    assert!(start.elapsed() < Duration::from_secs(5));
}
