//! Stress test for the lock-free explicit-coordination request queue.
//!
//! Many requester threads hammer one responder's inbox concurrently while the
//! responder drains at simulated safe points. The test checks the two
//! properties the tracking protocols rely on:
//!
//! * **no request is lost** — every token a requester enqueued eventually
//!   completes (the `has_requests` flag / detach ordering closes the
//!   lost-wakeup window);
//! * **no request is double-answered** — each token completes exactly once,
//!   detected by counting completions per token.
//!
//! The requesters spin on their tokens through the same watchdog
//! ([`drink_runtime::Spin`]) the real protocols use, so a lost request fails
//! loudly with a watchdog panic instead of hanging CI.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use drink_runtime::{
    CoordRequest, ObjId, ResponseToken, Spin, ThreadControl, ThreadId,
};

const PRODUCERS: usize = 8;
const REQUESTS_PER_PRODUCER: usize = 500;

#[test]
fn multi_producer_queue_loses_and_duplicates_nothing() {
    let ctl = ThreadControl::new();
    let done = AtomicBool::new(false);
    // completions[p][i] counts how many times producer p's i-th token was
    // answered; the invariant is that every cell ends at exactly 1.
    let completions: Vec<Vec<AtomicU64>> = (0..PRODUCERS)
        .map(|_| (0..REQUESTS_PER_PRODUCER).map(|_| AtomicU64::new(0)).collect())
        .collect();

    std::thread::scope(|s| {
        let ctl = &ctl;
        let done = &done;
        let completions = &completions;

        for p in 0..PRODUCERS {
            s.spawn(move || {
                for i in 0..REQUESTS_PER_PRODUCER {
                    let token = ResponseToken::new();
                    ctl.enqueue_request(CoordRequest {
                        from: ThreadId(p as u16),
                        obj: Some(ObjId(i as u32)),
                        token: Arc::clone(&token),
                    });
                    // Spin like a real requester: the watchdog panics (rather
                    // than hanging) if the queue lost this request.
                    let mut spin = Spin::new("stress-test response token");
                    while !token.is_done() {
                        spin.spin();
                    }
                    // The responder stamps each answer with a fresh clock.
                    assert!(token.responder_clock() > 0);
                }
            });
        }

        // Responder: drain at simulated safe points until every producer
        // reported completion of its whole batch.
        s.spawn(move || {
            let mut answered = 0usize;
            let total = PRODUCERS * REQUESTS_PER_PRODUCER;
            let mut spin = Spin::new("stress-test responder drain");
            while answered < total {
                let reqs = ctl.take_requests();
                if reqs.is_empty() {
                    spin.spin();
                    continue;
                }
                spin = Spin::new("stress-test responder drain");
                for req in reqs {
                    let clock = ctl.bump_release_clock();
                    completions[req.from.index()][req.obj.unwrap().index()]
                        .fetch_add(1, Ordering::Relaxed);
                    req.token.complete(clock);
                    answered += 1;
                }
            }
            done.store(true, Ordering::Release);
        });
    });

    assert!(done.load(Ordering::Acquire));
    assert!(
        !ctl.has_pending_requests(),
        "inbox must be empty after all producers finished"
    );
    for (p, row) in completions.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            let n = cell.load(Ordering::Relaxed);
            assert_eq!(
                n, 1,
                "producer {p} request {i} answered {n} times (want exactly 1)"
            );
        }
    }
}

#[test]
fn flag_set_after_push_never_leaves_request_invisible() {
    // Tight two-thread interleaving check: one producer enqueues a single
    // request at a time while the consumer polls `has_pending_requests` then
    // drains — the exact fast path the responding safe point uses. If the
    // flag store were allowed to pass the push (or the drain could clear the
    // flag after a racing push's flag-set), a request would stay invisible
    // and the producer's watchdog would fire.
    let ctl = ThreadControl::new();
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        let ctl = &ctl;
        let stop = &stop;

        s.spawn(move || {
            for i in 0..2000u32 {
                let token = ResponseToken::new();
                ctl.enqueue_request(CoordRequest {
                    from: ThreadId(1),
                    obj: Some(ObjId(i)),
                    token: Arc::clone(&token),
                });
                let mut spin = Spin::new("single-producer response");
                while !token.is_done() {
                    spin.spin();
                }
            }
            stop.store(true, Ordering::Release);
        });

        s.spawn(move || {
            let mut spin = Spin::new("poll-drain consumer");
            loop {
                // Same cheap check the poll() fast path performs.
                if ctl.has_pending_requests() {
                    for req in ctl.take_requests() {
                        req.token.complete(ctl.bump_release_clock());
                    }
                    spin = Spin::new("poll-drain consumer");
                } else if stop.load(Ordering::Acquire) && !ctl.has_pending_requests() {
                    break;
                } else {
                    spin.spin();
                }
            }
        });
    });
}
