//! Record & replay determinism stress: many seeds, both recorders, varied
//! communication shapes. A single divergence here means a missed or
//! mis-ordered happens-before edge in the recorder.

use drink_workloads::record_replay::{record, replay, RecorderKind};
use drink_workloads::spec::WorkloadSpec;

fn check(spec: &WorkloadSpec, kind: RecorderKind) {
    let rec = record(kind, spec);
    let rep = replay(spec, rec.log.clone());
    let diffs = rec
        .run
        .heap
        .iter()
        .zip(&rep.heap)
        .filter(|(a, b)| a != b)
        .count();
    assert_eq!(
        diffs, 0,
        "{:?} recorder: {} objects diverged on {} (seed {:#x})",
        kind, diffs, spec.name, spec.seed
    );
}

#[test]
fn racy_many_seeds_optimistic() {
    for seed in 0..6u64 {
        let spec = WorkloadSpec {
            name: format!("stress-racy-{seed}"),
            threads: 4,
            steps_per_thread: 1_500,
            racy_frac: 0.25,
            hot_objects: 6,
            locked_frac: 0.04,
            shared_read_frac: 0.06,
            seed: 0xAB00 + seed,
            ..WorkloadSpec::default()
        };
        check(&spec, RecorderKind::Optimistic);
    }
}

#[test]
fn racy_many_seeds_hybrid() {
    for seed in 0..6u64 {
        let spec = WorkloadSpec {
            name: format!("stress-racy-h-{seed}"),
            threads: 4,
            steps_per_thread: 1_500,
            racy_frac: 0.25,
            hot_objects: 6,
            locked_frac: 0.04,
            shared_read_frac: 0.06,
            seed: 0xCD00 + seed,
            ..WorkloadSpec::default()
        };
        check(&spec, RecorderKind::Hybrid);
    }
}

#[test]
fn read_shared_heavy_both() {
    // Stresses RdSh creation chains and fence edges specifically.
    for kind in [RecorderKind::Optimistic, RecorderKind::Hybrid] {
        let spec = WorkloadSpec {
            name: "stress-rdsh".into(),
            threads: 6,
            steps_per_thread: 2_000,
            shared_read_frac: 0.35,
            racy_frac: 0.05,
            hot_objects: 8,
            write_frac: 0.3,
            seed: 0xEF01,
            ..WorkloadSpec::default()
        };
        check(&spec, kind);
    }
}

#[test]
fn eight_thread_mixed_hybrid() {
    let spec = WorkloadSpec {
        name: "stress-8t".into(),
        threads: 8,
        steps_per_thread: 1_200,
        racy_frac: 0.10,
        locked_frac: 0.08,
        shared_read_frac: 0.10,
        hot_objects: 12,
        seed: 0xFEED,
        ..WorkloadSpec::default()
    };
    check(&spec, RecorderKind::Hybrid);
    check(&spec, RecorderKind::Optimistic);
}

#[test]
fn two_threads_tight_pingpong() {
    // Maximal conflict density between two threads.
    for kind in [RecorderKind::Optimistic, RecorderKind::Hybrid] {
        let spec = WorkloadSpec {
            name: "stress-pingpong".into(),
            threads: 2,
            steps_per_thread: 4_000,
            racy_frac: 0.8,
            hot_objects: 2,
            local_work: 0,
            seed: 0xF00D,
            ..WorkloadSpec::default()
        };
        check(&spec, kind);
    }
}
