//! Driving workload specs through the region-serializability enforcers
//! (Figure 9(b)'s harness).
//!
//! SBRS regions are bounded by synchronization operations, method calls, and
//! loop back edges (§5). A workload step maps exactly onto that: the
//! accesses between two boundary ops (`Lock`, `Unlock`, `Safepoint`) form
//! one statically bounded region. Critical-section bodies become one region
//! per CS; unsynchronized accesses become short regions bounded by the loop
//! back edge.
//!
//! Region bodies re-execute on restart, so the driver's value accumulator is
//! snapshotted at region entry and committed only on success — the same
//! discipline the paper's compiler transformation guarantees for region-
//! local state.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use drink_rs::RsEnforcer;
use drink_runtime::Runtime;

use crate::driver::{local_work, RunResult};
use crate::spec::{Op, WorkloadSpec};

/// Which enforcer configuration to run (Figure 9(b)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RsKind {
    /// The optimistic enforcer (§5.1).
    Optimistic,
    /// The hybrid enforcer (§5.2).
    Hybrid,
}

impl RsKind {
    /// Configuration label.
    pub fn name(self) -> &'static str {
        match self {
            RsKind::Optimistic => "opt-rs",
            RsKind::Hybrid => "hybrid-rs",
        }
    }
}

/// Split one thread's op stream into statically bounded regions. Returns a
/// sequence of driver-level items.
fn regionize(ops: &[Op]) -> Vec<RegionItem> {
    let mut items = Vec::new();
    let mut batch: Vec<Op> = Vec::new();
    let flush = |items: &mut Vec<RegionItem>, batch: &mut Vec<Op>| {
        if !batch.is_empty() {
            items.push(RegionItem::Region(std::mem::take(batch)));
        }
    };
    for op in ops {
        match op {
            Op::Read(_) | Op::Write(_) => batch.push(*op),
            Op::Lock(m) => {
                flush(&mut items, &mut batch);
                items.push(RegionItem::Lock(*m));
            }
            Op::Unlock(m) => {
                flush(&mut items, &mut batch);
                items.push(RegionItem::Unlock(*m));
            }
            Op::Safepoint => {
                flush(&mut items, &mut batch);
                items.push(RegionItem::Safepoint);
            }
            Op::Work(n) => {
                flush(&mut items, &mut batch);
                items.push(RegionItem::Work(*n));
            }
            Op::Yield => {
                flush(&mut items, &mut batch);
                items.push(RegionItem::Yield);
            }
        }
    }
    flush(&mut items, &mut batch);
    items
}

enum RegionItem {
    Region(Vec<Op>),
    Lock(drink_runtime::MonitorId),
    Unlock(drink_runtime::MonitorId),
    Safepoint,
    Work(u32),
    Yield,
}

/// Run `spec` under the given enforcer over runtime `rt` (sized via
/// [`crate::driver::runtime_for`]).
pub fn run_rs_on(enforcer: &RsEnforcer, spec: &WorkloadSpec) -> RunResult {
    let rt = enforcer.rt();
    assert!(rt.heap().len() >= spec.heap_objects());
    for i in 0..spec.heap_objects() {
        let o = drink_runtime::ObjId(i as u32);
        if spec.is_read_shared(o) {
            enforcer
                .rt()
                .obj(o)
                .state()
                .store(drink_core::word::StateWord::rd_sh_opt(1).0, std::sync::atomic::Ordering::SeqCst);
        } else {
            enforcer.alloc_init(o, spec.initial_owner(o));
        }
    }
    let all_items: Vec<Vec<RegionItem>> = (0..spec.threads)
        .map(|t| regionize(&spec.ops(t)))
        .collect();
    let barrier = Barrier::new(spec.threads);

    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..spec.threads {
            let enforcer = &enforcer;
            let barrier = &barrier;
            let all_items = &all_items;
            s.spawn(move || {
                let t = enforcer.attach();
                let items = &all_items[t.index()];
                barrier.wait();
                let mut acc: u64 = u64::from(t.raw()) + 1;
                for item in items {
                    match item {
                        RegionItem::Region(ops) => {
                            // Snapshot region-local state; commit on success.
                            acc = enforcer.region(t, |r| {
                                let mut a = acc;
                                for op in ops {
                                    match *op {
                                        Op::Read(o) => {
                                            let v = r.read(o)?;
                                            a = a.rotate_left(7)
                                                ^ v.wrapping_add(0x9E37_79B9_7F4A_7C15);
                                        }
                                        Op::Write(o) => {
                                            a = a
                                                .wrapping_mul(6_364_136_223_846_793_005)
                                                .wrapping_add(1_442_695_040_888_963_407);
                                            r.write(o, a)?;
                                        }
                                        _ => unreachable!("regions contain only accesses"),
                                    }
                                }
                                Ok(a)
                            });
                        }
                        RegionItem::Lock(m) => enforcer.lock(t, *m),
                        RegionItem::Unlock(m) => enforcer.unlock(t, *m),
                        RegionItem::Safepoint => enforcer.safepoint(t),
                        RegionItem::Work(n) => local_work(*n),
                        RegionItem::Yield => std::thread::yield_now(),
                    }
                }
                enforcer.detach(t);
            });
        }
    });
    let wall = start.elapsed();

    RunResult {
        engine: enforcer.name(),
        workload: spec.name.clone(),
        wall,
        report: rt.stats().report(),
        heap: rt.heap().snapshot_data(),
        conflicts_per_object: Vec::new(),
        shard_stamps: rt.heap().stamp_snapshot(),
        thread_shards: rt.heap().thread_shards(),
    }
}

/// Construct the enforcer and run `spec` on a fresh runtime.
pub fn run_rs(kind: RsKind, spec: &WorkloadSpec) -> RunResult {
    let rt: Arc<Runtime> = crate::driver::runtime_for(spec);
    let enforcer = match kind {
        RsKind::Optimistic => RsEnforcer::optimistic(rt),
        RsKind::Hybrid => RsEnforcer::hybrid(rt),
    };
    run_rs_on(&enforcer, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drink_runtime::Event;

    #[test]
    fn regionize_bounds_regions_at_sync_and_back_edges() {
        use drink_runtime::{MonitorId, ObjId};
        let ops = vec![
            Op::Read(ObjId(0)),
            Op::Write(ObjId(0)),
            Op::Safepoint,
            Op::Lock(MonitorId(0)),
            Op::Read(ObjId(1)),
            Op::Unlock(MonitorId(0)),
            Op::Work(5),
            Op::Write(ObjId(2)),
        ];
        let items = regionize(&ops);
        let shapes: Vec<&str> = items
            .iter()
            .map(|i| match i {
                RegionItem::Region(_) => "R",
                RegionItem::Lock(_) => "L",
                RegionItem::Unlock(_) => "U",
                RegionItem::Safepoint => "S",
                RegionItem::Work(_) => "W",
                RegionItem::Yield => "Y",
            })
            .collect();
        assert_eq!(shapes, vec!["R", "S", "L", "R", "U", "W", "R"]);
    }

    #[test]
    fn both_enforcers_complete_a_locked_workload() {
        let spec = WorkloadSpec::builder()
            .name("rs-locked")
            .threads(4)
            .steps_per_thread(800)
            .locked_frac(0.15)
            .shared_read_frac(0.05)
            .build()
            .unwrap();
        for kind in [RsKind::Optimistic, RsKind::Hybrid] {
            let r = run_rs(kind, &spec);
            let execs = r.report.get(Event::RegionExec);
            let restarts = r.report.get(Event::RegionRestart);
            assert!(execs > 0, "{}", kind.name());
            // Every restart re-executes, so execs ≥ committed regions ≥ restarts
            // is the structural invariant (restarts may occur even in DRF
            // workloads when a waiting region must yield to a third party).
            assert!(execs > restarts, "{}", kind.name());
        }
    }

    #[test]
    fn racy_workload_restarts_but_completes() {
        let spec = WorkloadSpec::builder()
            .name("rs-racy")
            .threads(4)
            .steps_per_thread(800)
            .racy_frac(0.3)
            .hot_objects(4)
            .build()
            .unwrap();
        for kind in [RsKind::Optimistic, RsKind::Hybrid] {
            let r = run_rs(kind, &spec);
            assert!(
                r.report.get(Event::RegionExec)
                    >= r.report.get(Event::RegionRestart),
                "{}", kind.name()
            );
        }
    }
}
