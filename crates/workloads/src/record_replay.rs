//! Record & replay drivers over workload specs (Figure 9(a)'s harness).

use drink_core::engine::hybrid::HybridConfig;
use drink_core::prelude::*;
use drink_replay::{Recorder, RecordingLog, ReplayEngine};

use crate::driver::{run_workload, runtime_for, RunResult};
use crate::spec::WorkloadSpec;

/// Which recorder configuration to use (§4.1 vs. §4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecorderKind {
    /// The optimistic recorder: Octet tracking + coordination-derived edges.
    Optimistic,
    /// The hybrid recorder: hybrid tracking + release-clock edges for
    /// pessimistic conflicting transitions.
    Hybrid,
}

impl RecorderKind {
    /// Configuration name, as stored in the log.
    pub fn name(self) -> &'static str {
        match self {
            RecorderKind::Optimistic => "optimistic",
            RecorderKind::Hybrid => "hybrid",
        }
    }
}

/// A recorded run: its measurements plus the happens-before log.
#[derive(Clone, Debug)]
pub struct RecordOutcome {
    /// The recorded run's measurements (wall time, stats, final heap).
    pub run: RunResult,
    /// The recorded schedule.
    pub log: RecordingLog,
}

/// Record one execution of `spec` under the given recorder.
pub fn record(kind: RecorderKind, spec: &WorkloadSpec) -> RecordOutcome {
    let rt = runtime_for(spec);
    let recorder = Recorder::for_runtime(&rt, kind.name());
    let run = match kind {
        RecorderKind::Optimistic => {
            // Controller disabled: this recorder's identity is that *every*
            // cross-thread edge is coordination-derived. Letting the demotion
            // controller (DESIGN.md §13) turn hot objects pessimistic would
            // silently mix in release-clock edges and make the recorded log's
            // shape depend on host load.
            let engine = OptimisticEngine::with_adapt(rt, recorder.clone(), None);
            run_workload(&engine, spec)
        }
        RecorderKind::Hybrid => {
            let engine = HybridEngine::with_config(rt, recorder.clone(), HybridConfig::default());
            run_workload(&engine, spec)
        }
    };
    let log = recorder.into_log();
    log.validate().expect("recorder produced a malformed log");
    RecordOutcome { run, log }
}

/// Replay a recorded schedule of `spec`. `elide_sync` elides program
/// synchronization (the paper's replayer; default true in [`replay`]).
pub fn replay_with(spec: &WorkloadSpec, log: RecordingLog, elide_sync: bool) -> RunResult {
    let rt = runtime_for(spec);
    let engine = ReplayEngine::with_options(rt, log, elide_sync);
    run_workload(&engine, spec)
}

/// Replay with synchronization elided (§7.6).
pub fn replay(spec: &WorkloadSpec, log: RecordingLog) -> RunResult {
    replay_with(spec, log, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{racy_inc, sync_inc};

    fn assert_replay_reproduces(kind: RecorderKind, spec: &WorkloadSpec) {
        let recorded = record(kind, spec);
        let replayed = replay(spec, recorded.log.clone());
        assert_eq!(
            recorded.run.heap, replayed.heap,
            "{} replay of {} diverged from the recorded heap",
            kind.name(),
            spec.name
        );
        // Replay again: still identical (replay is itself deterministic).
        let replayed2 = replay(spec, recorded.log);
        assert_eq!(replayed.heap, replayed2.heap);
    }

    #[test]
    fn locked_workload_record_replay_hybrid() {
        let spec = WorkloadSpec {
            name: "rr-locked".into(),
            threads: 4,
            steps_per_thread: 3_000,
            locked_frac: 0.10,
            shared_read_frac: 0.05,
            ..WorkloadSpec::default()
        };
        assert_replay_reproduces(RecorderKind::Hybrid, &spec);
    }

    #[test]
    fn locked_workload_record_replay_optimistic() {
        let spec = WorkloadSpec {
            name: "rr-locked-opt".into(),
            threads: 4,
            steps_per_thread: 3_000,
            locked_frac: 0.10,
            shared_read_frac: 0.05,
            ..WorkloadSpec::default()
        };
        assert_replay_reproduces(RecorderKind::Optimistic, &spec);
    }

    #[test]
    fn racy_workload_record_replay_hybrid() {
        // The acid test: data races everywhere, yet the log must pin down
        // every cross-thread dependence.
        let spec = WorkloadSpec {
            name: "rr-racy".into(),
            threads: 4,
            steps_per_thread: 2_000,
            racy_frac: 0.20,
            hot_objects: 8,
            locked_frac: 0.05,
            shared_read_frac: 0.05,
            ..WorkloadSpec::default()
        };
        assert_replay_reproduces(RecorderKind::Hybrid, &spec);
    }

    #[test]
    fn racy_workload_record_replay_optimistic() {
        let spec = WorkloadSpec {
            name: "rr-racy-opt".into(),
            threads: 4,
            steps_per_thread: 2_000,
            racy_frac: 0.20,
            hot_objects: 8,
            locked_frac: 0.05,
            shared_read_frac: 0.05,
            ..WorkloadSpec::default()
        };
        assert_replay_reproduces(RecorderKind::Optimistic, &spec);
    }

    #[test]
    fn sync_inc_record_replay_both() {
        let spec = sync_inc(4, 1_000);
        assert_replay_reproduces(RecorderKind::Optimistic, &spec);
        assert_replay_reproduces(RecorderKind::Hybrid, &spec);
    }

    #[test]
    fn racy_inc_record_replay_both() {
        let spec = racy_inc(4, 800);
        assert_replay_reproduces(RecorderKind::Optimistic, &spec);
        assert_replay_reproduces(RecorderKind::Hybrid, &spec);
    }

    #[test]
    fn non_elided_replay_also_reproduces() {
        let spec = sync_inc(4, 500);
        let recorded = record(RecorderKind::Hybrid, &spec);
        let replayed = replay_with(&spec, recorded.log, false);
        assert_eq!(recorded.run.heap, replayed.heap);
    }

    #[test]
    fn hybrid_recorder_uses_fewer_roundtrips_on_hot_workload() {
        use drink_runtime::Event;
        let spec = WorkloadSpec {
            name: "rr-hot".into(),
            threads: 4,
            steps_per_thread: 6_000,
            racy_frac: 0.25,
            hot_objects: 4,
            local_work: 6,
            ..WorkloadSpec::default()
        };
        let opt = record(RecorderKind::Optimistic, &spec);
        let hyb = record(RecorderKind::Hybrid, &spec);
        let opt_rt = opt.run.report.get(Event::CoordinationRoundtrip);
        let hyb_rt = hyb.run.report.get(Event::CoordinationRoundtrip);
        assert!(
            hyb_rt * 2 < opt_rt,
            "hybrid recorder should coordinate far less: opt={opt_rt} hyb={hyb_rt}"
        );
    }
}
