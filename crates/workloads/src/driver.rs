//! Workload execution driver.
//!
//! Runs a [`WorkloadSpec`] against any tracking engine and collects the
//! measurements the evaluation needs: wall-clock time, the transition-count
//! report (Table 2), the final heap image (replay-determinism witness), and
//! the per-object conflict histogram (Figure 6).
//!
//! Every thread mixes the values it reads into a running accumulator and
//! derives the values it writes from it, so the final heap contents are a
//! fingerprint of the cross-thread dependence order — two runs that resolve
//! every dependence identically produce bit-identical heaps.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use drink_core::policy::AdaptivePolicy;
use drink_core::prelude::*;
use drink_runtime::{Runtime, RuntimeConfig, StatsReport};

// The engine-selection enum lives in `drink_core` (one parser, one
// constructor, the erased `AnyEngine` wrapper); re-exported here because the
// workload driver is where most downstream code historically imported it.
pub use drink_core::engine::EngineKind;

use crate::spec::{Op, WorkloadSpec};

/// Everything one workload run produces.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Engine configuration name.
    pub engine: &'static str,
    /// Workload name.
    pub workload: String,
    /// Wall-clock duration of the parallel phase.
    pub wall: Duration,
    /// Aggregate transition statistics.
    pub report: StatsReport,
    /// Final payloads of every object (determinism witness).
    pub heap: Vec<u64>,
    /// Per-object explicit-conflict counts (for the Figure 6 CDF); saturates
    /// at 65 535 per object.
    pub conflicts_per_object: Vec<u32>,
    /// Per-object access-epoch stamp masks at run end (bit `s` set ⇔ thread
    /// shard `s` was stamped for the object; see `Heap::stamp_snapshot`).
    /// All zeros on single-shard runtimes, where the epoch table is inert.
    pub shard_stamps: Vec<u64>,
    /// Thread-shard count of the runtime the run used (1 = epoch-skip off).
    pub thread_shards: usize,
}

impl RunResult {
    /// Figure 6's cumulative distribution: for each `x`, the fraction of all
    /// accesses that were conflicting transitions numbered ≤ `x` on their
    /// object. An object whose final count is `k` contributed one conflict
    /// at each ordinal `1..=k`, so `cdf(x) = Σ_o min(k_o, x) / accesses`.
    pub fn conflict_cdf(&self, x: u32) -> f64 {
        let total = self.report.accesses();
        if total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .conflicts_per_object
            .iter()
            .map(|&k| k.min(x) as u64)
            .sum();
        sum as f64 / total as f64
    }
}

/// The runtime configuration a spec needs (callers that want to tweak the
/// config — or register [`drink_runtime::SchedHooks`] before sharing the
/// runtime — build on this instead of [`runtime_for`]).
pub fn runtime_config_for(spec: &WorkloadSpec) -> RuntimeConfig {
    let mut builder = RuntimeConfig::builder()
        .max_threads(spec.threads)
        .heap_objects(spec.heap_objects())
        .monitors(spec.monitors.max(1));
    if let Some(spin) = spec.monitor_spin {
        builder = builder.monitor_spin_iters(spin);
    }
    if let Some(ms) = spec.coord_deadline_ms {
        builder = builder.coord_deadline(Duration::from_millis(ms));
    }
    if let Some(shards) = spec.shards {
        builder = builder.shards(shards);
    }
    builder.build()
}

/// Build a runtime sized for `spec`.
pub fn runtime_for(spec: &WorkloadSpec) -> Arc<Runtime> {
    Arc::new(Runtime::new(runtime_config_for(spec)))
}

/// The deterministic local-computation kernel (an `Op::Work` unit).
#[inline]
pub fn local_work(n: u32) {
    let mut x = std::hint::black_box(0x243F_6A88_85A3_08D3u64);
    for i in 0..n {
        x = x.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(i as u64);
    }
    std::hint::black_box(x);
}

/// Execute one thread's op sequence through a session. Returns the thread's
/// final accumulator (a determinism witness of the values it observed).
pub fn execute_ops<T: Tracker + ?Sized>(sess: &Session<'_, T>, ops: &[Op]) -> u64 {
    let mut acc: u64 = u64::from(sess.tid().raw()) + 1;
    for op in ops {
        match *op {
            Op::Read(o) => {
                let v = sess.read(o);
                acc = acc.rotate_left(7) ^ v.wrapping_add(0x9E37_79B9_7F4A_7C15);
            }
            Op::Write(o) => {
                acc = acc
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                sess.write(o, acc);
            }
            Op::Lock(m) => sess.lock(m),
            Op::Unlock(m) => sess.unlock(m),
            Op::Work(n) => local_work(n),
            Op::Safepoint => sess.safepoint(),
            Op::Yield => std::thread::yield_now(),
        }
    }
    acc
}

/// Run `spec` on `engine`. The engine's runtime must be sized by
/// [`runtime_for`] (or larger).
pub fn run_workload<T: Tracker + ?Sized>(engine: &T, spec: &WorkloadSpec) -> RunResult {
    // Specs built through `WorkloadSpec::builder()` are already validated;
    // this re-check catches struct-literal and deserialized specs before the
    // op expansion can hit a modulo-by-zero or an oversized hot set.
    if let Err(e) = spec.validate() {
        panic!("{e}");
    }
    let rt = engine.rt();
    assert!(rt.heap().len() >= spec.heap_objects(), "heap too small");
    assert!(rt.config().max_threads >= spec.threads, "too few thread slots");

    // Object allocation: every object starts owned by its allocating thread,
    // except the long-lived read-mostly region, which starts read-shared (see
    // `Tracker::alloc_init_read_shared`).
    for i in 0..spec.heap_objects() {
        let o = drink_runtime::ObjId(i as u32);
        if spec.is_read_shared(o) {
            engine.alloc_init_read_shared(o);
        } else {
            engine.alloc_init(o, spec.initial_owner(o));
        }
    }

    // Pre-expand op sequences outside the measured region. Each worker
    // executes the sequence belonging to its *attached* mutator id — thread
    // spawn order and attach order need not agree, and the op streams are
    // what own the per-thread object partitions (and what the replayer's
    // per-thread logs are keyed by).
    let all_ops: Vec<Vec<Op>> = (0..spec.threads).map(|t| spec.ops(t)).collect();
    let barrier = Barrier::new(spec.threads);

    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..spec.threads {
            let engine = &engine;
            let barrier = &barrier;
            let all_ops = &all_ops;
            s.spawn(move || {
                let sess = Session::attach(*engine);
                let ops = &all_ops[sess.tid().index()];
                barrier.wait();
                execute_ops(&sess, ops);
            });
        }
    });
    let wall = start.elapsed();

    let heap = rt.heap().snapshot_data();
    let conflicts_per_object = rt
        .heap()
        .iter()
        .map(|(_, h)| AdaptivePolicy::profile(h.profile()).num_conflicts)
        .collect();

    RunResult {
        engine: engine.name(),
        workload: spec.name.clone(),
        wall,
        report: rt.stats().report(),
        heap,
        conflicts_per_object,
        shard_stamps: rt.heap().stamp_snapshot(),
        thread_shards: rt.heap().thread_shards(),
    }
}

/// Construct a fresh runtime + engine of the given kind and run `spec` on it.
pub fn run_kind(kind: EngineKind, spec: &WorkloadSpec) -> RunResult {
    run_kind_on(kind, runtime_for(spec), spec)
}

/// Run `spec` under `kind` on a caller-provided runtime (which must be sized
/// by [`runtime_config_for`] or larger; the chaos harness uses this to
/// register schedule hooks before the runtime is shared).
///
/// Engine construction and naming live entirely behind the erased
/// [`EngineKind::build`] path — this function has no per-engine arms. (The
/// adaptive kind reports as `"adaptive"` because [`drink_core::AnyEngine`]
/// carries the kind-aware name, not because anything is patched up here.)
pub fn run_kind_on(kind: EngineKind, rt: Arc<Runtime>, spec: &WorkloadSpec) -> RunResult {
    run_workload(&kind.build(rt), spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{racy_inc, sync_inc};
    use drink_runtime::Event;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec::builder().steps_per_thread(2_000).build().unwrap()
    }

    #[test]
    fn adaptive_kind_completes_phase_shifted_chaos_with_deadline_on() {
        // chaos_adapt turns on a 150 ms recoverable coordination deadline;
        // the adaptive kind must finish (no watchdog panic) and count the
        // same accesses as the reference hybrid run.
        let spec = crate::spec::chaos_adapt(3);
        let a = run_kind(EngineKind::Adaptive, &spec);
        let h = run_kind(EngineKind::Hybrid, &spec);
        assert_eq!(a.engine, "adaptive");
        assert_eq!(a.report.accesses(), h.report.accesses());
    }

    #[test]
    fn baseline_and_tracked_runs_count_identical_accesses() {
        let spec = small_spec();
        let opt = run_kind(EngineKind::Optimistic, &spec);
        let hyb = run_kind(EngineKind::Hybrid, &spec);
        let pess = run_kind(EngineKind::Pessimistic, &spec);
        assert_eq!(opt.report.accesses(), hyb.report.accesses());
        assert_eq!(opt.report.accesses(), pess.report.accesses());
        assert!(opt.report.accesses() > 0);
    }

    #[test]
    fn single_threaded_runs_are_heap_deterministic_across_engines() {
        // With one thread there are no cross-thread dependences: every engine
        // must produce the identical final heap.
        let spec = WorkloadSpec::builder()
            .threads(1)
            .steps_per_thread(3_000)
            .build()
            .unwrap();
        let base = run_kind(EngineKind::Baseline, &spec);
        for kind in EngineKind::FIGURE7 {
            let r = run_kind(kind, &spec);
            assert_eq!(r.heap, base.heap, "{:?} diverged from baseline", kind);
        }
    }

    #[test]
    fn sync_inc_counts_exactly_under_every_sound_engine() {
        let spec = sync_inc(4, 1_500);
        for kind in [
            EngineKind::Baseline,
            EngineKind::Pessimistic,
            EngineKind::Optimistic,
            EngineKind::Hybrid,
            EngineKind::HybridInfiniteCutoff,
        ] {
            let r = run_kind(kind, &spec);
            assert!(r.heap[0] > 0);
            // The counter value itself is a PRNG-mixed accumulator (not a
            // plain count), so instead verify every access happened and the
            // run completed with the lock serializing the read+write pairs:
            assert_eq!(
                r.report.accesses(),
                if kind == EngineKind::Baseline { 0 } else { 4 * 1_500 * 2 },
                "{kind:?}"
            );
        }
    }

    #[test]
    fn racy_inc_completes_under_every_engine() {
        let spec = racy_inc(4, 1_000);
        for kind in EngineKind::FIGURE7 {
            let r = run_kind(kind, &spec);
            assert_eq!(r.workload, "racyInc");
            assert!(r.wall > Duration::ZERO);
        }
    }

    #[test]
    fn conflict_cdf_is_monotone_and_bounded() {
        let spec = WorkloadSpec::builder()
            .racy_frac(0.05)
            .steps_per_thread(4_000)
            .build()
            .unwrap();
        let r = run_kind(EngineKind::Optimistic, &spec);
        let mut prev = 0.0;
        for x in [1, 2, 4, 8, 16, 64, 1024, u32::MAX] {
            let y = r.conflict_cdf(x);
            assert!(y >= prev, "CDF must be monotone");
            assert!(y <= 1.0);
            prev = y;
        }
        // The max-x CDF equals the overall explicit-conflict rate (modulo
        // per-object saturation, which these sizes never hit).
        let rate = r.report.explicit_conflict_rate();
        assert!((r.conflict_cdf(u32::MAX) - rate).abs() < 1e-9);
    }

    #[test]
    fn hybrid_reduces_explicit_conflicts_on_hot_racy_workload() {
        // The core claim of the paper, at workload scale: hybrid tracking
        // converts repeated conflicts on hot objects into pessimistic
        // transitions.
        let spec = WorkloadSpec::builder()
            .name("hot-racy")
            .racy_frac(0.30)
            .hot_objects(4)
            .local_work(6)
            .steps_per_thread(8_000)
            .build()
            .unwrap();
        // The comparison is against *static* Octet (∞ cutoff): the default
        // Optimistic kind now runs the demotion controller (DESIGN.md §13),
        // which cuts the same conflicts this test credits to the §6 valve —
        // and does so by a host-load-dependent amount.
        let opt = run_kind(EngineKind::HybridInfiniteCutoff, &spec);
        let hyb = run_kind(EngineKind::Hybrid, &spec);
        let opt_confl = opt.report.opt_conflicting();
        let hyb_confl = hyb.report.opt_conflicting();
        assert!(
            hyb_confl * 2 < opt_confl,
            "hybrid should cut conflicting transitions by well over half: opt={opt_confl} hyb={hyb_confl}"
        );
        assert!(hyb.report.opt_to_pess() >= 1);
        assert!(hyb.report.pess_uncontended() > 0);
    }

    #[test]
    fn drf_workload_has_no_contended_transitions() {
        let spec = WorkloadSpec::builder()
            .name("drf")
            .racy_frac(0.0)
            .shared_read_frac(0.0)
            .locked_frac(0.10)
            .steps_per_thread(5_000)
            .build()
            .unwrap();
        let hyb = run_kind(EngineKind::Hybrid, &spec);
        assert_eq!(
            hyb.report.get(Event::PessContended),
            0,
            "object-level DRF must imply contention-free deferred unlocking"
        );
    }
}
