//! The 13 benchmark profiles of the paper's evaluation (§7.2), with the
//! paper's measured characteristics (Table 2 and §7.5/§7.6 text) attached
//! for side-by-side reporting.
//!
//! The knob values below were calibrated so that each workload's *measured*
//! explicit-conflict rate under optimistic tracking lands within roughly an
//! order of magnitude of the paper's (`paper.conflict_rate()`), and so the
//! qualitative clustering — {jython, luindex, lusearch, sunflow} ≈ zero
//! conflict, {eclipse, pmd, pjbb2000} low, {hsqldb} implicit-heavy,
//! {xalan6, xalan9} explicit-heavy, {avrora, pjbb2005} racy — is preserved.
//! The bench harness `profiles_calibration` prints target vs. measured.

use serde::{Deserialize, Serialize};

use crate::spec::WorkloadSpec;

/// The paper's published per-program numbers (Table 2; Figure 7/9 values
/// where the text states them explicitly).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PaperRef {
    /// Total accesses under optimistic tracking (Table 2, parenthesized
    /// same-state + conflicting, dominated by same-state).
    pub total_accesses: f64,
    /// Conflicting transitions under optimistic tracking alone.
    pub opt_conflicting: f64,
    /// Conflicting transitions remaining under hybrid tracking.
    pub hybrid_conflicting: f64,
    /// Pessimistic uncontended transitions under hybrid tracking.
    pub pess_uncontended: f64,
    /// Share of uncontended pessimistic transitions that were reentrant (%).
    pub reentrant_pct: f64,
    /// Pessimistic contended transitions under hybrid tracking.
    pub pess_contended: f64,
    /// Objects moved optimistic → pessimistic.
    pub opt_to_pess: f64,
    /// Objects moved pessimistic → optimistic.
    pub pess_to_opt: f64,
    /// Figure 7 run-time overhead (%) under optimistic tracking, where the
    /// paper's text states it.
    pub overhead_opt_pct: Option<f64>,
    /// Figure 7 run-time overhead (%) under hybrid tracking, where stated.
    pub overhead_hybrid_pct: Option<f64>,
}

impl PaperRef {
    /// The paper program's conflict rate (conflicting / total accesses).
    pub fn conflict_rate(&self) -> f64 {
        self.opt_conflicting / self.total_accesses
    }

    /// Reduction in conflicting transitions achieved by hybrid tracking.
    pub fn conflict_reduction(&self) -> f64 {
        1.0 - self.hybrid_conflicting / self.opt_conflicting
    }
}

/// A named workload plus its paper reference.
#[derive(Clone, Debug)]
pub struct Profile {
    /// The runnable spec.
    pub spec: WorkloadSpec,
    /// The paper's published numbers for the modeled program.
    pub paper: PaperRef,
}

fn base(name: &str, steps: usize) -> WorkloadSpec {
    WorkloadSpec {
        name: name.into(),
        threads: 8,
        steps_per_thread: steps,
        shared_objects: 512,
        hot_objects: 32,
        local_objects: 512,
        monitors: 16,
        locked_frac: 0.0,
        lock_affinity: 0.0,
        racy_frac: 0.0,
        shared_read_frac: 0.0,
        write_frac: 0.4,
        cs_len: 3,
        cs_work: 0,
        local_work: 10,
        safepoint_every: 4,
        seed: 0xD1CE,
        yield_every: 0,
        monitor_spin: None,
        coord_deadline_ms: None,
        phase_every: 0,
        shards: None,
    }
}

/// All thirteen evaluation profiles, in Table 2 order.
pub fn all() -> Vec<Profile> {
    vec![
        // eclipse6: huge, lock-heavy IDE workload with strong thread
        // affinity; conflicts are rare relative to its 1.2×10¹⁰ accesses.
        Profile {
            spec: WorkloadSpec {
                locked_frac: 0.008,
                lock_affinity: 0.999,
                shared_read_frac: 0.03,
                ..base("eclipse6", 250_000)
            },
            paper: PaperRef {
                total_accesses: 1.2e10,
                opt_conflicting: 1.3e5,
                hybrid_conflicting: 1.3e5,
                pess_uncontended: 1.5e6,
                reentrant_pct: 32.0,
                pess_contended: 1.3e2,
                opt_to_pess: 1.2e2,
                pess_to_opt: 1.1e2,
                overhead_opt_pct: None,
                overhead_hybrid_pct: None,
            },
        },
        // hsqldb6: database with coarse locking; most conflicts resolve
        // implicitly against threads parked on the hot lock, which is why
        // hybrid tracking barely helps it (§7.5).
        Profile {
            spec: WorkloadSpec {
                monitors: 2,
                hot_objects: 16,
                locked_frac: 0.0015,
                lock_affinity: 0.0,
                cs_len: 6,
                cs_work: 3_000,
                shared_read_frac: 0.02,
                monitor_spin: Some(4),
                ..base("hsqldb6", 60_000)
            },
            paper: PaperRef {
                total_accesses: 6.1e8,
                opt_conflicting: 9.2e5,
                hybrid_conflicting: 5.2e5,
                pess_uncontended: 4.7e6,
                reentrant_pct: 64.0,
                pess_contended: 9.0e2,
                opt_to_pess: 5.1e1,
                pess_to_opt: 0.5,
                overhead_opt_pct: None,
                overhead_hybrid_pct: None,
            },
        },
        // lusearch6: embarrassingly parallel search; almost no sharing.
        Profile {
            spec: WorkloadSpec {
                locked_frac: 0.0005,
                lock_affinity: 0.995,
                shared_read_frac: 0.01,
                ..base("lusearch6", 160_000)
            },
            paper: PaperRef {
                total_accesses: 2.4e9,
                opt_conflicting: 4.4e3,
                hybrid_conflicting: 4.3e3,
                pess_uncontended: 2.6e2,
                reentrant_pct: 30.0,
                pess_contended: 0.0,
                opt_to_pess: 1.0,
                pess_to_opt: 0.0,
                overhead_opt_pct: None,
                overhead_hybrid_pct: None,
            },
        },
        // xalan6: XSLT with a shared object pool handed between threads
        // under low-affinity locks: the flagship high-conflict,
        // explicit-coordination program (65% → 24% overhead, §7.5).
        Profile {
            spec: WorkloadSpec {
                monitors: 4,
                hot_objects: 64,
                locked_frac: 0.004,
                lock_affinity: 0.85,
                shared_read_frac: 0.05,
                local_work: 14,
                ..base("xalan6", 200_000)
            },
            paper: PaperRef {
                total_accesses: 1.1e10,
                opt_conflicting: 1.8e7,
                hybrid_conflicting: 3.9e5,
                pess_uncontended: 2.1e8,
                reentrant_pct: 52.0,
                pess_contended: 1.5e1,
                opt_to_pess: 5.4e2,
                pess_to_opt: 1.0e2,
                overhead_opt_pct: Some(65.0),
                overhead_hybrid_pct: Some(24.0),
            },
        },
        // avrora9: sensor-network simulator with true and object-level-only
        // data races — the contended-transition outlier of Table 2.
        Profile {
            spec: WorkloadSpec {
                hot_objects: 24,
                locked_frac: 0.001,
                lock_affinity: 0.5,
                racy_frac: 0.0008,
                shared_read_frac: 0.03,
                ..base("avrora9", 150_000)
            },
            paper: PaperRef {
                total_accesses: 6.0e9,
                opt_conflicting: 6.0e6,
                hybrid_conflicting: 2.7e6,
                pess_uncontended: 8.4e6,
                reentrant_pct: 17.0,
                pess_contended: 8.0e5,
                opt_to_pess: 1.0e5,
                pess_to_opt: 1.2e2,
                overhead_opt_pct: None,
                overhead_hybrid_pct: None,
            },
        },
        // jython9: single-threaded-ish interpreter; effectively no sharing.
        Profile {
            spec: WorkloadSpec {
                locked_frac: 0.0,
                shared_read_frac: 0.002,
                write_frac: 0.5,
                ..base("jython9", 200_000)
            },
            paper: PaperRef {
                total_accesses: 5.1e9,
                opt_conflicting: 6.7e1,
                hybrid_conflicting: 7.3e1,
                pess_uncontended: 0.0,
                reentrant_pct: 0.0,
                pess_contended: 0.0,
                opt_to_pess: 0.0,
                pess_to_opt: 0.0,
                overhead_opt_pct: None,
                overhead_hybrid_pct: None,
            },
        },
        // luindex9: indexing, almost entirely thread-local.
        Profile {
            spec: WorkloadSpec {
                locked_frac: 0.0,
                shared_read_frac: 0.004,
                ..base("luindex9", 80_000)
            },
            paper: PaperRef {
                total_accesses: 3.4e8,
                opt_conflicting: 3.7e2,
                hybrid_conflicting: 3.8e2,
                pess_uncontended: 0.0,
                reentrant_pct: 0.0,
                pess_contended: 0.0,
                opt_to_pess: 0.0,
                pess_to_opt: 0.0,
                overhead_opt_pct: None,
                overhead_hybrid_pct: None,
            },
        },
        // lusearch9: like lusearch6 with a trace of cross-thread handoff.
        Profile {
            spec: WorkloadSpec {
                locked_frac: 0.0006,
                lock_affinity: 0.99,
                shared_read_frac: 0.01,
                ..base("lusearch9", 160_000)
            },
            paper: PaperRef {
                total_accesses: 2.3e9,
                opt_conflicting: 2.8e3,
                hybrid_conflicting: 2.3e3,
                pess_uncontended: 3.9e3,
                reentrant_pct: 44.0,
                pess_contended: 7.6e1,
                opt_to_pess: 1.1e1,
                pess_to_opt: 2.0,
                overhead_opt_pct: None,
                overhead_hybrid_pct: None,
            },
        },
        // pmd9: source-code analyzer; moderate, lock-mediated sharing.
        Profile {
            spec: WorkloadSpec {
                locked_frac: 0.002,
                lock_affinity: 0.99,
                shared_read_frac: 0.08,
                ..base("pmd9", 100_000)
            },
            paper: PaperRef {
                total_accesses: 5.6e8,
                opt_conflicting: 4.2e4,
                hybrid_conflicting: 1.7e4,
                pess_uncontended: 1.9e5,
                reentrant_pct: 58.0,
                pess_contended: 2.1e3,
                opt_to_pess: 3.0e2,
                pess_to_opt: 5.4e1,
                overhead_opt_pct: None,
                overhead_hybrid_pct: None,
            },
        },
        // sunflow9: ray tracer reading a shared scene graph — read-mostly
        // sharing, 92% of its (few) pessimistic transitions reentrant.
        Profile {
            spec: WorkloadSpec {
                locked_frac: 0.0002,
                lock_affinity: 0.995,
                shared_read_frac: 0.25,
                write_frac: 0.25,
                ..base("sunflow9", 250_000)
            },
            paper: PaperRef {
                total_accesses: 1.7e10,
                opt_conflicting: 6.1e3,
                hybrid_conflicting: 6.2e3,
                pess_uncontended: 5.9e3,
                reentrant_pct: 92.0,
                pess_contended: 3.0e1,
                opt_to_pess: 8.4,
                pess_to_opt: 3.6,
                overhead_opt_pct: None,
                overhead_hybrid_pct: None,
            },
        },
        // xalan9: the 2009 xalan — same pooled-handoff shape as xalan6
        // (19% → 5% overhead, §7.5).
        Profile {
            spec: WorkloadSpec {
                monitors: 4,
                hot_objects: 64,
                locked_frac: 0.0035,
                lock_affinity: 0.83,
                shared_read_frac: 0.05,
                local_work: 14,
                ..base("xalan9", 200_000)
            },
            paper: PaperRef {
                total_accesses: 1.0e10,
                opt_conflicting: 1.7e7,
                hybrid_conflicting: 2.9e5,
                pess_uncontended: 1.9e8,
                reentrant_pct: 68.0,
                pess_contended: 3.0e1,
                opt_to_pess: 9.0e2,
                pess_to_opt: 1.4e2,
                overhead_opt_pct: Some(19.0),
                overhead_hybrid_pct: Some(5.0),
            },
        },
        // pjbb2000: transaction mix over shared warehouses under locks.
        Profile {
            spec: WorkloadSpec {
                locked_frac: 0.003,
                lock_affinity: 0.93,
                shared_read_frac: 0.05,
                ..base("pjbb2000", 100_000)
            },
            paper: PaperRef {
                total_accesses: 1.7e9,
                opt_conflicting: 9.5e5,
                hybrid_conflicting: 9.3e5,
                pess_uncontended: 2.4e6,
                reentrant_pct: 58.0,
                pess_contended: 1.3e2,
                opt_to_pess: 2.4e3,
                pess_to_opt: 1.1e3,
                overhead_opt_pct: None,
                overhead_hybrid_pct: None,
            },
        },
        // pjbb2005: the highest-conflict program, with true data races
        // causing contended transitions (110% → 49% overhead, §7.5).
        Profile {
            spec: WorkloadSpec {
                monitors: 8,
                hot_objects: 16,
                locked_frac: 0.005,
                lock_affinity: 0.70,
                racy_frac: 0.002,
                shared_read_frac: 0.03,
                local_work: 12,
                ..base("pjbb2005", 150_000)
            },
            paper: PaperRef {
                total_accesses: 6.6e9,
                opt_conflicting: 4.4e7,
                hybrid_conflicting: 8.4e5,
                pess_uncontended: 1.4e8,
                reentrant_pct: 32.0,
                pess_contended: 7.6e5,
                opt_to_pess: 3.2e3,
                pess_to_opt: 3.1e3,
                overhead_opt_pct: Some(110.0),
                overhead_hybrid_pct: Some(49.0),
            },
        },
    ]
}

/// Look a profile up by name.
pub fn by_name(name: &str) -> Option<Profile> {
    all().into_iter().find(|p| p.spec.name == name)
}

/// Scale every profile's step count by `factor` (quick smoke runs vs. full
/// measurement runs).
pub fn scaled(factor: f64) -> Vec<Profile> {
    let mut v = all();
    for p in &mut v {
        p.spec.steps_per_thread = ((p.spec.steps_per_thread as f64 * factor) as usize).max(100);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_profile_spec_validates() {
        // The profile table is built from struct literals (update syntax over
        // `base()`), so the builder's invariants are re-checked here.
        for p in all() {
            p.spec
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", p.spec.name));
        }
    }

    #[test]
    fn thirteen_profiles_in_table_2_order() {
        let names: Vec<String> = all().into_iter().map(|p| p.spec.name).collect();
        assert_eq!(
            names,
            vec![
                "eclipse6",
                "hsqldb6",
                "lusearch6",
                "xalan6",
                "avrora9",
                "jython9",
                "luindex9",
                "lusearch9",
                "pmd9",
                "sunflow9",
                "xalan9",
                "pjbb2000",
                "pjbb2005"
            ]
        );
    }

    #[test]
    fn paper_refs_are_self_consistent() {
        for p in all() {
            let r = p.paper;
            assert!(r.total_accesses > 0.0);
            assert!(r.opt_conflicting >= 0.0);
            assert!(
                r.conflict_rate() < 0.01,
                "{}: no paper program conflicts on >1% of accesses",
                p.spec.name
            );
        }
    }

    #[test]
    fn high_conflict_programs_have_high_knobs() {
        // The calibration must at least order the extremes correctly.
        let rate = |name: &str| {
            let p = by_name(name).unwrap();
            p.spec.locked_frac * (1.0 - p.spec.lock_affinity) + p.spec.racy_frac
        };
        assert!(rate("xalan6") > 10.0 * rate("eclipse6"));
        assert!(rate("pjbb2005") > 10.0 * rate("lusearch9"));
        assert!(rate("jython9") == 0.0);
    }

    #[test]
    fn by_name_and_scaling() {
        assert!(by_name("xalan6").is_some());
        assert!(by_name("nope").is_none());
        let s = scaled(0.1);
        assert_eq!(s[0].spec.steps_per_thread, 25_000);
    }

    #[test]
    fn specs_fit_their_runtimes() {
        for p in all() {
            assert!(p.spec.hot_objects <= p.spec.shared_objects, "{}", p.spec.name);
            assert!(p.spec.monitors >= 1);
            assert!(p.spec.threads <= 16);
        }
    }
}
