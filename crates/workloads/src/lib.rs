//! # drink-workloads: deterministic workload suite
//!
//! The evaluation substrate: 13 synthetic workloads calibrated to the
//! communication profiles of the paper's DaCapo/pjbb programs
//! ([`profiles`]), the `syncInc`/`racyInc` stress microbenchmarks of
//! Figure 8 ([`spec::sync_inc`]/[`spec::racy_inc`]), and a [`driver`] that
//! runs any spec on any tracking engine and collects the measurements the
//! paper reports.
//!
//! Workloads are **deterministic**: a spec expands to fixed per-thread
//! operation sequences, so the same program can be recorded and then
//! replayed (crate `drink-replay`), and final heap images can be compared
//! across runs.

pub mod driver;
pub mod profiles;
pub mod record_replay;
pub mod rs_driver;
pub mod spec;

pub use driver::{
    run_kind, run_kind_on, run_workload, runtime_config_for, runtime_for, EngineKind, RunResult,
};
pub use profiles::{all as all_profiles, by_name, scaled, PaperRef, Profile};
pub use record_replay::{record, replay, replay_with, RecordOutcome, RecorderKind};
pub use rs_driver::{run_rs, run_rs_on, RsKind};
pub use spec::{
    chaos_adapt, chaos_disjoint, chaos_handoff, chaos_mix, chaos_rdsh, chaos_read_mostly,
    chaos_shard, racy_inc, sync_inc, Op, SpecError, WorkloadSpec, WorkloadSpecBuilder,
};
