//! Adaptive-controller acceptance sweep: does the online opt→pess demotion
//! controller (DESIGN.md §13) track the *best static policy* on every
//! Table 2 profile?
//!
//! For each of the 13 paper profiles we time three engines over the same
//! deterministic op streams:
//!
//! - **pess** — always-pessimistic tracking (one static extreme);
//! - **opt** — hybrid with infinite cutoff, controller off (the other
//!   static extreme: pure Octet-style optimistic tracking);
//! - **adapt** — the same infinite-cutoff configuration with the online
//!   demotion controller enabled.
//!
//! Each wall time is the **minimum** of `--trials` (default 3) runs — on a
//! loaded CI host scheduler noise is strictly additive, so the min is the
//! comparator that actually reflects the protocol cost. The verdict per
//! profile is
//!
//! ```text
//! wall(adapt) <= (1 + tolerance) * min(wall(pess), wall(opt)) + slack
//! ```
//!
//! with `--tolerance` in percent (default 5). `slack` is a fixed per-profile
//! grace (default 2ms, `--slack-ms`) covering the controller's irreducible
//! warm-up: each hot object must eat one measured coordination roundtrip
//! before its EWMA can demote it, and at small `--scale` factors that
//! O(hot objects) constant is not amortizable by any policy. Exit status 1
//! if any profile violates the bound, 0 otherwise.
//!
//! Completing the sweep at all is itself part of the acceptance: every
//! adaptive run executes under the spin watchdog, so a controller that
//! stalled a requester or parked a responder forever would abort the
//! binary, not just lose the verdict.
//!
//! ```bash
//! cargo run --release -p drink-bench --bin adapt_sweep -- \
//!     [--scale F] [--trials N] [--tolerance PCT] [--slack-ms MS]
//! ```

use std::time::Duration;

use drink_bench::{banner, row, scale_from_args, scaled_spec, trials_from_args};
use drink_runtime::Event;
use drink_workloads::{profiles, run_kind, EngineKind};

fn arg_f64(flag: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Min-of-trials wall plus the controller/deadline counters of the best run.
fn best_of(kind: EngineKind, spec: &drink_workloads::WorkloadSpec, trials: usize)
    -> (Duration, u64, u64, u64)
{
    let mut best = Duration::MAX;
    let mut counters = (0, 0, 0);
    for _ in 0..trials {
        let r = run_kind(kind, spec);
        if r.wall < best {
            best = r.wall;
            counters = (
                r.report.get(Event::AdaptDemotion),
                r.report.get(Event::AdaptPromotion),
                r.report.get(Event::CoordDeadlineExceeded),
            );
        }
    }
    (best, counters.0, counters.1, counters.2)
}

fn main() {
    banner("adapt_sweep", "degradation-ladder acceptance (DESIGN.md §13)");
    let scale = scale_from_args();
    let trials = trials_from_args(3);
    let tolerance = arg_f64("--tolerance", 5.0) / 100.0;
    let slack = Duration::from_secs_f64(arg_f64("--slack-ms", 2.0) / 1e3);

    let widths = [10, 9, 9, 9, 8, 7, 7, 9];
    println!(
        "{}",
        row(
            &["program", "pess ms", "opt ms", "adapt ms", "vs best", "demote", "promote", "verdict"]
                .map(String::from),
            &widths
        )
    );

    let mut violations = 0u32;
    for p in profiles::all() {
        let spec = scaled_spec(&p.spec, scale);
        let (pess, _, _, _) = best_of(EngineKind::Pessimistic, &spec, trials);
        let (opt, _, _, _) = best_of(EngineKind::HybridInfiniteCutoff, &spec, trials);
        let (adapt, demotions, promotions, deadlines) =
            best_of(EngineKind::Adaptive, &spec, trials);

        let best_static = pess.min(opt);
        let bound = best_static.mul_f64(1.0 + tolerance) + slack;
        let vs_best = (adapt.as_secs_f64() / best_static.as_secs_f64() - 1.0) * 100.0;
        let ok = adapt <= bound;
        if !ok {
            violations += 1;
        }
        println!(
            "{}",
            row(
                &[
                    spec.name.clone(),
                    format!("{:.2}", pess.as_secs_f64() * 1e3),
                    format!("{:.2}", opt.as_secs_f64() * 1e3),
                    format!("{:.2}", adapt.as_secs_f64() * 1e3),
                    format!("{vs_best:+.1}%"),
                    demotions.to_string(),
                    promotions.to_string(),
                    if ok { "ok".into() } else { "VIOLATION".to_string() },
                ],
                &widths
            )
        );
        if deadlines > 0 {
            println!("  {}: {} coordination deadline(s) expired", spec.name, deadlines);
        }
    }

    println!();
    if violations > 0 {
        eprintln!(
            "adapt_sweep: {violations} profile(s) exceeded best-static by more than \
             {:.0}% + {:.0}ms slack",
            tolerance * 100.0,
            slack.as_secs_f64() * 1e3
        );
        std::process::exit(1);
    }
    println!(
        "adapt_sweep: adaptive within {:.0}% (+{:.0}ms warm-up slack) of the best \
         static policy on all {} profiles; zero watchdog panics",
        tolerance * 100.0,
        slack.as_secs_f64() * 1e3,
        profiles::all().len()
    );
}
