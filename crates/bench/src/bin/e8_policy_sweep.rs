//! E8: the §7.3 parameter study — sensitivity of hybrid tracking to the
//! adaptive policy's parameters.
//!
//! The paper: "larger values of Cutoff_confl have little impact (except for
//! avrora9) ... various values for K_confl (20–1,600) and Inertia (20–1,600)
//! are effective." We sweep each parameter on representative high-conflict
//! workloads and report conflicting transitions + model overhead per
//! setting.

use drink_bench::{banner, model_overhead_pct, row, scale_from_args, scaled_spec, sci, DEFAULT_WORK_PER_ACCESS};
use drink_core::engine::hybrid::{HybridConfig, HybridEngine};
use drink_core::policy::PolicyParams;
use drink_core::support::NullSupport;
use drink_workloads::{by_name, run_workload, runtime_for, WorkloadSpec};

fn run_with(spec: &WorkloadSpec, params: PolicyParams) -> (u64, u64, f64) {
    let rt = runtime_for(spec);
    let engine = HybridEngine::with_config(
        rt,
        NullSupport,
        HybridConfig {
            policy: params,
            ..HybridConfig::default()
        },
    );
    let r = run_workload(&engine, spec);
    (
        r.report.opt_conflicting(),
        r.report.opt_to_pess(),
        model_overhead_pct(&r.report, DEFAULT_WORK_PER_ACCESS),
    )
}

fn main() {
    banner("E8 e8_policy_sweep", "§7.3 policy-parameter sensitivity");
    let scale = scale_from_args();
    let programs = ["xalan6", "avrora9", "pjbb2005"];
    let widths = [10, 20, 12, 10, 10];

    println!(
        "{}",
        row(
            &["program", "params", "conflicting", "opt→pess", "model %"].map(String::from),
            &widths
        )
    );

    for name in programs {
        let spec = scaled_spec(&by_name(name).unwrap().spec, scale);

        // Cutoff_confl sweep (paper default 4; ∞ = never pessimistic).
        for cutoff in [1u32, 4, 16, 64, u32::MAX] {
            let p = PolicyParams {
                cutoff_confl: cutoff,
                ..PolicyParams::default()
            };
            let (confl, moved, model) = run_with(&spec, p);
            let label = if cutoff == u32::MAX {
                "cutoff=∞".to_string()
            } else {
                format!("cutoff={cutoff}")
            };
            println!(
                "{}",
                row(
                    &[
                        name.to_string(),
                        label,
                        sci(confl as f64),
                        sci(moved as f64),
                        format!("{model:.0}"),
                    ],
                    &widths
                )
            );
        }
        // K_confl / Inertia sweeps at the paper's ranges.
        for (k, inertia) in [(20u32, 100u32), (200, 100), (1_600, 100), (200, 20), (200, 1_600)] {
            let p = PolicyParams {
                k_confl: k,
                inertia,
                ..PolicyParams::default()
            };
            let (confl, moved, model) = run_with(&spec, p);
            println!(
                "{}",
                row(
                    &[
                        name.to_string(),
                        format!("K={k},I={inertia}"),
                        sci(confl as f64),
                        sci(moved as f64),
                        format!("{model:.0}"),
                    ],
                    &widths
                )
            );
        }
        println!();
    }

    println!("Shape checks: cutoff=∞ leaves conflicting transitions at the");
    println!("optimistic level (no benefit); small finite cutoffs capture most of");
    println!("the reduction; K_confl/Inertia across 20–1,600 change results only");
    println!("marginally — the paper's 'performance is not very sensitive' claim.");
}
