//! E9: the §7.1 "extraneous contention" ablation.
//!
//! The paper's 32-bit prototype omits the `WrExRLock` state (a self-read
//! write-locks instead), which can trigger coordination without any
//! object-level data race. They validate the omission is harmless via an
//! *unsound* alternate (self-read downgrades to `RdExRLock`). Our 64-bit
//! state word implements the full model, so we can compare all three:
//!
//! * `WrExRLock` — the full model (our default);
//! * `WrExWLock` — the paper's prototype encoding;
//! * `RdExRLock` — the paper's unsound diagnostic.
//!
//! Workload: single-writer/multi-reader on pessimistic objects — the exact
//! pattern where a read-locked write-exclusive state saves a second reader
//! from contending.

use drink_bench::{banner, overhead_pct, row, scale_from_args};
use drink_core::engine::hybrid::{HybridConfig, HybridEngine, SelfReadMode};
use drink_core::policy::PolicyParams;
use drink_core::support::NullSupport;
use drink_runtime::Event;
use drink_workloads::{run_kind, run_workload, runtime_for, EngineKind, WorkloadSpec};

fn spec(scale: f64) -> WorkloadSpec {
    WorkloadSpec {
        name: "writer-reader".into(),
        threads: 6,
        steps_per_thread: ((20_000.0 * scale) as usize).max(500),
        shared_objects: 64,
        hot_objects: 16,
        local_objects: 128,
        monitors: 4,
        // Lock-mediated single-writer updates + plenty of unsynchronized
        // *reads* of the same hot set: object-level DRF against the readers
        // is violated (reads race with locked writes), giving the self-read
        // encoding something to matter for.
        locked_frac: 0.04,
        lock_affinity: 0.0,
        racy_frac: 0.10,
        shared_read_frac: 0.0,
        write_frac: 0.15,
        cs_len: 3,
        cs_work: 0,
        local_work: 10,
        safepoint_every: 2,
        seed: 0xE9,
        yield_every: 0,
        monitor_spin: None,
        coord_deadline_ms: None,
        phase_every: 0,
        shards: None,
    }
}

fn main() {
    banner("E9 e9_wrex_rlock_ablation", "§7.1 extraneous-contention ablation");
    let scale = scale_from_args();
    let spec = spec(scale);
    // An eager policy so the hot set is actually pessimistic.
    let policy = PolicyParams {
        cutoff_confl: 2,
        ..PolicyParams::default()
    };

    let base = run_kind(EngineKind::Baseline, &spec).wall;
    let widths = [26, 12, 12, 12, 12];
    println!(
        "{}",
        row(
            &["self-read mode", "wall %", "contended", "reentrant", "coord"].map(String::from),
            &widths
        )
    );
    for (label, mode) in [
        ("WrExRLock (full model)", SelfReadMode::WrExRLock),
        ("WrExWLock (prototype)", SelfReadMode::WrExWLock),
        ("RdExRLock (unsound)", SelfReadMode::RdExRLockUnsound),
    ] {
        let rt = runtime_for(&spec);
        let engine = HybridEngine::with_config(
            rt,
            NullSupport,
            HybridConfig {
                policy,
                self_read: mode,
                ..HybridConfig::default()
            },
        );
        let r = run_workload(&engine, &spec);
        println!(
            "{}",
            row(
                &[
                    label.to_string(),
                    format!("{:.0}", overhead_pct(r.wall, base)),
                    format!("{}", r.report.pess_contended()),
                    format!("{}", r.report.get(Event::PessReentrant)),
                    format!("{}", r.report.get(Event::CoordinationRoundtrip)),
                ],
                &widths
            )
        );
    }
    println!();
    println!("Shape checks: the prototype encoding (WrExWLock) shows more contended");
    println!("transitions than the full model; the unsound RdExRLock diagnostic");
    println!("matches the full model's contention (the paper found no performance");
    println!("benefit, concluding spurious contention was insignificant — compare");
    println!("the full-model row to see whether that holds here too).");
}
