//! E5: regenerate **Figure 8** — the `syncInc` / `racyInc` stress tests.
//!
//! `syncInc`: 8 threads increment a global counter under a global lock —
//! object-level data-race-free, the best case for hybrid tracking's
//! deferred unlocking (paper: optimistic ≈ 1200%, hybrid ≈ 84%).
//!
//! `racyInc`: the same without the lock — object-level races everywhere,
//! hybrid tracking's worst case (paper: pessimistic/optimistic ≈ 1200%,
//! hybrid ≈ 4300%). The optional §7.5 policy extension (contended-cutoff)
//! is also measured, showing the worst case is fixable.

use drink_bench::{
    banner, model_overhead_pct, overhead_pct, row, run_trials, scale_from_args,
    DEFAULT_WORK_PER_ACCESS,
};
use drink_core::engine::hybrid::{HybridConfig, HybridEngine};
use drink_core::policy::PolicyParams;
use drink_core::support::NullSupport;
use drink_runtime::Event;
use drink_workloads::{racy_inc, run_workload, runtime_for, sync_inc, EngineKind};

fn main() {
    banner("E5 fig8_microbench", "Figure 8 (syncInc / racyInc stress tests)");
    let scale = scale_from_args();
    let threads = 8;
    let iters = ((40_000.0 * scale) as usize).max(500);
    let trials = 3;

    let widths = [22, 12, 12, 14, 12, 12];
    println!(
        "{}",
        row(
            &["config", "wall %", "model %", "coord/1k acc", "rounds/cont", "own-chg %"]
                .map(String::from),
            &widths
        )
    );

    for (label, spec) in [
        ("syncInc", sync_inc(threads, iters)),
        ("racyInc", racy_inc(threads, iters)),
    ] {
        println!("--- {label} ({} threads × {} iters) ---", threads, iters);
        let (base_wall, _) = run_trials(EngineKind::Baseline, &spec, trials);
        for kind in [
            EngineKind::Pessimistic,
            EngineKind::Optimistic,
            EngineKind::Hybrid,
        ] {
            let (wall, r) = run_trials(kind, &spec, trials);
            let coord =
                r.report.get(Event::CoordinationRoundtrip) as f64 / r.report.accesses() as f64
                    * 1000.0;
            // §7.5 diagnostics: coordination rounds per contended transition
            // ("most of these accesses trigger coordination more than once")
            // and the share of pessimistic accesses that change owners ("26%
            // of pessimistic tracking's accesses lock a state with a
            // different thread").
            let contended = r.report.pess_contended();
            let rounds = if contended == 0 {
                "-".to_string()
            } else {
                format!(
                    "{:.1}",
                    r.report.get(Event::CoordinationRoundtrip) as f64 / contended as f64
                )
            };
            let pess_total = r.report.pess_uncontended();
            let own_chg = if pess_total == 0 {
                "-".to_string()
            } else {
                format!(
                    "{:.0}",
                    100.0 * r.report.get(Event::PessOwnerChange) as f64 / pess_total as f64
                )
            };
            println!(
                "{}",
                row(
                    &[
                        kind.label().to_string(),
                        format!("{:.0}", overhead_pct(wall, base_wall)),
                        format!("{:.0}", model_overhead_pct(&r.report, DEFAULT_WORK_PER_ACCESS)),
                        format!("{coord:.1}"),
                        rounds,
                        own_chg,
                    ],
                    &widths
                )
            );
        }
        // The §7.5 extension, on racyInc only (where it matters).
        if label == "racyInc" {
            let rt = runtime_for(&spec);
            let engine = HybridEngine::with_config(
                rt,
                NullSupport,
                HybridConfig {
                    policy: PolicyParams::default().with_contended_cutoff(16),
                    ..HybridConfig::default()
                },
            );
            let r = run_workload(&engine, &spec);
            let coord =
                r.report.get(Event::CoordinationRoundtrip) as f64 / r.report.accesses() as f64
                    * 1000.0;
            println!(
                "{}",
                row(
                    &[
                        "Hybrid+§7.5 extension".into(),
                        format!("{:.0}", overhead_pct(r.wall, base_wall)),
                        format!("{:.0}", model_overhead_pct(&r.report, DEFAULT_WORK_PER_ACCESS)),
                        format!("{coord:.1}"),
                        "-".into(),
                        "-".into(),
                    ],
                    &widths
                )
            );
        }
    }

    println!();
    println!("[paper] syncInc: Pess ≈ Opt ≈ 1200%, Hybrid 84%.");
    println!("[paper] racyInc: Pess ≈ Opt ≈ 1200%, Hybrid 4300% (worst case;");
    println!("        the sketched policy extension alleviates it).");
    println!("Shape checks: syncInc — Hybrid ≪ Optimistic; racyInc — Hybrid worst,");
    println!("extension pulls it back to roughly optimistic territory.");
}
