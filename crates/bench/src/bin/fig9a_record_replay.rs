//! E6: regenerate **Figure 9(a)** — run-time overhead of the optimistic and
//! hybrid dependence recorders and replayers.
//!
//! Per workload: record under each recorder, then replay its log (with
//! program synchronization elided, as the paper's replayer does). Overheads
//! are relative to the untracked baseline; replays can be *negative* for
//! lock-dominated programs (the paper's pjbb2005), since elided
//! synchronization removes the baseline's lock contention.
//!
//! The paper drops eclipse6 from this figure (its replayer fails on it); we
//! run all 13 and note the difference.

use drink_bench::{banner, geomean_overhead, overhead_pct, row, scale_from_args, scaled_spec};
use drink_workloads::{all_profiles, record, replay, run_kind, EngineKind, RecorderKind};

fn main() {
    banner("E6 fig9a_record_replay", "Figure 9(a) (recorders & replayers)");
    let scale = scale_from_args();

    let widths = [10, 11, 11, 11, 11, 9];
    println!(
        "{}",
        row(
            &["program", "opt-rec %", "opt-rep %", "hyb-rec %", "hyb-rep %", "edges"]
                .map(String::from),
            &widths
        )
    );

    let mut cols: [Vec<f64>; 4] = Default::default();
    for profile in all_profiles() {
        let spec = scaled_spec(&profile.spec, scale);
        let base = run_kind(EngineKind::Baseline, &spec).wall;

        let mut cells = vec![spec.name.clone()];
        let mut edges = 0usize;
        for (i, kind) in [RecorderKind::Optimistic, RecorderKind::Hybrid]
            .into_iter()
            .enumerate()
        {
            let rec = record(kind, &spec);
            let rec_oh = overhead_pct(rec.run.wall, base);
            edges = rec.log.total_edges();
            let rep = replay(&spec, rec.log);
            let rep_oh = overhead_pct(rep.wall, base);
            // Replay must reproduce the recorded heap — assert it here too,
            // so the bench doubles as a soundness check at full scale.
            assert_eq!(
                rec.run.heap, rep.heap,
                "replay diverged on {} under {:?}",
                spec.name, kind
            );
            cols[2 * i].push(rec_oh);
            cols[2 * i + 1].push(rep_oh);
            cells.push(format!("{rec_oh:.0}"));
            cells.push(format!("{rep_oh:.0}"));
        }
        cells.push(format!("{edges}"));
        println!("{}", row(&cells, &widths));
    }

    println!();
    println!(
        "{}",
        row(
            &[
                "geomean".into(),
                format!("{:.0}", geomean_overhead(&cols[0])),
                format!("{:.0}", geomean_overhead(&cols[1])),
                format!("{:.0}", geomean_overhead(&cols[2])),
                format!("{:.0}", geomean_overhead(&cols[3])),
                "".into(),
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &["[paper]".into(), "46".into(), "20".into(), "41".into(), "24".into(), "".into()],
            &widths
        )
    );
    println!();
    println!("Shape checks: hybrid recorder < optimistic recorder on high-conflict");
    println!("programs (xalan6/9, pjbb2005); hybrid replayer ≥ optimistic replayer");
    println!("slightly; both recorders log the same dependences (edge counts are");
    println!("protocol-dependent but the replayed heaps are identical).");
}
