//! Run a user-supplied workload (JSON `WorkloadSpec`) under any tracking
//! configuration — the downstream-user entry point for experimenting with
//! communication patterns beyond the built-in 13 profiles.
//!
//! ```bash
//! # Print a template spec:
//! cargo run --release -p drink-bench --bin custom_workload -- --template > my.json
//! # Run it under every Figure-7 configuration:
//! cargo run --release -p drink-bench --bin custom_workload -- my.json
//! # Or a single engine:
//! cargo run --release -p drink-bench --bin custom_workload -- my.json hybrid
//! ```

use drink_bench::{model_overhead_pct, overhead_pct, row, DEFAULT_WORK_PER_ACCESS};
use drink_workloads::{run_kind, EngineKind, WorkloadSpec};

fn template() -> WorkloadSpec {
    WorkloadSpec::builder()
        .name("custom")
        .build()
        .expect("template spec is valid")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--template") {
        println!("{}", serde_json::to_string_pretty(&template()).unwrap());
        return;
    }
    let Some(path) = args.first() else {
        eprintln!("usage: custom_workload <spec.json> [{}]", EngineKind::CLI_NAMES);
        eprintln!("       custom_workload --template   # print a starting spec");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let spec: WorkloadSpec = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("invalid spec: {e}");
        std::process::exit(2);
    });
    // Deserialized specs bypass the builder, so re-validate before running.
    if let Err(e) = spec.validate() {
        eprintln!("{e}");
        std::process::exit(2);
    }

    let kinds: Vec<EngineKind> = match args.get(1).map(String::as_str) {
        None => {
            let mut v = vec![EngineKind::Baseline];
            v.extend(EngineKind::FIGURE7);
            v
        }
        Some(name) => match EngineKind::parse(name) {
            Some(EngineKind::Baseline) => vec![EngineKind::Baseline],
            Some(kind) => vec![EngineKind::Baseline, kind],
            None => {
                eprintln!("unknown engine: {name} (expected {})", EngineKind::CLI_NAMES);
                std::process::exit(2);
            }
        },
    };

    println!(
        "workload '{}': {} threads × {} steps, {} objects",
        spec.name,
        spec.threads,
        spec.steps_per_thread,
        spec.heap_objects()
    );
    let widths = [34, 10, 9, 9, 12, 11, 10];
    println!(
        "{}",
        row(
            &["engine", "wall ms", "wall %", "model %", "conflicting", "pess unc", "contended"]
                .map(String::from),
            &widths
        )
    );

    let mut base_wall = None;
    for kind in kinds {
        let r = run_kind(kind, &spec);
        if kind == EngineKind::Baseline {
            base_wall = Some(r.wall);
        }
        let base = base_wall.unwrap_or(r.wall);
        println!(
            "{}",
            row(
                &[
                    kind.label().to_string(),
                    format!("{:.1}", r.wall.as_secs_f64() * 1e3),
                    if kind == EngineKind::Baseline {
                        "-".into()
                    } else {
                        format!("{:.0}", overhead_pct(r.wall, base))
                    },
                    format!("{:.0}", model_overhead_pct(&r.report, DEFAULT_WORK_PER_ACCESS)),
                    format!("{}", r.report.opt_conflicting()),
                    format!("{}", r.report.pess_uncontended()),
                    format!("{}", r.report.pess_contended()),
                ],
                &widths
            )
        );
    }
}
