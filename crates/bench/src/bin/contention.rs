//! Multi-thread contention benchmark for the coordination layer:
//!
//! 1. **raw all-peer coordination** — a requester fans out to N−1 polling
//!    responders through `coordinate_many` (overlapped roundtrips, latency =
//!    max of peers) and through the sequential reference
//!    `coordinate_all_seq` (one full roundtrip per peer, latency = sum of
//!    peers). Fan-out rows run at 2/4/8/16/32/64 registered threads (the
//!    scaling curve `bench_compare --scaling` checks); the sequential
//!    reference stops at 8, where the fanout-vs-seq comparison is already
//!    decided and a 63-roundtrip-sum row would only burn CI minutes;
//! 1b. **epoch-skip fan-out** — `rdsh_conflict_fanout_skip_{8,16,32,64}`:
//!    N registered threads on a per-thread-sharded runtime
//!    (`shards(N)`, DESIGN.md §14) but only **4 sharers** ever stamped the
//!    contended object. The fan-out must resolve exactly the 3 stamped
//!    peers (asserted per trial) and skip the other N−4 — which never poll,
//!    so a broken skip hangs the row instead of quietly regressing it. The
//!    headline acceptance: the 64-thread row stays within ~2× of the
//!    8-thread row, i.e. fan-out latency tracks the *sharer* count, not the
//!    registered-thread count;
//! 2. **engine-level conflicting-transition throughput** — the RdSh-heavy
//!    `chaosRdsh` op mix (no chaos scheduler here: plain timed runs) on
//!    Pess/Opt/Adaptive/Hybrid at 2/4/8 threads, reported as ns per tracked
//!    access. The `opt_access_*` and `adapt_access_*` rows are gated: both
//!    configurations run the online demotion controller (DESIGN.md §13),
//!    which demotes the coordination-storm hot set to the pessimistic
//!    protocol and collapses the scheduler-rotation-bound roundtrip tail
//!    that used to make the always-optimistic rows bimodal on single-core
//!    hosts.
//!
//! Like `hotpath`, iteration counts are fixed so runs are comparable across
//! commits; every row takes the **minimum** of `--trials` (default 5)
//! measurements. Multi-thread numbers on a loaded (often single-core) CI
//! host carry strictly additive scheduler noise, so the min — not the
//! median — is the run-to-run-stable comparator the 25% regression gate
//! needs. Emits machine-readable `BENCH_contention.json` for
//! `scripts/bench_gate.sh`.
//!
//! ```bash
//! cargo run --release -p drink-bench --bin contention -- [out.json] [--trials N] [--scale F]
//! ```

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use drink_bench::report::{Report, Row};
use drink_bench::{scale_from_args, trials_from_args};
use drink_core::coord::{coordinate_all_seq, coordinate_many, PendingPeer};
use drink_runtime::stats::derived::Metric;
use drink_runtime::{Event, Runtime, RuntimeConfig, Spin, ThreadId};
use drink_workloads::{chaos_rdsh, chaos_read_mostly, run_kind, EngineKind, WorkloadSpec};

/// Thread widths for the engine-level throughput rows: the paper's
/// scalability plots at the low end. Engine runs spawn real mutator threads
/// per step stream, so these stay ≤ 8; the raw coordination rows carry the
/// wide end of the curve.
const WIDTHS: [usize; 3] = [2, 4, 8];

/// Thread widths for the raw fan-out scaling curve. 8 remains the
/// fanout-vs-sequential acceptance width; 16/32/64 are the sharded-substrate
/// widths the epoch-skip rows are compared against.
const FANOUT_WIDTHS: [usize; 6] = [2, 4, 8, 16, 32, 64];

/// Registered-thread widths for the epoch-skip rows (always 4 sharers).
const SKIP_WIDTHS: [usize; 4] = [8, 16, 32, 64];

/// Number of threads that ever touch the contended object in the epoch-skip
/// rows: the requester plus three responding peers.
const SKIP_SHARERS: usize = 4;

fn push_row(rows: &mut Vec<Row>, name: String, iters: u64, ns: f64, threads: usize) {
    println!("{name:<28} {ns:>10.2} ns/op   ({iters} iters, t={threads})");
    rows.push(Row {
        name,
        iters,
        ns_per_op: ns,
        advisory: false,
        threads: threads as u64,
        higher_is_better: false,
    });
}

/// All-peer rows get more expensive roughly linearly in width; shrink the
/// iteration count for the wide rows so a 64-thread curve point costs about
/// as much wall time as an 8-thread one (best-of-trials still smooths it).
fn fanout_iters(base: u64, n: usize) -> u64 {
    (base / (n as u64 / 8).max(1)).max(50)
}

/// Raw all-peer coordination latency against `n - 1` polling responders.
/// Every peer stays RUNNING, so every resolution is a full explicit
/// roundtrip — the worst case the RdSh conflict path can hit.
fn raw_all_peer(rows: &mut Vec<Row>, n: usize, iters: u64, trials: usize, fanout: bool) {
    let rt = Runtime::new(RuntimeConfig::builder()
        .max_threads(n)
        .heap_objects(64)
        .monitors(1)
        .build());
    let me = rt.register_thread();
    let peers: Vec<ThreadId> = (1..n).map(|_| rt.register_thread()).collect();
    let stop = AtomicBool::new(false);
    let ready = std::sync::atomic::AtomicUsize::new(0);

    let mut samples = Vec::with_capacity(trials);
    std::thread::scope(|s| {
        for &peer in &peers {
            let rt = &rt;
            let stop = &stop;
            let ready = &ready;
            s.spawn(move || {
                let ctl = rt.control(peer);
                ready.fetch_add(1, Ordering::Release);
                while !stop.load(Ordering::Acquire) {
                    for req in ctl.take_requests() {
                        req.token.complete(ctl.bump_release_clock());
                    }
                    // Yield between polls: on a single-core host a tight
                    // poll loop would starve the requester and the other
                    // responders for a whole scheduler quantum.
                    std::thread::yield_now();
                }
            });
        }
        let mut spin = Spin::new("contention responders ready");
        while ready.load(Ordering::Acquire) != peers.len() {
            spin.spin();
        }

        let mut sources: Vec<(ThreadId, u64)> = Vec::with_capacity(n);
        let mut pending: Vec<PendingPeer> = Vec::with_capacity(n);
        let mut one_round = |iters: u64| {
            let start = Instant::now();
            for _ in 0..iters {
                sources.clear();
                let mode = if fanout {
                    coordinate_many(&rt, me, None, &mut || {}, &mut sources, &mut pending)
                } else {
                    coordinate_all_seq(&rt, me, None, &mut || {}, &mut sources)
                };
                debug_assert_eq!(sources.len(), n - 1);
                black_box(mode);
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        };
        one_round(iters / 10 + 1); // warmup
        for _ in 0..trials {
            samples.push(one_round(iters));
        }
        stop.store(true, Ordering::Release);
    });

    let best = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let label = if fanout { "fanout" } else { "fanout_seq" };
    push_row(rows, format!("rdsh_conflict_{label}_{n}"), iters, best, n);
}

/// Epoch-skip fan-out latency (DESIGN.md §14): `n` registered threads on a
/// per-thread-sharded runtime, but only [`SKIP_SHARERS`] of them (the
/// requester plus three polling responders) ever stamped the contended
/// object. Every fan-out must visit exactly the three stamped peers and
/// skip the other `n - 4` — enforced structurally: the skipped threads are
/// registered but never spawned, so one leaked request wedges the row on
/// the spin watchdog instead of inflating it quietly. Returns the
/// best-of-trials ns/op so `main` can assert the headline 64-vs-8 ratio.
fn epoch_skip_fanout(rows: &mut Vec<Row>, n: usize, iters: u64, trials: usize) -> f64 {
    let rt = Runtime::new(RuntimeConfig::builder()
        .max_threads(n)
        .shards(n)
        .heap_objects(64)
        .monitors(1)
        .build());
    assert_eq!(rt.heap().thread_shards(), n, "per-thread shard granularity");
    let me = rt.register_thread();
    let peers: Vec<ThreadId> = (1..n).map(|_| rt.register_thread()).collect();
    let obj = drink_runtime::ObjId(3);
    // The sharer set: the requester and the first three peers. Nothing else
    // ever touches `obj`, so no other shard is ever stamped for it.
    let sharers: Vec<ThreadId> = peers[..SKIP_SHARERS - 1].to_vec();
    rt.stamp_access(me, obj);
    for &t in &sharers {
        rt.stamp_access(t, obj);
    }

    let stop = AtomicBool::new(false);
    let ready = std::sync::atomic::AtomicUsize::new(0);
    let mut samples = Vec::with_capacity(trials);
    std::thread::scope(|s| {
        for &peer in &sharers {
            let rt = &rt;
            let stop = &stop;
            let ready = &ready;
            s.spawn(move || {
                let ctl = rt.control(peer);
                ready.fetch_add(1, Ordering::Release);
                while !stop.load(Ordering::Acquire) {
                    for req in ctl.take_requests() {
                        req.token.complete(ctl.bump_release_clock());
                    }
                    std::thread::yield_now();
                }
            });
        }
        let mut spin = Spin::new("epoch-skip responders ready");
        while ready.load(Ordering::Acquire) != sharers.len() {
            spin.spin();
        }

        let mut sources: Vec<(ThreadId, u64)> = Vec::with_capacity(n);
        let mut pending: Vec<PendingPeer> = Vec::with_capacity(n);
        let mut one_round = |iters: u64| {
            let start = Instant::now();
            for _ in 0..iters {
                sources.clear();
                let mode =
                    coordinate_many(&rt, me, Some(obj), &mut || {}, &mut sources, &mut pending);
                // The soundness half is the receiver-side stamped-request
                // invariant and the shard-skip oracle; this is the
                // *effectiveness* half — the skip really did confine the
                // fan-out to the sharer set.
                assert!(
                    sources.len() <= SKIP_SHARERS - 1,
                    "epoch skip leaked past the sharer set: {} sources at t={n}",
                    sources.len()
                );
                black_box(mode);
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        };
        one_round(iters / 10 + 1); // warmup
        for _ in 0..trials {
            samples.push(one_round(iters));
        }
        stop.store(true, Ordering::Release);
    });

    let best = samples.iter().copied().fold(f64::INFINITY, f64::min);
    push_row(rows, format!("rdsh_conflict_fanout_skip_{n}"), iters, best, n);
    best
}

/// The engine-level op mix: `chaosRdsh`'s RdSh-heavy profile rescaled to the
/// requested thread count (no chaos hooks — plain timed runs).
fn contention_spec(threads: usize, steps: usize) -> WorkloadSpec {
    let mut spec = chaos_rdsh(0xC0_47EA);
    spec.name = format!("contend{threads}");
    spec.threads = threads;
    spec.steps_per_thread = steps;
    spec
}

/// Conflicting-transition throughput per engine and width: best-of-trials
/// wall time over the same deterministic op streams, reported per tracked
/// access.
fn engine_throughput(rows: &mut Vec<Row>, scale: f64, trials: usize) {
    // Long enough that the adaptive controller's warm-up — one measured
    // roundtrip per hot object before demotion can fire — is amortized into
    // the per-access figure rather than dominating it.
    let steps = ((12_000.0 * scale) as usize).max(200);
    for n in WIDTHS {
        let spec = contention_spec(n, steps);
        for kind in [
            EngineKind::Pessimistic,
            EngineKind::Optimistic,
            EngineKind::Adaptive,
            EngineKind::Hybrid,
        ] {
            let tag = kind.short_name();
            let mut best = std::time::Duration::MAX;
            let mut accesses = 1u64;
            let mut fanout_p = (0.0f64, 0.0f64, 0u64);
            for _ in 0..trials {
                let r = run_kind(kind, &spec);
                accesses = r.report.accesses().max(1);
                if r.wall < best {
                    best = r.wall;
                    fanout_p = (
                        Metric::FanoutCompleteP50.eval(&r.report),
                        Metric::FanoutCompleteP99.eval(&r.report),
                        r.report.get(Event::CoordFanout),
                    );
                }
            }
            let ns = best.as_nanos() as f64 / accesses as f64;
            push_row(rows, format!("{tag}_access_t{n}"), accesses, ns, n);
            // Diagnostic only: where the wall time went. Scheduler-bound
            // all-peer roundtrips are exactly what the controller's EWMA
            // measures; once the hot set demotes, the remaining fan-outs
            // are the pre-demotion warm-up (DESIGN.md §10, §13).
            println!(
                "  {tag}_access_t{n}: {} fan-outs, complete p50={:.0}ns p99={:.0}ns",
                fanout_p.2, fanout_p.0, fanout_p.1
            );
        }
    }
}

/// Read-dominant variant of `chaosReadMostly`: no locks, no races, 90% of
/// steps read the standing RdSh region, the rest touch thread-private
/// objects. Under the seqlock read protocol (DESIGN.md §12) every RdSh read
/// must complete with no state transition and **no coordination at all** —
/// asserted per trial via the `CoordFanout` counter, making the row itself
/// the tentpole's zero-fan-out acceptance check.
fn read_mostly_spec(threads: usize, steps: usize) -> WorkloadSpec {
    let mut spec = chaos_read_mostly(0xD0_17EA);
    spec.name = format!("readMostly{threads}");
    spec.threads = threads;
    spec.steps_per_thread = steps;
    spec.locked_frac = 0.0;
    spec.racy_frac = 0.0;
    spec.shared_read_frac = 0.9;
    spec.local_work = 0;
    spec.cs_work = 0;
    spec.monitor_spin = None;
    spec
}

/// Read-mostly RdSh throughput on the hybrid engine: ns per tracked access
/// with the seqlock path serving ~90% of accesses. The pre-seqlock cost of
/// this shape was a coordination fan-out per first-read (~µs); the target
/// band is single-digit ns.
fn read_mostly_throughput(rows: &mut Vec<Row>, scale: f64, trials: usize) {
    let steps = ((20_000.0 * scale) as usize).max(500);
    for n in WIDTHS {
        let spec = read_mostly_spec(n, steps);
        let mut best = std::time::Duration::MAX;
        let mut accesses = 1u64;
        for _ in 0..trials {
            let r = run_kind(EngineKind::Hybrid, &spec);
            assert_eq!(
                r.report.get(Event::CoordFanout),
                0,
                "read-mostly RdSh reads must never coordinate (seqlock path dead?)"
            );
            assert!(
                r.report.validated_reads() > 0,
                "read-mostly spec validated no seqlock reads"
            );
            accesses = r.report.accesses().max(1);
            best = best.min(r.wall);
        }
        let ns = best.as_nanos() as f64 / accesses as f64;
        push_row(rows, format!("rdsh_read_mostly_{n}"), accesses, ns, n);
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "BENCH_contention.json".to_string());
    // Fail on an unwritable path now, not after minutes of measurement.
    if let Err(e) = std::fs::write(&out, "") {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(2);
    }
    let scale = scale_from_args();
    let trials = trials_from_args(5);
    let iters = ((2000.0 * scale) as u64).max(100);

    let mut rows = Vec::new();
    for n in FANOUT_WIDTHS {
        raw_all_peer(&mut rows, n, fanout_iters(iters, n), trials, true);
        if n <= 8 {
            raw_all_peer(&mut rows, n, iters, trials, false);
        }
    }
    let mut skip_ns = std::collections::HashMap::new();
    for n in SKIP_WIDTHS {
        skip_ns.insert(n, epoch_skip_fanout(&mut rows, n, iters, trials));
    }
    // Headline acceptance (ISSUE/DESIGN.md §14): with the sharer count held
    // at 4, fan-out latency must not grow with the registered-thread count —
    // the 64-thread row stays within ~2× of the 8-thread row (plus a small
    // absolute slack so scheduler jitter on a µs-scale measurement cannot
    // fail the gate on a ratio of tiny numbers).
    let (skip8, skip64) = (skip_ns[&8], skip_ns[&64]);
    println!(
        "epoch-skip scaling: t=8 {skip8:.0} ns/op vs t=64 {skip64:.0} ns/op ({:.2}x)",
        skip64 / skip8
    );
    assert!(
        skip64 <= 2.0 * skip8 + 5_000.0,
        "epoch-skip fan-out latency scales with registered threads, not sharers: \
         t=64 {skip64:.0} ns/op vs t=8 {skip8:.0} ns/op"
    );
    engine_throughput(&mut rows, scale, trials);
    read_mostly_throughput(&mut rows, scale, trials);

    let mut report = Report::new("drink-bench/contention");
    report.rows = rows;
    report.write(&out).unwrap_or_else(|e| {
        eprintln!("cannot write: {e}");
        std::process::exit(2);
    });
    println!("wrote {out}");
}
