//! E4: regenerate **Figure 7** — run-time overhead of pessimistic and
//! optimistic tracking, compared with hybrid tracking (plus the
//! infinite-cutoff and unsound-Ideal configurations).
//!
//! Prints wall-clock overhead over the untracked baseline and the
//! cycle-model overhead (platform-independent; see `drink-bench` docs), plus
//! the paper's stated values where the text gives them (xalan6 65→24,
//! xalan9 19→5, pjbb2005 110→49; averages 340/28/[opt+2.3]/22/14).

use drink_bench::{
    banner, geomean_overhead, model_overhead_pct, overhead_pct, row, run_trials, scale_from_args,
    scaled_spec, trials_from_args, DEFAULT_WORK_PER_ACCESS,
};
use drink_workloads::{all_profiles, EngineKind};

fn main() {
    banner("E4 fig7_tracking_overhead", "Figure 7 (tracking-alone overhead)");
    let scale = scale_from_args();
    // The paper: median of 20 trials with 95% CIs. Override with --trials.
    let trials = trials_from_args(5);

    let configs = EngineKind::FIGURE7;
    let widths = [10, 12, 12, 12, 12, 12];
    let mut header = vec!["program".to_string()];
    header.extend(
        ["Pess", "Opt", "Hyb(∞)", "Hybrid", "Ideal"]
            .iter()
            .map(|s| s.to_string()),
    );
    println!("(each cell: wall% / model%; wall = median of {trials} trials)");
    println!("{}", row(&header, &widths));

    let mut per_config_wall: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    let mut per_config_model: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];

    for profile in all_profiles() {
        let spec = scaled_spec(&profile.spec, scale);
        let (base_wall, _) = run_trials(EngineKind::Baseline, &spec, trials);
        let mut cells = vec![spec.name.clone()];
        for (i, kind) in configs.iter().enumerate() {
            let (wall, result) = run_trials(*kind, &spec, trials);
            let w = overhead_pct(wall, base_wall);
            let m = model_overhead_pct(&result.report, DEFAULT_WORK_PER_ACCESS);
            per_config_wall[i].push(w);
            per_config_model[i].push(m);
            cells.push(format!("{w:.0}/{m:.0}"));
        }
        println!("{}", row(&cells, &widths));
        if let (Some(o), Some(h)) = (
            profile.paper.overhead_opt_pct,
            profile.paper.overhead_hybrid_pct,
        ) {
            println!(
                "{}",
                row(
                    &[
                        "  [paper]".into(),
                        "-".into(),
                        format!("{o:.0}"),
                        "-".into(),
                        format!("{h:.0}"),
                        "-".into(),
                    ],
                    &widths
                )
            );
        }
    }

    println!();
    let mut cells = vec!["geomean".to_string()];
    for i in 0..configs.len() {
        cells.push(format!(
            "{:.0}/{:.0}",
            geomean_overhead(&per_config_wall[i]),
            geomean_overhead(&per_config_model[i])
        ));
    }
    println!("{}", row(&cells, &widths));
    println!(
        "{}",
        row(
            &["[paper avg]".into(), "340".into(), "28".into(), "opt+2.3".into(), "22".into(), "14".into()],
            &widths
        )
    );
    println!();
    println!("Shape checks: Pessimistic ≫ everything; Hybrid ≤ Optimistic overall;");
    println!("Hybrid ≪ Optimistic for xalan6/xalan9/pjbb2005; Ideal lowest of the");
    println!("sound-ish configurations; Hyb(∞) slightly above Optimistic.");
}
