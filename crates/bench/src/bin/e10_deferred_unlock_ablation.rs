//! E10: ablate **deferred unlocking** — the paper's central §3.1 insight.
//!
//! The paper's initial design "added conditional instrumentation after every
//! program access, to unlock the state when it was pessimistic ... [and]
//! added significant overhead". Deferred unlocking replaced it. This harness
//! quantifies the difference by running hybrid tracking with
//! `eager_unlock = true` (the strawman) against the real thing.
//!
//! What deferral buys, mechanically:
//! * **reentrancy**: repeated accesses to held states are atomic-op-free;
//!   eager unlocking re-CASes the state word on every access;
//! * **fewer ownership flaps**: a locked state cannot be stolen between two
//!   accesses of the same synchronization-free region;
//! * **recordability**: release-clock edges only exist because unlocks are
//!   pinned to PSROs (the eager mode cannot support the recorder at all).

use drink_bench::{
    banner, model_overhead_pct, overhead_pct, row, run_trials, scale_from_args, scaled_spec,
    DEFAULT_WORK_PER_ACCESS,
};
use drink_core::engine::hybrid::{HybridConfig, HybridEngine};
use drink_core::support::NullSupport;
use drink_runtime::Event;
use drink_workloads::{all_profiles, run_workload, runtime_for, sync_inc, EngineKind, WorkloadSpec};

fn run_hybrid(spec: &WorkloadSpec, eager: bool) -> drink_workloads::RunResult {
    let rt = runtime_for(spec);
    let engine = HybridEngine::with_config(
        rt,
        NullSupport,
        HybridConfig {
            eager_unlock: eager,
            ..HybridConfig::default()
        },
    );
    run_workload(&engine, spec)
}

fn main() {
    banner(
        "E10 e10_deferred_unlock_ablation",
        "§3.1 deferred unlocking vs. the paper's initial eager design",
    );
    let scale = scale_from_args();
    let trials = 3;

    let widths = [10, 14, 14, 12, 12];
    println!("(wall% / model%; 'unlocks' counts per-access state releases)");
    println!(
        "{}",
        row(
            &["program", "deferred", "eager", "reentrant", "unlocks(e)"].map(String::from),
            &widths
        )
    );

    // The high-pessimistic-traffic programs plus syncInc, where the
    // difference is starkest.
    let mut specs: Vec<WorkloadSpec> = all_profiles()
        .into_iter()
        .filter(|p| ["hsqldb6", "xalan6", "xalan9", "pjbb2005"].contains(&p.spec.name.as_str()))
        .map(|p| p.spec)
        .collect();
    specs.push(sync_inc(8, ((40_000.0 * scale) as usize).max(500)));

    for spec in specs {
        let spec = if spec.name == "syncInc" {
            spec
        } else {
            scaled_spec(&spec, scale)
        };
        let (base_wall, _) = run_trials(EngineKind::Baseline, &spec, trials);

        let mut deferred_cell = String::new();
        let mut eager_cell = String::new();
        let mut reentrant = 0;
        let mut eager_unlocks = 0;
        for eager in [false, true] {
            let mut walls = Vec::new();
            let mut last = None;
            for _ in 0..trials {
                let r = run_hybrid(&spec, eager);
                walls.push(r.wall);
                last = Some(r);
            }
            walls.sort();
            let r = last.unwrap();
            let cell = format!(
                "{:.0}/{:.0}",
                overhead_pct(walls[walls.len() / 2], base_wall),
                model_overhead_pct(&r.report, DEFAULT_WORK_PER_ACCESS)
            );
            if eager {
                eager_cell = cell;
                eager_unlocks = r.report.get(Event::StateUnlocked);
            } else {
                deferred_cell = cell;
                reentrant = r.report.get(Event::PessReentrant);
            }
        }
        println!(
            "{}",
            row(
                &[
                    spec.name.clone(),
                    deferred_cell,
                    eager_cell,
                    format!("{reentrant}"),
                    format!("{eager_unlocks}"),
                ],
                &widths
            )
        );
    }

    println!();
    println!("Shape checks: eager unlocking pays an extra state release per");
    println!("pessimistic access — compare the 'unlocks' column against the");
    println!("handful deferred unlocking performs at PSROs — and loses all");
    println!("reentrancy. The model column prices those releases; wall clock on");
    println!("few-core hosts may not resolve the ~CAS-sized per-access cost, but");
    println!("the structural regression matches the paper's account of its");
    println!("initial design adding \"significant overhead\" (§3.1).");
}
