//! Regression comparator for the bench gate: compares a freshly measured
//! bench report (`hotpath` or `contention`) against the checked-in baseline
//! JSON and fails if any row's median regresses beyond the threshold.
//!
//! ```bash
//! bench_compare <baseline.json> <fresh.json> [--threshold PCT] [--advisory PREFIX]... [--scaling PREFIX:RATIO]...
//! ```
//!
//! Rows are matched by name. The comparison direction is per-row: ordinary
//! rows regress when the fresh value rises past the threshold, rows flagged
//! `higher_is_better` in the fresh report (schema v5 — the serve throughput
//! rows) regress when it drops. A fresh-only row is reported but never fails
//! the gate (new benches land before their baseline). A *baseline-only* row
//! is a hard usage error (exit 2): the bench suite silently shrank, and a
//! gate that skips vanished measurements is blind — retiring a row requires
//! regenerating the baseline in the same commit.
//!
//! Advisory status (compared and reported, never failing the gate — for
//! measurements whose run-to-run distribution is known-unstable on a shared
//! host) comes from the report itself: rows carry an `advisory` flag set by
//! the emitting binary. The `--advisory PREFIX` flag is still honored for
//! ad-hoc comparisons, but a row whose *baseline* is gated and whose fresh
//! measurement arrives marked advisory is a hard usage error (exit 2):
//! silently un-gating a previously-gated row would blind the gate exactly
//! like dropping the row would, so the demotion must land together with a
//! regenerated baseline.
//!
//! `--scaling PREFIX:RATIO` (repeatable) gates a **scaling curve** in the
//! *fresh* report: the gated rows named `PREFIX<digits>` with a nonzero
//! `threads` field (schema v4), ordered by thread count. For every
//! consecutive doubling (t = k → t = 2k) the ratio
//! `ns_per_op(2k) / ns_per_op(k)` must stay ≤ RATIO, or the gate fails
//! (exit 1). Unlike the baseline comparison — which catches drift across
//! commits — the scaling check is an absolute property of this run: a
//! fan-out whose latency doubles with registered threads regresses against
//! *physics* even if it matches yesterday's equally-bad baseline. A
//! `--scaling` prefix matching fewer than two curve points is a usage error
//! (exit 2): the curve the operator asked to gate does not exist.
//! Exit status: 0 clean, 1 regression, 2 usage/IO error.

use drink_bench::report::Report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threshold: f64 = args
        .iter()
        .position(|a| a == "--threshold")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(25.0);
    let advisory: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--advisory")
        .filter_map(|(i, _)| args.get(i + 1))
        .collect();
    // `--scaling PREFIX:RATIO`, repeatable. Parsed strictly: a malformed
    // spec is a usage error, not a silently-skipped gate.
    let scaling: Vec<(String, f64)> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--scaling")
        .filter_map(|(i, _)| args.get(i + 1))
        .map(|spec| {
            let Some((prefix, ratio)) = spec.rsplit_once(':') else {
                eprintln!("bench_compare: --scaling wants PREFIX:RATIO, got `{spec}`");
                std::process::exit(2);
            };
            let Ok(ratio) = ratio.parse::<f64>() else {
                eprintln!("bench_compare: bad --scaling ratio in `{spec}`");
                std::process::exit(2);
            };
            (prefix.to_string(), ratio)
        })
        .collect();
    let positional: Vec<&String> = {
        let mut skip = false;
        args.iter()
            .filter(|a| {
                if skip {
                    skip = false;
                    return false;
                }
                if *a == "--threshold" || *a == "--advisory" || *a == "--scaling" {
                    skip = true;
                    return false;
                }
                true
            })
            .collect()
    };
    let [base_path, fresh_path] = positional.as_slice() else {
        eprintln!(
            "usage: bench_compare <baseline.json> <fresh.json> [--threshold PCT] \
             [--advisory PREFIX]... [--scaling PREFIX:RATIO]..."
        );
        std::process::exit(2);
    };

    let (base, fresh) = match (Report::load(base_path), Report::load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            std::process::exit(2);
        }
    };
    if base.schema != fresh.schema {
        eprintln!(
            "bench_compare: schema mismatch ({} vs {})",
            base.schema, fresh.schema
        );
        std::process::exit(2);
    }

    // A fresh row marked advisory over a gated baseline is a silent
    // un-gating: refuse before comparing anything. (`--advisory` prefixes
    // are the operator explicitly accepting the demotion for this run.)
    let demoted: Vec<&str> = base
        .demoted_rows(&fresh)
        .into_iter()
        .filter(|n| !advisory.iter().any(|p| n.starts_with(p.as_str())))
        .collect();
    if !demoted.is_empty() {
        for name in &demoted {
            eprintln!("{name:<28} DEMOTED to advisory (baseline is gated)");
        }
        eprintln!(
            "bench_compare: {} previously-gated row(s) arrived marked advisory — \
             demoting a row requires regenerating the baseline in the same commit",
            demoted.len()
        );
        std::process::exit(2);
    }

    let mut regressions = 0u32;
    for row in &fresh.rows {
        let is_advisory =
            row.advisory || advisory.iter().any(|p| row.name.starts_with(p.as_str()));
        match base.rows.iter().find(|b| b.name == row.name) {
            Some(b) if b.ns_per_op > 0.0 => {
                // Regression direction follows the row's flag: latency-style
                // rows regress when the fresh value *rises*, throughput-style
                // rows (schema v5 `higher_is_better`) when it *drops*. Either
                // way `delta` is "percent worse", compared to one threshold.
                let delta = if row.higher_is_better {
                    if row.ns_per_op > 0.0 {
                        (b.ns_per_op / row.ns_per_op - 1.0) * 100.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (row.ns_per_op / b.ns_per_op - 1.0) * 100.0
                };
                let verdict = if delta <= threshold {
                    "ok"
                } else if is_advisory {
                    "over threshold (advisory row)"
                } else {
                    regressions += 1;
                    "REGRESSED"
                };
                let unit = if row.higher_is_better { "(↑ better)" } else { "ns/op" };
                println!(
                    "{:<28} {:>10.2} -> {:>10.2} {unit}  {:>+7.1}% worse  {verdict}",
                    row.name, b.ns_per_op, row.ns_per_op, delta
                );
            }
            Some(_) => println!("{:<28} baseline is zero; skipped", row.name),
            None => println!("{:<28} new row (no baseline)", row.name),
        }
    }
    let missing = base.missing_rows(&fresh);
    if !missing.is_empty() {
        for name in &missing {
            eprintln!("{name:<28} MISSING from fresh report");
        }
        eprintln!(
            "bench_compare: fresh report is missing {} baseline row(s) — the bench \
             suite shrank; retiring a row requires regenerating the baseline in the \
             same commit",
            missing.len()
        );
        std::process::exit(2);
    }

    // Scaling curves: an absolute property of the fresh report, checked
    // after (and independently of) the baseline drift comparison.
    for (prefix, budget) in &scaling {
        // Curve points: gated `PREFIX<digits>` rows with a thread width.
        // The digits-only rule keeps sibling curves apart —
        // `rdsh_conflict_fanout_` must not swallow
        // `rdsh_conflict_fanout_skip_64` or `..._fanout_seq_8`.
        let mut curve: Vec<_> = fresh
            .rows
            .iter()
            .filter(|r| {
                !r.advisory
                    && r.threads > 0
                    && r.name
                        .strip_prefix(prefix.as_str())
                        .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
            })
            .collect();
        curve.sort_by_key(|r| r.threads);
        if curve.len() < 2 {
            eprintln!(
                "bench_compare: --scaling {prefix} matched {} curve point(s); \
                 a scaling gate needs at least two thread widths",
                curve.len()
            );
            std::process::exit(2);
        }
        for pair in curve.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            if hi.threads != lo.threads * 2 {
                continue; // only doubling steps carry a ratio budget
            }
            let ratio = if lo.ns_per_op > 0.0 { hi.ns_per_op / lo.ns_per_op } else { 0.0 };
            let verdict = if ratio <= *budget {
                "ok"
            } else {
                regressions += 1;
                "SCALING REGRESSED"
            };
            println!(
                "{:<28} t{}→t{}  {:>10.2} -> {:>10.2} ns/op  {:>5.2}x (budget {budget}x)  {verdict}",
                prefix, lo.threads, hi.threads, lo.ns_per_op, hi.ns_per_op, ratio
            );
        }
    }

    if regressions > 0 {
        eprintln!(
            "bench_compare: {regressions} row(s) regressed more than {threshold}% vs {base_path} \
             or blew a --scaling ratio budget"
        );
        std::process::exit(1);
    }
    println!("bench_compare: {} row(s) within {threshold}% of {base_path}", fresh.rows.len());
}
