//! Regression comparator for the bench gate: compares a freshly measured
//! bench report (`hotpath` or `contention`) against the checked-in baseline
//! JSON and fails if any row's median regresses beyond the threshold.
//!
//! ```bash
//! bench_compare <baseline.json> <fresh.json> [--threshold PCT] [--advisory PREFIX]...
//! ```
//!
//! Rows are matched by name. A fresh-only row is reported but never fails
//! the gate (new benches land before their baseline). A *baseline-only* row
//! is a hard usage error (exit 2): the bench suite silently shrank, and a
//! gate that skips vanished measurements is blind — retiring a row requires
//! regenerating the baseline in the same commit.
//!
//! Advisory status (compared and reported, never failing the gate — for
//! measurements whose run-to-run distribution is known-unstable on a shared
//! host) comes from the report itself: rows carry an `advisory` flag set by
//! the emitting binary. The `--advisory PREFIX` flag is still honored for
//! ad-hoc comparisons, but a row whose *baseline* is gated and whose fresh
//! measurement arrives marked advisory is a hard usage error (exit 2):
//! silently un-gating a previously-gated row would blind the gate exactly
//! like dropping the row would, so the demotion must land together with a
//! regenerated baseline.
//! Exit status: 0 clean, 1 regression, 2 usage/IO error.

use drink_bench::report::Report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threshold: f64 = args
        .iter()
        .position(|a| a == "--threshold")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(25.0);
    let advisory: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--advisory")
        .filter_map(|(i, _)| args.get(i + 1))
        .collect();
    let positional: Vec<&String> = {
        let mut skip = false;
        args.iter()
            .filter(|a| {
                if skip {
                    skip = false;
                    return false;
                }
                if *a == "--threshold" || *a == "--advisory" {
                    skip = true;
                    return false;
                }
                true
            })
            .collect()
    };
    let [base_path, fresh_path] = positional.as_slice() else {
        eprintln!(
            "usage: bench_compare <baseline.json> <fresh.json> [--threshold PCT] [--advisory PREFIX]..."
        );
        std::process::exit(2);
    };

    let (base, fresh) = match (Report::load(base_path), Report::load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            std::process::exit(2);
        }
    };
    if base.schema != fresh.schema {
        eprintln!(
            "bench_compare: schema mismatch ({} vs {})",
            base.schema, fresh.schema
        );
        std::process::exit(2);
    }

    // A fresh row marked advisory over a gated baseline is a silent
    // un-gating: refuse before comparing anything. (`--advisory` prefixes
    // are the operator explicitly accepting the demotion for this run.)
    let demoted: Vec<&str> = base
        .demoted_rows(&fresh)
        .into_iter()
        .filter(|n| !advisory.iter().any(|p| n.starts_with(p.as_str())))
        .collect();
    if !demoted.is_empty() {
        for name in &demoted {
            eprintln!("{name:<28} DEMOTED to advisory (baseline is gated)");
        }
        eprintln!(
            "bench_compare: {} previously-gated row(s) arrived marked advisory — \
             demoting a row requires regenerating the baseline in the same commit",
            demoted.len()
        );
        std::process::exit(2);
    }

    let mut regressions = 0u32;
    for row in &fresh.rows {
        let is_advisory =
            row.advisory || advisory.iter().any(|p| row.name.starts_with(p.as_str()));
        match base.rows.iter().find(|b| b.name == row.name) {
            Some(b) if b.ns_per_op > 0.0 => {
                let delta = (row.ns_per_op / b.ns_per_op - 1.0) * 100.0;
                let verdict = if delta <= threshold {
                    "ok"
                } else if is_advisory {
                    "over threshold (advisory row)"
                } else {
                    regressions += 1;
                    "REGRESSED"
                };
                println!(
                    "{:<28} {:>10.2} -> {:>10.2} ns/op  {:>+7.1}%  {verdict}",
                    row.name, b.ns_per_op, row.ns_per_op, delta
                );
            }
            Some(_) => println!("{:<28} baseline is zero; skipped", row.name),
            None => println!("{:<28} new row (no baseline)", row.name),
        }
    }
    let missing = base.missing_rows(&fresh);
    if !missing.is_empty() {
        for name in &missing {
            eprintln!("{name:<28} MISSING from fresh report");
        }
        eprintln!(
            "bench_compare: fresh report is missing {} baseline row(s) — the bench \
             suite shrank; retiring a row requires regenerating the baseline in the \
             same commit",
            missing.len()
        );
        std::process::exit(2);
    }

    if regressions > 0 {
        eprintln!(
            "bench_compare: {regressions} row(s) regressed more than {threshold}% vs {base_path}"
        );
        std::process::exit(1);
    }
    println!("bench_compare: {} row(s) within {threshold}% of {base_path}", fresh.rows.len());
}
