//! Hot-path microbenchmark for the three layers PR 1 touched:
//!
//! 1. **access fast paths** — the optimistic same-state check and the
//!    pessimistic reentrant check (one relaxed/acquire load, no atomic RMW);
//! 2. **per-thread bookkeeping** — the dense-bitmap read set / lock buffer
//!    behind the reentrant path;
//! 3. **coordination** — the lock-free request queue, both raw
//!    (enqueue + drain) and end-to-end (explicit roundtrip against a
//!    polling responder).
//!
//! Unlike the criterion benches (which auto-size their sample counts), this
//! binary runs **fixed** iteration counts so runs are comparable across
//! commits — each row is the minimum of `--trials` (default 3) back-to-back
//! measurements, since host-load noise on shared CI boxes is strictly
//! additive — and emits machine-readable `BENCH_hotpath.json` for the bench
//! gate (`scripts/bench_gate.sh`).
//!
//! ```bash
//! cargo run --release -p drink-bench --bin hotpath -- [out.json] [--trials N]
//! ```

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use drink_core::engine::hybrid::{HybridConfig, HybridEngine};
use drink_core::prelude::*;
use drink_core::word::{LockMode, StateWord};
use drink_bench::report::{Report, Row};
use drink_runtime::{
    CoordRequest, Heap, MonitorId, ObjId, ResponseToken, Runtime, RuntimeConfig, Spin,
    ThreadControl, ThreadId,
};

fn measure(name: &str, iters: u64, mut f: impl FnMut()) -> Row {
    let trials = drink_bench::trials_from_args(3);
    let ns = (0..trials)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .fold(f64::INFINITY, f64::min);
    println!("{name:<28} {ns:>10.2} ns/op   ({iters} iters, best of {trials})");
    Row {
        name: name.to_string(),
        iters,
        ns_per_op: ns,
        // Advisory rows (report-only, never gated) declare themselves at
        // the emission site: see `trace_overhead`. Scaling-curve rows set
        // `threads` at theirs: see `fanout_snapshot`.
        advisory: false,
        threads: 0,
        higher_is_better: false,
    }
}

fn fresh_rt() -> Arc<Runtime> {
    Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(1024)
        .monitors(1)
        .build()))
}

/// Layer 1a: optimistic same-state read/write (the common case of every
/// tracked access — Figure 4's "same state" row).
fn fast_path(rows: &mut Vec<Row>) {
    const N: u64 = 20_000_000;
    let engine = HybridEngine::new(fresh_rt());
    let t = engine.attach();
    engine.alloc_init(ObjId(0), t);
    rows.push(measure("fast_path_opt_read", N, || {
        for _ in 0..N {
            black_box(engine.read(t, ObjId(0)));
        }
    }));
    rows.push(measure("fast_path_opt_write", N, || {
        for i in 0..N {
            engine.write(t, ObjId(0), black_box(i));
        }
    }));
    engine.detach(t);
}

/// Layers 1b+2: reentrant pessimistic accesses. The thread already holds the
/// write lock, so every access is one state-word load plus (for reads of a
/// read-locked object) a bitmap membership test — the path the dense
/// `DenseObjSet` replaced a `HashSet` lookup on.
fn reentrant_pess(rows: &mut Vec<Row>) {
    const N: u64 = 20_000_000;
    let engine = HybridEngine::new(fresh_rt());
    let t = engine.attach();
    // Unlocked own pessimistic state; the first write takes the write lock
    // (entering the lock buffer), after which all accesses are reentrant.
    engine
        .rt()
        .obj(ObjId(0))
        .state()
        .store(StateWord::wr_ex_pess(t, LockMode::Unlocked).0, Ordering::SeqCst);
    engine.write(t, ObjId(0), 0);
    rows.push(measure("reentrant_pess_write", N, || {
        for i in 0..N {
            engine.write(t, ObjId(0), black_box(i));
        }
    }));
    rows.push(measure("reentrant_pess_read", N, || {
        for _ in 0..N {
            black_box(engine.read(t, ObjId(0)));
        }
    }));
    // Flush the hold at a PSRO before detaching.
    engine.lock(t, MonitorId(0));
    engine.unlock(t, MonitorId(0));
    engine.detach(t);
}

/// Layer 3a: the raw lock-free inbox — batched enqueue then drain, the
/// pattern a responding safe point sees.
fn queue_raw(rows: &mut Vec<Row>) {
    const BATCH: u64 = 64;
    const ROUNDS: u64 = 200_000;
    let ctl = ThreadControl::new();
    rows.push(measure("queue_enqueue_drain", BATCH * ROUNDS, || {
        for _ in 0..ROUNDS {
            for i in 0..BATCH {
                ctl.enqueue_request(CoordRequest {
                    from: ThreadId(1),
                    obj: Some(ObjId(i as u32)),
                    token: ResponseToken::new(),
                });
            }
            let reqs = ctl.take_requests();
            debug_assert_eq!(reqs.len(), BATCH as usize);
            black_box(reqs);
        }
    }));
}

/// Layer 3b: full explicit coordination roundtrip — conflicting write
/// against a RUNNING thread that answers at its next safe-point poll
/// (enqueue, flag, poll, drain, respond, token spin).
fn explicit_roundtrip(rows: &mut Vec<Row>) {
    const N: u64 = 50_000;
    // Infinite cutoff: conflicts never push the object pessimistic, so every
    // iteration exercises the same optimistic-conflict roundtrip.
    let engine = HybridEngine::with_config(
        fresh_rt(),
        NullSupport,
        HybridConfig::infinite_cutoff(),
    );
    let ready = AtomicBool::new(false);
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        let engine = &engine;
        let ready = &ready;
        let done = &done;

        // Responder: owns the object, polls safe points in a tight loop.
        s.spawn(move || {
            let tb = engine.attach();
            engine.alloc_init(ObjId(0), tb);
            ready.store(true, Ordering::Release);
            while !done.load(Ordering::Acquire) {
                engine.safepoint(tb);
                // Yield between polls: on a single-core host a tight poll
                // loop would otherwise burn its whole scheduler quantum
                // while the requester waits, measuring the OS timeslice
                // instead of the coordination protocol.
                std::thread::yield_now();
            }
            engine.detach(tb);
        });

        let mut spin = Spin::new("responder ready");
        while !ready.load(Ordering::Acquire) {
            spin.spin();
        }
        let ta = engine.attach();
        let responder = ThreadId(0);
        rows.push(measure("explicit_roundtrip", N, || {
            for i in 0..N {
                // Hand the object back to the responder, then conflict.
                engine
                    .rt()
                    .obj(ObjId(0))
                    .state()
                    .store(StateWord::wr_ex_opt(responder).0, Ordering::SeqCst);
                engine.write(ta, ObjId(0), black_box(i));
            }
        }));
        done.store(true, Ordering::Release);
        engine.detach(ta);
    });
}

/// Layer 3c: the fan-out *snapshot pass* in isolation, across the sharded
/// substrate's thread widths (DESIGN.md §14). Two curves, both measured on a
/// single OS thread so the numbers are pure protocol cost, not scheduling:
///
/// * `fanout_snapshot_blocked_tN` — `obj = None` against N−1 blocked peers:
///   one status load + implicit epoch CAS per peer, so the row grows
///   linearly in the registered-thread count. This is the per-conflict cost
///   floor an *unsharded* RdSh conflict pays no matter how few threads
///   share the object.
/// * `fanout_snapshot_skip_tN` — a per-thread-sharded runtime
///   (`shards(N)`) where no peer's shard ever stamped the object: the
///   snapshot is one epoch load per peer and resolves vacuously, no status
///   word touched, no CAS, no source. The pair is the measured statement of
///   §14's cost model: what epoch skipping deletes from the fan-out.
fn fanout_snapshot(rows: &mut Vec<Row>) {
    const N: u64 = 200_000;
    for n in [8usize, 16, 32, 64] {
        // Blocked curve: unsharded (shards(1) keeps the epoch machinery
        // inert even at max_threads > 15, isolating the status-word cost).
        let rt = Runtime::new(RuntimeConfig::builder()
            .max_threads(n)
            .shards(1)
            .heap_objects(64)
            .monitors(1)
            .build());
        let me = rt.register_thread();
        for _ in 1..n {
            let peer = rt.register_thread();
            rt.control(peer).bump_release_clock();
            rt.control(peer).publish_blocked();
        }
        let mut sources = Vec::with_capacity(n);
        let mut pending = Vec::with_capacity(n);
        let mut row = measure(&format!("fanout_snapshot_blocked_t{n}"), N, || {
            for _ in 0..N {
                sources.clear();
                black_box(drink_core::coord::coordinate_many(
                    &rt, me, None, &mut || {}, &mut sources, &mut pending,
                ));
            }
        });
        assert_eq!(sources.len(), n - 1, "every blocked peer resolved implicitly");
        row.threads = n as u64;
        rows.push(row);

        // Skip curve: per-thread shards, object stamped by nobody's shard
        // but the requester's own — the snapshot proves every peer vacuous
        // from the epoch table alone.
        let rt = Runtime::new(RuntimeConfig::builder()
            .max_threads(n)
            .shards(n)
            .heap_objects(64)
            .monitors(1)
            .build());
        let me = rt.register_thread();
        for _ in 1..n {
            rt.register_thread();
        }
        let obj = ObjId(3);
        rt.stamp_access(me, obj);
        let mut sources: Vec<(ThreadId, u64)> = Vec::with_capacity(n);
        let mut pending = Vec::with_capacity(n);
        let mut row = measure(&format!("fanout_snapshot_skip_t{n}"), N, || {
            for _ in 0..N {
                sources.clear();
                black_box(drink_core::coord::coordinate_many(
                    &rt, me, Some(obj), &mut || {}, &mut sources, &mut pending,
                ));
            }
        });
        assert!(sources.is_empty(), "a skipped fan-out must resolve no sources");
        row.threads = n as u64;
        rows.push(row);
    }
}

/// Layer 2b: header addressing under both heap layouts — the branch-free
/// base + stride computation behind every tracked access.
fn heap_layouts(rows: &mut Vec<Row>) {
    const N: u64 = 20_000_000;
    for (label, padded) in [("heap_obj_compact", false), ("heap_obj_padded", true)] {
        let heap = Heap::with_layout(1024, padded);
        rows.push(measure(label, N, || {
            let mut acc = 0u64;
            for i in 0..N {
                // Strided walk so the index math can't be hoisted.
                let o = ObjId(((i * 7) % 1024) as u32);
                acc = acc.wrapping_add(heap.obj(o).data_read());
            }
            black_box(acc);
        }));
    }
}

/// The tracing valve: the same optimistic-write fast path with the trace
/// sink absent (default — one predicted-untaken branch, gated within the
/// regression threshold) and present (ring-buffer stores on the hot path —
/// advisory, since the cost is expected and opt-in).
fn trace_overhead(rows: &mut Vec<Row>) {
    const N: u64 = 20_000_000;
    for (label, capacity) in [("trace_off_opt_write", 0usize), ("trace_on_opt_write", 4096)] {
        let rt = Arc::new(Runtime::new(
            RuntimeConfig::builder()
                .max_threads(2)
                .heap_objects(1024)
                .monitors(1)
                .trace_capacity(capacity)
                .build(),
        ));
        let engine = HybridEngine::new(rt);
        let t = engine.attach();
        engine.alloc_init(ObjId(0), t);
        let mut row = measure(label, N, || {
            for i in 0..N {
                engine.write(t, ObjId(0), black_box(i));
            }
        });
        // Ring-buffer stores on the hot path are an expected, opt-in cost
        // (DESIGN.md §11): report-only. The trace-off row stays gated — it
        // is the evidence the disabled valve costs one predicted branch.
        row.advisory = capacity > 0;
        rows.push(row);
        engine.detach(t);
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    // Fail on an unwritable path now, not after minutes of measurement.
    if let Err(e) = std::fs::write(&out, "") {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(2);
    }

    let mut rows = Vec::new();
    fast_path(&mut rows);
    reentrant_pess(&mut rows);
    queue_raw(&mut rows);
    explicit_roundtrip(&mut rows);
    fanout_snapshot(&mut rows);
    heap_layouts(&mut rows);
    trace_overhead(&mut rows);

    let mut report = Report::new("drink-bench/hotpath");
    report.rows = rows;
    report.write(&out).unwrap_or_else(|e| {
        eprintln!("cannot write: {e}");
        std::process::exit(2);
    });
    println!("wrote {out}");
}
