//! E1: regenerate the **§2.2 cost table** — average time per state
//! transition, by kind, measured on this substrate:
//!
//! | paper (cycles)          |  150 | 47 | 9 200 | 360 |
//! |-------------------------|------|----|-------|-----|
//! | pessimistic / same-state opt. / conflicting-explicit / conflicting-implicit |
//!
//! Measurement strategies:
//! * **pessimistic**: single-thread loop of tracked accesses (every access
//!   pays the CAS-lock/unlock pair) minus the untracked loop;
//! * **optimistic same-state**: same loop under the optimistic engine;
//! * **conflicting (explicit)**: two threads ping-pong one object while the
//!   non-accessing thread polls safe points — every access is an explicit
//!   coordination roundtrip;
//! * **conflicting (implicit)**: one thread repeatedly conflicts with a
//!   detached (permanently blocked) thread's objects.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use drink_bench::{banner, row, scale_from_args};
use drink_core::prelude::*;
use drink_runtime::{ObjId, Runtime, RuntimeConfig};

fn per_access_ns<T: Tracker>(engine: &T, iters: u64) -> f64 {
    let t = engine.attach();
    // Alternate over a few objects to defeat trivial load-forwarding.
    let objs = [ObjId(0), ObjId(1), ObjId(2), ObjId(3)];
    for &o in &objs {
        engine.alloc_init(o, t);
    }
    let start = Instant::now();
    for i in 0..iters {
        let o = objs[(i % 4) as usize];
        if i % 3 == 0 {
            engine.write(t, o, i);
        } else {
            let _ = engine.read(t, o);
        }
    }
    let el = start.elapsed();
    engine.detach(t);
    el.as_nanos() as f64 / iters as f64
}

/// Explicit-coordination cost: the accessor conflicts with a running,
/// polling peer on every access.
fn explicit_ns(iters: u64) -> f64 {
    let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(4)
        .monitors(1)
        .build()));
    let engine = OptimisticEngine::new(rt);
    let o = ObjId(0);
    let stop = AtomicBool::new(false);
    let mut per = 0.0;
    std::thread::scope(|s| {
        let e = &engine;
        let stop_r = &stop;
        // The "remote" owner: keeps re-taking ownership and polling.
        s.spawn(move || {
            let t = e.attach();
            e.alloc_init(o, t);
            while !stop_r.load(Ordering::Relaxed) {
                e.write(t, o, 1);
                for _ in 0..64 {
                    e.safepoint(t);
                    std::thread::yield_now();
                    if stop_r.load(Ordering::Relaxed) {
                        break;
                    }
                }
            }
            e.detach(t);
        });
        let t = engine.attach();
        // Warm up: let the remote claim ownership.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let start = Instant::now();
        for i in 0..iters {
            engine.write(t, o, i);
            // Give ownership back by letting the remote's write conflict with
            // us while we poll.
            for _ in 0..64 {
                engine.safepoint(t);
                std::thread::yield_now();
                // Once the remote re-took it, our next write conflicts again.
                if engine.rt().obj(o).data_read() == 1 {
                    break;
                }
            }
        }
        per = start.elapsed().as_nanos() as f64 / iters as f64;
        stop.store(true, Ordering::Relaxed);
        engine.detach(t);
    });
    per
}

/// Implicit-coordination cost: conflict with a permanently blocked thread.
fn implicit_ns(iters: u64) -> f64 {
    let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(3)
        .heap_objects(4096)
        .monitors(1)
        .build()));
    let engine = OptimisticEngine::new(rt);
    let n = engine.rt().heap().len();
    std::thread::scope(|s| {
        let e = &engine;
        s.spawn(move || {
            let t = e.attach();
            for i in 0..n {
                e.alloc_init(ObjId(i as u32), t);
            }
            e.detach(t); // permanently blocked: all conflicts resolve implicitly
        })
        .join()
        .unwrap();
    });
    let t = engine.attach();
    let start = Instant::now();
    for i in 0..iters {
        // Each first touch of an object owned by the detached thread is an
        // implicit conflicting transition; cycle to keep conflicts coming.
        let o = ObjId((i % n as u64) as u32);
        engine.write(t, o, i);
        if i % n as u64 == n as u64 - 1 {
            // Re-own everything to the "dead" thread cheaply: reset states.
            for j in 0..n {
                engine.alloc_init(ObjId(j as u32), drink_runtime::ThreadId(0));
            }
        }
    }
    let per = start.elapsed().as_nanos() as f64 / iters as f64;
    engine.detach(t);
    per
}

fn main() {
    banner("E1 cost_table", "§2.2 per-transition cost table");
    let scale = scale_from_args();
    let iters = ((2_000_000.0 * scale) as u64).max(10_000);

    let base = {
        let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(1)
        .heap_objects(4)
        .monitors(1)
        .build()));
        per_access_ns(&NoTracking::new(rt), iters)
    };
    let pess = {
        let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(1)
        .heap_objects(4)
        .monitors(1)
        .build()));
        per_access_ns(&PessimisticEngine::new(rt), iters)
    };
    let opt = {
        let rt = Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(1)
        .heap_objects(4)
        .monitors(1)
        .build()));
        per_access_ns(&OptimisticEngine::new(rt), iters)
    };
    let expl = explicit_ns((iters / 100).clamp(500, 20_000));
    let impl_ = implicit_ns((iters / 10).max(5_000));

    let widths = [26, 12, 12, 14];
    println!(
        "{}",
        row(
            &["transition kind", "ns/access", "− baseline", "paper cycles"].map(String::from),
            &widths
        )
    );
    let lines = [
        ("baseline (untracked)", base, 0.0, "-"),
        ("pessimistic", pess, pess - base, "150"),
        ("optimistic same-state", opt, opt - base, "47"),
        ("conflicting (explicit)", expl, expl - base, "9200"),
        ("conflicting (implicit)", impl_, impl_ - base, "360"),
    ];
    for (name, ns, delta, paper) in lines {
        println!(
            "{}",
            row(
                &[
                    name.to_string(),
                    format!("{ns:.1}"),
                    format!("{delta:.1}"),
                    paper.to_string(),
                ],
                &widths
            )
        );
    }
    println!();
    println!("Shape checks: same-state < pessimistic ≪ explicit; implicit between");
    println!("pessimistic and explicit, much closer to pessimistic. The explicit /");
    println!("same-state ratio should be 2–3 orders of magnitude (paper: ~196×).");
    println!("Note: explicit-coordination latency on a single-core host includes a");
    println!("scheduler roundtrip, the moral equivalent of the paper's remote-core");
    println!("communication latency.");
}
