//! Calibration helper: measured vs. target communication profile for each of
//! the 13 workloads. Not a paper artifact itself — it verifies that the
//! synthetic workloads land in the right conflict-rate regime before the
//! table/figure harnesses are trusted.

use drink_bench::{banner, row, scale_from_args, scaled_spec, sci};
use drink_workloads::{all_profiles, run_kind, EngineKind};

fn main() {
    banner("profiles_calibration", "workload-profile calibration (not a paper artifact)");
    let scale = scale_from_args();

    let widths = [10, 10, 12, 12, 8, 12, 12];
    println!(
        "{}",
        row(
            &[
                "program", "accesses", "confl rate", "paper rate", "ratio", "implicit %",
                "paper char"
            ]
            .map(String::from),
            &widths
        )
    );

    for profile in all_profiles() {
        let spec = scaled_spec(&profile.spec, scale);
        let r = run_kind(EngineKind::Optimistic, &spec).report;
        let rate = r.explicit_conflict_rate();
        let paper_rate = profile.paper.conflict_rate();
        let ratio = if paper_rate > 0.0 { rate / paper_rate } else { f64::NAN };
        let implicit_pct = if r.opt_conflicting() > 0 {
            100.0 * r.get(drink_runtime::Event::OptConflictImplicit) as f64
                / r.opt_conflicting() as f64
        } else {
            0.0
        };
        let character = if profile.paper.pess_contended > 1e5 {
            "racy"
        } else if paper_rate > 1e-3 {
            "high-conf"
        } else if paper_rate > 1e-4 {
            "mid-conf"
        } else {
            "low-conf"
        };
        println!(
            "{}",
            row(
                &[
                    spec.name.clone(),
                    sci(r.accesses() as f64),
                    format!("{rate:.2e}"),
                    format!("{paper_rate:.2e}"),
                    if ratio.is_nan() { "-".into() } else { format!("{ratio:.1}x") },
                    format!("{implicit_pct:.0}"),
                    character.to_string(),
                ],
                &widths
            )
        );
    }
    println!();
    println!("Aim: ratio within ~an order of magnitude (0.1x–10x), and the");
    println!("clustering {{low, mid, high, racy}} preserved. hsqldb6 should show a");
    println!("high implicit share; xalan6/9 a low one.");
}
