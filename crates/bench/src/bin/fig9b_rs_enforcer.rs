//! E7: regenerate **Figure 9(b)** — run-time overhead of enforcing
//! statically bounded region serializability with optimistic vs. hybrid
//! tracking.

use drink_bench::{banner, geomean_overhead, overhead_pct, row, scale_from_args, scaled_spec};
use drink_runtime::Event;
use drink_workloads::{all_profiles, run_kind, run_rs, EngineKind, RsKind};

fn main() {
    banner("E7 fig9b_rs_enforcer", "Figure 9(b) (RS enforcers)");
    let scale = scale_from_args();

    let widths = [10, 11, 11, 12, 12];
    println!(
        "{}",
        row(
            &["program", "opt-rs %", "hyb-rs %", "restarts(o)", "restarts(h)"]
                .map(String::from),
            &widths
        )
    );

    let mut opt_col = Vec::new();
    let mut hyb_col = Vec::new();
    for profile in all_profiles() {
        let spec = scaled_spec(&profile.spec, scale);
        let base = run_kind(EngineKind::Baseline, &spec).wall;
        let o = run_rs(RsKind::Optimistic, &spec);
        let h = run_rs(RsKind::Hybrid, &spec);
        let oo = overhead_pct(o.wall, base);
        let ho = overhead_pct(h.wall, base);
        opt_col.push(oo);
        hyb_col.push(ho);
        println!(
            "{}",
            row(
                &[
                    spec.name.clone(),
                    format!("{oo:.0}"),
                    format!("{ho:.0}"),
                    format!("{}", o.report.get(Event::RegionRestart)),
                    format!("{}", h.report.get(Event::RegionRestart)),
                ],
                &widths
            )
        );
    }

    println!();
    println!(
        "{}",
        row(
            &[
                "geomean".into(),
                format!("{:.0}", geomean_overhead(&opt_col)),
                format!("{:.0}", geomean_overhead(&hyb_col)),
                "".into(),
                "".into(),
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &["[paper]".into(), "39".into(), "34".into(), "".into(), "".into()],
            &widths
        )
    );
    println!();
    println!("Shape checks: hybrid enforcer ≤ optimistic enforcer overall, with the");
    println!("largest improvements on xalan6/xalan9/pjbb2005 — mirroring tracking");
    println!("alone, since the enforcer employs hybrid tracking the same way (§7.6).");
}
