//! E2: regenerate **Figure 6** — cumulative distribution of conflicting
//! transitions (explicit coordination only) triggered per object, under
//! optimistic tracking alone.
//!
//! For each point `(x, y)`: `y` is the percentage of all accesses that were
//! conflicting transitions numbered ≤ `x` on their object. The paper's
//! reading: each object's first few conflicts are an insignificant fraction
//! of accesses, so a small `Cutoff_confl` (they use 4) catches most
//! conflicting accesses "in advance" — the limit-study justification of the
//! adaptive policy (§7.3).

use drink_bench::{banner, row, scale_from_args, scaled_spec};
use drink_workloads::{all_profiles, run_kind, EngineKind};

fn main() {
    banner("E2 fig6_conflict_cdf", "Figure 6 (per-object conflict CDF)");
    let scale = scale_from_args();
    let xs = [1u32, 2, 4, 8, 16, 64, 256, 1024, u32::MAX];

    let mut widths = vec![10usize];
    widths.extend(std::iter::repeat_n(9, xs.len()));
    let mut header = vec!["program".to_string()];
    header.extend(xs.iter().map(|&x| {
        if x == u32::MAX {
            "max(rate)".into()
        } else {
            format!("x={x}")
        }
    }));
    println!("(cells: % of all accesses; '-' = conflict rate < 0.0001%, as the");
    println!(" paper excludes such programs from the figure)");
    println!("{}", row(&header, &widths));

    for profile in all_profiles() {
        let spec = scaled_spec(&profile.spec, scale);
        let r = run_kind(EngineKind::Optimistic, &spec);
        let rate = r.report.explicit_conflict_rate() * 100.0;
        let mut cells = vec![spec.name.clone()];
        if rate < 0.0001 {
            cells.extend(std::iter::repeat_n("-".to_string(), xs.len()));
        } else {
            for &x in &xs {
                cells.push(format!("{:.4}", r.conflict_cdf(x) * 100.0));
            }
        }
        println!("{}", row(&cells, &widths));
    }

    println!();
    println!("Shape checks: curves rise slowly for small x (an object's first few");
    println!("conflicts are rare relative to all accesses), and high-conflict");
    println!("programs concentrate most conflicts on objects with many conflicts");
    println!("(large gap between x=4 and max). Cutoff_confl = 4 therefore leaves");
    println!("only a small fraction of conflicting accesses uncaught.");
}
