//! `drink-bench trace`: run a workload with the trace rings enabled and
//! export the per-thread event timelines.
//!
//! Two exporters share one snapshot: a Chrome-trace JSON file (open in
//! `chrome://tracing` / Perfetto; every ring record becomes an instant event
//! on its thread's track) and an optional flat per-thread text dump for
//! grepping. A third mode, `--check`, re-parses a previously exported Chrome
//! trace and validates its shape — `scripts/check_gate.sh` uses it as the
//! export/ingest round-trip check.
//!
//! ```bash
//! cargo run --release -p drink-bench --bin trace -- \
//!     [--engine hybrid|opt|pess|baseline] [--workload chaos_mix|...] \
//!     [--seed N] [--capacity N] [--out FILE] [--text FILE]
//! cargo run --release -p drink-bench --bin trace -- --check FILE
//! ```
//!
//! Exit status: 0 clean, 2 usage/IO/validation error.

use std::sync::Arc;

use drink_runtime::trace::validate_chrome_json;
use drink_runtime::Runtime;
use drink_workloads::{
    chaos_disjoint, chaos_handoff, chaos_mix, chaos_rdsh, racy_inc, run_kind_on,
    runtime_config_for, sync_inc, EngineKind, WorkloadSpec,
};

fn arg_after(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn usage() -> ! {
    eprintln!(
        "usage: trace [--engine {}] [--workload NAME] \
         [--seed N] [--capacity N] [--out FILE] [--text FILE]\n\
         \x20      trace --check FILE\n\
         workloads: chaos_mix chaos_disjoint chaos_handoff chaos_rdsh racy_inc sync_inc",
        EngineKind::CLI_NAMES
    );
    std::process::exit(2);
}

fn spec_for(workload: &str, seed: u64) -> WorkloadSpec {
    match workload {
        "chaos_mix" => chaos_mix(seed),
        "chaos_disjoint" => chaos_disjoint(seed),
        "chaos_handoff" => chaos_handoff(seed),
        "chaos_rdsh" => chaos_rdsh(seed),
        "racy_inc" => racy_inc(4, 2000),
        "sync_inc" => sync_inc(4, 2000),
        other => {
            eprintln!("trace: unknown workload {other:?}");
            usage();
        }
    }
}

fn engine_for(name: &str) -> EngineKind {
    EngineKind::parse(name).unwrap_or_else(|| {
        eprintln!("trace: unknown engine {name:?}");
        usage();
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if let Some(path) = arg_after(&args, "--check") {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("trace: {path}: {e}");
            std::process::exit(2);
        });
        match validate_chrome_json(&text) {
            Ok(n) => println!("{path}: valid Chrome trace ({n} events)"),
            Err(e) => {
                eprintln!("trace: {path}: {e}");
                std::process::exit(2);
            }
        }
        return;
    }

    let engine = engine_for(&arg_after(&args, "--engine").unwrap_or_else(|| "hybrid".into()));
    let workload = arg_after(&args, "--workload").unwrap_or_else(|| "chaos_mix".into());
    let seed: u64 = arg_after(&args, "--seed")
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(0xD21_4B);
    let capacity: usize = arg_after(&args, "--capacity")
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(4096);
    let out = arg_after(&args, "--out").unwrap_or_else(|| "DRINK_trace.json".into());
    let text_out = arg_after(&args, "--text");

    let spec = spec_for(&workload, seed);
    let mut cfg = runtime_config_for(&spec);
    cfg.trace_capacity = capacity.max(2);
    let rt = Arc::new(Runtime::new(cfg));

    let result = run_kind_on(engine, Arc::clone(&rt), &spec);
    let snapshot = rt.trace_snapshot().unwrap_or_else(|| {
        eprintln!("trace: runtime produced no trace sink (capacity 0?)");
        std::process::exit(2);
    });

    println!(
        "{} on {}: {} events across {} thread(s) (ring capacity {capacity})",
        spec.name,
        result.engine,
        snapshot.total_events(),
        snapshot.threads.len(),
    );

    let chrome = snapshot.to_chrome_json();
    if let Err(e) = validate_chrome_json(&chrome) {
        eprintln!("trace: internal error: emitted invalid Chrome JSON: {e}");
        std::process::exit(2);
    }
    std::fs::write(&out, chrome + "\n").unwrap_or_else(|e| {
        eprintln!("trace: cannot write {out}: {e}");
        std::process::exit(2);
    });
    println!("wrote {out}");

    if let Some(path) = text_out {
        std::fs::write(&path, snapshot.to_text()).unwrap_or_else(|e| {
            eprintln!("trace: cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
}
