//! E3: regenerate **Table 2** — state transitions for hybrid tracking,
//! compared with optimistic tracking alone (parenthesized).
//!
//! Columns, per workload:
//! `(opt-alone same-state)  hybrid same-state | (opt-alone conflicting)
//! hybrid conflicting | pess uncontended | %reentrant | pess contended |
//! opt→pess | pess→opt`, followed by the paper's Table 2 values for the
//! modeled program.

use drink_bench::{banner, row, scale_from_args, scaled_spec, sci};
use drink_workloads::{all_profiles, run_kind, EngineKind};

fn main() {
    banner("E3 table2_transitions", "Table 2 (state-transition counts)");
    let scale = scale_from_args();

    let widths = [10, 11, 11, 10, 10, 11, 5, 9, 9, 9];
    println!(
        "{}",
        row(
            &[
                "program", "(opt same)", "hyb same", "(opt conf)", "hyb conf", "pess unc",
                "%re", "contend", "opt→pess", "pess→opt"
            ]
            .map(String::from),
            &widths
        )
    );

    for profile in all_profiles() {
        let spec = scaled_spec(&profile.spec, scale);
        let opt = run_kind(EngineKind::Optimistic, &spec).report;
        let hyb = run_kind(EngineKind::Hybrid, &spec).report;
        println!(
            "{}",
            row(
                &[
                    spec.name.clone(),
                    format!("({})", sci(opt.opt_same_state() as f64)),
                    sci(hyb.opt_same_state() as f64),
                    format!("({})", sci(opt.opt_conflicting() as f64)),
                    sci(hyb.opt_conflicting() as f64),
                    sci(hyb.pess_uncontended() as f64),
                    format!("{:.0}%", hyb.pess_reentrant_pct()),
                    sci(hyb.pess_contended() as f64),
                    sci(hyb.opt_to_pess() as f64),
                    sci(hyb.pess_to_opt() as f64),
                ],
                &widths
            )
        );
        let p = profile.paper;
        println!(
            "{}",
            row(
                &[
                    "  [paper]".into(),
                    format!("({})", sci(p.total_accesses - p.opt_conflicting)),
                    "-".into(),
                    format!("({})", sci(p.opt_conflicting)),
                    sci(p.hybrid_conflicting),
                    sci(p.pess_uncontended),
                    format!("{:.0}%", p.reentrant_pct),
                    sci(p.pess_contended),
                    sci(p.opt_to_pess),
                    sci(p.pess_to_opt),
                ],
                &widths
            )
        );
    }
    println!();
    println!("Shape checks (the paper's qualitative claims):");
    println!(" * high-conflict programs (xalan6/9, pjbb2005) should show large");
    println!("   conflicting-transition reductions from optimistic to hybrid;");
    println!(" * avrora9/pjbb2005 should show substantial contended transitions");
    println!("   (object-level data races); others near zero;");
    println!(" * low-conflict programs (jython9, luindex9, lusearch*) should be");
    println!("   nearly untouched by the adaptive policy.");
}
