//! # drink-bench: the evaluation harness
//!
//! One binary per table/figure of the paper's §7 (see `DESIGN.md`'s
//! experiment index, E1–E9), plus Criterion micro-benchmarks. This library
//! holds the shared measurement and reporting plumbing.
//!
//! ## Two overhead metrics
//!
//! The paper reports run-time overhead over an unmodified JVM on a 32-core
//! Xeon. Our substrate is a Rust runtime on whatever machine runs the bench
//! (CI boxes are often single-core), so the harness reports **two** numbers
//! per configuration:
//!
//! * **wall-clock overhead**: measured against the `NoTracking` engine
//!   running the identical workload;
//! * **model overhead**: measured transition counts priced by the paper's
//!   §2.2 cycle costs ([`drink_runtime::CostModel`]), relative to an assumed
//!   useful-work budget per access. This is platform-independent and carries
//!   the figures' *shape* (who wins, by what factor, where the crossovers
//!   are).

pub mod report;

use std::time::Duration;

use drink_runtime::{CostModel, StatsReport};
use drink_workloads::{run_kind, EngineKind, RunResult, WorkloadSpec};

/// Default useful-work budget per access (cycles) for the model overhead.
/// With the paper's costs, always-optimistic same-state tracking then costs
/// 47/200 ≈ 24% — near the paper's 28% average for optimistic tracking.
pub const DEFAULT_WORK_PER_ACCESS: f64 = 200.0;

/// Command-line scale factor: `--scale 0.1` shrinks every workload. The
/// first positional float after `--scale` is used; defaults to 1.0.
pub fn scale_from_args() -> f64 {
    arg_after("--scale").unwrap_or(1.0)
}

/// `--trials N` (default `default`): how many runs per configuration. The
/// paper uses the median of 20 trials; the harness default trades precision
/// for turnaround.
pub fn trials_from_args(default: usize) -> usize {
    arg_after("--trials").map(|v: f64| v as usize).unwrap_or(default).max(1)
}

fn arg_after<T: std::str::FromStr>(flag: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Scale a spec's step count.
pub fn scaled_spec(spec: &WorkloadSpec, scale: f64) -> WorkloadSpec {
    let mut s = spec.clone();
    s.steps_per_thread = ((s.steps_per_thread as f64 * scale) as usize).max(100);
    s
}

/// Median-of-`n` wall times plus the stats of the last run.
pub fn run_trials(kind: EngineKind, spec: &WorkloadSpec, trials: usize) -> (Duration, RunResult) {
    let (median, _spread, last) = run_trials_spread(kind, spec, trials);
    (median, last)
}

/// Median wall time, half-width of the central 95% spread (the paper reports
/// medians with 95% confidence intervals around the mean; with small trial
/// counts we report min–max spread), and the last run's full result.
pub fn run_trials_spread(
    kind: EngineKind,
    spec: &WorkloadSpec,
    trials: usize,
) -> (Duration, Duration, RunResult) {
    assert!(trials >= 1);
    let mut walls = Vec::with_capacity(trials);
    let mut last = None;
    for _ in 0..trials {
        let r = run_kind(kind, spec);
        walls.push(r.wall);
        last = Some(r);
    }
    walls.sort();
    let median = walls[walls.len() / 2];
    let spread = (*walls.last().unwrap() - walls[0]) / 2;
    (median, spread, last.unwrap())
}

/// Percentage overhead of `wall` over `base`.
pub fn overhead_pct(wall: Duration, base: Duration) -> f64 {
    if base.is_zero() {
        return 0.0;
    }
    (wall.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0
}

/// Model overhead (percent) from a stats report.
pub fn model_overhead_pct(report: &StatsReport, work_per_access: f64) -> f64 {
    CostModel::paper().model_overhead(report, work_per_access) * 100.0
}

/// Geometric mean of `(100 + overhead)` values, expressed back as overhead —
/// the paper's "geomean overhead" convention. Accepts negative overheads.
pub fn geomean_overhead(overheads_pct: &[f64]) -> f64 {
    if overheads_pct.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = overheads_pct
        .iter()
        .map(|&o| ((100.0 + o).max(1.0) / 100.0).ln())
        .sum();
    ((log_sum / overheads_pct.len() as f64).exp() - 1.0) * 100.0
}

/// Format a count in the paper's Table 2 style: `1.2×10¹⁰` → `1.2e10`.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    if x.abs() < 1000.0 {
        if x.fract() == 0.0 {
            return format!("{}", x as i64);
        }
        return format!("{x:.1}");
    }
    let exp = x.abs().log10().floor() as i32;
    let mant = x / 10f64.powi(exp);
    format!("{mant:.1}e{exp}")
}

/// Print a row of right-aligned cells under a fixed layout.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Standard header printed by every harness binary.
pub fn banner(experiment: &str, paper_artifact: &str) {
    println!("================================================================");
    println!("{experiment} — regenerates {paper_artifact}");
    println!(
        "host: {} core(s); scale: {}",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        scale_from_args()
    );
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_formats_like_the_paper() {
        assert_eq!(sci(1.2e10), "1.2e10");
        assert_eq!(sci(130_000.0), "1.3e5");
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(42.0), "42");
        assert_eq!(sci(0.5), "0.5");
    }

    #[test]
    fn geomean_matches_hand_computation() {
        // overheads 10% and 44%: geomean factor = sqrt(1.1 * 1.44) ≈ 1.2586.
        let g = geomean_overhead(&[10.0, 44.0]);
        assert!((g - 25.86).abs() < 0.1, "{g}");
        assert_eq!(geomean_overhead(&[]), 0.0);
    }

    #[test]
    fn overhead_pct_basics() {
        assert!(
            (overhead_pct(Duration::from_millis(150), Duration::from_millis(100)) - 50.0).abs()
                < 1e-9
        );
        assert_eq!(overhead_pct(Duration::from_millis(5), Duration::ZERO), 0.0);
    }

    #[test]
    fn scaled_spec_clamps_to_minimum() {
        let s = WorkloadSpec::default();
        assert_eq!(scaled_spec(&s, 0.000001).steps_per_thread, 100);
    }
}
