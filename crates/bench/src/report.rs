//! Shared machine-readable bench report schema.
//!
//! `hotpath`, `contention`, and `bench_compare` used to each carry a private
//! copy of the `Row`/`Report` structs; this module is the single definition
//! all three (and `scripts/bench_gate.sh` through them) agree on. The report
//! carries an explicit [`SCHEMA_VERSION`] so a comparator never silently
//! diffs two reports written under different layouts: [`Report::parse`]
//! rejects any version mismatch, and `bench_compare` turns that rejection
//! into its usage-error exit status (2).

use serde::{Deserialize, Serialize};

/// Version of the on-disk report layout. Bump whenever a field is added,
/// removed, or reinterpreted; checked-in `BENCH_*.json` baselines must be
/// regenerated in the same commit.
///
/// v4 added the per-row `threads` field carrying the registered-thread
/// count of scaling-curve rows, so `bench_compare --scaling` can check
/// ns/op growth across thread doublings without parsing row names.
///
/// v5 added the per-row `higher_is_better` direction flag so throughput
/// rows (ops/sec — the serve macro-bench) gate on *drops* while the
/// latency/ns-per-op rows keep gating on *rises*. Absent in older rows,
/// it parses as `false` (lower-is-better), the direction every pre-v5 row
/// actually had.
pub const SCHEMA_VERSION: u64 = 5;

/// One measured bench row: fixed iteration count, best-of-trials ns/op.
///
/// `advisory` is the *emitting binary's* declaration that the row's
/// run-to-run distribution is known-unstable on shared hosts and must be
/// reported but never gated. Because it is embedded in the report rather
/// than passed as a comparator flag, gating status is part of the measured
/// artifact — and `bench_compare` can detect the one transition that must
/// never happen silently: a row whose baseline is gated showing up advisory
/// in a fresh report (exit 2).
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    pub name: String,
    pub iters: u64,
    /// The measured value. Despite the name this is only "nanoseconds per
    /// operation" on lower-is-better rows; direction-flagged rows (see
    /// [`Row::higher_is_better`]) store whatever unit the row name declares
    /// (the serve rows: requests per second).
    pub ns_per_op: f64,
    pub advisory: bool,
    /// Registered-thread count for scaling-curve rows; `0` for rows whose
    /// measurement is not parameterized by thread width. Rows of the same
    /// name prefix with increasing `threads` form the curve
    /// `bench_compare --scaling` checks doubling ratios on.
    pub threads: u64,
    /// Gate direction: `false` (the default, and the only pre-v5 behavior)
    /// means a *rise* beyond the threshold is a regression (latency-style
    /// rows); `true` means a *drop* is (throughput-style rows).
    pub higher_is_better: bool,
}

// Hand-written (de)serialization: the workspace serde shim's derive macro
// supports no `#[serde(...)]` attributes, and `advisory`/`threads`/
// `higher_is_better` must parse as `false`/`0`/`false` when absent so
// pre-v3/v4/v5 baselines (which lack the fields) load as fully gated,
// unparameterized, lower-is-better rows rather than failing or — worse —
// silently un-gated.
impl Serialize for Row {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("name".to_string(), self.name.to_value()),
            ("iters".to_string(), self.iters.to_value()),
            ("ns_per_op".to_string(), self.ns_per_op.to_value()),
            ("advisory".to_string(), self.advisory.to_value()),
            ("threads".to_string(), self.threads.to_value()),
            ("higher_is_better".to_string(), self.higher_is_better.to_value()),
        ])
    }
}

impl Deserialize for Row {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for Row"))?;
        Ok(Row {
            name: Deserialize::from_value(serde::map_get(m, "name")?)?,
            iters: Deserialize::from_value(serde::map_get(m, "iters")?)?,
            ns_per_op: Deserialize::from_value(serde::map_get(m, "ns_per_op")?)?,
            advisory: match m.iter().find(|(k, _)| k == "advisory") {
                Some((_, val)) => Deserialize::from_value(val)?,
                None => false,
            },
            threads: match m.iter().find(|(k, _)| k == "threads") {
                Some((_, val)) => Deserialize::from_value(val)?,
                None => 0,
            },
            higher_is_better: match m.iter().find(|(k, _)| k == "higher_is_better") {
                Some((_, val)) => Deserialize::from_value(val)?,
                None => false,
            },
        })
    }
}

/// A full bench report: which suite produced it, under which schema layout.
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq)]
pub struct Report {
    /// Suite identity (e.g. `drink-bench/hotpath`). Comparing rows across
    /// different suites is meaningless, so `bench_compare` requires equality.
    pub schema: String,
    /// Layout version; see [`SCHEMA_VERSION`].
    pub schema_version: u64,
    pub rows: Vec<Row>,
}

impl Report {
    /// Fresh empty report for `suite` under the current schema version.
    pub fn new(suite: &str) -> Self {
        Report {
            schema: suite.to_string(),
            schema_version: SCHEMA_VERSION,
            rows: Vec::new(),
        }
    }

    /// Record one gated row.
    pub fn push(&mut self, name: String, iters: u64, ns_per_op: f64) {
        self.rows.push(Row {
            name,
            iters,
            ns_per_op,
            advisory: false,
            threads: 0,
            higher_is_better: false,
        });
    }

    /// Record one advisory (report-only, never gated) row.
    pub fn push_advisory(&mut self, name: String, iters: u64, ns_per_op: f64) {
        self.rows.push(Row {
            name,
            iters,
            ns_per_op,
            advisory: true,
            threads: 0,
            higher_is_better: false,
        });
    }

    /// Record one gated row parameterized by thread width (a scaling-curve
    /// point for `bench_compare --scaling`).
    pub fn push_threaded(&mut self, name: String, iters: u64, ns_per_op: f64, threads: u64) {
        self.rows.push(Row {
            name,
            iters,
            ns_per_op,
            advisory: false,
            threads,
            higher_is_better: false,
        });
    }

    /// Record one gated *throughput* row (higher is better) parameterized by
    /// thread width; `value` is in whatever unit the row name declares (the
    /// serve rows: requests per second).
    pub fn push_throughput(&mut self, name: String, iters: u64, value: f64, threads: u64) {
        self.rows.push(Row {
            name,
            iters,
            ns_per_op: value,
            advisory: false,
            threads,
            higher_is_better: true,
        });
    }

    /// Parse a report, rejecting schema-version mismatches with a message
    /// that tells the operator what to regenerate.
    pub fn parse(text: &str) -> Result<Report, String> {
        let report: Report = serde_json::from_str(text).map_err(|e| {
            if text.contains("schema_version") {
                format!("invalid bench report: {e}")
            } else {
                format!(
                    "bench report predates schema_version (layout v{SCHEMA_VERSION}); \
                     regenerate the baseline with the current binaries"
                )
            }
        })?;
        if report.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version mismatch: report is v{}, this binary expects v{}; \
                 regenerate the baseline",
                report.schema_version, SCHEMA_VERSION
            ));
        }
        Ok(report)
    }

    /// Load and validate a report file.
    pub fn load(path: &str) -> Result<Report, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Report::parse(&text).map_err(|e| format!("{path}: {e}"))
    }

    /// Write the report as pretty JSON (trailing newline, like the checked-in
    /// baselines).
    pub fn write(&self, path: &str) -> Result<(), String> {
        let json = serde_json::to_string_pretty(self).map_err(|e| format!("{path}: {e}"))?;
        std::fs::write(path, json + "\n").map_err(|e| format!("{path}: {e}"))
    }

    /// Names of rows present in `self` (the baseline) but absent from
    /// `fresh`. A fresh report missing baseline rows means the bench binary
    /// silently stopped measuring something the gate guards — `bench_compare`
    /// treats that as a usage error (exit 2), never a pass; retiring a row
    /// requires regenerating the baseline in the same commit.
    pub fn missing_rows<'a>(&'a self, fresh: &Report) -> Vec<&'a str> {
        self.rows
            .iter()
            .filter(|b| !fresh.rows.iter().any(|r| r.name == b.name))
            .map(|b| b.name.as_str())
            .collect()
    }

    /// Names of rows that are gated in `self` (the baseline) but marked
    /// advisory in `fresh` — the silent un-gating `bench_compare` refuses
    /// (exit 2): a bench binary may only demote a row from gated to
    /// advisory together with a regenerated baseline in the same commit.
    pub fn demoted_rows<'a>(&'a self, fresh: &Report) -> Vec<&'a str> {
        self.rows
            .iter()
            .filter(|b| {
                !b.advisory
                    && fresh
                        .rows
                        .iter()
                        .any(|r| r.name == b.name && r.advisory)
            })
            .map(|b| b.name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_json() {
        let mut r = Report::new("drink-bench/test");
        r.push("row_a".into(), 100, 12.5);
        r.push("row_b".into(), 200, 0.75);
        r.push_threaded("row_t16".into(), 50, 900.0, 16);
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back = Report::parse(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.rows[2].threads, 16);
    }

    #[test]
    fn threads_defaults_to_zero_when_absent() {
        // Rows written before v4 carry no `threads` key; they must load as
        // unparameterized (threads == 0), never participating in scaling
        // checks, rather than failing to parse.
        let json = format!(
            r#"{{"schema":"drink-bench/test","schema_version":{SCHEMA_VERSION},
                 "rows":[{{"name":"r","iters":10,"ns_per_op":1.0,"advisory":false}}]}}"#
        );
        let r = Report::parse(&json).unwrap();
        assert_eq!(r.rows[0].threads, 0);
    }

    #[test]
    fn direction_flag_roundtrips_and_defaults_to_lower_is_better() {
        let mut r = Report::new("drink-bench/test");
        r.push("latency_row".into(), 100, 12.5);
        r.push_throughput("serve_tput_hybrid_t8".into(), 5000, 31_250.0, 8);
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back = Report::parse(&json).unwrap();
        assert!(!back.rows[0].higher_is_better);
        assert!(back.rows[1].higher_is_better);
        assert_eq!(back.rows[1].threads, 8);

        // Rows written before v5 carry no `higher_is_better` key; they must
        // load in the direction they always gated in (lower is better).
        let json = format!(
            r#"{{"schema":"drink-bench/test","schema_version":{SCHEMA_VERSION},
                 "rows":[{{"name":"r","iters":10,"ns_per_op":1.0,"advisory":false,"threads":2}}]}}"#
        );
        let r = Report::parse(&json).unwrap();
        assert!(!r.rows[0].higher_is_better);
    }

    #[test]
    fn rejects_version_mismatch() {
        let mut r = Report::new("drink-bench/test");
        r.schema_version = SCHEMA_VERSION + 1;
        let json = serde_json::to_string_pretty(&r).unwrap();
        let err = Report::parse(&json).unwrap_err();
        assert!(err.contains("schema_version mismatch"), "{err}");
    }

    #[test]
    fn missing_rows_names_baseline_only_rows() {
        let mut base = Report::new("drink-bench/test");
        base.push("kept".into(), 10, 1.0);
        base.push("dropped_a".into(), 10, 2.0);
        base.push("dropped_b".into(), 10, 3.0);
        let mut fresh = Report::new("drink-bench/test");
        fresh.push("kept".into(), 10, 1.1);
        fresh.push("brand_new".into(), 10, 0.5); // fresh-only rows are fine
        assert_eq!(base.missing_rows(&fresh), vec!["dropped_a", "dropped_b"]);
        // Asymmetric: fresh-only rows count as missing only from base's view.
        assert_eq!(fresh.missing_rows(&base), vec!["brand_new"]);
        assert!(base.missing_rows(&base).is_empty());
    }

    #[test]
    fn advisory_defaults_off_and_demotions_are_named() {
        // A report without the field parses as gated (older baselines).
        let json = format!(
            r#"{{"schema":"drink-bench/test","schema_version":{SCHEMA_VERSION},
                 "rows":[{{"name":"r","iters":10,"ns_per_op":1.0}}]}}"#
        );
        let r = Report::parse(&json).unwrap();
        assert!(!r.rows[0].advisory);

        let mut base = Report::new("drink-bench/test");
        base.push("stays_gated".into(), 10, 1.0);
        base.push("goes_advisory".into(), 10, 1.0);
        base.push_advisory("always_advisory".into(), 10, 1.0);
        let mut fresh = Report::new("drink-bench/test");
        fresh.push("stays_gated".into(), 10, 1.0);
        fresh.push_advisory("goes_advisory".into(), 10, 1.0);
        fresh.push_advisory("always_advisory".into(), 10, 1.0);
        // Only the gated->advisory transition is flagged; a row that was
        // already advisory in the baseline stays free to remain so.
        assert_eq!(base.demoted_rows(&fresh), vec!["goes_advisory"]);
    }

    #[test]
    fn rejects_pre_versioned_reports_with_guidance() {
        let legacy = r#"{"schema": "drink-bench/hotpath/v1", "rows": []}"#;
        let err = Report::parse(legacy).unwrap_err();
        assert!(err.contains("predates schema_version"), "{err}");
    }
}
