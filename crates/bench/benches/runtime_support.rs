//! Criterion version of Figure 9 (E6/E7): recorder, replayer, and RS
//! enforcer throughput on one mid-conflict profile, at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use drink_workloads::{
    by_name, record, replay, run_kind, run_rs, EngineKind, RecorderKind, RsKind,
};

fn bench_support(c: &mut Criterion) {
    let mut spec = by_name("pmd9").expect("profile exists").spec;
    spec.steps_per_thread /= 10;

    let mut g = c.benchmark_group("figure9");
    g.sample_size(10);

    g.bench_function("baseline", |b| {
        b.iter(|| run_kind(EngineKind::Baseline, &spec))
    });
    g.bench_function("opt_recorder", |b| {
        b.iter(|| record(RecorderKind::Optimistic, &spec))
    });
    g.bench_function("hybrid_recorder", |b| {
        b.iter(|| record(RecorderKind::Hybrid, &spec))
    });

    let log = record(RecorderKind::Hybrid, &spec).log;
    g.bench_function("hybrid_replayer", |b| b.iter(|| replay(&spec, log.clone())));

    g.bench_function("opt_rs_enforcer", |b| {
        b.iter(|| run_rs(RsKind::Optimistic, &spec))
    });
    g.bench_function("hybrid_rs_enforcer", |b| {
        b.iter(|| run_rs(RsKind::Hybrid, &spec))
    });
    g.finish();
}

criterion_group!(benches, bench_support);
criterion_main!(benches);
