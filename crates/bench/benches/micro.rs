//! Criterion version of Figure 8's microbenchmarks (E5): whole-run
//! throughput of `syncInc`/`racyInc` per engine, at reduced scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drink_workloads::{racy_inc, run_kind, sync_inc, EngineKind};

fn bench_micro(c: &mut Criterion) {
    let threads = 4;
    let iters = 2_000;
    let mut g = c.benchmark_group("figure8");
    g.sample_size(10);

    for (name, spec) in [
        ("syncInc", sync_inc(threads, iters)),
        ("racyInc", racy_inc(threads, iters)),
    ] {
        for kind in [
            EngineKind::Baseline,
            EngineKind::Pessimistic,
            EngineKind::Optimistic,
            EngineKind::Hybrid,
        ] {
            g.bench_with_input(BenchmarkId::new(name, kind.label()), &spec, |b, spec| {
                b.iter(|| run_kind(kind, spec))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
