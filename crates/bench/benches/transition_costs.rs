//! Criterion micro-benchmarks for individual transition kinds (E1's
//! statistical companion): fast paths and single-CAS slow paths, measured in
//! isolation per engine.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use drink_core::prelude::*;
use drink_runtime::{ObjId, Runtime, RuntimeConfig};

fn fresh_rt() -> Arc<Runtime> {
    Arc::new(Runtime::new(RuntimeConfig::builder()
        .max_threads(2)
        .heap_objects(8)
        .monitors(1)
        .build()))
}

fn bench_fast_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("same_state_access");

    {
        let engine = NoTracking::new(fresh_rt());
        let t = engine.attach();
        engine.alloc_init(ObjId(0), t);
        g.bench_function("baseline_write", |b| {
            b.iter(|| engine.write(t, ObjId(0), 1))
        });
    }
    {
        let engine = OptimisticEngine::new(fresh_rt());
        let t = engine.attach();
        engine.alloc_init(ObjId(0), t);
        g.bench_function("optimistic_write", |b| {
            b.iter(|| engine.write(t, ObjId(0), 1))
        });
        g.bench_function("optimistic_read", |b| b.iter(|| engine.read(t, ObjId(0))));
    }
    {
        let engine = HybridEngine::new(fresh_rt());
        let t = engine.attach();
        engine.alloc_init(ObjId(0), t);
        g.bench_function("hybrid_write", |b| b.iter(|| engine.write(t, ObjId(0), 1)));
    }
    {
        let engine = PessimisticEngine::new(fresh_rt());
        let t = engine.attach();
        engine.alloc_init(ObjId(0), t);
        g.bench_function("pessimistic_write", |b| {
            b.iter(|| engine.write(t, ObjId(0), 1))
        });
    }
    g.finish();
}

fn bench_upgrades(c: &mut Criterion) {
    let mut g = c.benchmark_group("upgrading_transition");
    {
        // RdEx(T) → WrEx(T) → (reset) in a loop: upgrade CAS + reset store.
        let engine = OptimisticEngine::new(fresh_rt());
        let t = engine.attach();
        engine.alloc_init(ObjId(0), t);
        g.bench_function("optimistic_rdex_to_wrex", |b| {
            b.iter(|| {
                engine.rt().obj(ObjId(0)).state().store(
                    drink_core::word::StateWord::rd_ex_opt(t).0,
                    std::sync::atomic::Ordering::SeqCst,
                );
                engine.write(t, ObjId(0), 1);
            })
        });
    }
    g.finish();
}

fn bench_implicit_conflict(c: &mut Criterion) {
    let mut g = c.benchmark_group("conflicting_transition");
    g.sample_size(20);
    {
        // Conflict against a detached (blocked) thread: implicit coordination.
        let rt = fresh_rt();
        let engine = OptimisticEngine::new(rt);
        std::thread::scope(|s| {
            let e = &engine;
            s.spawn(move || {
                let t0 = e.attach();
                e.alloc_init(ObjId(0), t0);
                e.detach(t0);
            })
            .join()
            .unwrap();
        });
        let t1 = engine.attach();
        g.bench_function("implicit_vs_blocked", |b| {
            b.iter(|| {
                // Reset ownership to the dead thread, then conflict.
                engine.alloc_init(ObjId(0), drink_runtime::ThreadId(0));
                engine.write(t1, ObjId(0), 2);
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fast_paths,
    bench_upgrades,
    bench_implicit_conflict
);
criterion_main!(benches);
