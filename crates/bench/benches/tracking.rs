//! Criterion version of Figure 7 (E4) on three representative profiles:
//! one low-conflict (lusearch9), one high-conflict (xalan6), one racy
//! (pjbb2005), at reduced scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drink_workloads::{by_name, run_kind, EngineKind};

fn bench_tracking(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure7");
    g.sample_size(10);

    for name in ["lusearch9", "xalan6", "pjbb2005"] {
        let mut spec = by_name(name).expect("profile exists").spec;
        spec.steps_per_thread /= 10; // criterion runs each config many times
        for kind in [
            EngineKind::Baseline,
            EngineKind::Optimistic,
            EngineKind::Hybrid,
        ] {
            g.bench_with_input(BenchmarkId::new(name, kind.label()), &spec, |b, spec| {
                b.iter(|| run_kind(kind, spec))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_tracking);
criterion_main!(benches);
