//! Cell execution: run one (engine × workload × seed) under perturbation,
//! convert failures into artifacts, replay and shrink them.
//!
//! A *cell* builds a fresh runtime sized for the spec, registers a
//! [`ChaosSched`] before the runtime is shared, runs the full workload
//! driver path, and then applies the post-run oracles (quiescence today;
//! the differential oracles live in [`crate::oracle`] because they span
//! several cells). Worker panics — protocol `panic!`s, `check-invariants`
//! assertions, spin-watchdog expiries — propagate out of
//! `std::thread::scope` and are caught here; because the scope replaces the
//! payload with a generic message, a chained panic hook records the real
//! per-thread messages for the artifact.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock};

use drink_runtime::{RingTraceSink, Runtime, SchedHooks, ThreadTrace, TraceSink};
use drink_workloads::{run_kind_on, runtime_config_for, EngineKind, RunResult, WorkloadSpec};

use crate::artifact::FailureArtifact;
use crate::chaos::{ChaosSched, TraceStep};
use crate::oracle;

/// The engines the chaos matrix exercises (tracking engines only: baseline
/// does not participate in the protocols, and Ideal is deliberately
/// unsound).
pub const MATRIX_ENGINES: [EngineKind; 3] = [
    EngineKind::Pessimistic,
    EngineKind::Optimistic,
    EngineKind::Hybrid,
];

/// Parse an [`EngineKind::label`] back into the kind (artifacts store the
/// label string).
pub fn kind_from_label(label: &str) -> Option<EngineKind> {
    [
        EngineKind::Baseline,
        EngineKind::Pessimistic,
        EngineKind::Optimistic,
        EngineKind::Hybrid,
        EngineKind::HybridInfiniteCutoff,
        EngineKind::Adaptive,
        EngineKind::Ideal,
    ]
    .into_iter()
    .find(|k| k.label() == label)
}

static PANIC_MESSAGES: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Install (once) a panic hook that records every panic message before
/// delegating to the previous hook. `std::thread::scope` swallows worker
/// payloads ("a scoped thread panicked"), so without this the artifact
/// would not say *which* invariant fired.
fn install_panic_recorder() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".into());
            if msg != "a scoped thread panicked" {
                if let Ok(mut buf) = PANIC_MESSAGES.lock() {
                    if buf.len() < 64 {
                        buf.push(msg);
                    }
                }
            }
            prev(info);
        }));
    });
}

fn drain_panic_messages() -> Vec<String> {
    PANIC_MESSAGES
        .lock()
        .map(|mut b| std::mem::take(&mut *b))
        .unwrap_or_default()
}

/// A successfully completed cell: the run result plus the decision traces
/// consumed producing it (for oracle failures diagnosed *after* the run).
#[derive(Debug)]
pub struct CellRun {
    /// The driver's measurements (report, heap, …).
    pub run: RunResult,
    /// Per-thread decision traces (empty in replay mode).
    pub traces: Vec<Vec<TraceStep>>,
}

/// Ring capacity for the event timelines embedded in failure artifacts:
/// the last N protocol events per thread, enough to see the state-word
/// transitions leading into a failure without bloating artifact files.
pub const CHAOS_TRACE_CAPACITY: usize = 256;

/// Run `spec` under `kind` with `sched` registered, catching worker panics
/// and applying the quiescence oracle. Returns the failure description on
/// any failure.
pub fn run_chaos(
    kind: EngineKind,
    spec: &WorkloadSpec,
    sched: Arc<dyn SchedHooks>,
) -> Result<RunResult, String> {
    run_chaos_traced(kind, spec, sched).map_err(|(failure, _)| failure)
}

/// [`run_chaos`] with protocol-event tracing enabled: on failure, also
/// returns the per-thread event timelines captured up to the failure point.
/// The ring sink lives *outside* the `catch_unwind` so the rings survive the
/// worker panic that tore down the runtime.
pub fn run_chaos_traced(
    kind: EngineKind,
    spec: &WorkloadSpec,
    sched: Arc<dyn SchedHooks>,
) -> Result<RunResult, (String, Vec<ThreadTrace>)> {
    install_panic_recorder();
    drain_panic_messages();
    let sink = Arc::new(RingTraceSink::new(spec.threads, CHAOS_TRACE_CAPACITY));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        let mut rt = Runtime::new(runtime_config_for(spec));
        rt.set_sched_hooks(sched);
        rt.set_trace_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
        let rt = Arc::new(rt);
        let run = run_kind_on(kind, Arc::clone(&rt), spec);
        oracle::check_quiescent(&rt, kind.label()).map(|()| run)
    }));
    match outcome {
        Ok(result) => result.map_err(|failure| (failure, sink.snapshot().threads)),
        Err(payload) => {
            let mut msgs = drain_panic_messages();
            if msgs.is_empty() {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".into());
                msgs.push(msg);
            }
            Err((msgs.join(" | "), sink.snapshot().threads))
        }
    }
}

/// Run one generate-mode cell. On failure, the artifact carries the traces
/// recorded up to the failure point.
pub fn run_cell(kind: EngineKind, spec: &WorkloadSpec, seed: u64) -> Result<CellRun, FailureArtifact> {
    let chaos = Arc::new(ChaosSched::new(seed, spec.threads));
    match run_chaos_traced(kind, spec, chaos.clone()) {
        Ok(run) => Ok(CellRun {
            run,
            traces: chaos.take_traces(),
        }),
        Err((failure, events)) => Err(FailureArtifact {
            seed,
            engine: kind.label().to_string(),
            spec: spec.clone(),
            failure,
            traces: chaos.take_traces(),
            events,
        }),
    }
}

/// Re-run an artifact's cell in generate mode from its seed — the primary
/// reproduction path (`chaos_smoke --reproduce`). Returns `Err` with the
/// fresh failure if it reproduces. Shard-skip oracle artifacts (engine label
/// [`oracle::SHARD_ORACLE_ENGINE`]) describe a property of the whole sharded
/// matrix rather than one engine's panic, so they re-run the oracle itself.
pub fn reproduce(artifact: &FailureArtifact) -> Result<RunResult, String> {
    if artifact.engine == oracle::SHARD_ORACLE_ENGINE {
        return match oracle::shard_check(&artifact.spec, artifact.seed) {
            Ok(()) => run_cell(EngineKind::Hybrid, &artifact.spec, artifact.seed)
                .map(|cell| cell.run)
                .map_err(|a| a.failure),
            Err(a) => Err(a.failure),
        };
    }
    // Serve-oracle artifacts likewise describe the whole serve matrix; the
    // embedded spec only records geometry, so re-run the oracle itself and
    // fall back to a plain Hybrid cell for the Ok-path RunResult.
    if artifact.engine == oracle::SERVE_ORACLE_ENGINE {
        return match oracle::serve_check(artifact.seed) {
            Ok(()) => run_cell(EngineKind::Hybrid, &artifact.spec, artifact.seed)
                .map(|cell| cell.run)
                .map_err(|a| a.failure),
            Err(a) => Err(a.failure),
        };
    }
    let kind = kind_from_label(&artifact.engine)
        .ok_or_else(|| format!("unknown engine label `{}`", artifact.engine))?;
    let chaos = Arc::new(ChaosSched::new(artifact.seed, artifact.spec.threads));
    run_chaos(kind, &artifact.spec, chaos)
}

/// Replay an artifact's recorded decision traces (used by the shrinker).
pub fn replay_traces(
    artifact: &FailureArtifact,
    traces: Vec<Vec<TraceStep>>,
) -> Result<RunResult, String> {
    let kind = kind_from_label(&artifact.engine)
        .ok_or_else(|| format!("unknown engine label `{}`", artifact.engine))?;
    run_chaos(kind, &artifact.spec, Arc::new(ChaosSched::replay(traces)))
}

/// Greedily shrink an artifact's decision traces: repeatedly halve each
/// thread's trace (and finally try dropping whole threads' perturbation)
/// keeping any candidate that still fails on replay. Bounded by
/// `max_attempts` replays. Returns the smallest still-failing artifact
/// (possibly the input unchanged — replay is best-effort, so a candidate
/// that happens to pass is simply not taken).
pub fn shrink(artifact: &FailureArtifact, max_attempts: usize) -> FailureArtifact {
    let mut best = artifact.clone();
    let mut attempts = 0;

    // Pass 1: per-thread halving.
    for t in 0..best.traces.len() {
        while !best.traces[t].is_empty() && attempts < max_attempts {
            let mut candidate = best.traces.clone();
            let new_len = candidate[t].len() / 2;
            candidate[t].truncate(new_len);
            attempts += 1;
            match replay_traces(&best, candidate.clone()) {
                Err(failure) => {
                    best.traces = candidate;
                    best.failure = failure;
                }
                Ok(_) => break,
            }
        }
    }

    // Pass 2: drop entire threads' perturbation.
    for t in 0..best.traces.len() {
        if best.traces[t].is_empty() || attempts >= max_attempts {
            continue;
        }
        let mut candidate = best.traces.clone();
        candidate[t].clear();
        attempts += 1;
        if let Err(failure) = replay_traces(&best, candidate.clone()) {
            best.traces = candidate;
            best.failure = failure;
        }
    }

    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use drink_workloads::{chaos_disjoint, chaos_handoff, chaos_mix};

    #[test]
    fn clean_cells_pass_across_the_engine_matrix() {
        for (i, spec) in [chaos_mix(11), chaos_disjoint(12), chaos_handoff(13)]
            .iter()
            .enumerate()
        {
            for kind in MATRIX_ENGINES {
                let cell = run_cell(kind, spec, 0x5EED + i as u64)
                    .unwrap_or_else(|a| panic!("{} failed: {}", a.engine, a.failure));
                assert!(cell.run.report.accesses() > 0);
                assert!(
                    cell.traces.iter().any(|t| !t.is_empty()),
                    "perturbation layer must actually be consulted"
                );
            }
        }
    }

    #[test]
    fn replay_consumes_recorded_traces() {
        let spec = chaos_mix(21);
        let cell = run_cell(EngineKind::Hybrid, &spec, 21).expect("clean run");
        let artifact = FailureArtifact {
            seed: 21,
            engine: EngineKind::Hybrid.label().into(),
            spec,
            failure: String::new(),
            traces: cell.traces,
            events: Vec::new(),
        };
        let replayed = replay_traces(&artifact, artifact.traces.clone()).expect("replay clean");
        assert_eq!(replayed.report.accesses(), cell.run.report.accesses());
    }

    #[test]
    fn kind_labels_roundtrip() {
        for kind in MATRIX_ENGINES {
            assert_eq!(kind_from_label(kind.label()), Some(kind));
        }
        assert_eq!(kind_from_label("nope"), None);
    }
}
