//! Failure artifacts: everything needed to re-execute a failing chaos cell.
//!
//! When a cell (engine × workload × seed) fails — a protocol panic, an
//! invariant assertion, or an oracle mismatch — the harness dumps a JSON
//! artifact carrying the seed, the complete workload spec, the engine label,
//! the failure message, and the per-thread schedule-decision traces. The
//! artifact is self-contained: `chaos_smoke --reproduce <file>` rebuilds the
//! exact run from it (same spec, same seed, same decision streams), and the
//! shrinker replays reduced variants of the traces against it.

use std::io;
use std::path::{Path, PathBuf};

use drink_runtime::ThreadTrace;
use drink_workloads::WorkloadSpec;
use serde::{Deserialize, Serialize};

use crate::chaos::TraceStep;

/// A reproducible description of one failing chaos run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FailureArtifact {
    /// The chaos seed (also the workload-spec seed in the smoke matrix).
    pub seed: u64,
    /// The engine label (as in `EngineKind::label`, or an oracle name).
    pub engine: String,
    /// The complete workload spec (self-contained: no preset lookup needed).
    pub spec: WorkloadSpec,
    /// The failure: panic message(s) or oracle mismatch description.
    pub failure: String,
    /// Per-thread schedule-decision traces recorded up to the failure.
    pub traces: Vec<Vec<TraceStep>>,
    /// Per-thread protocol-event timelines (the last ring-capacity events
    /// each thread recorded before the failure; see `drink_runtime::trace`).
    pub events: Vec<ThreadTrace>,
}

impl FailureArtifact {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("artifact serializes")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("malformed artifact: {e}"))
    }

    /// Read an artifact file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&text)
    }

    /// Write this artifact under `dir` as
    /// `<workload>-<engine>-<seed-hex>.json` and return the path.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let slug: String = format!("{}-{}", self.spec.name, self.engine)
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let path = dir.join(format!("{slug}-{:016x}.json", self.seed));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Total recorded decisions across all threads.
    pub fn trace_len(&self) -> usize {
        self.traces.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::Decision;
    use drink_runtime::SchedPoint;

    fn sample() -> FailureArtifact {
        FailureArtifact {
            seed: 0xDEAD_BEEF,
            engine: "Hybrid tracking".into(),
            spec: drink_workloads::chaos_mix(0xDEAD_BEEF),
            failure: "T2 about to publish BLOCKED while holding pessimistic locks".into(),
            traces: vec![
                vec![TraceStep {
                    point: SchedPoint::MonitorPark,
                    decision: Decision::Sleep(120),
                }],
                vec![],
            ],
            events: vec![drink_runtime::ThreadTrace {
                tid: 0,
                events: vec![drink_runtime::TraceRecord {
                    ts_ns: 41,
                    kind: drink_runtime::TraceKind::CoordRequest,
                    arg: 2,
                }],
            }],
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let a = sample();
        let b = FailureArtifact::from_json(&a.to_json()).unwrap();
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.engine, b.engine);
        assert_eq!(a.failure, b.failure);
        assert_eq!(a.traces, b.traces);
        assert_eq!(a.events, b.events);
        assert_eq!(a.spec.name, b.spec.name);
        assert_eq!(a.spec.threads, b.spec.threads);
        assert_eq!(a.spec.ops(0), b.spec.ops(0), "spec round-trips op-exactly");
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join(format!("drink-check-{}", std::process::id()));
        let a = sample();
        let path = a.save(&dir).unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap().contains("chaosMix"));
        let b = FailureArtifact::load(&path).unwrap();
        assert_eq!(b.trace_len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
