//! The chaos smoke matrix: the fixed-seed schedule-exploration run CI
//! executes (`scripts/check_gate.sh`).
//!
//! Default matrix: 3 tracking engines × 4 seeds × 6 perturbation-heavy
//! workloads (`chaosMix`, `chaosHandoff`, `chaosRdsh`, `chaosReadMostly`,
//! `chaosAdapt`, the 16-thread sharded `chaosShard`), plus — per seed — the
//! differential oracle on the schedule-independent `chaosDisjoint` spec, the
//! seqlock read oracle on `chaosReadMostly`, the degradation-ladder oracle
//! on `chaosAdapt` (static matrix + adaptive engine agree while the online
//! controller performs real demotions), the shard-skip oracle on
//! `chaosShard` (epoch stamps match the spec's implied access footprint
//! exactly), the serve-store oracle on `chaosServe` (every completed PUT
//! visible at quiescence, final key values identical across engines), the
//! record→replay oracle, and the region-serializability
//! oracle. One
//! seed determines both the workload's op streams and the chaos decision
//! streams, so a failing cell is named by (workload, engine, seed) alone.
//!
//! On failure the cell's artifact is shrunk and written under the artifact
//! directory (default `target/chaos/`), and the exit status is nonzero.
//!
//! `--reproduce <artifact.json>` re-runs a saved artifact from its seed:
//! exit status 1 if the failure reproduces (the expected outcome when
//! chasing a real bug — and what the gate's canary asserts), 0 if the run
//! now passes.

use std::path::PathBuf;
use std::process::ExitCode;

use drink_check::{
    adapt_check, differential_check, read_mostly_check, replay_check, rs_check, run_cell,
    serve_check, shard_check, shrink, FailureArtifact, MATRIX_ENGINES,
};
use drink_workloads::{
    chaos_adapt, chaos_disjoint, chaos_handoff, chaos_mix, chaos_rdsh, chaos_read_mostly,
    chaos_shard,
};

const DEFAULT_SEEDS: [u64; 4] = [0x1, 0x2, 0xC0FFEE, 0xDECAF_BAD];
const SHRINK_ATTEMPTS: usize = 24;

struct Args {
    seeds: Vec<u64>,
    artifact_dir: PathBuf,
    reproduce: Option<PathBuf>,
    fail_fast: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: DEFAULT_SEEDS.to_vec(),
        artifact_dir: PathBuf::from("target/chaos"),
        reproduce: None,
        fail_fast: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a comma-separated list")?;
                args.seeds = v
                    .split(',')
                    .map(|s| {
                        let s = s.trim();
                        if let Some(hex) = s.strip_prefix("0x") {
                            u64::from_str_radix(hex, 16)
                        } else {
                            s.parse()
                        }
                        .map_err(|_| format!("bad seed `{s}`"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--artifact-dir" => {
                args.artifact_dir = PathBuf::from(it.next().ok_or("--artifact-dir needs a path")?);
            }
            "--reproduce" => {
                args.reproduce = Some(PathBuf::from(it.next().ok_or("--reproduce needs a file")?));
            }
            "--fail-fast" => args.fail_fast = true,
            "--help" | "-h" => {
                return Err(
                    "usage: chaos_smoke [--seeds a,b,..] [--artifact-dir DIR] [--fail-fast] [--reproduce FILE]"
                        .into(),
                );
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// Keep deliberate hangs bounded: if no spin budget is configured, tighten
/// the watchdog so a protocol deadlock fails the run instead of wedging CI.
/// Must run before any thread first touches a spinner (the budget is
/// latched once per process).
fn bound_spin_budget() {
    if std::env::var_os("DRINK_SPIN_BUDGET_MS").is_none() {
        std::env::set_var("DRINK_SPIN_BUDGET_MS", "10000");
    }
}

fn main() -> ExitCode {
    bound_spin_budget();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.reproduce {
        return reproduce_mode(path);
    }

    let mut failures = 0u32;
    for seed in &args.seeds {
        let seed = *seed;
        for spec in [
            chaos_mix(seed),
            chaos_handoff(seed),
            chaos_rdsh(seed),
            chaos_read_mostly(seed),
            chaos_adapt(seed),
            chaos_shard(seed),
        ] {
            for kind in MATRIX_ENGINES {
                match run_cell(kind, &spec, seed) {
                    Ok(cell) => {
                        println!(
                            "PASS {:<13} {:<28} seed={seed:#x} ({} accesses, {} decisions)",
                            spec.name,
                            kind.label(),
                            cell.run.report.accesses(),
                            cell.traces.iter().map(Vec::len).sum::<usize>(),
                        );
                    }
                    Err(artifact) => {
                        failures += 1;
                        report_failure(artifact, &args.artifact_dir);
                        if args.fail_fast {
                            eprintln!("chaos_smoke: stopping at first failure (--fail-fast)");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
        }
        failures += run_oracles(seed, &args.artifact_dir);
        if failures > 0 && args.fail_fast {
            eprintln!("chaos_smoke: stopping at first failure (--fail-fast)");
            return ExitCode::FAILURE;
        }
    }

    if failures > 0 {
        eprintln!("chaos_smoke: {failures} failing cell(s)");
        ExitCode::FAILURE
    } else {
        println!("chaos_smoke: matrix clean");
        ExitCode::SUCCESS
    }
}

/// The per-seed oracle suite (differential / replay / RS). Returns the
/// number of failures.
fn run_oracles(seed: u64, artifact_dir: &std::path::Path) -> u32 {
    let mut failures = 0;
    let disjoint = chaos_disjoint(seed);
    match differential_check(&disjoint, seed) {
        Ok(()) => println!("PASS {:<13} differential oracle          seed={seed:#x}", disjoint.name),
        Err(artifact) => {
            failures += 1;
            report_failure(artifact, artifact_dir);
        }
    }
    let read_mostly = chaos_read_mostly(seed);
    match read_mostly_check(&read_mostly, seed) {
        Ok(()) => println!("PASS {:<13} seqlock read oracle          seed={seed:#x}", read_mostly.name),
        Err(artifact) => {
            failures += 1;
            report_failure(artifact, artifact_dir);
        }
    }
    let adapt = chaos_adapt(seed);
    match adapt_check(&adapt, seed) {
        Ok(()) => println!("PASS {:<13} degradation-ladder oracle    seed={seed:#x}", adapt.name),
        Err(artifact) => {
            failures += 1;
            report_failure(artifact, artifact_dir);
        }
    }
    let shard = chaos_shard(seed);
    match shard_check(&shard, seed) {
        Ok(()) => println!("PASS {:<13} shard-skip oracle            seed={seed:#x}", shard.name),
        Err(artifact) => {
            failures += 1;
            report_failure(artifact, artifact_dir);
        }
    }
    match serve_check(seed) {
        Ok(()) => println!("PASS {:<13} serve-store oracle           seed={seed:#x}", "chaosServe"),
        Err(artifact) => {
            failures += 1;
            report_failure(artifact, artifact_dir);
        }
    }
    for (what, result) in [
        ("replay oracle", replay_check(&disjoint)),
        ("replay oracle", replay_check(&chaos_mix(seed))),
        ("RS oracle", rs_check(&disjoint, seed)),
        ("RS oracle", rs_check(&chaos_mix(seed), seed)),
    ] {
        match result {
            Ok(()) => println!("PASS {what:<28} seed={seed:#x}"),
            Err(e) => {
                failures += 1;
                eprintln!("FAIL {what} seed={seed:#x}: {e}");
            }
        }
    }
    failures
}

fn report_failure(artifact: FailureArtifact, dir: &std::path::Path) {
    eprintln!(
        "FAIL {:<13} {:<28} seed={:#x}: {}",
        artifact.spec.name, artifact.engine, artifact.seed, artifact.failure
    );
    let before = artifact.trace_len();
    let shrunk = shrink(&artifact, SHRINK_ATTEMPTS);
    eprintln!(
        "     shrunk traces {before} -> {} decisions",
        shrunk.trace_len()
    );
    match shrunk.save(dir) {
        Ok(path) => eprintln!("     artifact: {}", path.display()),
        Err(e) => eprintln!("     could not save artifact: {e}"),
    }
}

fn reproduce_mode(path: &std::path::Path) -> ExitCode {
    let artifact = match FailureArtifact::load(path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "reproducing {} / {} seed={:#x}\n  original failure: {}",
        artifact.spec.name, artifact.engine, artifact.seed, artifact.failure
    );
    match drink_check::reproduce(&artifact) {
        Err(failure) => {
            eprintln!("REPRODUCED: {failure}");
            ExitCode::FAILURE
        }
        Ok(_) => {
            println!("did not reproduce (run passed)");
            ExitCode::SUCCESS
        }
    }
}
