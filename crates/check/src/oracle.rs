//! Cross-engine oracles: what a chaos run is checked *against*.
//!
//! Individual panics and `check-invariants` assertions catch protocol bugs
//! at the moment they fire; the oracles here catch the quieter failure mode
//! where a run completes but computed the wrong thing:
//!
//! * **Quiescence** — after any run, no state word may remain `LOCKED`,
//!   intermediate, or pessimistically locked, and every word must be
//!   well-formed ([`drink_core::word::StateWord::validate`]). Leaks here
//!   mean a lock-buffer flush or coordination hand-off was lost.
//! * **Differential equivalence** — the same seeded workload run under
//!   Pessimistic, Optimistic and Hybrid tracking must perform the same
//!   number of tracked accesses, and for *schedule-independent* specs
//!   (no races, no locks: disjoint write sets plus a read-only shared
//!   region) must produce the byte-identical final heap that an untracked
//!   baseline run produces, with zero conflicting transitions.
//! * **Record/replay** — a recorded run's log, replayed, must reproduce the
//!   recorded final heap exactly (the paper's §7.6 determinism claim).
//! * **Region serializability** — the RS enforcers must complete under
//!   perturbation with `execs > restarts` (every committed region ran at
//!   least once; restarts never livelock), end quiescent, and — for
//!   schedule-independent specs — match the baseline heap, which for
//!   disjoint write sets is precisely the serial-witness check.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use drink_core::word::StateWord;
use drink_rs::RsEnforcer;
use drink_runtime::{Event, ObjId, Runtime, SchedHooks, ShardMap};
use drink_workloads::{
    record, replay, run_kind, run_rs_on, runtime_config_for, EngineKind, Op, RecorderKind, RsKind,
    RunResult, WorkloadSpec,
};

use crate::artifact::FailureArtifact;
use crate::chaos::ChaosSched;
use crate::harness::{self, MATRIX_ENGINES};

/// Is `spec`'s final heap independent of thread interleaving? True when
/// threads share data only through the read-only region: no racy accesses
/// and no critical sections (every written object is thread-private).
pub fn schedule_independent(spec: &WorkloadSpec) -> bool {
    spec.racy_frac == 0.0 && spec.locked_frac == 0.0
}

/// Post-run heap scan: every state word well-formed and quiescent.
pub fn check_quiescent(rt: &Runtime, label: &str) -> Result<(), String> {
    for (id, obj) in rt.heap().iter() {
        let w = StateWord(obj.state().load(Ordering::SeqCst));
        if w.is_locked_sentinel() {
            return Err(format!("{label}: {id} left LOCKED after the run"));
        }
        if w.is_int() {
            return Err(format!("{label}: {id} left in intermediate state {w:?}"));
        }
        if w.is_pess_locked() {
            return Err(format!(
                "{label}: {id} left pessimistically locked {w:?} (lock-buffer leak)"
            ));
        }
        if let Err(e) = w.validate() {
            return Err(format!("{label}: {id} ill-formed {w:?} — {e}"));
        }
    }
    // Coordination quiescence: with every mutator joined, an inbox node the
    // fast-path flag does not announce is a request no poll would ever have
    // answered — a drain cleared the flag over a live node (the lost-wakeup
    // ordering `take_requests` exists to rule out).
    for (i, ctl) in rt.controls().enumerate() {
        if ctl.has_stranded_requests() {
            return Err(format!(
                "{label}: T{i} leaked an unanswered coordination request past teardown \
                 (inbox non-empty but has_requests clear)"
            ));
        }
    }
    Ok(())
}

/// Run the engine matrix on `spec` under chaos seed `seed` and check the
/// differential oracles. On failure returns an artifact naming the engine
/// (or `differential` for cross-engine mismatches) with the decision traces
/// of the run that exposed it.
pub fn differential_check(spec: &WorkloadSpec, seed: u64) -> Result<(), FailureArtifact> {
    // Unperturbed, untracked reference run: the program's semantics.
    let baseline = run_kind(EngineKind::Baseline, spec);
    let independent = schedule_independent(spec);

    let mut accesses: Option<(EngineKind, u64)> = None;
    for kind in MATRIX_ENGINES {
        let cell = harness::run_cell(kind, spec, seed)?;
        let fail = |failure: String, traces| FailureArtifact {
            seed,
            engine: "differential".into(),
            spec: spec.clone(),
            failure,
            traces,
            events: Vec::new(),
        };

        let a = cell.run.report.accesses();
        match accesses {
            None => accesses = Some((kind, a)),
            Some((k0, a0)) if a0 != a => {
                return Err(fail(
                    format!(
                        "access counts diverge: {} performed {a0}, {} performed {a}",
                        k0.label(),
                        kind.label()
                    ),
                    cell.traces,
                ));
            }
            Some(_) => {}
        }

        if independent {
            if cell.run.heap != baseline.heap {
                let diverged = first_heap_divergence(&baseline.heap, &cell.run.heap);
                return Err(fail(
                    format!(
                        "{} changed a schedule-independent program's heap ({diverged})",
                        kind.label()
                    ),
                    cell.traces,
                ));
            }
            let conflicts = cell.run.report.opt_conflicting() + cell.run.report.get(Event::PessContended);
            if conflicts != 0 {
                return Err(fail(
                    format!(
                        "{} reported {conflicts} conflicting transitions on a conflict-free spec",
                        kind.label()
                    ),
                    cell.traces,
                ));
            }
        }
    }
    Ok(())
}

/// The seqlock read-path oracle (DESIGN.md §12), meant for read-mostly RdSh
/// specs such as [`drink_workloads::chaos_read_mostly`]. Every matrix engine
/// runs tracking-only (`NullSupport`), so each must actually exercise the
/// coordination-free path:
///
/// * **engine agreement** — access counts match across the matrix (a
///   seqlock-validated read is still exactly one tracked access);
/// * **the path is live** — `validated_reads > 0` in every cell: a
///   read-mostly spec that never validates means the gate or the version
///   protocol regressed to always-fallback;
/// * **fallback shape** — a seqlock fallback re-enters the ordinary
///   coordinated read path, so it must not distort fan-out accounting: in a
///   run with fallbacks, the mean fan-out width stays what the all-peer
///   protocol dictates (≥ 1 peer, ≤ threads − 1), unchanged by how many
///   reads arrived via the fallback arm rather than directly.
pub fn read_mostly_check(spec: &WorkloadSpec, seed: u64) -> Result<(), FailureArtifact> {
    let mut accesses: Option<(EngineKind, u64)> = None;
    for kind in MATRIX_ENGINES {
        let cell = harness::run_cell(kind, spec, seed)?;
        let r = &cell.run.report;
        let fail = |failure: String, traces| FailureArtifact {
            seed,
            engine: kind.label().to_string(),
            spec: spec.clone(),
            failure,
            traces,
            events: Vec::new(),
        };

        let a = r.accesses();
        match accesses {
            None => accesses = Some((kind, a)),
            Some((k0, a0)) if a0 != a => {
                return Err(fail(
                    format!(
                        "access counts diverge: {} performed {a0}, {} performed {a}",
                        k0.label(),
                        kind.label()
                    ),
                    cell.traces,
                ));
            }
            Some(_) => {}
        }

        if r.validated_reads() == 0 {
            return Err(fail(
                format!(
                    "{} validated no seqlock reads on a read-mostly spec \
                     (retries={}, fallbacks={}) — fast path dead",
                    kind.label(),
                    r.get(Event::SeqlockRetry),
                    r.get(Event::SeqlockFallback),
                ),
                cell.traces,
            ));
        }

        if r.get(Event::SeqlockFallback) > 0 && r.get(Event::CoordFanout) > 0 {
            let width = r.fanout_width();
            let peers = (spec.threads - 1) as f64;
            if !(1.0..=peers).contains(&width) {
                return Err(fail(
                    format!(
                        "{} fan-out width {width:.2} outside [1, {peers}] with {} \
                         seqlock fallbacks in flight — fallback path distorted \
                         coordination accounting",
                        kind.label(),
                        r.get(Event::SeqlockFallback),
                    ),
                    cell.traces,
                ));
            }
        }
    }
    Ok(())
}

/// The degradation-ladder oracle (DESIGN.md §13), meant for the
/// phase-shifted [`drink_workloads::chaos_adapt`] spec, which turns on a
/// recoverable coordination deadline and oscillates hot objects between
/// write-heavy and read-mostly phases:
///
/// * **engine agreement** — access counts match across the static matrix
///   *and* the adaptive engine: the controller redistributes accesses
///   between the optimistic and pessimistic protocols but must not lose or
///   invent any;
/// * **the controller is live** — the adaptive cell demoted at least one
///   object (`adapt.demotion > 0`): chaos sleeps at coordination points
///   push measured roundtrip cost past the hysteresis band, and a spec
///   whose controller never fires is not testing the ladder;
/// * **deadline discipline** — any `coord.deadline_exceeded` events are
///   recoverable by construction (the run completed, so none escalated to
///   a watchdog panic); they are reported for visibility.
pub fn adapt_check(spec: &WorkloadSpec, seed: u64) -> Result<(), FailureArtifact> {
    let mut accesses: Option<(EngineKind, u64)> = None;
    let mut demotions = 0u64;
    let mut engines = MATRIX_ENGINES.to_vec();
    engines.push(EngineKind::Adaptive);
    for kind in engines {
        let cell = harness::run_cell(kind, spec, seed)?;
        let r = &cell.run.report;
        let fail = |failure: String, traces| FailureArtifact {
            seed,
            engine: kind.label().to_string(),
            spec: spec.clone(),
            failure,
            traces,
            events: Vec::new(),
        };

        let a = r.accesses();
        match accesses {
            None => accesses = Some((kind, a)),
            Some((k0, a0)) if a0 != a => {
                return Err(fail(
                    format!(
                        "access counts diverge: {} performed {a0}, {} performed {a}",
                        k0.label(),
                        kind.label()
                    ),
                    cell.traces,
                ));
            }
            Some(_) => {}
        }

        if kind == EngineKind::Adaptive {
            demotions = r.get(Event::AdaptDemotion);
            if demotions == 0 {
                return Err(fail(
                    format!(
                        "controller never demoted on a phase-shifted hot set \
                         (coord roundtrips={}, deadline expiries={}) — the \
                         degradation ladder is not being exercised",
                        r.get(Event::CoordinationRoundtrip),
                        r.get(Event::CoordDeadlineExceeded),
                    ),
                    cell.traces,
                ));
            }
        }
    }
    debug_assert!(demotions > 0);
    Ok(())
}

/// Artifact engine label for shard-skip oracle failures. The failure is a
/// property of the whole sharded run, not one engine's panic, so reproduction
/// re-runs [`shard_check`] itself (see `harness::reproduce`).
pub const SHARD_ORACLE_ENGINE: &str = "shardSkip";

/// The per-object stamp masks `spec`'s deterministic expansion implies: for
/// every object, the shard of its allocating owner (read-shared objects are
/// installed ownerless and stamp nothing) plus the shard of every thread
/// whose op stream reads or writes it. Because specs are pure functions of
/// their seed, this is computable without running anything — and because
/// every engine stamps at access entry (stamp-before-examine, DESIGN.md
/// §14), a run's actual [`drink_runtime::Heap::stamp_snapshot`] must equal
/// it exactly.
pub fn expected_stamps(spec: &WorkloadSpec, shards: usize) -> Vec<u64> {
    let map = ShardMap::new(shards);
    let mut exp = vec![0u64; spec.heap_objects()];
    for (i, e) in exp.iter_mut().enumerate() {
        let o = ObjId(i as u32);
        if !spec.is_read_shared(o) {
            *e |= 1u64 << map.shard_of(spec.initial_owner(o).index()).min(63);
        }
    }
    for t in 0..spec.threads {
        let bit = 1u64 << map.shard_of(t).min(63);
        for op in spec.ops(t) {
            if let Op::Read(o) | Op::Write(o) = op {
                exp[o.index()] |= bit;
            }
        }
    }
    exp
}

/// The shard-skip oracle (DESIGN.md §14), meant for wide sharded specs such
/// as [`drink_workloads::chaos_shard`] (16 threads, one shard per thread):
///
/// * **engine agreement** — access counts match across the matrix: skipping
///   a shard resolves its threads vacuously and must not lose or invent
///   tracked accesses;
/// * **the runtime really sharded** — `thread_shards > 1`, or the epoch
///   table is inert and the spec tests nothing;
/// * **stamp completeness** — every (object, shard) pair the spec's op
///   streams and allocation owners imply is stamped in the run's epoch
///   snapshot. A missing bit means a shard accessed an object without
///   stamping — the precise lie that would let `coordinate_many` skip a
///   shard that *did* have business with the object (and exactly what the
///   `DRINK_INJECT_BUG=skip-epoch-stamp` canary injects);
/// * **stamp soundness** — no stamped bit the spec does not imply: a
///   phantom stamp only costs a wasted roundtrip, but it means the stamp
///   plumbing writes the wrong slot.
///
/// The complementary runtime-side direction — a *skipped* shard's threads
/// received zero explicit requests for the object — is enforced on every
/// request drain by the `check-invariants` receiver assertion
/// (`assert_requests_stamped` in `drink-core`), which this harness compiles
/// in; a violation panics the cell and surfaces as an ordinary artifact.
pub fn shard_check(spec: &WorkloadSpec, seed: u64) -> Result<(), FailureArtifact> {
    let mut accesses: Option<(EngineKind, u64)> = None;
    for kind in MATRIX_ENGINES {
        let cell = harness::run_cell(kind, spec, seed)?;
        let fail = |failure: String, traces| FailureArtifact {
            seed,
            engine: SHARD_ORACLE_ENGINE.into(),
            spec: spec.clone(),
            failure,
            traces,
            events: Vec::new(),
        };

        let a = cell.run.report.accesses();
        match accesses {
            None => accesses = Some((kind, a)),
            Some((k0, a0)) if a0 != a => {
                return Err(fail(
                    format!(
                        "access counts diverge under epoch skip: {} performed {a0}, {} performed {a}",
                        k0.label(),
                        kind.label()
                    ),
                    cell.traces,
                ));
            }
            Some(_) => {}
        }

        let shards = cell.run.thread_shards;
        if shards <= 1 {
            return Err(fail(
                format!(
                    "{}: spec requested {:?} shards but the runtime ran single-shard \
                     (epoch table inert — the config knob is disconnected)",
                    kind.label(),
                    spec.shards
                ),
                cell.traces,
            ));
        }

        let expected = expected_stamps(spec, shards);
        for (i, (&exp, &act)) in expected.iter().zip(&cell.run.shard_stamps).enumerate() {
            if exp & !act != 0 {
                return Err(fail(
                    format!(
                        "{}: object {i} missing stamps for shards {:#x} (expected {exp:#x}, \
                         actual {act:#x}) — a shard accessed it without stamping, so a \
                         fan-out could wrongly skip that shard",
                        kind.label(),
                        exp & !act
                    ),
                    cell.traces,
                ));
            }
            if act & !exp != 0 {
                return Err(fail(
                    format!(
                        "{}: object {i} stamped by shards {:#x} the spec never sends there \
                         (expected {exp:#x}, actual {act:#x}) — stamp plumbing writes the \
                         wrong slot",
                        kind.label(),
                        act & !exp
                    ),
                    cell.traces,
                ));
            }
        }
    }
    Ok(())
}

/// Artifact engine label for serve-oracle failures. Like the shard oracle,
/// the failure is a property of the whole serve matrix (per-engine store
/// checks plus cross-engine equality), so reproduction re-runs
/// [`serve_check`] itself (see `harness::reproduce`).
pub const SERVE_ORACLE_ENGINE: &str = "chaosServe";

/// A [`WorkloadSpec`]-shaped description of the serve run, embedded in
/// failure artifacts so they deserialize and print like every other
/// artifact. The serve store is not driven by the workload driver — the
/// spec records the geometry (threads / objects / monitors) and the seed;
/// reproduction keys off [`SERVE_ORACLE_ENGINE`], not this spec.
fn serve_spec(cfg: &drink_serve::ServeConfig, seed: u64) -> WorkloadSpec {
    WorkloadSpec::builder()
        .name(SERVE_ORACLE_ENGINE)
        .threads(cfg.workers)
        .steps_per_thread(cfg.requests_per_worker as usize)
        .shared_objects(cfg.keys)
        .hot_objects(cfg.keys.min(8))
        .monitors(cfg.monitors)
        .locked_frac(1.0 - cfg.read_frac)
        .racy_frac(cfg.read_frac)
        .shared_read_frac(0.0)
        .seed(seed)
        .build()
        .expect("serve geometry maps to a valid spec")
}

/// Run the serve store's chaos configuration under one engine with the
/// chaos scheduler registered, catching worker panics. Returns the full
/// serve result for the cross-engine comparison.
fn run_serve_chaos(
    kind: EngineKind,
    cfg: &drink_serve::ServeConfig,
    seed: u64,
) -> Result<drink_serve::ServeResult, String> {
    let mut cell = cfg.clone();
    cell.engine = kind;
    let chaos: Arc<dyn SchedHooks> = Arc::new(ChaosSched::new(seed, cell.workers));
    let build = move || {
        let mut rt = Runtime::new(cell.runtime_config());
        rt.set_sched_hooks(chaos);
        let rt = Arc::new(rt);
        let r = drink_serve::run_serve_on(Arc::clone(&rt), &cell);
        // Store-level linearizability first, then the engine-level heap scan:
        // a lock-buffer leak can exist even when every PUT landed.
        r.check_quiescent()?;
        check_quiescent(&rt, kind.label())?;
        Ok(r)
    };
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(build)) {
        Ok(r) => r,
        Err(payload) => Err(payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".into())),
    }
}

/// The serve-store oracle (DESIGN.md §15), run on the
/// [`drink_serve::chaos_serve`] configuration — a write-heavy, hot-headed
/// Zipf mix whose offered rate keeps every worker saturated, so the
/// interleaving is decided by the chaos perturbations:
///
/// * **store linearizability at quiescence** — for every engine in the
///   matrix (plus Adaptive), every completed PUT is visible: key `k`'s
///   final sequence number equals the PUTs completed against it, its value
///   carries its own tag, no GET ever observed a foreign tag, and the
///   open-loop accounting balances with nothing in flight
///   ([`drink_serve::ServeResult::check_quiescent`]);
/// * **engine-level quiescence** — the runtime heap scan and coordination
///   inbox checks that every chaos cell gets ([`check_quiescent`]);
/// * **cross-engine agreement** — request streams are pure functions of
///   (seed, worker), so `puts_per_key` and the final key values must be
///   byte-identical across every engine; a divergence means a tracking
///   engine lost or reordered a synchronized RMW.
pub fn serve_check(seed: u64) -> Result<(), FailureArtifact> {
    let cfg = drink_serve::chaos_serve(seed);
    let spec = serve_spec(&cfg, seed);
    let fail = |engine: String, failure: String| FailureArtifact {
        seed,
        engine,
        spec: spec.clone(),
        failure,
        traces: Vec::new(),
        events: Vec::new(),
    };

    let mut engines = MATRIX_ENGINES.to_vec();
    engines.push(EngineKind::Adaptive);
    let mut reference: Option<(EngineKind, Vec<u64>, Vec<u64>)> = None;
    for kind in engines {
        let r = run_serve_chaos(kind, &cfg, seed)
            .map_err(|e| fail(SERVE_ORACLE_ENGINE.into(), format!("{}: {e}", kind.label())))?;
        match &reference {
            None => reference = Some((kind, r.puts_per_key, r.final_values)),
            Some((k0, puts0, finals0)) => {
                if *puts0 != r.puts_per_key {
                    let k = puts0
                        .iter()
                        .zip(&r.puts_per_key)
                        .position(|(a, b)| a != b)
                        .unwrap_or(0);
                    return Err(fail(
                        SERVE_ORACLE_ENGINE.into(),
                        format!(
                            "PUT counts diverge between {} and {}: key {k} got {} vs {} \
                             (a tracking engine lost or invented a synchronized RMW)",
                            k0.label(),
                            kind.label(),
                            puts0[k],
                            r.puts_per_key[k]
                        ),
                    ));
                }
                if *finals0 != r.final_values {
                    return Err(fail(
                        SERVE_ORACLE_ENGINE.into(),
                        format!(
                            "final key values diverge between {} and {} ({})",
                            k0.label(),
                            kind.label(),
                            first_heap_divergence(finals0, &r.final_values)
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

fn first_heap_divergence(a: &[u64], b: &[u64]) -> String {
    if a.len() != b.len() {
        return format!("lengths {} vs {}", a.len(), b.len());
    }
    match a.iter().zip(b).position(|(x, y)| x != y) {
        Some(i) => format!("first at object {i}: {:#x} vs {:#x}", a[i], b[i]),
        None => "heaps equal?".into(),
    }
}

/// Record `spec` under both recorder kinds and verify replay reproduces the
/// recorded heap exactly. (Recording runs unperturbed: the recorder owns
/// its runtime; what is under test is the log's completeness, which the
/// differential/chaos cells already stress from the engine side.)
pub fn replay_check(spec: &WorkloadSpec) -> Result<(), String> {
    for kind in [RecorderKind::Optimistic, RecorderKind::Hybrid] {
        // Wrapped: a protocol panic inside the recorder (e.g. an injected
        // bug tripping the invariant layer) must report, not abort the suite.
        let checked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let out = record(kind, spec);
            let rep = replay(spec, out.log.clone());
            if rep.heap != out.run.heap {
                return Err(format!(
                    "{} replay diverged from its recording ({})",
                    kind.name(),
                    first_heap_divergence(&out.run.heap, &rep.heap)
                ));
            }
            Ok(())
        }));
        match checked {
            Ok(r) => r?,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".into());
                return Err(format!("{} record/replay panicked: {msg}", kind.name()));
            }
        }
    }
    Ok(())
}

/// Run one RS enforcer under chaos, catching worker panics.
fn run_rs_chaos(
    kind: RsKind,
    spec: &WorkloadSpec,
    sched: Arc<dyn SchedHooks>,
) -> Result<RunResult, String> {
    let build = move || {
        let mut rt = Runtime::new(runtime_config_for(spec));
        rt.set_sched_hooks(sched);
        let rt = Arc::new(rt);
        let enforcer = match kind {
            RsKind::Optimistic => RsEnforcer::optimistic(Arc::clone(&rt)),
            RsKind::Hybrid => RsEnforcer::hybrid(Arc::clone(&rt)),
        };
        let run = run_rs_on(&enforcer, spec);
        check_quiescent(&rt, kind.name()).map(|()| run)
    };
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(build)) {
        Ok(r) => r,
        Err(payload) => Err(payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".into())),
    }
}

/// The region-serializability oracle: both RS enforcers complete `spec`
/// under perturbation, never livelock (`execs > restarts`), end quiescent,
/// and preserve schedule-independent semantics.
pub fn rs_check(spec: &WorkloadSpec, seed: u64) -> Result<(), String> {
    let independent = schedule_independent(spec);
    let baseline = independent.then(|| run_kind(EngineKind::Baseline, spec));
    for kind in [RsKind::Optimistic, RsKind::Hybrid] {
        let chaos = Arc::new(ChaosSched::new(seed, spec.threads));
        let r = run_rs_chaos(kind, spec, chaos)
            .map_err(|e| format!("{} under seed {seed:#x}: {e}", kind.name()))?;
        let execs = r.report.get(Event::RegionExec);
        let restarts = r.report.get(Event::RegionRestart);
        if execs == 0 || execs <= restarts {
            return Err(format!(
                "{}: region accounting broken: execs={execs} restarts={restarts}",
                kind.name()
            ));
        }
        if let Some(base) = &baseline {
            if r.heap != base.heap {
                return Err(format!(
                    "{} broke serializability of a schedule-independent program ({})",
                    kind.name(),
                    first_heap_divergence(&base.heap, &r.heap)
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use drink_workloads::{chaos_disjoint, chaos_handoff, chaos_mix, chaos_rdsh, chaos_read_mostly};

    #[test]
    fn differential_holds_on_disjoint_spec() {
        differential_check(&chaos_disjoint(31), 31)
            .unwrap_or_else(|a| panic!("{}: {}", a.engine, a.failure));
    }

    #[test]
    fn differential_holds_on_racy_specs() {
        // Not schedule-independent: only the access-count and quiescence
        // oracles apply, but they apply under heavy perturbation.
        differential_check(&chaos_mix(32), 32)
            .unwrap_or_else(|a| panic!("{}: {}", a.engine, a.failure));
        differential_check(&chaos_handoff(33), 33)
            .unwrap_or_else(|a| panic!("{}: {}", a.engine, a.failure));
    }

    /// The fan-out oracle: with `coordinate_many` driving every RdSh
    /// conflict, the engine matrix must still agree on access counts (and
    /// the schedule-independent baseline-heap oracle must still hold — the
    /// disjoint spec runs the same fan-out-enabled engines). The second half
    /// proves the spec actually exercises the fan-out window rather than
    /// vacuously passing: wide fan-outs and batched responses must show up
    /// in the coordination counters.
    #[test]
    fn differential_holds_under_fanout_coordination() {
        for seed in [41u64, 42] {
            differential_check(&chaos_rdsh(seed), seed)
                .unwrap_or_else(|a| panic!("{}: {}", a.engine, a.failure));
            differential_check(&chaos_disjoint(seed), seed)
                .unwrap_or_else(|a| panic!("{}: {}", a.engine, a.failure));
        }
        let cell = harness::run_cell(EngineKind::Optimistic, &chaos_rdsh(43), 43)
            .unwrap_or_else(|a| panic!("{}: {}", a.engine, a.failure));
        let report = &cell.run.report;
        assert!(
            report.get(Event::CoordFanout) > 0,
            "chaosRdsh must drive RdSh conflicts through coordinate_many"
        );
        assert!(
            report.fanout_width() > 1.0,
            "fan-outs must cover multiple peers (width {})",
            report.fanout_width()
        );
        // Batching accounting: every responding safe point answered ≥ 1
        // request, so occupancy is at least 1 whenever anyone responded.
        if report.get(Event::RespondedExplicit) > 0 {
            assert!(
                report.batch_occupancy() >= 1.0,
                "batch occupancy {} < 1",
                report.batch_occupancy()
            );
        }
    }

    /// The degradation-ladder oracle on its intended spec: the static
    /// matrix and the adaptive engine agree on access counts while the
    /// controller performs real demotions under perturbation.
    #[test]
    fn adapt_oracle_holds_under_chaos() {
        for seed in [0x51u64, 0x52] {
            adapt_check(&drink_workloads::chaos_adapt(seed), seed)
                .unwrap_or_else(|a| panic!("{}: {}", a.engine, a.failure));
        }
    }

    /// The shard-skip oracle on its intended spec: a 16-thread,
    /// one-shard-per-thread run under perturbation keeps the epoch table
    /// exactly in sync with the spec's implied access footprint across the
    /// whole matrix (and the receiver-side stamped-request invariant holds
    /// throughout, since this harness compiles `check-invariants` in).
    #[test]
    fn shard_oracle_holds_under_chaos() {
        for seed in [0x91u64, 0x92] {
            shard_check(&drink_workloads::chaos_shard(seed), seed)
                .unwrap_or_else(|a| panic!("{}: {}", a.engine, a.failure));
        }
    }

    /// Expected-stamp computation agrees with an actual unperturbed run.
    #[test]
    fn expected_stamps_match_a_real_run() {
        let spec = drink_workloads::chaos_shard(0x93);
        let cell = harness::run_cell(EngineKind::Hybrid, &spec, 0x93)
            .unwrap_or_else(|a| panic!("{}: {}", a.engine, a.failure));
        assert!(cell.run.thread_shards > 1);
        let exp = expected_stamps(&spec, cell.run.thread_shards);
        assert_eq!(exp, cell.run.shard_stamps);
        // The footprint is genuinely partial: some (object, shard) pairs
        // stay unstamped, so fan-outs have shards to skip.
        assert!(
            exp.iter().any(|&m| m != 0 && m.count_ones() < spec.threads as u32),
            "spec must leave skippable shards"
        );
    }

    /// The seqlock oracle on its intended spec: every engine validates
    /// reads, counts agree, fallback keeps fan-out accounting sane.
    #[test]
    fn read_mostly_oracle_holds_under_chaos() {
        for seed in [0x71u64, 0x72] {
            read_mostly_check(&chaos_read_mostly(seed), seed)
                .unwrap_or_else(|a| panic!("{}: {}", a.engine, a.failure));
        }
    }

    /// The serve-store oracle on its intended configuration: every engine
    /// (static matrix + adaptive) passes the store-linearizability quiescent
    /// check under perturbation and all agree on the final key values.
    #[test]
    fn serve_oracle_holds_under_chaos() {
        for seed in [0xA1u64, 0xA2] {
            serve_check(seed).unwrap_or_else(|a| panic!("{}: {}", a.engine, a.failure));
        }
    }

    /// The synthesized artifact spec validates and round-trips the geometry
    /// the serve config describes.
    #[test]
    fn serve_artifact_spec_is_well_formed() {
        let cfg = drink_serve::chaos_serve(0xA3);
        let spec = serve_spec(&cfg, 0xA3);
        assert_eq!(spec.name, SERVE_ORACLE_ENGINE);
        assert_eq!(spec.threads, cfg.workers);
        assert_eq!(spec.monitors, cfg.monitors);
        spec.validate().expect("serve spec validates");
    }

    #[test]
    fn replay_reproduces_chaos_specs() {
        replay_check(&chaos_mix(34)).unwrap();
        replay_check(&chaos_disjoint(35)).unwrap();
    }

    #[test]
    fn rs_enforcers_survive_perturbation() {
        rs_check(&chaos_disjoint(36), 36).unwrap();
        rs_check(&chaos_mix(37), 37).unwrap();
    }

    #[test]
    fn schedule_independence_classifier() {
        assert!(schedule_independent(&chaos_disjoint(1)));
        assert!(!schedule_independent(&chaos_mix(1)));
        assert!(!schedule_independent(&chaos_handoff(1)));
    }
}
