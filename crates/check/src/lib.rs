//! # drink-check: seeded schedule exploration with cross-engine oracles
//!
//! The checking harness for the tracking protocols. Three layers:
//!
//! 1. **[`chaos`]** — a deterministic perturbation scheduler registered on
//!    the runtime's [`SchedHooks`](drink_runtime::SchedHooks) seam. One
//!    `u64` seed fully determines every thread's decision stream
//!    (yield / spin / preemption burst / microsecond sleep) at every
//!    schedule-relevant point the substrate reports.
//! 2. **[`oracle`]** — what a run is checked against: post-run quiescence
//!    of every state word, differential equivalence across the
//!    Pessimistic/Optimistic/Hybrid engines, record→replay heap fidelity,
//!    and region-serializability structural checks.
//! 3. **[`harness`]** + **[`artifact`]** — cell execution with panic
//!    capture, JSON failure artifacts (seed + spec + decision traces),
//!    seed-based reproduction, and greedy trace shrinking.
//!
//! The fourth layer — the `check-invariants` assertions inside
//! `drink-core`/`drink-runtime` hot paths — lives in those crates and is
//! enabled by this crate's `check-invariants` feature. The
//! `chaos_smoke` binary runs the fixed matrix CI executes
//! (`scripts/check_gate.sh`), including the injected-bug canary
//! (`DRINK_INJECT_BUG`) proving the matrix actually catches protocol bugs.

pub mod artifact;
pub mod chaos;
pub mod harness;
pub mod oracle;

pub use artifact::FailureArtifact;
pub use chaos::{ChaosSched, Decision, TraceStep};
pub use harness::{kind_from_label, reproduce, run_cell, shrink, CellRun, MATRIX_ENGINES};
pub use oracle::{
    adapt_check, check_quiescent, differential_check, expected_stamps, read_mostly_check,
    replay_check, rs_check, schedule_independent, serve_check, shard_check,
    SERVE_ORACLE_ENGINE, SHARD_ORACLE_ENGINE,
};
