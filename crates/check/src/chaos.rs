//! The chaos scheduler: a deterministic schedule-perturbation layer.
//!
//! Registered on a [`Runtime`](drink_runtime::Runtime) via
//! `set_sched_hooks`, [`ChaosSched`] is consulted by every thread at every
//! [`SchedPoint`] — safe-point polls, spin backoff steps, monitor
//! acquire/park/release/wait/notify windows, and both sides of explicit
//! coordination. At each point it draws a [`Decision`] from a per-thread
//! splitmix64 stream and delays the calling thread accordingly (or not).
//!
//! The point of the exercise is *coverage of interleavings*, not load: a
//! stock OS scheduler runs each thread in long quanta, so the narrow race
//! windows the tracking protocols defend (request enqueue vs. BLOCKED
//! publish, flush vs. park, notify vs. wait-park) are essentially never
//! exercised. Injecting yields, preemption bursts and microsecond sleeps at
//! exactly those windows forces the orderings out of hiding.
//!
//! ## Determinism contract
//!
//! One `u64` seed fully determines every *decision stream*: thread `t`
//! always draws the same i-th decision for a given seed. The interleaving
//! of threads is still up to the OS, so a failure is not bit-reproducible
//! in general — but the decision streams are, which in practice re-produces
//! protocol failures within a run or two (and deterministically for the
//! invariant class of failures, which fire on the first occurrence of a
//! perturbed pattern). Every decision is recorded into a per-thread trace
//! that a failure artifact carries; [`ChaosSched::replay`] re-applies a
//! recorded trace decision-for-decision, which is what trace shrinking
//! executes against.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use drink_runtime::{CachePadded, SchedHooks, SchedPoint, ThreadId};
use serde::{Deserialize, Serialize};

/// What a thread does at one schedule point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Proceed immediately (the common case; perturbing every point would
    /// serialize the program and *hide* races).
    Run,
    /// Yield the OS quantum once.
    Yield,
    /// Spin for the given number of `spin_loop` iterations (stretches the
    /// current window without descheduling).
    SpinOn(u16),
    /// Yield repeatedly — approximates being preempted for several quanta.
    PreemptBurst(u8),
    /// Sleep for the given number of microseconds (forces a real
    /// deschedule; the heavyweight option, drawn rarely).
    Sleep(u16),
}

impl Decision {
    /// Apply this decision on the calling thread.
    #[inline]
    pub fn apply(self) {
        match self {
            Decision::Run => {}
            Decision::Yield => std::thread::yield_now(),
            Decision::SpinOn(n) => {
                for _ in 0..n {
                    core::hint::spin_loop();
                }
            }
            Decision::PreemptBurst(n) => {
                for _ in 0..n {
                    std::thread::yield_now();
                }
            }
            Decision::Sleep(us) => std::thread::sleep(Duration::from_micros(us as u64)),
        }
    }
}

/// One recorded perturbation: where the thread was and what it did.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStep {
    /// The schedule point the thread reported.
    pub point: SchedPoint,
    /// The decision drawn (generate mode) or applied (replay mode).
    pub decision: Decision,
}

/// Per-thread trace length cap: beyond this the stream keeps perturbing but
/// stops recording (artifacts stay bounded; the overflow is counted).
const TRACE_CAP: usize = 100_000;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draw one decision from a splitmix64 output. Distribution (out of 100):
/// 55 Run, 20 Yield, 13 SpinOn(8–72), 8 PreemptBurst(2–4), 4 Sleep(20–220µs).
fn draw(r: u64) -> Decision {
    let sel = r % 100;
    let payload = r >> 32;
    if sel < 55 {
        Decision::Run
    } else if sel < 75 {
        Decision::Yield
    } else if sel < 88 {
        Decision::SpinOn(8 + (payload % 65) as u16)
    } else if sel < 96 {
        Decision::PreemptBurst(2 + (payload % 3) as u8)
    } else {
        Decision::Sleep(20 + (payload % 201) as u16)
    }
}

#[derive(Debug)]
struct ThreadSlot {
    /// splitmix64 state (generate mode). Only thread `t` touches slot `t`,
    /// so a plain Mutex<u64> would do; the Mutex covers panicking threads.
    state: Mutex<u64>,
    /// Next script index (replay mode).
    cursor: AtomicUsize,
    /// Decisions taken so far (generate mode only).
    trace: Mutex<Vec<TraceStep>>,
    /// Steps not recorded because the trace hit [`TRACE_CAP`].
    overflow: AtomicUsize,
}

impl ThreadSlot {
    fn new(seed: u64) -> Self {
        ThreadSlot {
            state: Mutex::new(seed),
            cursor: AtomicUsize::new(0),
            trace: Mutex::new(Vec::new()),
            overflow: AtomicUsize::new(0),
        }
    }
}

#[derive(Debug)]
enum Mode {
    /// Draw fresh decisions from the per-thread PRNG streams and record them.
    Generate,
    /// Re-apply previously recorded per-thread decision streams in order
    /// (points are carried for diagnosis but not matched — replay is
    /// per-thread best-effort, see the module docs). Exhausted streams
    /// decide [`Decision::Run`].
    Replay(Vec<Vec<TraceStep>>),
}

/// The seeded perturbation layer. See the module docs.
#[derive(Debug)]
pub struct ChaosSched {
    mode: Mode,
    slots: Vec<CachePadded<ThreadSlot>>,
}

impl ChaosSched {
    /// A generate-mode scheduler for up to `max_threads` threads, fully
    /// determined by `seed`.
    pub fn new(seed: u64, max_threads: usize) -> Self {
        let slots = (0..max_threads)
            .map(|i| {
                // Distinct, well-separated stream per thread.
                let mut s = seed ^ (i as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F);
                // Warm the state so adjacent seeds don't share prefixes.
                let _ = splitmix64(&mut s);
                CachePadded::new(ThreadSlot::new(s))
            })
            .collect();
        ChaosSched {
            mode: Mode::Generate,
            slots,
        }
    }

    /// A replay-mode scheduler that re-applies `scripts[t]` for thread `t`.
    pub fn replay(scripts: Vec<Vec<TraceStep>>) -> Self {
        let slots = (0..scripts.len())
            .map(|_| CachePadded::new(ThreadSlot::new(0)))
            .collect();
        ChaosSched {
            mode: Mode::Replay(scripts),
            slots,
        }
    }

    /// Drain the per-thread traces recorded so far (generate mode; replay
    /// mode records nothing and returns empty traces).
    pub fn take_traces(&self) -> Vec<Vec<TraceStep>> {
        self.slots
            .iter()
            .map(|slot| std::mem::take(&mut *slot.trace.lock().unwrap()))
            .collect()
    }

    /// Total decisions that fell past the per-thread trace cap.
    pub fn trace_overflow(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.overflow.load(Ordering::Relaxed))
            .sum()
    }
}

impl SchedHooks for ChaosSched {
    fn perturb(&self, t: ThreadId, point: SchedPoint) {
        let Some(slot) = self.slots.get(t.index()) else {
            return; // thread beyond the configured matrix: leave unperturbed
        };
        let decision = match &self.mode {
            Mode::Generate => {
                let d = draw(splitmix64(&mut slot.state.lock().unwrap()));
                let mut trace = slot.trace.lock().unwrap();
                if trace.len() < TRACE_CAP {
                    trace.push(TraceStep { point, decision: d });
                } else {
                    slot.overflow.fetch_add(1, Ordering::Relaxed);
                }
                d
            }
            Mode::Replay(scripts) => {
                let i = slot.cursor.fetch_add(1, Ordering::Relaxed);
                scripts[t.index()]
                    .get(i)
                    .map(|s| s.decision)
                    .unwrap_or(Decision::Run)
            }
        };
        decision.apply();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(sched: &ChaosSched, t: ThreadId, points: &[SchedPoint]) -> Vec<TraceStep> {
        for &p in points {
            sched.perturb(t, p);
        }
        sched.take_traces()[t.index()].clone()
    }

    #[test]
    fn same_seed_same_decisions() {
        let points = [SchedPoint::SafepointPoll; 64];
        let a = stream(&ChaosSched::new(42, 2), ThreadId(0), &points);
        let b = stream(&ChaosSched::new(42, 2), ThreadId(0), &points);
        assert_eq!(a, b, "a seed must fully determine the decision stream");
        let c = stream(&ChaosSched::new(43, 2), ThreadId(0), &points);
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn threads_get_distinct_streams() {
        let sched = ChaosSched::new(7, 2);
        let points = [SchedPoint::SpinBackoff; 64];
        for &p in &points {
            sched.perturb(ThreadId(0), p);
            sched.perturb(ThreadId(1), p);
        }
        let traces = sched.take_traces();
        assert_ne!(traces[0], traces[1]);
    }

    #[test]
    fn distribution_mixes_all_decision_kinds() {
        let mut state = 0xC0FFEEu64;
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            match draw(splitmix64(&mut state)) {
                Decision::Run => counts[0] += 1,
                Decision::Yield => counts[1] += 1,
                Decision::SpinOn(n) => {
                    assert!((8..=72).contains(&n));
                    counts[2] += 1;
                }
                Decision::PreemptBurst(n) => {
                    assert!((2..=4).contains(&n));
                    counts[3] += 1;
                }
                Decision::Sleep(us) => {
                    assert!((20..=220).contains(&us));
                    counts[4] += 1;
                }
            }
        }
        assert!(counts.iter().all(|&c| c > 0), "all kinds drawn: {counts:?}");
        assert!(counts[0] > counts[1], "Run dominates: {counts:?}");
    }

    #[test]
    fn replay_reapplies_scripts_then_runs() {
        let script = vec![
            TraceStep {
                point: SchedPoint::MonitorPark,
                decision: Decision::Yield,
            },
            TraceStep {
                point: SchedPoint::MonitorPark,
                decision: Decision::SpinOn(9),
            },
        ];
        let sched = ChaosSched::replay(vec![script]);
        // Consuming more points than scripted must not panic (Run after end).
        for _ in 0..5 {
            sched.perturb(ThreadId(0), SchedPoint::MonitorPark);
        }
        assert!(sched.take_traces()[0].is_empty(), "replay records nothing");
    }

    #[test]
    fn out_of_range_threads_are_left_alone() {
        let sched = ChaosSched::new(1, 1);
        sched.perturb(ThreadId(9), SchedPoint::SafepointPoll); // no panic
    }
}
