//! Lost-wakeup regression test for monitor wait/notify under perturbation.
//!
//! N waiters consume tickets that M notifiers produce, with a [`ChaosSched`]
//! injecting yields/sleeps inside the exact windows where a lost wakeup
//! would hide: between the waiter's monitor release and its park
//! (`MonitorWaitPark`), and between the notifier's ticket publication and
//! its `notifyAll` (`MonitorNotify`). The monitor's wait-generation
//! protocol must guarantee that a notify issued after a waiter released the
//! monitor but before it parked is still observed — if it is ever lost,
//! the waiters hang and a watchdog aborts the test with a diagnosis instead
//! of wedging the suite.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use drink_check::ChaosSched;
use drink_runtime::{MonitorId, RtHooks, Runtime, RuntimeConfig, SchedPoint, ThreadId};

/// Bare-substrate hooks that only forward schedule points to the runtime's
/// registered chaos layer (no tracking engine in this test — the monitor
/// protocol itself is under test).
#[derive(Debug)]
struct Forward<'a>(&'a Runtime);

impl RtHooks for Forward<'_> {
    fn poll(&self, _t: ThreadId) {}
    fn before_block(&self, _t: ThreadId) {}
    fn on_blocked_publish(&self, _t: ThreadId) {}
    fn after_unblock(&self, _t: ThreadId, _epoch_bumped: bool) {}
    fn on_psro(&self, _t: ThreadId) {}
    fn sched_point(&self, t: ThreadId, point: SchedPoint) {
        self.0.sched_point(t, point);
    }
}

/// Abort (with a diagnosis) if the run wedges: a lost wakeup manifests as
/// waiters parked forever, which would otherwise hang the whole suite.
fn with_watchdog(done: Arc<AtomicBool>, what: &'static str) -> impl Drop {
    struct Disarm(Arc<AtomicBool>);
    impl Drop for Disarm {
        fn drop(&mut self) {
            self.0.store(true, Ordering::SeqCst);
        }
    }
    let flag = done.clone();
    std::thread::spawn(move || {
        for _ in 0..600 {
            std::thread::sleep(Duration::from_millis(100));
            if flag.load(Ordering::SeqCst) {
                return;
            }
        }
        eprintln!("monitor_chaos: {what}: waiters still parked after 60s — lost wakeup");
        std::process::abort();
    });
    Disarm(done)
}

fn run_ticket_exchange(seed: u64, waiters: usize, notifiers: usize, tickets_each: u64) {
    let threads = waiters + notifiers + 1; // +1: the shutdown "closer" thread
    let mut cfg = RuntimeConfig::builder()
        .max_threads(threads)
        .heap_objects(1)
        .monitors(1)
        .build();
    cfg.monitor_spin_iters = 4; // park early: the parking windows are the test
    let mut rt = Runtime::new(cfg);
    rt.set_sched_hooks(Arc::new(ChaosSched::new(seed, threads)));
    let rt = Arc::new(rt);

    let m = MonitorId(0);
    let target = notifiers as u64 * tickets_each;
    // Guarded by the monitor; atomics only so the struct is Sync.
    let tickets = AtomicU64::new(0);
    let consumed = AtomicU64::new(0);
    let producing_done = AtomicBool::new(false);

    let finished = Arc::new(AtomicBool::new(false));
    let _watchdog = with_watchdog(finished.clone(), "ticket exchange");

    std::thread::scope(|s| {
        for _ in 0..waiters {
            let rt = &rt;
            let (tickets, consumed, producing_done) = (&tickets, &consumed, &producing_done);
            s.spawn(move || {
                let t = rt.register_thread();
                let hooks = Forward(rt);
                loop {
                    rt.monitor_acquire(m, t, &hooks);
                    while tickets.load(Ordering::Relaxed) == 0
                        && !producing_done.load(Ordering::Relaxed)
                    {
                        rt.monitor_wait(m, t, &hooks);
                    }
                    let got = tickets.load(Ordering::Relaxed) > 0;
                    if got {
                        tickets.fetch_sub(1, Ordering::Relaxed);
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                    let drained =
                        producing_done.load(Ordering::Relaxed) && tickets.load(Ordering::Relaxed) == 0;
                    rt.monitor_release(m, t, &hooks);
                    if drained {
                        return;
                    }
                }
            });
        }

        let producers: Vec<_> = (0..notifiers)
            .map(|_| {
                let rt = &rt;
                let tickets = &tickets;
                s.spawn(move || {
                    let t = rt.register_thread();
                    let hooks = Forward(rt);
                    for _ in 0..tickets_each {
                        rt.monitor_acquire(m, t, &hooks);
                        tickets.fetch_add(1, Ordering::Relaxed);
                        // Notify while holding, as Java does; the chaos layer
                        // perturbs inside notify and before the wait-park.
                        rt.monitor_notify_all_from(m, t);
                        rt.monitor_release(m, t, &hooks);
                    }
                })
            })
            .collect();

        for p in producers {
            p.join().unwrap();
        }
        // All tickets published. Announce shutdown from a registered thread
        // *while holding the monitor* — a waiter's condition check and its
        // park are atomic with respect to the monitor, so notifying under it
        // is what makes the handshake race-free (notifying outside it can
        // land between a waiter's check and its park, which the wait
        // protocol is not required to survive).
        s.spawn(|| {
            let t = rt.register_thread();
            let hooks = Forward(&rt);
            rt.monitor_acquire(m, t, &hooks);
            producing_done.store(true, Ordering::Relaxed);
            rt.monitor_notify_all_from(m, t);
            rt.monitor_release(m, t, &hooks);
        });
    });

    assert_eq!(
        consumed.load(Ordering::Relaxed),
        target,
        "seed {seed:#x}: every produced ticket must be consumed exactly once"
    );
    assert_eq!(tickets.load(Ordering::Relaxed), 0);
}

#[test]
fn no_lost_wakeups_across_chaos_seeds() {
    for seed in [0x11u64, 0x22, 0x33, 0xABCDE] {
        run_ticket_exchange(seed, 3, 2, 40);
    }
}

#[test]
fn single_notifier_many_waiters() {
    run_ticket_exchange(0x77, 6, 1, 60);
}
