//! Failure artifacts embed per-thread protocol-event timelines.
//!
//! Forces a deterministic failure (every worker panics at a scheduler
//! perturbation point after a fixed number of visits) on a conflict-free
//! workload — no thread is ever blocked waiting on a panicked peer, so the
//! cell tears down promptly — and asserts the resulting artifact carries
//! non-empty event timelines that survive the JSON round trip.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use drink_check::harness::run_chaos_traced;
use drink_check::FailureArtifact;
use drink_runtime::{SchedHooks, SchedPoint, ThreadId, TraceKind};
use drink_workloads::{chaos_disjoint, EngineKind};

/// Panics on every thread once the process-wide perturbation count passes a
/// threshold — a stand-in for "some invariant fired mid-run".
#[derive(Debug)]
struct PanicAfter {
    seen: AtomicUsize,
    threshold: usize,
}

impl SchedHooks for PanicAfter {
    fn perturb(&self, t: ThreadId, _point: SchedPoint) {
        if self.seen.fetch_add(1, Ordering::Relaxed) >= self.threshold {
            panic!("injected chaos failure at T{}", t.raw());
        }
    }
}

#[test]
fn failure_artifact_embeds_per_thread_event_timelines() {
    let spec = chaos_disjoint(0xA11_FA11);
    let hooks = Arc::new(PanicAfter {
        seen: AtomicUsize::new(0),
        threshold: 40,
    });
    let (failure, events) =
        run_chaos_traced(EngineKind::Hybrid, &spec, hooks).expect_err("cell must fail");
    assert!(failure.contains("injected chaos failure"), "{failure}");

    // Every worker got far enough to record accesses before the panic.
    assert_eq!(events.len(), spec.threads);
    let non_empty = events.iter().filter(|t| !t.events.is_empty()).count();
    assert!(non_empty > 0, "at least one thread must have a timeline");
    let total: usize = events.iter().map(|t| t.events.len()).sum();
    assert!(total > 0);
    // Disjoint-object accesses on the hybrid engine emit access events.
    assert!(events.iter().flat_map(|t| &t.events).any(|e| {
        matches!(e.kind, TraceKind::Read | TraceKind::Write)
    }));

    let artifact = FailureArtifact {
        seed: 0xA11_FA11,
        engine: EngineKind::Hybrid.label().to_string(),
        spec,
        failure,
        traces: Vec::new(),
        events,
    };
    let json = artifact.to_json();
    assert!(json.contains("\"events\""));
    let back = FailureArtifact::from_json(&json).expect("artifact parses");
    assert_eq!(back.events, artifact.events);
    assert!(!back.events.iter().all(|t| t.events.is_empty()));
}
